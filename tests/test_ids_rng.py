"""Unit tests for identifier generation and seeded randomness."""

import numpy as np
import pytest

from repro.common.ids import IdFactory
from repro.common.rng import block_evidence_rng, make_generator, spawn_child


class TestIdFactory:
    def test_sequence(self):
        factory = IdFactory()
        assert factory.next("req") == "req-000000"
        assert factory.next("req") == "req-000001"

    def test_independent_prefixes(self):
        factory = IdFactory()
        factory.next("req")
        assert factory.next("off") == "off-000000"

    def test_reset(self):
        factory = IdFactory()
        factory.next("x")
        factory.reset()
        assert factory.next("x") == "x-000000"

    def test_two_factories_independent(self):
        a, b = IdFactory(), IdFactory()
        a.next("p")
        assert b.next("p") == "p-000000"


class TestMakeGenerator:
    def test_int_seed_reproducible(self):
        assert make_generator(7).integers(0, 100) == make_generator(7).integers(0, 100)

    def test_string_seed_reproducible(self):
        a = make_generator("hello").random()
        b = make_generator("hello").random()
        assert a == b

    def test_different_string_seeds_differ(self):
        assert make_generator("a").random() != make_generator("b").random()

    def test_bytes_seed(self):
        assert make_generator(b"x").random() == make_generator(b"x").random()

    def test_none_seed_gives_generator(self):
        assert isinstance(make_generator(None), np.random.Generator)


class TestBlockEvidenceRng:
    def test_deterministic(self):
        a = block_evidence_rng(b"evidence")
        b = block_evidence_rng(b"evidence")
        assert [a.random() for _ in range(5)] == [b.random() for _ in range(5)]

    def test_different_evidence_differs(self):
        assert block_evidence_rng(b"x").random() != block_evidence_rng(b"y").random()

    def test_rejects_non_bytes(self):
        with pytest.raises(TypeError):
            block_evidence_rng("not-bytes")  # type: ignore[arg-type]


class TestSpawnChild:
    def test_children_reproducible(self):
        a = spawn_child(make_generator(1), "workload")
        b = spawn_child(make_generator(1), "workload")
        assert a.random() == b.random()

    def test_labels_give_distinct_streams(self):
        root = make_generator(1)
        a = spawn_child(root, "a")
        root2 = make_generator(1)
        b = spawn_child(root2, "b")
        assert a.random() != b.random()
