"""The telemetry plane: worker capture, payload merge, actor shipping."""

import asyncio
import pickle

import pytest

from repro.core.config import AuctionConfig, ShardPlan
from repro.core.auction import DecloudAuction
from repro.workloads.generators import generate_zone_market
from repro.obs import (
    Observability,
    TelemetryAggregator,
    TelemetryPayload,
    TelemetryPublisher,
    capture_payload,
    capture_task,
    merge_payload,
)
from repro.protocol.messages import TOPIC_TELEMETRY, TelemetryFrame
from repro.runtime import DeterministicScheduler, DeterministicTransport
from repro.runtime.sockets import AsyncioBroadcastHub, AsyncioSocketTransport


# ----------------------------------------------------------------------
# capture_task / capture_payload
# ----------------------------------------------------------------------
class TestCaptureTask:
    def test_success_ships_metrics_and_trace(self):
        with capture_task("shard:zone:a", "shard") as cap:
            cap.obs.registry.inc("things_total", 3, kind="x")
            cap.obs.registry.observe("latency_seconds", 0.25)
            with cap.obs.tracer.span("inner"):
                cap.obs.tracer.event("inner.tick")
            cap.set_value("result")
        assert cap.value == "result"
        assert cap.error is None
        payload = cap.payload
        assert payload.status == "ok"
        assert payload.error is None
        counters = dict(
            ((name, labels), value) for name, labels, value in payload.counters
        )
        assert counters[("things_total", (("kind", "x"),))] == 3
        # the bundle's own task accounting rides along
        assert ("worker_tasks_total", (("kind", "shard"), ("status", "ok"))) in counters
        names = [r["name"] for r in payload.trace_records if "name" in r]
        assert "worker_task" in names and "inner" in names

    def test_failure_still_ships_payload_tagged_aborted(self):
        with capture_task("mini:3", "mini_auction") as cap:
            cap.obs.registry.inc("started_total")
            raise RuntimeError("worker exploded")
        # the exception was captured, not raised
        assert isinstance(cap.error, RuntimeError)
        assert cap.value is None
        payload = cap.payload
        assert payload.status == "aborted"
        assert "worker exploded" in payload.error
        counters = dict(
            ((name, labels), value) for name, labels, value in payload.counters
        )
        # the pre-failure delta survives: no dark worker even on abort
        assert counters[("started_total", ())] == 1.0
        assert (
            "worker_tasks_total",
            (("kind", "mini_auction"), ("status", "aborted")),
        ) in counters

    def test_payload_pickles(self):
        with capture_task("shard:zone:a", "shard") as cap:
            cap.obs.registry.observe("h_seconds", 0.1)
        clone = pickle.loads(pickle.dumps(cap.payload))
        assert clone == cap.payload


class TestMergePayload:
    def _payload(self):
        with capture_task("shard:zone:a", "shard") as cap:
            cap.obs.registry.inc("trades_total", 2)
            cap.obs.registry.set("height", 5)
            cap.obs.registry.observe("lat_seconds", 0.5)
            cap.obs.registry.observe("lat_seconds", 1.5)
            with cap.obs.timer.phase("clear"):
                pass
        return cap.payload

    def test_merges_under_worker_labels(self):
        obs = Observability()
        merge_payload(obs, self._payload(), shard="zone:a", worker="shard")
        reg = obs.registry
        assert reg.counter_value("trades_total", shard="zone:a", worker="shard") == 2
        assert reg.gauge_value("height", shard="zone:a", worker="shard") == 5
        stats = reg.histogram_stats("lat_seconds", shard="zone:a", worker="shard")
        assert stats["count"] == 2 and stats["sum"] == 2.0
        assert stats["min"] == 0.5 and stats["max"] == 1.5
        # buckets merged exactly, not just count/sum
        (series,) = [
            h for (n, _), h in reg.histograms.items() if n == "lat_seconds"
        ]
        assert sum(series.bucket_counts) == 2
        # phase timer folded into the parent timer
        assert obs.timer.counts.get("clear") == 1

    def test_worker_trace_grafted_under_anchor_span(self):
        obs = Observability()
        with obs.tracer.span("clear"):
            merge_payload(obs, self._payload(), worker="mini")
        text = obs.trace_jsonl(strip_wall=True)
        assert '"name":"worker"' in text
        assert '"name":"worker_task"' in text
        # merged seqs stay monotone
        seqs = [r["seq"] for r in obs.tracer.records]
        assert seqs == sorted(seqs) and len(set(seqs)) == len(seqs)

    def test_merge_is_deterministic(self):
        payload = self._payload()
        texts = []
        for _ in range(2):
            obs = Observability()
            with obs.tracer.span("clear"):
                merge_payload(obs, payload, worker="mini")
            texts.append(obs.trace_jsonl(strip_wall=True))
        assert texts[0] == texts[1]

    def test_disabled_parent_and_none_payload_are_noops(self):
        from repro.obs import NULL_OBS

        merge_payload(NULL_OBS, self._payload(), worker="x")
        obs = Observability()
        merge_payload(obs, None, worker="x")
        assert obs.registry.counters == {}

    def test_aborted_payload_records_event(self):
        with capture_task("mini:0", "mini_auction") as cap:
            raise ValueError("nope")
        obs = Observability()
        merge_payload(obs, cap.payload, worker="mini")
        text = obs.trace_jsonl()
        assert "worker.aborted" in text


# ----------------------------------------------------------------------
# No pooled path may go dark: the capture flag follows the bundle
# ----------------------------------------------------------------------
def _zone_market():
    requests, offers, _ = generate_zone_market(
        40, n_zones=3, seed=7, kind="network", locality="strong",
        cross_zone_fraction=0.25,
    )
    return requests, offers


class TestNoDarkWorkers:
    @pytest.mark.parametrize("workers", [0, 1, 3])
    def test_sharded_clear_attributes_workers(self, workers):
        requests, offers = _zone_market()
        config = AuctionConfig(
            sharding=ShardPlan(kind="network", shard_workers=workers)
        )
        obs = Observability(telemetry=True)
        outcome = DecloudAuction(config).run(
            requests, offers, evidence=b"telemetry-test", obs=obs
        )
        assert outcome.matches
        # every cleared shard reported home under its own label
        shard_labels = {
            dict(labels).get("shard")
            for (name, labels) in obs.registry.counters
            if dict(labels).get("worker") == "shard"
        }
        assert len([k for k in shard_labels if k and k.startswith("zone:")]) >= 2

    def test_worker_phase_metrics_sum_to_parent_totals(self):
        requests, offers = _zone_market()
        config = AuctionConfig(
            sharding=ShardPlan(kind="network", shard_workers=1)
        )
        obs = Observability(telemetry=True)
        DecloudAuction(config).run(
            requests, offers, evidence=b"telemetry-test", obs=obs
        )
        reg = obs.registry
        # parent-side shard_phase_seconds is built from the worker
        # timers; the worker-attributed auction_phase_seconds histograms
        # shipped via telemetry must sum to exactly the same totals.
        parent = {}
        worker = {}
        for (name, labels), series in reg.histograms.items():
            items = dict(labels)
            if name == "shard_phase_seconds":
                phase = items["phase"]
                parent[phase] = parent.get(phase, 0.0) + series.sum
            if name == "auction_phase_seconds" and items.get("worker") == "shard":
                phase = items["phase"]
                worker[phase] = worker.get(phase, 0.0) + series.sum
        assert parent and worker
        for phase, total in worker.items():
            assert parent.get(phase, 0.0) == pytest.approx(total, abs=1e-12)

    def _banded_market(self, n_bands=4):
        """Price-incompatible disjoint clusters -> one wave of n minis."""
        from repro.common.timewindow import TimeWindow
        from tests.conftest import make_offer, make_request

        requests, offers = [], []
        for k in range(n_bands):
            t = f"band-{k}"
            requests.append(
                make_request(
                    f"r{k}", resources={t: 1.0}, significance={t: 1.0},
                    bid=5.0 * 10.0 ** (2 * k), duration=1.0,
                    window=TimeWindow(0, 3),
                )
            )
            offers.append(
                make_offer(
                    f"o{k}", resources={t: 1.0}, bid=24.0 * 10.0 ** (2 * k)
                )
            )
        return requests, offers

    @pytest.mark.parametrize("workers", [1, 2])
    def test_mini_auction_waves_attribute_workers(self, workers):
        """The pooled mini-auction path is never dark either: every
        scheduled wave task ships a worker="mini" payload, pooled or
        in-process, and the capture decision cannot depend on the pool
        layout.  (workers=0 is the legacy sequential loop — no task
        schedule, no pool, nothing to capture.)"""
        requests, offers = self._banded_market()
        obs = Observability(telemetry=True)
        DecloudAuction(
            AuctionConfig(miniauction_workers=workers)
        ).run(requests, offers, evidence=b"telemetry-test", obs=obs)
        mini_tasks = sum(
            value
            for (name, labels), value in obs.registry.counters.items()
            if name == "worker_tasks_total"
            and dict(labels).get("worker") == "mini"
            and dict(labels).get("kind") == "mini_auction"
        )
        # four price-incompatible bands -> four captured mini clears
        assert mini_tasks == 4

    def test_mini_capture_outcome_and_trace_identical_across_workers(self):
        runs = []
        for workers in (1, 2):
            requests, offers = self._banded_market()
            obs = Observability("mini-merge", telemetry=True)
            outcome = DecloudAuction(
                AuctionConfig(miniauction_workers=workers)
            ).run(requests, offers, evidence=b"telemetry-test", obs=obs)
            runs.append(
                (
                    list(outcome.prices),
                    [r.request_id for r in outcome.reduced_requests],
                    obs.trace_jsonl(strip_wall=True),
                )
            )
        assert runs[0] == runs[1]

    def test_telemetry_off_keeps_registry_free_of_worker_series(self):
        requests, offers = _zone_market()
        config = AuctionConfig(
            sharding=ShardPlan(kind="network", shard_workers=1)
        )
        obs = Observability()  # telemetry not opted in
        DecloudAuction(config).run(
            requests, offers, evidence=b"telemetry-test", obs=obs
        )
        workers = {
            dict(labels).get("worker")
            for (name, labels) in obs.registry.counters
        }
        assert "shard" not in workers


# ----------------------------------------------------------------------
# Publisher / aggregator over both transports
# ----------------------------------------------------------------------
class TestAggregator:
    def test_merges_frames_over_deterministic_transport(self):
        scheduler = DeterministicScheduler(seed=0)
        transport = DeterministicTransport(scheduler)
        aggregator = TelemetryAggregator()
        aggregator.subscribe(transport)
        obs_a, obs_b = Observability(), Observability()
        pub_a = TelemetryPublisher(obs_a, "node-a")
        pub_b = TelemetryPublisher(obs_b, "node-b")

        obs_a.registry.inc("bids_total", 3, kind="request")
        obs_b.registry.inc("bids_total", 2, kind="request")
        pub_a.publish(transport)
        pub_b.publish(transport)
        scheduler.run()
        obs_a.registry.inc("bids_total", 1, kind="request")
        obs_a.registry.set("height", 9)
        pub_a.publish(transport)
        scheduler.run()

        assert aggregator.nodes() == ["node-a", "node-b"]
        reg = aggregator.registry
        assert reg.counter_value("bids_total", kind="request", node="node-a") == 4
        assert reg.counter_value("bids_total", kind="request", node="node-b") == 2
        assert aggregator.counter_total("bids_total", kind="request") == 6
        assert reg.gauge_value("height", node="node-a") == 9

    def test_duplicate_frames_dropped(self):
        obs = Observability()
        pub = TelemetryPublisher(obs, "node-a")
        obs.registry.inc("x_total")
        frame = pub.make_frame()
        aggregator = TelemetryAggregator()
        aggregator.on_frame("node-a", frame)
        aggregator.on_frame("node-a", frame)
        reg = aggregator.registry
        assert reg.counter_value("x_total", node="node-a") == 1
        assert (
            reg.counter_value("telemetry_frames_duplicate_total", node="node-a")
            == 1
        )

    def test_stale_gauge_frame_cannot_roll_back(self):
        obs = Observability()
        pub = TelemetryPublisher(obs, "node-a")
        obs.registry.set("height", 1)
        old = pub.make_frame()
        obs.registry.set("height", 2)
        new = pub.make_frame()
        aggregator = TelemetryAggregator()
        aggregator.on_frame("node-a", new)
        aggregator.on_frame("node-a", old)  # late, out of order
        assert aggregator.registry.gauge_value("height", node="node-a") == 2

    def test_histogram_diffs_become_count_sum_counters(self):
        obs = Observability()
        pub = TelemetryPublisher(obs, "node-a")
        obs.registry.observe("lat_seconds", 0.5)
        obs.registry.observe("lat_seconds", 1.0)
        aggregator = TelemetryAggregator()
        aggregator.on_frame("node-a", pub.make_frame())
        reg = aggregator.registry
        assert reg.counter_value("lat_seconds_count", node="node-a") == 2
        assert reg.counter_value("lat_seconds_sum", node="node-a") == 1.5

    def test_frames_merge_over_asyncio_hub(self):
        async def scenario():
            hub = AsyncioBroadcastHub()
            await hub.start()
            sender = AsyncioSocketTransport("127.0.0.1", hub.port)
            receiver = AsyncioSocketTransport("127.0.0.1", hub.port)
            await sender.connect()
            await receiver.connect()
            aggregator = TelemetryAggregator()
            aggregator.subscribe(receiver)
            obs = Observability()
            publisher = TelemetryPublisher(obs, "edge-1")
            obs.registry.inc("trades_total", 7)
            await sender.broadcast(
                TOPIC_TELEMETRY, publisher.make_frame(), sender="edge-1"
            )
            await asyncio.wait_for(receiver.pump(1), timeout=5.0)
            await sender.close()
            await receiver.close()
            await hub.stop()
            return aggregator

        aggregator = asyncio.run(scenario())
        assert aggregator.frames == 1
        assert (
            aggregator.registry.counter_value("trades_total", node="edge-1")
            == 7
        )

    def test_telemetry_frame_pickles(self):
        frame = TelemetryFrame(
            node_id="n", seq=0, frame={"counters": {"x": 1.0}}
        )
        clone = pickle.loads(pickle.dumps(frame))
        assert clone == frame
