"""Unit tests for market diagnostics."""

import pytest

from repro.analysis.markets import (
    clearing_report,
    crossing_point,
    demand_curve,
    supply_curve,
)
from repro.core.auction import DecloudAuction
from repro.experiments.sweeps import eval_config
from repro.workloads.generators import MarketScenario
from tests.conftest import make_offer, make_request


class TestCurves:
    def test_demand_sorted_desc(self):
        requests = [
            make_request(request_id=f"r{i}", bid=float(b), duration=2.0)
            for i, b in enumerate([1, 5, 3])
        ]
        curve = demand_curve(requests)
        values = [v for v, _ in curve]
        assert values == sorted(values, reverse=True)
        assert curve[-1][1] == pytest.approx(6.0)  # total duration

    def test_supply_sorted_asc(self):
        offers = [
            make_offer(offer_id=f"o{i}", bid=float(b))
            for i, b in enumerate([5, 1, 3])
        ]
        curve = supply_curve(offers)
        costs = [c for c, _ in curve]
        assert costs == sorted(costs)

    def test_crossing_exists_in_profitable_market(self):
        requests = [
            make_request(request_id=f"r{i}", bid=5.0, duration=4.0)
            for i in range(3)
        ]
        offers = [make_offer(offer_id=f"o{i}", bid=0.5) for i in range(2)]
        cross = crossing_point(demand_curve(requests), supply_curve(offers))
        assert cross is not None
        price, quantity = cross
        assert price > 0 and quantity > 0

    def test_no_cross_in_unprofitable_market(self):
        requests = [make_request(bid=0.0001, duration=8.0)]
        offers = [make_offer(bid=100.0)]
        cross = crossing_point(demand_curve(requests), supply_curve(offers))
        # marginal value below marginal cost immediately:
        assert cross is not None  # returns midpoint diagnostic
        price, quantity = cross
        assert quantity == pytest.approx(8.0)

    def test_empty_curves(self):
        assert crossing_point([], []) is None


class TestClearingReport:
    def test_report_fields(self):
        requests, offers = MarketScenario(n_requests=40, seed=4).generate()
        outcome = DecloudAuction(eval_config()).run(requests, offers)
        report = clearing_report(outcome)
        assert report.trades == outcome.num_trades
        assert report.welfare == pytest.approx(outcome.welfare)
        assert 0.0 <= report.mean_utilization <= 1.0
        assert 0.0 <= report.satisfaction <= 1.0
        assert "trades=" in str(report)

    def test_empty_outcome(self):
        from repro.core.outcome import AuctionOutcome

        report = clearing_report(AuctionOutcome())
        assert report.trades == 0
        assert report.mean_utilization == 0.0
