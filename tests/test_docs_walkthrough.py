"""Keeps docs/MECHANISM.md honest: its worked example must stay true."""

import pytest

from repro.common import TimeWindow
from repro.core import AuctionConfig, DecloudAuction
from repro.market import Offer, Request


@pytest.fixture
def walkthrough_market():
    offers = [
        Offer("small", "p-small", 0.0, {"cpu": 4, "ram": 16}, TimeWindow(0, 24), 2.40),
        Offer("medium", "p-medium", 0.1, {"cpu": 8, "ram": 32}, TimeWindow(0, 24), 4.80),
        Offer("large", "p-large", 0.2, {"cpu": 16, "ram": 64}, TimeWindow(0, 24), 12.00),
    ]
    requests = [
        Request("r-ana", "ana", 1.0, {"cpu": 2, "ram": 8}, TimeWindow(0, 24), 6, 1.50),
        Request("r-ben", "ben", 1.1, {"cpu": 4, "ram": 16}, TimeWindow(0, 24), 12, 4.00),
        Request("r-cai", "cai", 1.2, {"cpu": 2, "ram": 4}, TimeWindow(0, 24), 4, 0.60),
        Request("r-dia", "dia", 1.3, {"cpu": 8, "ram": 32}, TimeWindow(0, 24), 12, 6.00),
    ]
    return requests, offers


def test_walkthrough_numbers(walkthrough_market):
    requests, offers = walkthrough_market
    outcome = DecloudAuction(AuctionConfig(cluster_breadth=2)).run(
        requests, offers, evidence=b"walkthrough"
    )
    payments = {
        m.request.request_id: m.payment for m in outcome.matches
    }
    # The exact numbers printed in docs/MECHANISM.md.
    assert payments == pytest.approx(
        {"r-ana": 0.375, "r-ben": 1.5, "r-cai": 0.25, "r-dia": 3.0}
    )
    hosts = {m.request.request_id: m.offer.offer_id for m in outcome.matches}
    assert set(hosts.values()) == {"medium"}
    assert outcome.prices == pytest.approx([0.5])
    assert outcome.welfare == pytest.approx(8.05, abs=1e-6)
    assert outcome.total_payments == pytest.approx(5.125)
    assert outcome.reduced_requests == []


def test_walkthrough_price_from_unused_offer(walkthrough_market):
    requests, offers = walkthrough_market
    outcome = DecloudAuction(AuctionConfig(cluster_breadth=2)).run(
        requests, offers, evidence=b"walkthrough"
    )
    # The price-setter ('large') never trades; 'small' never clustered.
    trading_offers = {m.offer.offer_id for m in outcome.matches}
    assert "large" not in trading_offers
    assert "small" not in trading_offers
