"""Unit tests for the write-ahead log, its backends, and snapshots."""

import pytest

from repro.common.errors import CorruptRecordError, StoreError
from repro.faults.crash import CrashPlan, CrashPoint, SimulatedCrashError
from repro.store import (
    FileSnapshotStore,
    MemoryLogBackend,
    MemorySnapshotStore,
    WriteAheadLog,
    decode_snapshot,
    encode_frame,
    encode_snapshot,
    scan_frames,
)
from repro.store.wal import FileLogBackend, encode_envelope


def make_log(**kwargs):
    return WriteAheadLog(MemoryLogBackend(), **kwargs)


class TestFraming:
    def test_append_then_scan_round_trips(self):
        log = make_log()
        log.append("token.mint", {"account": "a", "amount": 1.5})
        log.append("token.mint", {"account": "b", "amount": 2.0})
        records = log.records()
        assert [r["seq"] for r in records] == [0, 1]
        assert records[0]["type"] == "token.mint"
        assert records[1]["data"] == {"account": "b", "amount": 2.0}

    def test_seq_is_monotonic_and_returned(self):
        log = make_log()
        assert log.append("a", {}) == 0
        assert log.append("b", {}) == 1
        assert log.next_seq == 2

    def test_scan_empty_log_is_clean(self):
        result = scan_frames(b"")
        assert result.clean
        assert result.records == []
        assert result.good_length == 0

    def test_torn_header_detected(self):
        frame = encode_frame(encode_envelope(0, "t", {}))
        result = scan_frames(frame + frame[:4])
        assert not result.clean
        assert result.tail_error.reason == "torn header"
        assert result.good_length == len(frame)
        assert len(result.records) == 1

    def test_torn_payload_detected(self):
        frame = encode_frame(encode_envelope(0, "t", {}))
        result = scan_frames(frame[:-3])
        assert result.tail_error.reason == "torn payload"
        assert result.records == []

    def test_crc_mismatch_detected(self):
        frame = bytearray(encode_frame(encode_envelope(0, "t", {})))
        frame[-1] ^= 0xFF
        result = scan_frames(bytes(frame))
        assert result.tail_error.reason == "crc mismatch"

    def test_bad_magic_detected(self):
        frame = bytearray(encode_frame(encode_envelope(0, "t", {})))
        frame[0] ^= 0xFF
        result = scan_frames(bytes(frame))
        assert result.tail_error.reason == "bad magic"

    def test_no_resynchronization_past_first_damage(self):
        good = encode_frame(encode_envelope(0, "t", {}))
        later = encode_frame(encode_envelope(1, "t", {}))
        corrupted = bytearray(good)
        corrupted[-1] ^= 0xFF
        # a fully valid frame AFTER the damage must NOT be trusted
        result = scan_frames(bytes(corrupted) + later)
        assert result.records == []
        assert result.good_length == 0

    def test_strict_scan_raises(self):
        log = make_log()
        log.append("t", {})
        log.backend.append(b"\x00\x01")
        with pytest.raises(CorruptRecordError):
            log.scan(strict=True)


class TestTruncateAndCompact:
    def test_truncate_tail_repairs_and_reports_bytes(self):
        log = make_log()
        log.append("t", {"i": 1})
        log.backend.append(b"\xd7\xca\x00")  # torn header
        fresh = WriteAheadLog(log.backend)
        assert fresh.truncate_tail() == 3
        assert fresh.scan().clean
        assert len(fresh.records()) == 1

    def test_append_refused_while_tail_damaged(self):
        log = make_log()
        log.append("t", {})
        log.backend.append(b"\xff\xff")
        damaged = WriteAheadLog(log.backend)
        with pytest.raises(StoreError):
            damaged.append("t", {})
        damaged.truncate_tail()
        assert damaged.append("t", {}) == 1

    def test_compact_drops_prefix_and_preserves_seq(self):
        log = make_log()
        for i in range(5):
            log.append("t", {"i": i})
        assert log.compact(upto_seq=2) == 3
        records = log.records()
        assert [r["seq"] for r in records] == [3, 4]
        # appends after compaction keep counting from where seq left off
        assert log.append("t", {}) == 5

    def test_records_after_seq_filter(self):
        log = make_log()
        for i in range(4):
            log.append("t", {"i": i})
        assert [r["seq"] for r in log.records(after_seq=1)] == [2, 3]

    def test_oversize_record_rejected(self):
        with pytest.raises(StoreError):
            encode_frame(b"x" * (64 * 1024 * 1024 + 1))


class TestFileBackend:
    def test_round_trip_and_reopen(self, tmp_path):
        path = str(tmp_path / "wal.log")
        log = WriteAheadLog(FileLogBackend(path))
        log.append("t", {"i": 1})
        log.append("t", {"i": 2})
        log.close()
        reopened = WriteAheadLog(FileLogBackend(path))
        assert [r["data"]["i"] for r in reopened.records()] == [1, 2]
        assert reopened.next_seq == 2
        reopened.close()

    def test_truncate_and_compact_on_disk(self, tmp_path):
        path = str(tmp_path / "wal.log")
        log = WriteAheadLog(FileLogBackend(path))
        for i in range(3):
            log.append("t", {"i": i})
        log.backend.append(b"garbage-tail")
        log.close()
        recovered = WriteAheadLog(FileLogBackend(path))
        assert recovered.truncate_tail() == len(b"garbage-tail")
        assert recovered.compact(upto_seq=0) == 1
        assert [r["seq"] for r in recovered.records()] == [1, 2]
        recovered.close()


class TestSnapshotStores:
    def test_memory_snapshot_keeps_latest(self):
        store = MemorySnapshotStore(keep=2)
        assert store.latest() is None
        store.save(3, encode_snapshot({"x": 1}, 3))
        store.save(7, encode_snapshot({"x": 2}, 7))
        state, seq = decode_snapshot(store.latest())
        assert (state, seq) == ({"x": 2}, 7)

    def test_file_snapshot_prunes_beyond_keep(self, tmp_path):
        store = FileSnapshotStore(str(tmp_path / "snaps"), keep=2)
        for seq in (1, 2, 3):
            store.save(seq, encode_snapshot({"seq": seq}, seq))
        state, seq = decode_snapshot(store.latest())
        assert seq == 3
        kept = sorted(p.name for p in (tmp_path / "snaps").iterdir())
        assert len(kept) == 2

    def test_corrupt_snapshot_raises_store_error(self):
        with pytest.raises(StoreError):
            decode_snapshot(b"not json at all")


class TestCrashPoints:
    def test_clean_crash_persists_full_frame(self):
        point = CrashPoint(at_append=1, mode="clean")
        log = make_log(crash_point=point)
        log.append("t", {"i": 0})
        with pytest.raises(SimulatedCrashError):
            log.append("t", {"i": 1})
        assert point.fired
        # both records durable: the crash hit after the boundary
        assert [r["seq"] for r in scan_frames(log.backend.read()).records] == [0, 1]

    def test_torn_crash_leaves_torn_tail(self):
        point = CrashPoint(at_append=1, mode="torn", torn_fraction=0.5)
        log = make_log(crash_point=point)
        log.append("t", {"i": 0})
        with pytest.raises(SimulatedCrashError):
            log.append("t", {"i": 1})
        result = scan_frames(log.backend.read())
        assert not result.clean
        assert len(result.records) == 1

    def test_corrupt_crash_fails_crc(self):
        point = CrashPoint(at_append=0, mode="corrupt")
        log = make_log(crash_point=point)
        with pytest.raises(SimulatedCrashError):
            log.append("t", {"i": 0})
        result = scan_frames(log.backend.read())
        assert result.records == []
        assert result.tail_error is not None

    def test_crash_point_fires_exactly_once(self):
        point = CrashPoint(at_append=0, mode="clean")
        log = make_log(crash_point=point)
        with pytest.raises(SimulatedCrashError):
            log.append("t", {})
        recovered = WriteAheadLog(log.backend, crash_point=point)
        recovered.truncate_tail()
        # the same (fired) point never kills the restarted process
        assert recovered.append("t", {}) == 1

    def test_simulated_crash_is_not_a_repro_error(self):
        from repro.common.errors import ReproError

        assert not issubclass(SimulatedCrashError, ReproError)

    def test_crash_plan_enumerates_every_boundary_and_mode(self):
        plan = CrashPlan(append_count=3, modes=("clean", "torn"))
        points = list(plan.points())
        assert len(points) == len(plan) == 6
        assert {(p.at_append, p.mode) for p in points} == {
            (i, m) for i in range(3) for m in ("clean", "torn")
        }
