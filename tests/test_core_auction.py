"""Unit tests for the full auction pipeline (Alg. 1)."""

import pytest

from repro.common.errors import AuctionError
from repro.core.auction import DecloudAuction
from repro.core.config import AuctionConfig
from tests.conftest import make_offer, make_request


def _market(n_requests=6, n_offers=3):
    offers = [
        make_offer(
            offer_id=f"off-{i}",
            provider_id=f"prov-{i}",
            submit_time=0.01 * i,
            resources={"cpu": 4 + 4 * i, "ram": 16 + 16 * i, "disk": 200},
            bid=1.0 + 0.5 * i,
        )
        for i in range(n_offers)
    ]
    requests = [
        make_request(
            request_id=f"req-{i}",
            client_id=f"cli-{i}",
            submit_time=1.0 + 0.01 * i,
            resources={"cpu": 1 + (i % 3), "ram": 2 + (i % 4), "disk": 20},
            duration=3.0 + (i % 2),
            bid=1.0 + 0.3 * i,
        )
        for i in range(n_requests)
    ]
    return requests, offers


class TestRun:
    def test_accounts_for_every_request(self):
        requests, offers = _market()
        outcome = DecloudAuction().run(requests, offers)
        ids = (
            {m.request.request_id for m in outcome.matches}
            | {r.request_id for r in outcome.reduced_requests}
            | {r.request_id for r in outcome.unmatched_requests}
        )
        assert ids == {r.request_id for r in requests}

    def test_no_request_in_two_buckets(self):
        requests, offers = _market()
        outcome = DecloudAuction().run(requests, offers)
        matched = {m.request.request_id for m in outcome.matches}
        reduced = {r.request_id for r in outcome.reduced_requests}
        unmatched = {r.request_id for r in outcome.unmatched_requests}
        assert not matched & reduced
        assert not matched & unmatched
        assert not reduced & unmatched

    def test_each_request_matched_once(self):
        requests, offers = _market(n_requests=10)
        outcome = DecloudAuction().run(requests, offers)
        matched = [m.request.request_id for m in outcome.matches]
        assert len(matched) == len(set(matched))

    def test_deterministic_given_evidence(self):
        requests, offers = _market(n_requests=10)
        a = DecloudAuction().run(requests, offers, evidence=b"E1")
        b = DecloudAuction().run(requests, offers, evidence=b"E1")
        assert a.to_payload() == b.to_payload()

    def test_empty_market(self):
        outcome = DecloudAuction().run([], [])
        assert outcome.num_trades == 0
        assert outcome.welfare == 0.0

    def test_only_requests(self):
        requests, _ = _market()
        outcome = DecloudAuction().run(requests, [])
        assert outcome.num_trades == 0
        assert len(outcome.unmatched_requests) == len(requests)

    def test_only_offers(self):
        _, offers = _market()
        outcome = DecloudAuction().run([], offers)
        assert outcome.num_trades == 0
        assert len(outcome.unmatched_offers) == len(offers)

    def test_duplicate_request_id_rejected(self):
        requests, offers = _market()
        with pytest.raises(AuctionError):
            DecloudAuction().run(requests + [requests[0]], offers)

    def test_duplicate_offer_id_rejected(self):
        requests, offers = _market()
        with pytest.raises(AuctionError):
            DecloudAuction().run(requests, offers + [offers[0]])

    def test_strong_budget_balance(self):
        requests, offers = _market(n_requests=12, n_offers=4)
        outcome = DecloudAuction().run(requests, offers)
        assert outcome.total_payments == pytest.approx(
            sum(outcome.revenues().values())
        )

    def test_individual_rationality_clients(self):
        requests, offers = _market(n_requests=12, n_offers=4)
        outcome = DecloudAuction().run(requests, offers)
        for match in outcome.matches:
            assert match.payment <= match.request.bid + 1e-9

    def test_matches_are_feasible(self):
        from repro.market.feasibility import is_feasible

        requests, offers = _market(n_requests=12, n_offers=4)
        outcome = DecloudAuction().run(requests, offers)
        assert outcome.num_trades > 0
        for match in outcome.matches:
            assert is_feasible(match.request, match.offer)

    def test_unit_price_supports_all_trading_offers(self):
        requests, offers = _market(n_requests=12, n_offers=4)
        outcome = DecloudAuction().run(requests, offers)
        # every trading offer earns at least its proportional cost at the
        # cluster's normalized scale (provider-side IR per §IV-E)
        for match in outcome.matches:
            assert match.unit_price >= 0

    def test_infeasible_requests_unmatched(self):
        requests, offers = _market()
        monster = make_request(
            request_id="monster", resources={"cpu": 10_000}, bid=99.0
        )
        outcome = DecloudAuction().run(requests + [monster], offers)
        assert any(
            r.request_id == "monster" for r in outcome.unmatched_requests
        )

    def test_capacity_never_oversubscribed(self):
        requests, offers = _market(n_requests=30, n_offers=2)
        outcome = DecloudAuction().run(requests, offers)
        for offer in offers:
            matched = [
                m.request for m in outcome.matches if m.offer is offer
            ]
            for key in offer.resources:
                load = sum(
                    (r.duration / offer.span) * r.resources.get(key, 0.0)
                    for r in matched
                )
                assert load <= offer.resources[key] + 1e-6


class TestConfigVariants:
    def test_benchmark_at_least_as_many_trades(self):
        requests, offers = _market(n_requests=16, n_offers=4)
        truthful = DecloudAuction().run(requests, offers)
        benchmark = DecloudAuction(AuctionConfig.benchmark()).run(
            requests, offers
        )
        assert benchmark.num_trades >= truthful.num_trades

    def test_mini_auctions_off_still_clears(self):
        requests, offers = _market(n_requests=8)
        config = AuctionConfig(enable_mini_auctions=False)
        outcome = DecloudAuction(config).run(requests, offers)
        assert outcome.num_trades >= 0  # functional, possibly fewer trades

    def test_breadth_one(self):
        requests, offers = _market()
        config = AuctionConfig(cluster_breadth=1)
        outcome = DecloudAuction(config).run(requests, offers)
        assert outcome.num_trades >= 1
