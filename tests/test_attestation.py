"""Unit tests for the simulated TEE attestation layer."""

import dataclasses

import pytest

from repro.common.errors import ProtocolError
from repro.core.outcome import Match
from repro.protocol.attestation import (
    AttestationRegistry,
    AttestationService,
    enforce_attestation,
)
from tests.conftest import make_offer, make_request

MEASUREMENT = "sha256:decloud-runtime-v1"


@pytest.fixture
def service():
    return AttestationService()


@pytest.fixture
def registry(service):
    return AttestationRegistry(service=service)


class TestQuotes:
    def test_issue_and_verify(self, service):
        quote = service.issue_quote("prov-1", MEASUREMENT, now=10.0)
        assert service.verify_quote(quote)

    def test_wrong_measurement_rejected(self, service):
        quote = service.issue_quote("prov-1", MEASUREMENT, now=10.0)
        assert not service.verify_quote(
            quote, expected_measurement="sha256:other"
        )

    def test_stale_quote_rejected(self, service):
        quote = service.issue_quote("prov-1", MEASUREMENT, now=0.0)
        assert not service.verify_quote(quote, now=100.0)
        assert service.verify_quote(quote, now=10.0)

    def test_forged_quote_rejected(self, service):
        quote = service.issue_quote("prov-1", MEASUREMENT, now=10.0)
        forged = dataclasses.replace(quote, provider_id="mallory")
        assert not service.verify_quote(forged)

    def test_foreign_root_rejected(self, service):
        rogue = AttestationService(
            keypair=None  # fresh deterministic root from seed
        )
        # Re-seed a different root by constructing around another keypair.
        from repro.cryptosim import schnorr

        rogue.keypair = schnorr.KeyPair.generate(seed=b"rogue-root")
        quote = rogue.issue_quote("prov-1", MEASUREMENT, now=1.0)
        assert not service.verify_quote(quote)


class TestRegistry:
    def test_present_and_check(self, service, registry):
        registry.present(service.issue_quote("prov-1", MEASUREMENT, now=1.0))
        assert registry.is_attested("prov-1")
        assert not registry.is_attested("prov-2")

    def test_invalid_presentation_rejected(self, service, registry):
        quote = service.issue_quote("prov-1", MEASUREMENT, now=1.0)
        forged = dataclasses.replace(quote, enclave_measurement="evil")
        with pytest.raises(ProtocolError):
            registry.present(forged)

    def test_measurement_pinning(self, service, registry):
        registry.present(service.issue_quote("prov-1", "sha256:old", now=1.0))
        assert not registry.is_attested(
            "prov-1", expected_measurement=MEASUREMENT
        )


class TestEnforcement:
    def _match(self, with_sgx, provider_id="prov-1"):
        resources = {"cpu": 2, "ram": 4}
        if with_sgx:
            resources["sgx"] = 1.0
        request = make_request(resources=resources)
        offer = make_offer(
            provider_id=provider_id,
            resources={"cpu": 8, "ram": 16, "sgx": 1.0},
        )
        return Match(request=request, offer=offer, payment=0.1, unit_price=0.1)

    def test_sgx_match_without_quote_flagged(self, registry):
        violations = enforce_attestation([self._match(True)], registry)
        assert len(violations) == 1

    def test_sgx_match_with_quote_passes(self, service, registry):
        registry.present(service.issue_quote("prov-1", MEASUREMENT, now=1.0))
        violations = enforce_attestation([self._match(True)], registry)
        assert violations == []

    def test_non_sgx_match_ignores_attestation(self, registry):
        violations = enforce_attestation([self._match(False)], registry)
        assert violations == []

    def test_measurement_mismatch_flagged(self, service, registry):
        registry.present(
            service.issue_quote("prov-1", "sha256:old", now=1.0)
        )
        violations = enforce_attestation(
            [self._match(True)],
            registry,
            expected_measurement=MEASUREMENT,
        )
        assert len(violations) == 1
