"""Smoke tests for every experiment harness (fast parameterizations)."""

import numpy as np
import pytest

from repro.experiments import (
    ablations,
    fig5a,
    fig5b,
    fig5c,
    fig5d,
    fig5e,
    fig5f,
    mechanism_micro,
    runner,
)
from repro.experiments.common import FigureResult, format_table
from repro.experiments.sweeps import (
    run_similarity_sweep,
    run_size_sweep,
)

SIZES = (25, 50)
SEEDS = range(2)
SIMS = (0.3, 0.9)


@pytest.fixture(scope="module")
def size_points():
    return run_size_sweep(sizes=SIZES, seeds=SEEDS)


@pytest.fixture(scope="module")
def similarity_points():
    return run_similarity_sweep(similarities=SIMS, seeds=SEEDS)


class TestSweeps:
    def test_size_sweep_shape(self, size_points):
        assert len(size_points) == len(SIZES) * 2
        for point in size_points:
            assert point.n_offers == point.n_requests // 2

    def test_similarity_sweep_shape(self, similarity_points):
        # 2 sims x 2 flexibilities x 2 seeds
        assert len(similarity_points) == 8

    def test_sweep_deterministic(self, size_points):
        again = run_size_sweep(sizes=SIZES, seeds=SEEDS)
        assert [p.metrics.decloud_welfare for p in again] == [
            p.metrics.decloud_welfare for p in size_points
        ]


class TestFigureHarnesses:
    def test_fig5a(self, size_points):
        result = fig5a.run(sizes=SIZES, seeds=SEEDS, points=size_points)
        assert result.figure == "5a"
        assert len(result.rows) == len(size_points)
        assert all(
            row["decloud_welfare"] <= row["benchmark_welfare"] * 1.1 + 1e-9
            for row in result.rows
        )

    def test_fig5b(self, size_points):
        result = fig5b.run(sizes=SIZES, seeds=SEEDS, points=size_points)
        ratios = result.column("welfare_ratio")
        assert all(0.0 <= r <= 1.2 for r in ratios)
        assert result.notes

    def test_fig5c(self, size_points):
        result = fig5c.run(sizes=SIZES, seeds=SEEDS, points=size_points)
        assert all(0.0 <= row["reduced_pct"] <= 100.0 for row in result.rows)

    def test_fig5d(self, similarity_points):
        result = fig5d.run(
            similarities=SIMS, seeds=SEEDS, points=similarity_points
        )
        assert {row["flexibility"] for row in result.rows} == {1.0, 0.8}

    def test_fig5e(self):
        result = fig5e.run(similarities=(0.9,), seeds=range(1))
        assert {row["flexibility"] for row in result.rows} == set(
            fig5e.FLEXIBILITIES
        )

    def test_fig5f(self, similarity_points):
        result = fig5f.run(
            similarities=SIMS, seeds=SEEDS, points=similarity_points
        )
        assert all(row["welfare"] >= 0.0 for row in result.rows)

    def test_ablations(self):
        result = ablations.run(sizes=(25,), seeds=range(1))
        variants = {row["variant"] for row in result.rows}
        assert "full mechanism" in variants
        assert "no mini-auctions" in variants
        assert "no randomization" in variants

    def test_mechanism_micro(self):
        result = mechanism_micro.run(market_sizes=(4, 8), seeds=range(4))
        sbba_rows = [r for r in result.rows if r["mechanism"] == "sbba"]
        assert all(
            abs(r["mean_budget_surplus"]) < 1e-9 for r in sbba_rows
        )


class TestCommon:
    def test_format_table_alignment(self):
        table = format_table(["a", "bee"], [{"a": 1, "bee": 2.5}], title="T")
        lines = table.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "bee" in lines[1]
        assert "2.5000" in lines[3]

    def test_figure_result_column(self):
        result = FigureResult(
            figure="x", title="t", columns=["v"], rows=[{"v": 1}, {"v": 2}]
        )
        assert result.column("v") == [1, 2]

    def test_empty_table(self):
        assert "a" in format_table(["a"], [])


class TestRunner:
    def test_runner_single_fig(self, capsys):
        assert runner.main(["fig5c", "--fast"]) == 0
        out = capsys.readouterr().out
        assert "Fig 5c" in out

    def test_runner_mechanisms(self, capsys):
        assert runner.main(["mechanisms", "--fast"]) == 0
        assert "McAfee" in capsys.readouterr().out

    def test_runner_rejects_unknown(self):
        with pytest.raises(SystemExit):
            runner.main(["figXX"])
