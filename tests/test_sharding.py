"""Unit tests for the sharded market fabric (:mod:`repro.core.sharding`)
and the shared-pool machinery in :mod:`repro.core.parallel`.

The differential suite (``tests/differential/test_sharding_equivalence``)
owns the bit-identity contracts; this file covers the plumbing: plan
validation, partition rules, fallback routing, spillover ablation, lazy
pool creation, lease nesting, and the ``shard_*`` metric series.
"""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.common.errors import ValidationError
from repro.core import parallel as parallel_mod
from repro.core.auction import DecloudAuction
from repro.core.config import AuctionConfig, ShardPlan
from repro.core.parallel import PoolLease, shared_pool
from repro.core.sharding import (
    FALLBACK_SHARD,
    derive_shard_evidence,
    partition_block,
    shard_config,
    shard_key,
)
from repro.market.location import GeoLocation, NetworkLocation, grid_cell
from repro.obs import Observability
from repro.workloads.generators import generate_zone_market
from tests.conftest import make_offer, make_request

EVIDENCE = b"sharding-unit-evidence"


# ---------------------------------------------------------------- plans


def test_shard_plan_rejects_bad_kind():
    with pytest.raises(ValidationError):
        ShardPlan(kind="postal")


def test_shard_plan_rejects_bad_depth_and_workers():
    with pytest.raises(ValidationError):
        ShardPlan(depth=0)
    with pytest.raises(ValidationError):
        ShardPlan(shard_workers=-1)


def test_shard_plan_rejects_out_of_range_cell():
    with pytest.raises(ValidationError):
        ShardPlan(kind="geo", cell_deg=0.0)
    with pytest.raises(ValidationError):
        ShardPlan(kind="geo", cell_deg=400.0)


def test_config_rejects_non_plan_sharding():
    with pytest.raises(ValidationError):
        AuctionConfig(sharding="network")  # type: ignore[arg-type]


# --------------------------------------------------------- shard_key


def test_shard_key_network_parses_tag_as_zone_path():
    plan = ShardPlan(kind="network", depth=1)
    assert shard_key("zone-3/cell-1", plan) == "zone:zone-3"
    assert shard_key("zone-3/cell-2", plan) == "zone:zone-3"
    deeper = ShardPlan(kind="network", depth=2)
    assert shard_key("zone-3/cell-1", deeper) == "zone:zone-3/cell-1"


def test_shard_key_network_uses_locations_map_when_given():
    plan = ShardPlan(
        kind="network",
        locations={"tag-a": NetworkLocation("east/rack-9")},
    )
    assert shard_key("tag-a", plan) == "zone:east"
    # tags absent from the map (or mapped to the wrong type) fall back
    assert shard_key("tag-b", plan) == FALLBACK_SHARD
    wrong = ShardPlan(kind="network", locations={"tag-a": object()})
    assert shard_key("tag-a", wrong) == FALLBACK_SHARD


def test_shard_key_geo_buckets_by_grid_cell():
    loc = GeoLocation(latitude=48.2, longitude=16.4)
    plan = ShardPlan(kind="geo", cell_deg=15.0, locations={"vienna": loc})
    row, col = grid_cell(loc, 15.0)
    assert shard_key("vienna", plan) == f"cell:{row}:{col}"
    assert shard_key("atlantis", plan) == FALLBACK_SHARD


def test_shard_key_unresolvable_goes_to_fallback():
    plan = ShardPlan(kind="network")
    assert shard_key(None, plan) == FALLBACK_SHARD
    assert shard_key("", plan) == FALLBACK_SHARD
    assert shard_key("///", plan) == FALLBACK_SHARD


# ----------------------------------------------------- partition_block


def test_partition_sorted_with_fallback_last_and_order_preserved():
    requests = [
        make_request("r0", location="zone-2/cell-0"),
        make_request("r1", location=None),
        make_request("r2", location="zone-1/cell-0"),
        make_request("r3", location="zone-2/cell-1"),
    ]
    offers = [
        make_offer("o0", location="zone-1/cell-3"),
        make_offer("o1", location="///"),
    ]
    shards = partition_block(requests, offers, ShardPlan(kind="network"))
    assert [s.key for s in shards] == [
        "zone:zone-1", "zone:zone-2", FALLBACK_SHARD,
    ]
    by_key = {s.key: s for s in shards}
    assert [r.request_id for r in by_key["zone:zone-2"].requests] == [
        "r0", "r3",
    ]
    assert [r.request_id for r in by_key[FALLBACK_SHARD].requests] == ["r1"]
    assert [o.offer_id for o in by_key[FALLBACK_SHARD].offers] == ["o1"]
    total = sum(s.n_bids for s in shards)
    assert total == len(requests) + len(offers)


def test_partition_empty_block():
    assert partition_block([], [], ShardPlan()) == []


def test_derive_shard_evidence_is_key_scoped():
    a = derive_shard_evidence(EVIDENCE, "zone:zone-1")
    b = derive_shard_evidence(EVIDENCE, "zone:zone-2")
    assert a != b
    assert a.startswith(EVIDENCE)


def test_shard_config_strips_and_clamps():
    config = AuctionConfig(
        sharding=ShardPlan(), miniauction_workers=6
    )
    sub = shard_config(config)
    assert sub.sharding is None
    assert sub.candidates is None
    assert sub.miniauction_workers == 1
    assert shard_config(replace(config, miniauction_workers=0)).miniauction_workers == 0


# ------------------------------------------------------------ fabric


def _network_market(**kwargs):
    defaults = dict(
        n_zones=4, seed=7, kind="network", locality="strong",
        cross_zone_fraction=0.25,
    )
    defaults.update(kwargs)
    requests, offers, _ = generate_zone_market(60, **defaults)
    return requests, offers


def test_spillover_off_leaves_survivors_unmatched():
    requests, offers = _network_market()
    plan = ShardPlan(kind="network", spillover=False)
    auction = DecloudAuction(AuctionConfig(sharding=plan))
    outcome = auction.run(requests, offers, evidence=EVIDENCE)
    stats = auction.last_shard_stats
    assert not stats["spillover_ran"]
    assert stats["spillover_trades"] == 0
    assert len(outcome.unmatched_requests) == stats["spillover_requests"]
    assert len(outcome.unmatched_offers) == stats["spillover_offers"]


def test_one_sided_shards_feed_the_spillover_pool():
    # zone-a holds only requests, zone-b only offers: neither can clear
    # locally, so every bid must surface in the spillover pool.
    requests = [
        make_request(f"r{i}", location="zone-a/x", bid=50.0)
        for i in range(3)
    ]
    offers = [
        make_offer(f"o{i}", location="zone-b/x", bid=1.0) for i in range(3)
    ]
    plan = ShardPlan(kind="network")
    auction = DecloudAuction(AuctionConfig(sharding=plan))
    auction.run(requests, offers, evidence=EVIDENCE)
    stats = auction.last_shard_stats
    assert stats["shards"] == 2
    assert stats["cleared_shards"] == 0
    assert stats["spillover_requests"] == 3
    assert stats["spillover_offers"] == 3
    assert stats["spillover_ran"]


def test_empty_block_clears_to_empty_outcome():
    auction = DecloudAuction(AuctionConfig(sharding=ShardPlan()))
    outcome = auction.run([], [], evidence=EVIDENCE)
    assert not outcome.matches
    assert auction.last_shard_stats["degenerate"]


def test_fallback_bids_counted_in_stats():
    requests, offers = _network_market()
    requests = requests + [make_request("r-lost", location=None)]
    auction = DecloudAuction(AuctionConfig(sharding=ShardPlan(kind="network")))
    auction.run(requests, offers, evidence=EVIDENCE)
    assert auction.last_shard_stats["fallback_bids"] == 1
    assert auction.last_shard_stats["shard_keys"][-1] == FALLBACK_SHARD


# -------------------------------------------------- pools and leases


class _CountingPool:
    """Stand-in executor: counts spawns, maps in-process."""

    spawned = 0

    def __init__(self, max_workers=None):
        type(self).spawned += 1
        self.max_workers = max_workers

    def map(self, fn, iterable):
        return [fn(item) for item in iterable]

    def shutdown(self, wait=True):
        pass


@pytest.fixture
def counting_pool(monkeypatch):
    _CountingPool.spawned = 0
    monkeypatch.setattr(parallel_mod, "ProcessPoolExecutor", _CountingPool)
    return _CountingPool


def test_no_pool_spawned_without_a_multi_auction_wave(counting_pool):
    # One request, one offer -> a single mini-auction -> every wave is
    # width one -> the executor must never be created.
    requests = [make_request("r0", bid=50.0)]
    offers = [make_offer("o0", bid=1.0)]
    config = AuctionConfig(miniauction_workers=4)
    DecloudAuction(config).run(requests, offers, evidence=EVIDENCE)
    assert counting_pool.spawned == 0


def _banded_market(n_bands=4):
    """Price-incompatible disjoint clusters -> one wave of width n.

    Band ``k`` trades its own resource type at prices around
    ``10**(2k)``: each band's used cost exceeds the previous band's
    winning valuation, so no two clusters are price-compatible and
    every band becomes its own mini-auction with disjoint participants.
    """
    from repro.common.timewindow import TimeWindow

    requests, offers = [], []
    for k in range(n_bands):
        t = f"band-{k}"
        requests.append(
            make_request(
                f"r{k}", resources={t: 1.0}, significance={t: 1.0},
                bid=5.0 * 10.0 ** (2 * k), duration=1.0,
                window=TimeWindow(0, 3),
            )
        )
        offers.append(
            make_offer(f"o{k}", resources={t: 1.0}, bid=24.0 * 10.0 ** (2 * k))
        )
    return requests, offers


def test_pool_spawned_once_and_reused_across_waves(counting_pool):
    # Four price-incompatible bands -> four participant-disjoint
    # mini-auctions in one wave; the lease must spawn exactly one
    # executor for the whole block.
    requests, offers = _banded_market()
    config = AuctionConfig(miniauction_workers=4)
    DecloudAuction(config).run(requests, offers, evidence=EVIDENCE)
    assert counting_pool.spawned == 1


def test_shard_fanout_skips_pool_for_single_runnable_shard(counting_pool):
    requests, offers, _ = generate_zone_market(
        12, n_zones=1, seed=3, kind="network", locality="weak"
    )
    # Force a non-degenerate partition with exactly one *runnable*
    # shard: a second shard holding only offers.
    offers = offers + [make_offer("o-far", location="zone-far/x")]
    plan = ShardPlan(kind="network", shard_workers=4)
    auction = DecloudAuction(AuctionConfig(sharding=plan))
    auction.run(requests, offers, evidence=EVIDENCE)
    assert auction.last_shard_stats["cleared_shards"] == 1
    assert counting_pool.spawned == 0


def test_shard_fanout_and_spillover_share_one_lease(counting_pool):
    requests, offers = _network_market()
    plan = ShardPlan(kind="network", shard_workers=3)
    config = AuctionConfig(sharding=plan, miniauction_workers=3)
    DecloudAuction(config).run(requests, offers, evidence=EVIDENCE)
    # The shard fan-out spawns the pool; the spillover round's waves
    # (running in-parent under the same lease) must reuse it.
    assert counting_pool.spawned <= 1


def test_shared_pool_nests_onto_the_outermost_lease():
    with shared_pool(4) as outer:
        with shared_pool(2) as inner:
            assert inner is outer
            assert inner.max_workers == 4
        # inner exit must not close the outer lease
        assert parallel_mod._CURRENT_LEASE is outer
    assert parallel_mod._CURRENT_LEASE is None


def test_pool_lease_fail_stops_retries(counting_pool):
    lease = PoolLease(2)
    assert lease.get() is not None
    lease.fail()
    assert lease.get() is None
    assert counting_pool.spawned == 1


# ------------------------------------------------------------ metrics


def test_shard_metrics_recorded():
    requests, offers = _network_market()
    obs = Observability("shard-metrics")
    auction = DecloudAuction(AuctionConfig(sharding=ShardPlan(kind="network")))
    auction.run(requests, offers, evidence=EVIDENCE, obs=obs)
    snap = obs.registry.snapshot()
    stats = auction.last_shard_stats
    assert snap["counters"]["shard_blocks_total"] == 1
    assert snap["counters"]["shard_shards_total"] == stats["cleared_shards"]
    assert snap["gauges"]["shard_last_shards"] == stats["shards"]
    assert (
        snap["gauges"]["shard_last_spillover_bids{side=request}"]
        == stats["spillover_requests"]
    )
    assert (
        snap["gauges"]["shard_last_spillover_trades"]
        == stats["spillover_trades"]
    )
    hist = snap["histograms"]["shard_clear_seconds"]
    assert hist["count"] == stats["cleared_shards"]
    assert any(
        name.startswith("shard_phase_seconds") for name in snap["histograms"]
    )
    # the round series mirror the global path
    assert snap["counters"]["auction_rounds_total"] == 1


def test_degenerate_run_records_plain_round_metrics():
    requests, offers, _ = generate_zone_market(
        10, n_zones=1, seed=5, kind="network", locality="weak"
    )
    obs = Observability("shard-degenerate")
    auction = DecloudAuction(AuctionConfig(sharding=ShardPlan(kind="network")))
    auction.run(requests, offers, evidence=EVIDENCE, obs=obs)
    snap = obs.registry.snapshot()
    assert snap["counters"]["auction_rounds_total"] == 1
    assert "shard_blocks_total" not in snap["counters"]
