"""Unit tests for the token/escrow settlement layer."""

import pytest

from repro.common.errors import ContractError
from repro.core.outcome import Match
from repro.protocol.settlement import (
    EscrowState,
    SettlementProcessor,
    TokenLedger,
)
from tests.conftest import make_offer, make_request


class TestTokenLedger:
    def test_mint_and_balance(self):
        ledger = TokenLedger()
        ledger.mint("alice", 10.0)
        assert ledger.balance("alice") == 10.0
        assert ledger.balance("bob") == 0.0

    def test_negative_mint_rejected(self):
        with pytest.raises(ContractError):
            TokenLedger().mint("a", -1.0)

    def test_transfer(self):
        ledger = TokenLedger()
        ledger.mint("alice", 10.0)
        ledger.transfer("alice", "bob", 4.0)
        assert ledger.balance("alice") == 6.0
        assert ledger.balance("bob") == 4.0

    def test_overdraft_rejected(self):
        ledger = TokenLedger()
        ledger.mint("alice", 1.0)
        with pytest.raises(ContractError):
            ledger.transfer("alice", "bob", 2.0)

    def test_negative_transfer_rejected(self):
        ledger = TokenLedger()
        ledger.mint("alice", 1.0)
        with pytest.raises(ContractError):
            ledger.transfer("alice", "bob", -0.5)


class TestEscrowLifecycle:
    def _funded(self):
        ledger = TokenLedger()
        ledger.mint("client", 10.0)
        return ledger

    def test_open_locks_funds(self):
        ledger = self._funded()
        escrow_id = ledger.open_escrow("client", "provider", 4.0)
        assert ledger.balance("client") == 6.0
        assert ledger.balance("provider") == 0.0
        assert ledger.escrows[escrow_id].state is EscrowState.HELD

    def test_release_pays_provider(self):
        ledger = self._funded()
        escrow_id = ledger.open_escrow("client", "provider", 4.0)
        ledger.release(escrow_id)
        assert ledger.balance("provider") == 4.0
        assert ledger.escrows[escrow_id].state is EscrowState.RELEASED

    def test_refund_returns_to_client(self):
        ledger = self._funded()
        escrow_id = ledger.open_escrow("client", "provider", 4.0)
        ledger.refund(escrow_id)
        assert ledger.balance("client") == 10.0
        assert ledger.balance("provider") == 0.0

    def test_double_release_rejected(self):
        ledger = self._funded()
        escrow_id = ledger.open_escrow("client", "provider", 4.0)
        ledger.release(escrow_id)
        with pytest.raises(ContractError):
            ledger.release(escrow_id)
        with pytest.raises(ContractError):
            ledger.refund(escrow_id)

    def test_unfunded_escrow_rejected(self):
        ledger = TokenLedger()
        with pytest.raises(ContractError):
            ledger.open_escrow("poor", "provider", 1.0)

    def test_unknown_escrow_rejected(self):
        with pytest.raises(ContractError):
            TokenLedger().release("esc-999999")

    def test_supply_conserved(self):
        ledger = self._funded()
        initial = ledger.total_supply()
        a = ledger.open_escrow("client", "provider", 3.0)
        assert ledger.total_supply() == pytest.approx(initial)
        ledger.release(a)
        assert ledger.total_supply() == pytest.approx(initial)
        b = ledger.open_escrow("client", "provider", 2.0)
        ledger.refund(b)
        assert ledger.total_supply() == pytest.approx(initial)

    def test_held_for(self):
        ledger = self._funded()
        ledger.open_escrow("client", "provider", 1.0)
        ledger.open_escrow("client", "other", 1.0)
        assert len(ledger.held_for("provider")) == 1


class TestSettlementProcessor:
    def _matches(self):
        request = make_request(request_id="r1", client_id="c1", bid=3.0)
        offer = make_offer(offer_id="o1", provider_id="p1", bid=1.0)
        return [Match(request=request, offer=offer, payment=2.0, unit_price=0.5)]

    def test_settle_block_auto_fund(self):
        ledger = TokenLedger()
        processor = SettlementProcessor(ledger=ledger)
        escrow_ids = processor.settle_block(self._matches(), auto_fund=True)
        assert ledger.balance("c1") == 0.0
        processor.complete(escrow_ids["r1"])
        assert ledger.balance("p1") == 2.0

    def test_settle_block_requires_funds(self):
        ledger = TokenLedger()
        processor = SettlementProcessor(ledger=ledger)
        with pytest.raises(ContractError):
            processor.settle_block(self._matches(), auto_fund=False)

    def test_default_refunds(self):
        ledger = TokenLedger()
        processor = SettlementProcessor(ledger=ledger)
        escrow_ids = processor.settle_block(self._matches(), auto_fund=True)
        processor.default(escrow_ids["r1"])
        assert ledger.balance("c1") == 2.0
        assert ledger.balance("p1") == 0.0

    def test_duplicate_block_hash_is_idempotent(self):
        ledger = TokenLedger()
        processor = SettlementProcessor(ledger=ledger)
        first = processor.settle_block(
            self._matches(), auto_fund=True, block_hash="b1"
        )
        again = processor.settle_block(
            self._matches(), auto_fund=True, block_hash="b1"
        )
        assert again == first
        assert len(ledger.escrows) == 1


class TestSettlementObservability:
    def _matches(self):
        request = make_request(request_id="r1", client_id="c1", bid=3.0)
        offer = make_offer(offer_id="o1", provider_id="p1", bid=1.0)
        return [Match(request=request, offer=offer, payment=2.0, unit_price=0.5)]

    def test_settlement_outcomes_reach_registry(self):
        from repro.obs import Observability

        obs = Observability("settle")
        processor = SettlementProcessor(ledger=TokenLedger(), obs=obs)
        escrow_ids = processor.settle_block(
            self._matches(), auto_fund=True, block_hash="b1"
        )
        processor.settle_block(
            self._matches(), auto_fund=True, block_hash="b1"
        )
        processor.complete(escrow_ids["r1"])
        reg = obs.registry
        assert reg.counter_value("settlement_blocks_total") == 1.0
        assert reg.counter_value("settlement_duplicate_blocks_total") == 1.0
        assert reg.counter_value(
            "settlement_escrows_total", outcome="opened"
        ) == 1.0
        assert reg.counter_value(
            "settlement_value_total", outcome="opened"
        ) == 2.0
        assert reg.counter_value(
            "settlement_escrows_total", outcome="released"
        ) == 1.0
        assert reg.counter_value(
            "settlement_value_total", outcome="released"
        ) == 2.0

    def test_default_counts_refund(self):
        from repro.obs import Observability

        obs = Observability("settle-default")
        processor = SettlementProcessor(ledger=TokenLedger(), obs=obs)
        escrow_ids = processor.settle_block(self._matches(), auto_fund=True)
        processor.default(escrow_ids["r1"])
        assert obs.registry.counter_value(
            "settlement_escrows_total", outcome="refunded"
        ) == 1.0
        assert obs.registry.counter_value(
            "settlement_value_total", outcome="refunded"
        ) == 2.0
