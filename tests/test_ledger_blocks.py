"""Unit tests for transactions, blocks, chain, and mempool."""

import dataclasses

import pytest

from repro.common.errors import InvalidBlockError, SignatureError
from repro.cryptosim import schnorr, symmetric
from repro.ledger import pow as pow_mod
from repro.ledger.block import GENESIS_PARENT, Block, BlockBody, BlockPreamble
from repro.ledger.chain import Blockchain
from repro.ledger.mempool import Mempool
from repro.ledger.miner import make_sealed_bid
from repro.ledger.transaction import SealedBidTransaction


def _tx(sender="alice", plaintext=b"bid-data", seed=b"k"):
    keypair = schnorr.KeyPair.generate(seed=seed)
    tx, reveal = make_sealed_bid(
        sender_id=sender,
        keypair=keypair,
        plaintext=plaintext,
        temp_key=symmetric.generate_key(seed=b"t" + seed),
        nonce=b"n" * 16,
    )
    return tx, reveal


def _mined_preamble(txs, height=0, parent=GENESIS_PARENT, bits=8):
    preamble = BlockPreamble(
        height=height, parent_hash=parent, transactions=tuple(txs), timestamp=0.0
    )
    nonce = pow_mod.solve(preamble.pow_payload(), bits)
    return preamble.with_nonce(nonce)


def _signed_body(preamble, miner_seed=b"m", allocation=None):
    keypair = schnorr.KeyPair.generate(seed=miner_seed)
    body = BlockBody(
        reveals=(),
        allocation=allocation or {"matches": []},
        miner_id="miner-x",
        miner_public=keypair.public,
    )
    return body.signed_by(keypair, preamble.hash())


class TestTransaction:
    def test_valid_signature(self):
        tx, _ = _tx()
        assert tx.verify_signature()

    def test_txid_stable_and_distinct(self):
        tx, _ = _tx()
        assert tx.txid() == tx.txid()
        other, _ = _tx(sender="bob", seed=b"k2")
        assert tx.txid() != other.txid()

    def test_tampered_sender_fails(self):
        tx, _ = _tx()
        bad = dataclasses.replace(tx, sender_id="mallory")
        assert not bad.verify_signature()

    def test_tampered_box_fails(self):
        tx, _ = _tx()
        bad_box = symmetric.SealedBox(
            nonce=tx.box.nonce,
            ciphertext=b"\x00" + tx.box.ciphertext[1:],
            tag=tx.box.tag,
        )
        bad = dataclasses.replace(tx, box=bad_box)
        assert not bad.verify_signature()

    def test_require_valid_raises(self):
        tx, _ = _tx()
        bad = dataclasses.replace(tx, sender_id="mallory")
        with pytest.raises(SignatureError):
            bad.require_valid()


class TestPreamble:
    def test_hash_includes_nonce(self):
        preamble = _mined_preamble([])
        assert preamble.hash() != preamble.with_nonce(
            preamble.pow_nonce + 1
        ).hash()

    def test_check_pow(self):
        preamble = _mined_preamble([], bits=10)
        assert preamble.check_pow(10)

    def test_evidence_matches_hash(self):
        preamble = _mined_preamble([])
        assert preamble.evidence().hex() == preamble.hash()

    def test_pow_payload_covers_transactions(self):
        tx, _ = _tx()
        with_tx = BlockPreamble(0, GENESIS_PARENT, (tx,), 0.0)
        without = BlockPreamble(0, GENESIS_PARENT, (), 0.0)
        assert with_tx.pow_payload() != without.pow_payload()


class TestBody:
    def test_signature_roundtrip(self):
        preamble = _mined_preamble([])
        body = _signed_body(preamble)
        assert body.verify_signature(preamble.hash())

    def test_allocation_tamper_detected(self):
        preamble = _mined_preamble([])
        body = _signed_body(preamble)
        bad = dataclasses.replace(body, allocation={"matches": ["fake"]})
        assert not bad.verify_signature(preamble.hash())

    def test_block_hash_changes_with_body(self):
        preamble = _mined_preamble([])
        a = Block(preamble=preamble, body=_signed_body(preamble))
        b = Block(
            preamble=preamble,
            body=_signed_body(preamble, allocation={"matches": [1]}),
        )
        assert a.hash() != b.hash()

    def test_require_complete_raises_without_body(self):
        preamble = _mined_preamble([])
        with pytest.raises(InvalidBlockError):
            Block(preamble=preamble).require_complete()


class TestBlockchain:
    def _block(self, chain, allocation=None):
        preamble = _mined_preamble(
            [], height=chain.next_height, parent=chain.tip_hash,
            bits=chain.difficulty_bits,
        )
        return Block(preamble=preamble, body=_signed_body(preamble, allocation=allocation))

    def test_append_and_linkage(self):
        chain = Blockchain(difficulty_bits=8)
        for i in range(3):
            chain.append(self._block(chain, allocation={"round": i}))
        assert len(chain) == 3
        assert chain.verify_linkage()

    def test_wrong_height_rejected(self):
        chain = Blockchain(difficulty_bits=8)
        block = self._block(chain)
        chain.append(block)
        with pytest.raises(InvalidBlockError):
            chain.append(block)  # same height again

    def test_wrong_parent_rejected(self):
        chain = Blockchain(difficulty_bits=8)
        chain.append(self._block(chain))
        preamble = _mined_preamble([], height=1, parent="ff" * 32, bits=8)
        bad = Block(preamble=preamble, body=_signed_body(preamble))
        with pytest.raises(InvalidBlockError):
            chain.append(bad)

    def test_bad_pow_rejected(self):
        chain = Blockchain(difficulty_bits=20)
        preamble = BlockPreamble(0, GENESIS_PARENT, (), 0.0)  # unmined
        bad = Block(preamble=preamble, body=_signed_body(preamble))
        if preamble.check_pow(20):  # pragma: no cover - astronomically rare
            pytest.skip("nonce 0 accidentally valid")
        with pytest.raises(InvalidBlockError):
            chain.append(bad)

    def test_bad_miner_signature_rejected(self):
        chain = Blockchain(difficulty_bits=8)
        preamble = _mined_preamble([], bits=8)
        body = _signed_body(preamble)
        bad = Block(
            preamble=preamble,
            body=dataclasses.replace(body, allocation={"forged": True}),
        )
        with pytest.raises(InvalidBlockError):
            chain.append(bad)

    def test_find_block(self):
        chain = Blockchain(difficulty_bits=8)
        block = self._block(chain)
        chain.append(block)
        assert chain.find_block(block.hash()) is block
        assert chain.find_block("00" * 32) is None

    def test_tip_of_empty_chain(self):
        chain = Blockchain()
        assert chain.tip is None
        assert chain.tip_hash == GENESIS_PARENT


class TestMempool:
    def test_submit_and_drain(self):
        pool = Mempool()
        tx, _ = _tx()
        txid = pool.submit(tx)
        assert txid in pool
        assert pool.drain(10) == [tx]
        assert len(pool) == 0

    def test_idempotent_submission(self):
        pool = Mempool()
        tx, _ = _tx()
        pool.submit(tx)
        pool.submit(tx)
        assert len(pool) == 1

    def test_fifo_order(self):
        pool = Mempool()
        txs = [_tx(sender=f"s{i}", seed=bytes([i]))[0] for i in range(5)]
        for tx in txs:
            pool.submit(tx)
        assert pool.drain(5) == txs

    def test_peek_does_not_remove(self):
        pool = Mempool()
        tx, _ = _tx()
        pool.submit(tx)
        assert pool.peek(1) == [tx]
        assert len(pool) == 1

    def test_limit_respected(self):
        pool = Mempool()
        for i in range(5):
            pool.submit(_tx(sender=f"s{i}", seed=bytes([i]))[0])
        assert len(pool.drain(3)) == 3
        assert len(pool) == 2

    def test_invalid_signature_rejected(self):
        pool = Mempool()
        tx, _ = _tx()
        bad = dataclasses.replace(tx, sender_id="mallory")
        with pytest.raises(SignatureError):
            pool.submit(bad)
