"""Unit tests for capacity tracking and greedy in-cluster allocation."""

import math

import pytest

from repro.core.cluster_allocation import (
    OfferCapacity,
    allocate_cluster,
    greedy_fit,
    sorted_offers,
    sorted_requests,
)
from repro.core.clustering import Cluster
from repro.core.config import AuctionConfig
from repro.core.normalization import compute_economics
from repro.common.timewindow import TimeWindow
from tests.conftest import make_offer, make_request

CONFIG = AuctionConfig()


def _cluster_for(requests, offers):
    return Cluster(
        offer_ids=frozenset(o.offer_id for o in offers),
        request_ids={r.request_id for r in requests},
    )


class TestOfferCapacity:
    def test_time_weighted_consumption(self):
        offer = make_offer(resources={"cpu": 8}, window=None)  # span 24
        capacity = OfferCapacity([offer])
        request = make_request(resources={"cpu": 8}, duration=12, window=TimeWindow(0, 24))
        assert capacity.can_host(request, offer)
        capacity.consume(request, offer)
        # 12/24 * 8 = 4 consumed; 4 left.
        assert capacity.remaining(offer.offer_id)["cpu"] == pytest.approx(4.0)

    def test_rejects_when_depleted(self):
        offer = make_offer(resources={"cpu": 8})
        capacity = OfferCapacity([offer])
        full = make_request(request_id="full", resources={"cpu": 8}, duration=10,
                            )
        # 10/24*8 = 3.33 three times exceeds 8
        for i in range(2):
            assert capacity.can_host(full, offer)
            capacity.consume(full, offer)
        third = make_request(request_id="third", resources={"cpu": 8}, duration=10)
        assert not capacity.can_host(third, offer)

    def test_flexible_needs_less(self):
        offer = make_offer(resources={"cpu": 10})
        capacity = OfferCapacity([offer])
        # strict twin would need 24/24*10 = 10; flexible needs 8.
        flexible = make_request(
            resources={"cpu": 10},
            significance={"cpu": 0.5},
            flexibility=0.8,
            duration=10,
        )
        big = make_request(
            request_id="blocker", resources={"cpu": 10}, duration=20,
            window=TimeWindow(0, 24),
        )
        capacity.consume(big, offer)  # 20/24*10 = 8.33 -> 1.67 left
        assert not capacity.can_host(
            make_request(request_id="strict2", resources={"cpu": 10}, duration=10), offer
        )
        assert not capacity.can_host(flexible, offer)  # needs 10/24*8=3.33 > 1.67
        small = make_request(request_id="tiny", resources={"cpu": 1}, duration=2)
        assert capacity.can_host(small, offer)

    def test_restore_inverts_consume(self):
        offer = make_offer(resources={"cpu": 8, "ram": 32})
        capacity = OfferCapacity([offer])
        request = make_request(resources={"cpu": 4, "ram": 8}, duration=12, window=TimeWindow(0, 24))
        before = capacity.remaining(offer.offer_id)
        capacity.consume(request, offer)
        capacity.restore(offer, request)
        assert capacity.remaining(offer.offer_id) == before

    def test_unknown_offer_cannot_host(self):
        capacity = OfferCapacity([])
        assert not capacity.can_host(make_request(), make_offer())


class TestSortedOrders:
    def test_requests_descending_value(self):
        requests = [
            make_request(request_id="lo", bid=1.0),
            make_request(request_id="hi", bid=5.0),
        ]
        offers = [make_offer()]
        economics = compute_economics(requests, offers, CONFIG)
        ordered = sorted_requests(requests, economics)
        assert [r.request_id for r in ordered] == ["hi", "lo"]

    def test_request_tie_breaks_by_time(self):
        requests = [
            make_request(request_id="late", bid=2.0, submit_time=5.0),
            make_request(request_id="early", bid=2.0, submit_time=1.0),
        ]
        offers = [make_offer()]
        economics = compute_economics(requests, offers, CONFIG)
        assert sorted_requests(requests, economics)[0].request_id == "early"

    def test_offers_ascending_cost(self):
        offers = [
            make_offer(offer_id="dear", bid=9.0),
            make_offer(offer_id="cheap", bid=1.0),
        ]
        requests = [make_request()]
        economics = compute_economics(requests, offers, CONFIG)
        ordered = sorted_offers(offers, economics)
        assert [o.offer_id for o in ordered] == ["cheap", "dear"]


class TestGreedyFit:
    def _setup(self, requests, offers):
        economics = compute_economics(requests, offers, CONFIG)
        return (
            sorted_requests(requests, economics),
            sorted_offers(offers, economics),
            economics,
            OfferCapacity(offers),
        )

    def test_cheapest_feasible_offer_wins(self):
        requests = [make_request(bid=5.0)]
        offers = [
            make_offer(offer_id="cheap", bid=1.0),
            make_offer(offer_id="dear", bid=5.0),
        ]
        rs, os_, eco, cap = self._setup(requests, offers)
        matches = greedy_fit(rs, os_, eco, cap, set())
        assert matches[0][1].offer_id == "cheap"

    def test_unprofitable_pair_skipped(self):
        requests = [make_request(bid=0.001, duration=1.0)]
        offers = [make_offer(bid=50.0)]
        rs, os_, eco, cap = self._setup(requests, offers)
        assert greedy_fit(rs, os_, eco, cap, set()) == []

    def test_taken_requests_skipped(self):
        requests = [make_request(request_id="r1", bid=5.0)]
        offers = [make_offer()]
        rs, os_, eco, cap = self._setup(requests, offers)
        assert greedy_fit(rs, os_, eco, cap, {"r1"}) == []

    def test_min_value_filter(self):
        requests = [make_request(bid=1.0, duration=4.0)]
        offers = [make_offer(bid=0.1)]
        rs, os_, eco, cap = self._setup(requests, offers)
        v_hat = eco.v_hat("req-0")
        assert greedy_fit(rs, os_, eco, cap, set(), min_value=v_hat * 2) == []
        assert greedy_fit(rs, os_, eco, cap, set(), min_value=v_hat / 2) != []

    def test_max_cost_filter(self):
        requests = [make_request(bid=5.0)]
        offers = [make_offer(bid=1.0)]
        rs, os_, eco, cap = self._setup(requests, offers)
        c_hat = eco.c_hat("off-0")
        assert greedy_fit(rs, os_, eco, cap, set(), max_cost=c_hat / 2) == []

    def test_uniform_price_invariant(self):
        # Without the invariant, hi lands on the expensive big machine and
        # lo on the cheap small one, leaving min(v) < max(c) — no common
        # price.  With it, lo is skipped.
        requests = [
            make_request(request_id="hi", resources={"cpu": 8}, bid=60.0, duration=4),
            make_request(request_id="lo", resources={"cpu": 1}, bid=0.8, duration=4),
        ]
        offers = [
            make_offer(offer_id="small", resources={"cpu": 1}, bid=1.0),
            make_offer(offer_id="big", resources={"cpu": 8}, bid=48.0),
        ]
        rs, os_, eco, cap = self._setup(requests, offers)
        matches = greedy_fit(rs, os_, eco, cap, set(), uniform_price=True)
        min_v = min(eco.v_hat(r.request_id) for r, _ in matches)
        max_c = max(eco.c_hat(o.offer_id) for _, o in matches)
        assert min_v >= max_c - 1e-9


class TestAllocateCluster:
    def test_indices_consistent(self):
        requests = [
            make_request(request_id=f"r{i}", bid=1.0 + i, duration=4)
            for i in range(4)
        ]
        offers = [
            make_offer(offer_id="cheap", resources={"cpu": 4, "ram": 16, "disk": 100}, bid=0.5),
            make_offer(offer_id="dear", resources={"cpu": 4, "ram": 16, "disk": 100}, bid=20.0),
        ]
        allocation = allocate_cluster(
            _cluster_for(requests, offers), requests, offers, CONFIG
        )
        assert allocation.has_trades
        eco = allocation.economics
        assert allocation.v_z == min(
            eco.v_hat(r.request_id) for r, _ in allocation.matches
        )
        assert allocation.c_z == max(
            eco.c_hat(o.offer_id) for _, o in allocation.matches
        )
        assert allocation.v_z >= allocation.c_z - 1e-9

    def test_z_plus_1_is_cheapest_unused(self):
        requests = [make_request(bid=10.0, duration=4)]
        offers = [
            make_offer(offer_id="used", bid=0.5),
            make_offer(offer_id="next", bid=1.0),
            make_offer(offer_id="later", bid=2.0),
        ]
        allocation = allocate_cluster(
            _cluster_for(requests, offers), requests, offers, CONFIG
        )
        assert allocation.z_plus_1_offer is not None
        assert allocation.z_plus_1_offer.offer_id == "next"

    def test_no_unused_offer_gives_infinite(self):
        requests = [make_request(bid=10.0, duration=4)]
        offers = [make_offer(offer_id="only", bid=0.5)]
        allocation = allocate_cluster(
            _cluster_for(requests, offers), requests, offers, CONFIG
        )
        assert allocation.z_plus_1_offer is None
        assert math.isinf(allocation.c_z_plus_1)

    def test_empty_market_no_trades(self):
        requests = [make_request(bid=0.0001, duration=1)]
        offers = [make_offer(bid=100.0)]
        allocation = allocate_cluster(
            _cluster_for(requests, offers), requests, offers, CONFIG
        )
        assert not allocation.has_trades
        assert math.isnan(allocation.v_z)

    def test_tentative_welfare_positive(self):
        requests = [make_request(bid=5.0)]
        offers = [make_offer(bid=0.2)]
        allocation = allocate_cluster(
            _cluster_for(requests, offers), requests, offers, CONFIG
        )
        assert allocation.tentative_welfare > 0
