"""Unit tests for the protocol layer: exposure, contracts, reputation."""

import pytest

from repro.common.errors import ContractError, ProtocolError
from repro.ledger.chain import Blockchain
from repro.protocol.allocator import DecloudAllocator, decode_round
from repro.protocol.contracts import AgreementState, AllocationContract
from repro.protocol.exposure import (
    ExposureProtocol,
    Participant,
    build_miner_network,
)
from repro.protocol.reputation import (
    ACCEPT_RECOVERY,
    BASE_PENALTY,
    INITIAL_SCORE,
    ReputationLedger,
)
from tests.conftest import make_offer, make_request


class TestReputation:
    def test_initial_score(self):
        assert ReputationLedger().score("anyone") == INITIAL_SCORE

    def test_rejection_penalty(self):
        ledger = ReputationLedger()
        score = ledger.record_rejection("c1")
        assert score == pytest.approx(INITIAL_SCORE - BASE_PENALTY)

    def test_escalating_penalties(self):
        ledger = ReputationLedger()
        first = INITIAL_SCORE - ledger.record_rejection("c1")
        before = ledger.score("c1")
        second = before - ledger.record_rejection("c1")
        assert second > first  # streak penalty escalates

    def test_acceptance_resets_streak(self):
        ledger = ReputationLedger()
        ledger.record_rejection("c1")
        ledger.record_acceptance("c1")
        assert ledger.records["c1"].consecutive_rejections == 0

    def test_acceptance_recovers_score(self):
        ledger = ReputationLedger()
        ledger.record_rejection("c1")
        before = ledger.score("c1")
        ledger.record_acceptance("c1")
        assert ledger.score("c1") == pytest.approx(before + ACCEPT_RECOVERY)

    def test_score_floor(self):
        ledger = ReputationLedger()
        for _ in range(50):
            ledger.record_rejection("c1")
        assert ledger.score("c1") == 0.0

    def test_score_ceiling(self):
        ledger = ReputationLedger()
        for _ in range(10):
            ledger.record_acceptance("c1")
        assert ledger.score("c1") == 1.0

    def test_threshold(self):
        ledger = ReputationLedger()
        assert ledger.meets_threshold("c1", 0.9)
        for _ in range(5):
            ledger.record_rejection("c1")
        assert not ledger.meets_threshold("c1", 0.9)


class TestDecodeRound:
    def test_splits_requests_and_offers(self):
        request = make_request(client_id="alice")
        offer = make_offer(provider_id="bob")
        plaintexts = {
            "alice": [request.to_json()],
            "bob": [offer.to_json()],
        }
        requests, offers = decode_round(plaintexts)
        assert [r.request_id for r in requests] == [request.request_id]
        assert [o.offer_id for o in offers] == [offer.offer_id]

    def test_spoofed_owner_dropped(self):
        request = make_request(client_id="alice")
        requests, offers = decode_round({"mallory": [request.to_json()]})
        assert requests == [] and offers == []

    def test_garbage_payload_skipped(self):
        requests, offers = decode_round({"x": [b"not json"]})
        assert requests == [] and offers == []

    def test_orders_by_submit_time(self):
        late = make_request(request_id="late", client_id="a", submit_time=5.0)
        early = make_request(request_id="early", client_id="a", submit_time=1.0)
        requests, _ = decode_round({"a": [late.to_json(), early.to_json()]})
        assert [r.request_id for r in requests] == ["early", "late"]


class TestAllocator:
    def test_payload_deterministic(self):
        request = make_request(client_id="alice", bid=2.0)
        offer = make_offer(provider_id="bob", bid=0.5)
        plaintexts = {"alice": [request.to_json()], "bob": [offer.to_json()]}
        a = DecloudAllocator()(plaintexts, b"ev")
        b = DecloudAllocator()(plaintexts, b"ev")
        assert a == b

    def test_last_outcome_cached(self):
        allocator = DecloudAllocator()
        request = make_request(client_id="alice", bid=2.0)
        offer = make_offer(provider_id="bob", bid=0.5)
        allocator({"alice": [request.to_json()], "bob": [offer.to_json()]}, b"e")
        assert allocator.last_outcome is not None


class TestParticipant:
    def test_seal_rejects_foreign_bid(self):
        participant = Participant(participant_id="alice")
        with pytest.raises(ProtocolError):
            participant.seal(make_request(client_id="bob"))

    def test_reveals_only_for_included(self):
        participant = Participant(participant_id="alice")
        tx = participant.seal(make_request(client_id="alice"))
        protocol = build_miner_network(1, difficulty_bits=4)
        protocol.miners[0].accept_transaction(tx)
        preamble = protocol.miners[0].build_preamble()
        reveals = participant.reveals_for(preamble)
        assert len(reveals) == 1
        # second call: nothing pending
        assert participant.reveals_for(preamble) == []


class TestExposureProtocol:
    def _run_round(self, num_miners=2):
        # Two clients: with a single buyer/seller pair, trade reduction
        # correctly cancels the only trade (McAfee needs > 1 pair).
        protocol = build_miner_network(num_miners, difficulty_bits=6)
        alice = Participant(participant_id="alice")
        anna = Participant(participant_id="anna")
        provider = Participant(participant_id="bob")
        protocol.submit(
            alice, make_request(request_id="req-a", client_id="alice", bid=2.0)
        )
        protocol.submit(
            anna, make_request(request_id="req-b", client_id="anna", bid=1.5)
        )
        protocol.submit(provider, make_offer(provider_id="bob", bid=0.5))
        return protocol, protocol.run_round([alice, anna, provider])

    def test_round_verified_by_all(self):
        protocol, result = self._run_round(num_miners=3)
        assert len(result.accepted_by) == 3
        assert all(len(m.chain) == 1 for m in protocol.miners)

    def test_outcome_has_trade(self):
        _, result = self._run_round()
        # The lower-valued client is the price-setter and is excluded;
        # the higher-valued one trades.
        assert result.outcome.num_trades == 1
        assert result.outcome.matches[0].request.client_id == "alice"

    def test_multiple_rounds_extend_chain(self):
        protocol = build_miner_network(2, difficulty_bits=6)
        client = Participant(participant_id="alice")
        provider = Participant(participant_id="bob")
        for round_index in range(3):
            protocol.submit(
                client,
                make_request(
                    request_id=f"req-{round_index}",
                    client_id="alice",
                    bid=2.0,
                ),
            )
            protocol.submit(
                provider,
                make_offer(
                    offer_id=f"off-{round_index}",
                    provider_id="bob",
                    bid=0.5,
                ),
            )
            protocol.run_round([client, provider])
        assert all(len(m.chain) == 3 for m in protocol.miners)
        assert all(m.chain.verify_linkage() for m in protocol.miners)

    def test_empty_round_produces_empty_block(self):
        protocol = build_miner_network(1, difficulty_bits=4)
        result = protocol.run_round([])
        assert result.block.preamble.transactions == ()

    def test_requires_a_miner(self):
        with pytest.raises(ProtocolError):
            ExposureProtocol(miners=[])


class TestContracts:
    def _contract_with_block(self):
        protocol = build_miner_network(1, difficulty_bits=4)
        alice = Participant(participant_id="alice")
        anna = Participant(participant_id="anna")
        provider = Participant(participant_id="bob")
        protocol.submit(
            alice, make_request(request_id="req-0", client_id="alice", bid=2.0)
        )
        protocol.submit(
            anna, make_request(request_id="req-1", client_id="anna", bid=1.5)
        )
        protocol.submit(provider, make_offer(provider_id="bob", bid=0.5))
        result = protocol.run_round([alice, anna, provider])
        assert result.outcome.match_for("req-0") is not None
        chain = protocol.miners[0].chain
        contract = AllocationContract(chain=chain)
        block_hash = result.block.hash()
        contract.register_block(block_hash, {"req-0": "alice"})
        return contract, block_hash

    def test_accept_flow(self):
        contract, block_hash = self._contract_with_block()
        agreement = contract.accept("alice", block_hash, "req-0")
        assert agreement.state is AgreementState.AGREED
        assert contract.state_of(block_hash, "req-0") is AgreementState.AGREED

    def test_deny_flow_penalizes_and_queues(self):
        contract, block_hash = self._contract_with_block()
        contract.deny("alice", block_hash, "req-0")
        assert contract.reputation.score("alice") < 1.0
        assert contract.resubmission_queue  # provider must resubmit

    def test_double_accept_rejected(self):
        contract, block_hash = self._contract_with_block()
        contract.accept("alice", block_hash, "req-0")
        with pytest.raises(ContractError):
            contract.accept("alice", block_hash, "req-0")

    def test_foreign_caller_rejected(self):
        contract, block_hash = self._contract_with_block()
        with pytest.raises(ContractError):
            contract.accept("mallory", block_hash, "req-0")

    def test_unknown_block_rejected(self):
        contract, _ = self._contract_with_block()
        with pytest.raises(ContractError):
            contract.register_block("00" * 32, {})

    def test_unknown_request_rejected(self):
        contract, block_hash = self._contract_with_block()
        with pytest.raises(ContractError):
            contract.accept("alice", block_hash, "req-unknown")

    def test_provider_threshold_blocks_low_reputation(self):
        contract, block_hash = self._contract_with_block()
        for _ in range(8):
            contract.reputation.record_rejection("alice")
        contract.set_provider_threshold("", 0.9)  # provider_id is "" in payload
        with pytest.raises(ContractError):
            contract.accept("alice", block_hash, "req-0")

    def test_invalid_threshold_rejected(self):
        contract, _ = self._contract_with_block()
        with pytest.raises(ContractError):
            contract.set_provider_threshold("p", 2.0)

    def test_agreements_filter(self):
        contract, block_hash = self._contract_with_block()
        contract.accept("alice", block_hash, "req-0")
        assert len(contract.agreements(AgreementState.AGREED)) == 1
        assert contract.agreements(AgreementState.DENIED) == []
