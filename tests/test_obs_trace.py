"""Unit tests for the deterministic span/event tracer (repro.obs.trace)."""

import json

import pytest

from repro.obs import NULL_TRACER, Tracer
from repro.obs.trace import load_jsonl, strip_wall


def record_types(tracer):
    return [r["type"] for r in tracer.records]


class TestSpans:
    def test_span_start_end_pair(self):
        tracer = Tracer()
        with tracer.span("round", index=3):
            pass
        assert record_types(tracer) == ["span_start", "span_end"]
        start, end = tracer.records
        assert start["name"] == end["name"] == "round"
        assert start["attrs"] == {"index": 3}
        assert start["span"] == end["span"] == 1
        assert start["parent"] is None
        assert end["status"] == "ok"

    def test_nesting_sets_parent(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        starts = [r for r in tracer.records if r["type"] == "span_start"]
        assert starts[0]["parent"] is None
        assert starts[1]["parent"] == starts[0]["span"]

    def test_exception_marks_error_and_propagates(self):
        tracer = Tracer()
        with pytest.raises(ValueError):
            with tracer.span("boom"):
                raise ValueError("x")
        end = tracer.records[-1]
        assert end["type"] == "span_end"
        assert end["status"] == "error"

    def test_stack_recovers_after_error(self):
        tracer = Tracer()
        try:
            with tracer.span("a"):
                raise ValueError
        except ValueError:
            pass
        assert tracer.current_span is None
        with tracer.span("b"):
            assert tracer.current_span is not None


class TestEvents:
    def test_event_attaches_to_innermost_span(self):
        tracer = Tracer()
        with tracer.span("round"):
            tracer.event("reveal.excluded", txid="t1")
        event = tracer.records[1]
        assert event["type"] == "event"
        assert event["span"] == 1
        assert event["attrs"] == {"txid": "t1"}

    def test_top_level_event_has_null_span(self):
        tracer = Tracer()
        tracer.event("note")
        assert tracer.records[0]["span"] is None


class TestDeterminism:
    def _run(self):
        tracer = Tracer()
        with tracer.span("auction", requests=4):
            with tracer.span("match"):
                pass
            tracer.event("auction.cleared", trades=2)
        return tracer

    def test_seq_is_monotonic_per_record(self):
        tracer = self._run()
        assert [r["seq"] for r in tracer.records] == [1, 2, 3, 4, 5]

    def test_stripped_jsonl_is_byte_identical_across_runs(self):
        a = self._run().to_jsonl(strip_wall=True)
        b = self._run().to_jsonl(strip_wall=True)
        assert a == b
        assert "wall" not in a

    def test_unstripped_jsonl_carries_wall(self):
        text = self._run().to_jsonl()
        assert all("wall" in r for r in load_jsonl(text))

    def test_strip_wall_helper_matches_export_flag(self):
        tracer = self._run()
        assert strip_wall(tracer.to_jsonl()) == tracer.to_jsonl(
            strip_wall=True
        )

    def test_jsonl_lines_have_sorted_keys(self):
        for line in self._run().to_jsonl(strip_wall=True).splitlines():
            record = json.loads(line)
            assert line == json.dumps(
                record, sort_keys=True, separators=(",", ":")
            )


class TestExport:
    def test_write_jsonl_roundtrips(self, tmp_path):
        tracer = Tracer()
        with tracer.span("round"):
            tracer.event("x")
        path = tmp_path / "trace.jsonl"
        tracer.write_jsonl(str(path))
        assert load_jsonl(path.read_text()) == tracer.records

    def test_empty_tracer_exports_empty(self):
        assert Tracer().to_jsonl() == ""


class TestNullTracer:
    def test_inert(self):
        with NULL_TRACER.span("anything", a=1):
            NULL_TRACER.event("nothing")
        assert NULL_TRACER.records == []
        assert NULL_TRACER.to_jsonl() == ""
