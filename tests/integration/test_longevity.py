"""Longevity: many protocol rounds with contracts and settlement.

Drives a 12-round deployment end to end — sealed bidding, mining,
collective verification, contract acceptance, escrow settlement — and
checks the global invariants that must survive arbitrarily long runs:
chain integrity, economic conservation, and reputation monotonicity
under honest behaviour.
"""

import pytest

from repro.common.rng import make_generator
from repro.common.timewindow import TimeWindow
from repro.core.audit import audit_outcome
from repro.experiments.sweeps import eval_config
from repro.market.bids import Offer, Request
from repro.protocol.contracts import AllocationContract
from repro.protocol.exposure import Participant, build_miner_network
from repro.protocol.settlement import SettlementProcessor, TokenLedger

ROUNDS = 12


@pytest.fixture(scope="module")
def long_run():
    rng = make_generator("longevity")
    protocol = build_miner_network(
        num_miners=3, config=eval_config(), difficulty_bits=6
    )
    clients = {
        f"cli-{i}": Participant(participant_id=f"cli-{i}") for i in range(6)
    }
    providers = {
        f"prov-{i}": Participant(participant_id=f"prov-{i}") for i in range(3)
    }
    tokens = TokenLedger()
    processor = SettlementProcessor(ledger=tokens)
    contract = AllocationContract(chain=protocol.miners[0].chain)

    history = []
    for round_index in range(ROUNDS):
        start = 24.0 * round_index
        requests = []
        for i, (cid, participant) in enumerate(clients.items()):
            cores = float(rng.choice([1, 2, 4]))
            duration = float(rng.uniform(2.0, 8.0))
            request = Request(
                request_id=f"r{round_index}-{i}",
                client_id=cid,
                submit_time=start + 0.1 + 0.01 * i,
                resources={"cpu": cores, "ram": 2 * cores, "disk": 10},
                window=TimeWindow(start, start + 24.0),
                duration=duration,
                bid=0.05 * cores * duration * float(rng.uniform(0.8, 2.0)),
            )
            requests.append(request)
            protocol.submit(participant, request)
        offers = []
        for j, (pid, participant) in enumerate(providers.items()):
            offer = Offer(
                offer_id=f"o{round_index}-{j}",
                provider_id=pid,
                submit_time=start + 0.01 * j,
                resources={"cpu": 8, "ram": 32, "disk": 400},
                window=TimeWindow(start, start + 24.0),
                bid=0.4 * 24.0 * float(rng.uniform(0.8, 1.2)),
            )
            offers.append(offer)
            protocol.submit(participant, offer)

        result = protocol.run_round(
            list(clients.values()) + list(providers.values())
        )
        outcome = result.outcome
        block_hash = result.block.hash()
        contract.register_block(
            block_hash,
            {m.request.request_id: m.request.client_id for m in outcome.matches},
        )
        for match in outcome.matches:
            contract.accept(
                match.request.client_id, block_hash, match.request.request_id
            )
        escrow_ids = processor.settle_block(outcome.matches, auto_fund=True)
        for escrow_id in escrow_ids.values():
            processor.complete(escrow_id)
        history.append((requests, offers, outcome))
    return protocol, tokens, contract, history


class TestLongRun:
    def test_chain_grows_and_verifies(self, long_run):
        protocol, _, _, history = long_run
        for miner in protocol.miners:
            assert len(miner.chain) == ROUNDS
            assert miner.chain.verify_linkage()
        tips = {m.chain.tip_hash for m in protocol.miners}
        assert len(tips) == 1

    def test_every_block_audits_clean(self, long_run):
        _, _, _, history = long_run
        for requests, offers, outcome in history:
            report = audit_outcome(requests, offers, outcome)
            assert report.ok, str(report)

    def test_trades_happened(self, long_run):
        _, _, _, history = long_run
        total_trades = sum(o.num_trades for _, _, o in history)
        assert total_trades > ROUNDS  # at least some activity per round

    def test_settlement_conserves_tokens(self, long_run):
        _, tokens, _, history = long_run
        total_payments = sum(o.total_payments for _, _, o in history)
        provider_balances = sum(
            tokens.balance(f"prov-{i}") for i in range(3)
        )
        assert provider_balances == pytest.approx(total_payments)

    def test_reputation_rewards_honesty(self, long_run):
        _, _, contract, history = long_run
        # Every client accepted every match: scores stay at the ceiling.
        for i in range(6):
            assert contract.reputation.score(f"cli-{i}") == 1.0

    def test_budget_balance_over_all_rounds(self, long_run):
        _, _, _, history = long_run
        for _, _, outcome in history:
            revenues = sum(outcome.revenues().values())
            assert outcome.total_payments == pytest.approx(revenues)
