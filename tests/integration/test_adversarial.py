"""Integration: adversarial behaviour against the ledger and protocol."""

import dataclasses

import pytest

from repro.common.errors import InvalidBlockError, ProtocolError
from repro.cryptosim import schnorr, symmetric
from repro.ledger.block import Block, KeyReveal
from repro.ledger.miner import Miner, make_sealed_bid
from repro.protocol.allocator import DecloudAllocator
from repro.protocol.exposure import Participant
from tests.conftest import make_offer, make_request


def _network(n=3, bits=6):
    return [
        Miner(miner_id=f"m{i}", allocate=DecloudAllocator(), difficulty_bits=bits)
        for i in range(n)
    ]


def _submit_all(miners, participants_and_bids):
    reveals = []
    for participant, bid in participants_and_bids:
        tx = participant.seal(bid)
        for miner in miners:
            miner.accept_transaction(tx)
    return reveals


class TestCheatingLeader:
    def _round_setup(self):
        miners = _network()
        alice = Participant(participant_id="alice")
        anna = Participant(participant_id="anna")
        bob = Participant(participant_id="bob")
        bids = [
            (alice, make_request(request_id="ra", client_id="alice", bid=2.0)),
            (anna, make_request(request_id="rb", client_id="anna", bid=1.5)),
            (bob, make_offer(provider_id="bob", bid=0.4)),
        ]
        _submit_all(miners, bids)
        leader = miners[0]
        preamble = leader.build_preamble()
        reveals = []
        for participant, _ in bids:
            reveals.extend(participant.reveals_for(preamble))
        return miners, leader, preamble, tuple(reveals)

    def test_censoring_leader_rejected(self):
        miners, leader, preamble, reveals = self._round_setup()
        body = leader.build_body(preamble, reveals)
        censored = dataclasses.replace(
            body,
            allocation={**body.allocation, "matches": []},
        ).signed_by(leader.keypair, preamble.hash())
        for peer in miners[1:]:
            with pytest.raises(InvalidBlockError):
                peer.accept_block(Block(preamble=preamble, body=censored))

    def test_self_dealing_leader_rejected(self):
        miners, leader, preamble, reveals = self._round_setup()
        body = leader.build_body(preamble, reveals)
        doctored_matches = [
            {**m, "payment": 0.0} for m in body.allocation["matches"]
        ]
        doctored = dataclasses.replace(
            body,
            allocation={**body.allocation, "matches": doctored_matches},
        ).signed_by(leader.keypair, preamble.hash())
        if doctored.allocation == body.allocation:
            pytest.skip("no matches to doctor")
        for peer in miners[1:]:
            with pytest.raises(InvalidBlockError):
                peer.accept_block(Block(preamble=preamble, body=doctored))

    def test_honest_block_accepted_by_all(self):
        miners, leader, preamble, reveals = self._round_setup()
        block = Block(
            preamble=preamble, body=leader.build_body(preamble, reveals)
        )
        for miner in miners:
            miner.accept_block(block)
        assert len({m.chain.tip_hash for m in miners}) == 1


class TestMisbehavingParticipants:
    def test_key_swap_after_preamble_detected(self):
        miners = _network(n=1)
        alice = Participant(participant_id="alice")
        tx = alice.seal(make_request(client_id="alice"))
        miners[0].accept_transaction(tx)
        preamble = miners[0].build_preamble()
        (reveal,) = alice.reveals_for(preamble)
        # Alice tries to reveal a different key (to change her bid).
        other_key = symmetric.generate_key(seed=b"other")
        forged = KeyReveal(
            sender_id="alice",
            txid=reveal.txid,
            temp_key=other_key,
            blind=reveal.blind,
        )
        with pytest.raises(ProtocolError):
            miners[0].build_body(preamble, (forged,))

    def test_withholding_key_only_hurts_withholder(self):
        miners = _network(n=1)
        alice = Participant(participant_id="alice")
        anna = Participant(participant_id="anna")
        bob = Participant(participant_id="bob")
        txs = [
            alice.seal(make_request(request_id="ra", client_id="alice", bid=2.0)),
            anna.seal(make_request(request_id="rb", client_id="anna", bid=1.9)),
            bob.seal(make_offer(provider_id="bob", bid=0.4)),
        ]
        for tx in txs:
            miners[0].accept_transaction(tx)
        preamble = miners[0].build_preamble()
        reveals = []
        reveals.extend(anna.reveals_for(preamble))
        reveals.extend(bob.reveals_for(preamble))
        # Alice never reveals: her bid silently drops out of the round.
        body = miners[0].build_body(preamble, tuple(reveals))
        matched = {m["request_id"] for m in body.allocation["matches"]}
        assert "ra" not in matched

    def test_spoofed_ownership_dropped_by_allocator(self):
        # Mallory seals a request claiming to be from alice.
        miners = _network(n=1)
        mallory = Participant(participant_id="mallory")
        keypair = schnorr.KeyPair.generate(seed=b"mallory")
        foreign = make_request(client_id="alice", bid=2.0)
        tx, reveal = make_sealed_bid(
            sender_id="mallory", keypair=keypair, plaintext=foreign.to_json()
        )
        miners[0].accept_transaction(tx)
        preamble = miners[0].build_preamble()
        body = miners[0].build_body(preamble, (reveal,))
        assert body.allocation["matches"] == []

    def test_forged_transaction_signature_rejected_at_submission(self):
        miners = _network(n=1)
        alice = Participant(participant_id="alice")
        tx = alice.seal(make_request(client_id="alice"))
        forged = dataclasses.replace(tx, sender_id="eve")
        from repro.common.errors import SignatureError

        with pytest.raises(SignatureError):
            miners[0].accept_transaction(forged)
