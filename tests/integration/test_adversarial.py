"""Integration: adversarial behaviour against the ledger and protocol."""

import dataclasses

import pytest

from repro.common.errors import (
    InvalidBlockError,
    ProtocolError,
    RevealTimeoutError,
)
from repro.cryptosim import schnorr, symmetric
from repro.faults.actors import EquivocatingMiner, WithholdingParticipant
from repro.ledger.block import Block, KeyReveal
from repro.ledger.miner import Miner, make_sealed_bid
from repro.protocol.allocator import DecloudAllocator
from repro.protocol.exposure import ExposureProtocol, Participant
from tests.conftest import make_offer, make_request


def _network(n=3, bits=6):
    return [
        Miner(miner_id=f"m{i}", allocate=DecloudAllocator(), difficulty_bits=bits)
        for i in range(n)
    ]


def _submit_all(miners, participants_and_bids):
    reveals = []
    for participant, bid in participants_and_bids:
        tx = participant.seal(bid)
        for miner in miners:
            miner.accept_transaction(tx)
    return reveals


class TestCheatingLeader:
    def _round_setup(self):
        miners = _network()
        alice = Participant(participant_id="alice")
        anna = Participant(participant_id="anna")
        bob = Participant(participant_id="bob")
        bids = [
            (alice, make_request(request_id="ra", client_id="alice", bid=2.0)),
            (anna, make_request(request_id="rb", client_id="anna", bid=1.5)),
            (bob, make_offer(provider_id="bob", bid=0.4)),
        ]
        _submit_all(miners, bids)
        leader = miners[0]
        preamble = leader.build_preamble()
        reveals = []
        for participant, _ in bids:
            reveals.extend(participant.reveals_for(preamble))
        return miners, leader, preamble, tuple(reveals)

    def test_censoring_leader_rejected(self):
        miners, leader, preamble, reveals = self._round_setup()
        body = leader.build_body(preamble, reveals)
        censored = dataclasses.replace(
            body,
            allocation={**body.allocation, "matches": []},
        ).signed_by(leader.keypair, preamble.hash())
        for peer in miners[1:]:
            with pytest.raises(InvalidBlockError):
                peer.accept_block(Block(preamble=preamble, body=censored))

    def test_self_dealing_leader_rejected(self):
        miners, leader, preamble, reveals = self._round_setup()
        body = leader.build_body(preamble, reveals)
        doctored_matches = [
            {**m, "payment": 0.0} for m in body.allocation["matches"]
        ]
        doctored = dataclasses.replace(
            body,
            allocation={**body.allocation, "matches": doctored_matches},
        ).signed_by(leader.keypair, preamble.hash())
        if doctored.allocation == body.allocation:
            pytest.skip("no matches to doctor")
        for peer in miners[1:]:
            with pytest.raises(InvalidBlockError):
                peer.accept_block(Block(preamble=preamble, body=doctored))

    def test_honest_block_accepted_by_all(self):
        miners, leader, preamble, reveals = self._round_setup()
        block = Block(
            preamble=preamble, body=leader.build_body(preamble, reveals)
        )
        for miner in miners:
            miner.accept_block(block)
        assert len({m.chain.tip_hash for m in miners}) == 1


class TestMisbehavingParticipants:
    def test_key_swap_after_preamble_detected(self):
        miners = _network(n=1)
        alice = Participant(participant_id="alice")
        tx = alice.seal(make_request(client_id="alice"))
        miners[0].accept_transaction(tx)
        preamble = miners[0].build_preamble()
        (reveal,) = alice.reveals_for(preamble)
        # Alice tries to reveal a different key (to change her bid).
        other_key = symmetric.generate_key(seed=b"other")
        forged = KeyReveal(
            sender_id="alice",
            txid=reveal.txid,
            temp_key=other_key,
            blind=reveal.blind,
        )
        with pytest.raises(ProtocolError):
            miners[0].build_body(preamble, (forged,))

    def test_withholding_key_only_hurts_withholder(self):
        miners = _network(n=1)
        alice = Participant(participant_id="alice")
        anna = Participant(participant_id="anna")
        bob = Participant(participant_id="bob")
        txs = [
            alice.seal(make_request(request_id="ra", client_id="alice", bid=2.0)),
            anna.seal(make_request(request_id="rb", client_id="anna", bid=1.9)),
            bob.seal(make_offer(provider_id="bob", bid=0.4)),
        ]
        for tx in txs:
            miners[0].accept_transaction(tx)
        preamble = miners[0].build_preamble()
        reveals = []
        reveals.extend(anna.reveals_for(preamble))
        reveals.extend(bob.reveals_for(preamble))
        # Alice never reveals: her bid silently drops out of the round.
        body = miners[0].build_body(preamble, tuple(reveals))
        matched = {m["request_id"] for m in body.allocation["matches"]}
        assert "ra" not in matched

    def test_spoofed_ownership_dropped_by_allocator(self):
        # Mallory seals a request claiming to be from alice.
        miners = _network(n=1)
        mallory = Participant(participant_id="mallory")
        keypair = schnorr.KeyPair.generate(seed=b"mallory")
        foreign = make_request(client_id="alice", bid=2.0)
        tx, reveal = make_sealed_bid(
            sender_id="mallory", keypair=keypair, plaintext=foreign.to_json()
        )
        miners[0].accept_transaction(tx)
        preamble = miners[0].build_preamble()
        body = miners[0].build_body(preamble, (reveal,))
        assert body.allocation["matches"] == []

    def test_forged_transaction_signature_rejected_at_submission(self):
        miners = _network(n=1)
        alice = Participant(participant_id="alice")
        tx = alice.seal(make_request(client_id="alice"))
        forged = dataclasses.replace(tx, sender_id="eve")
        from repro.common.errors import SignatureError

        with pytest.raises(SignatureError):
            miners[0].accept_transaction(forged)


class TestDegradedRounds:
    """Full-protocol degradation: faults reach run_round, not just miners."""

    def _market(self, protocol, alice_cls=Participant):
        alice = alice_cls(participant_id="alice", deterministic=True)
        anna = Participant(participant_id="anna", deterministic=True)
        ada = Participant(participant_id="ada", deterministic=True)
        bob = Participant(participant_id="bob", deterministic=True)
        ben = Participant(participant_id="ben", deterministic=True)
        alice_txid = protocol.submit(
            alice, make_request(request_id="ra", client_id="alice", bid=2.0)
        ).txid()
        protocol.submit(
            anna, make_request(request_id="rb", client_id="anna", bid=1.5)
        )
        protocol.submit(
            ada, make_request(request_id="rc", client_id="ada", bid=1.0)
        )
        protocol.submit(bob, make_offer(offer_id="ob", provider_id="bob", bid=0.4))
        protocol.submit(ben, make_offer(offer_id="oc", provider_id="ben", bid=0.6))
        return [alice, anna, ada, bob, ben], alice_txid

    def test_withheld_reveal_excluded_and_round_clears(self):
        protocol = ExposureProtocol(miners=_network())
        participants, alice_txid = self._market(
            protocol, alice_cls=WithholdingParticipant
        )
        result = protocol.run_round(participants)
        assert result.excluded_txids == (alice_txid,)
        matched = {
            m["request_id"] for m in result.block.body.allocation["matches"]
        }
        assert "ra" not in matched
        assert matched  # the surviving market still trades

    def test_every_reveal_withheld_aborts_with_typed_error(self):
        protocol = ExposureProtocol(miners=_network())
        alice = WithholdingParticipant(
            participant_id="alice", deterministic=True
        )
        protocol.submit(alice, make_request(client_id="alice"))
        with pytest.raises(RevealTimeoutError):
            protocol.run_round([alice])

    def test_equivocating_leader_replaced_and_chains_converge(self):
        miners = [
            EquivocatingMiner(
                miner_id="m0", allocate=DecloudAllocator(), difficulty_bits=6
            )
        ] + _network()[1:]
        protocol = ExposureProtocol(miners=miners)
        participants, _ = self._market(protocol)
        result = protocol.run_round(participants)
        assert result.failed_proposers == ("m0",)
        assert result.block.body.miner_id != "m0"
        # every approving miner committed the same honest block
        assert len({m.chain.tip_hash for m in miners}) == 1

    def test_duplicated_and_reordered_gossip_is_idempotent(self):
        miners = _network()
        protocol = ExposureProtocol(miners=miners)
        participants, _ = self._market(protocol)
        leader = miners[0]
        preamble = leader.build_preamble()
        phash = preamble.hash()
        reveals = [
            r for p in participants for r in p.reveals_for(preamble)
        ]
        # reveals race ahead of the preamble, then everything repeats
        for miner in miners:
            for reveal in reveals:
                miner.accept_reveal(phash, reveal)
            assert miner.accept_preamble(preamble) is True
            assert miner.accept_preamble(preamble) is False
            for reveal in reveals:
                assert miner.accept_reveal(phash, reveal) is False
            assert len(miner.collected_reveals(preamble)) == len(reveals)
