"""Trace-based integration tests: what a protocol round *did*.

The exposure protocol runs with a live Observability attached and the
exported trace is asserted structurally — the span tree
``seal -> round(mine, reveal, propose, verify, commit)``, event counts,
and the registry's protocol/ledger series.  The degraded-round tests pin
the failure semantics: an excluded bid emits ``reveal.excluded`` exactly
once, a fully-withheld round emits ``reveal.timeout`` and aborts with
partial phase timings tagged ``aborted``.
"""

import pytest

from repro.common.errors import RevealTimeoutError
from repro.faults.actors import WithholdingParticipant
from repro.faults.network import UnreliableNetwork
from repro.faults.plan import FaultPlan
from repro.ledger.miner import Miner
from repro.obs import Observability
from repro.obs.report import build_tree
from repro.obs.trace import load_jsonl
from repro.protocol.allocator import DecloudAllocator
from repro.protocol.exposure import ExposureProtocol, Participant
from tests.conftest import make_offer, make_request


def _network(n=3, bits=6):
    return [
        Miner(
            miner_id=f"m{i}",
            allocate=DecloudAllocator(),
            difficulty_bits=bits,
        )
        for i in range(n)
    ]


def _market(protocol, alice_cls=Participant):
    """Five participants, enough buyer/seller pairs to actually trade."""
    alice = alice_cls(participant_id="alice", deterministic=True)
    anna = Participant(participant_id="anna", deterministic=True)
    ada = Participant(participant_id="ada", deterministic=True)
    bob = Participant(participant_id="bob", deterministic=True)
    ben = Participant(participant_id="ben", deterministic=True)
    alice_txid = protocol.submit(
        alice, make_request(request_id="ra", client_id="alice", bid=2.0)
    ).txid()
    protocol.submit(
        anna, make_request(request_id="rb", client_id="anna", bid=1.5)
    )
    protocol.submit(
        ada, make_request(request_id="rc", client_id="ada", bid=1.0)
    )
    protocol.submit(
        bob, make_offer(offer_id="ob", provider_id="bob", bid=0.4)
    )
    protocol.submit(
        ben, make_offer(offer_id="oc", provider_id="ben", bid=0.6)
    )
    return [alice, anna, ada, bob, ben], alice_txid


def _events(obs, name):
    return [
        r
        for r in obs.tracer.records
        if r["type"] == "event" and r["name"] == name
    ]


def _span_names(node):
    return [child["name"] for child in node["children"]]


class TestHealthyRoundTrace:
    def _run(self):
        obs = Observability("healthy-round")
        protocol = ExposureProtocol(miners=_network(), obs=obs)
        participants, _ = _market(protocol)
        result = protocol.run_round(participants)
        return obs, result

    def test_span_tree_seal_mine_reveal_propose_verify_commit(self):
        obs, _ = self._run()
        roots = build_tree(load_jsonl(obs.trace_jsonl()))
        names = [r["name"] for r in roots]
        # five seals (one per submitted bid), then the round span
        assert names == ["seal"] * 5 + ["round"]
        round_node = roots[-1]
        assert round_node["status"] == "ok"
        assert _span_names(round_node) == [
            "mine", "reveal", "propose", "verify", "commit",
        ]
        assert all(
            child["status"] == "ok" for child in round_node["children"]
        )

    def test_round_committed_event_exactly_once(self):
        obs, result = self._run()
        committed = _events(obs, "round.committed")
        assert len(committed) == 1
        assert committed[0]["attrs"]["height"] == result.block.height
        assert committed[0]["attrs"]["excluded"] == 0

    def test_registry_counts_match_round(self):
        obs, result = self._run()
        reg = obs.registry
        assert reg.counter_value("protocol_seals_total") == 5.0
        assert reg.counter_value("protocol_rounds_total") == 1.0
        assert reg.counter_value("protocol_reveals_total") == 5.0
        assert reg.counter_value("protocol_commits_total") == 1.0
        assert reg.counter_value("protocol_excluded_bids_total") == 0.0
        assert reg.gauge_value("protocol_last_quorum") == float(
            len(result.accepted_by)
        )

    def test_ledger_metrics_recorded(self):
        obs, result = self._run()
        reg = obs.registry
        assert reg.counter_value("ledger_blocks_mined_total") == 1.0
        assert reg.counter_value("ledger_pow_iterations_total") == float(
            result.block.preamble.pow_nonce + 1
        )
        txs = reg.histogram_stats("ledger_block_txs")
        assert txs["count"] == 1
        assert txs["sum"] == len(result.block.preamble.transactions)
        assert reg.histogram_stats("ledger_block_bytes")["sum"] == len(
            result.block.preamble.canonical_bytes
        )

    def test_no_degradation_events_in_clean_round(self):
        obs, _ = self._run()
        for name in (
            "reveal.retry",
            "reveal.excluded",
            "reveal.timeout",
            "round.aborted",
            "round.fallback",
            "proposal.rejected",
        ):
            assert _events(obs, name) == [], name

    def test_phase_timer_covers_protocol_phases(self):
        obs, _ = self._run()
        assert {
            "seal", "mine", "reveal", "propose", "verify", "commit",
        } <= set(obs.timer.totals)
        assert obs.timer.aborted == {}


class TestDegradedRoundTrace:
    def test_excluded_bid_emits_exactly_one_exclusion_event(self):
        obs = Observability("degraded-round")
        protocol = ExposureProtocol(miners=_network(), obs=obs)
        participants, alice_txid = _market(
            protocol, alice_cls=WithholdingParticipant
        )
        result = protocol.run_round(participants)
        assert result.excluded_txids == (alice_txid,)

        excluded_events = _events(obs, "reveal.excluded")
        assert [e["attrs"]["txid"] for e in excluded_events] == [alice_txid]
        assert obs.registry.counter_value(
            "protocol_excluded_bids_total"
        ) == 1.0
        # the withheld reveal forces retry sweeps before exclusion
        assert len(_events(obs, "reveal.retry")) >= 1
        assert obs.registry.counter_value(
            "protocol_reveal_retries_total"
        ) >= 1.0
        # the degraded round still commits, and says so
        committed = _events(obs, "round.committed")
        assert len(committed) == 1
        assert committed[0]["attrs"]["excluded"] == 1

    def test_fully_withheld_round_aborts_with_tagged_timings(self):
        obs = Observability("timeout-round")
        protocol = ExposureProtocol(miners=_network(), obs=obs)
        alice = WithholdingParticipant(
            participant_id="alice", deterministic=True
        )
        protocol.submit(alice, make_request(client_id="alice"))
        with pytest.raises(RevealTimeoutError):
            protocol.run_round([alice])

        assert len(_events(obs, "reveal.timeout")) == 1
        aborted = _events(obs, "round.aborted")
        assert len(aborted) == 1
        assert aborted[0]["attrs"]["error"] == "RevealTimeoutError"
        assert obs.registry.counter_value(
            "protocol_rounds_aborted_total", reason="RevealTimeoutError"
        ) == 1.0
        assert obs.registry.counter_value("protocol_commits_total") == 0.0

        # satellite: partial phase timings are flushed and tagged, not
        # dropped — mine/reveal ran, the round carries the abort marker
        assert obs.timer.aborted.get("round") == 1
        assert "mine" in obs.timer.totals
        assert "reveal" in obs.timer.totals
        assert "commit" not in obs.timer.totals

        # the round span closed with status=error despite the raise
        roots = build_tree(load_jsonl(obs.trace_jsonl()))
        round_node = next(r for r in roots if r["name"] == "round")
        assert round_node["status"] == "error"
        assert _span_names(round_node) == ["mine", "reveal"]


class TestCausalPropagationUnderFaults:
    """Message faults land on the *sender's* span; deliveries stay unique.

    Every bid broadcast crosses an UnreliableNetwork with observability
    attached: each (message, node) pair must produce exactly one
    ``deliver`` span parented on the sender's ``seal`` span, with
    duplication and reorder jitter recorded as events — never as extra
    delivery spans.
    """

    def _run(self, **plan_kwargs):
        obs = Observability("faulty-round")
        network = UnreliableNetwork(
            plan=FaultPlan(seed="causal", **plan_kwargs)
        )
        protocol = ExposureProtocol(
            miners=_network(), network=network, obs=obs
        )
        participants, _ = _market(protocol)
        result = protocol.run_round(participants)
        return obs, network, result

    def _bid_deliver_spans(self, obs):
        return [
            r
            for r in obs.tracer.records
            if r["type"] == "span_start"
            and r["name"] == "deliver"
            and r["attrs"]["topic"] == "bids"
        ]

    def test_duplicated_message_yields_exactly_one_delivery_span(self):
        obs, network, result = self._run(duplicate_rate=0.999)
        assert network.duplicated > 0
        assert result.excluded_txids == ()

        spans = self._bid_deliver_spans(obs)
        # 5 sealed bids x 3 miners, duplicates or not: one span each
        assert len(spans) == 15
        pairs = {(s["attrs"]["sender"], s["attrs"]["node"]) for s in spans}
        assert len(pairs) == 15
        # with no drops, every duplicated copy (flagged at send time)
        # shows up as exactly one duplicate-delivery event, never a span
        dup_sent = [
            e
            for e in _events(obs, "net.duplicate")
            if e["attrs"]["topic"] == "bids"
        ]
        dup_delivered = [
            e
            for e in _events(obs, "net.duplicate_delivery")
            if e["attrs"]["topic"] == "bids"
        ]
        assert len(dup_sent) >= 1
        assert len(dup_delivered) == len(dup_sent)
        assert obs.registry.counter_value(
            "net_delivered_total", topic="bids"
        ) == 15.0

    def test_reordered_message_yields_exactly_one_delivery_span(self):
        obs, network, result = self._run(
            reorder_rate=0.999, max_delay=0.01
        )
        assert result.excluded_txids == ()
        spans = self._bid_deliver_spans(obs)
        assert len(spans) == 15
        reorders = [
            e
            for e in _events(obs, "net.reorder")
            if e["attrs"]["topic"] == "bids"
        ]
        assert len(reorders) >= 1
        assert _events(obs, "net.duplicate_delivery") == []

    def test_delivery_spans_parent_on_the_senders_seal_span(self):
        obs, _, _ = self._run(duplicate_rate=0.999)
        seal_participant = {
            r["span"]: r["attrs"]["participant"]
            for r in obs.tracer.records
            if r["type"] == "span_start" and r["name"] == "seal"
        }
        spans = self._bid_deliver_spans(obs)
        assert spans
        for span in spans:
            assert seal_participant[span["parent"]] == span["attrs"]["sender"]

    def test_fault_events_attach_to_the_senders_seal_span(self):
        obs, network, _ = self._run(drop_rate=0.3)
        assert network.dropped > 0
        seal_participant = {
            r["span"]: r["attrs"]["participant"]
            for r in obs.tracer.records
            if r["type"] == "span_start" and r["name"] == "seal"
        }
        drops = [
            e for e in _events(obs, "net.drop")
            if e["attrs"]["topic"] == "bids"
        ]
        assert drops
        for event in drops:
            assert seal_participant[event["span"]] == event["attrs"]["sender"]

    def test_fault_sampling_identical_with_observability_off(self):
        def run(obs):
            network = UnreliableNetwork(
                plan=FaultPlan(
                    seed="causal", drop_rate=0.2, duplicate_rate=0.3,
                    reorder_rate=0.2, max_delay=0.02,
                )
            )
            protocol = ExposureProtocol(
                miners=_network(), network=network, obs=obs
            )
            participants, _ = _market(protocol)
            result = protocol.run_round(participants)
            return network, result

        net_on, res_on = run(Observability("on"))
        net_off, res_off = run(None)
        assert net_on.dropped == net_off.dropped
        assert net_on.duplicated == net_off.duplicated
        assert net_on.delivered == net_off.delivered
        assert res_on.outcome.to_payload() == res_off.outcome.to_payload()


class TestTraceExportDeterminism:
    def test_two_seeded_rounds_export_identical_stripped_traces(self):
        def run():
            obs = Observability("repro-round")
            protocol = ExposureProtocol(miners=_network(), obs=obs)
            participants, _ = _market(protocol)
            protocol.run_round(participants)
            return obs.trace_jsonl(strip_wall=True)

        assert run() == run()
