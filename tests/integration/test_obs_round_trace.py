"""Trace-based integration tests: what a protocol round *did*.

The exposure protocol runs with a live Observability attached and the
exported trace is asserted structurally — the span tree
``seal -> round(mine, reveal, propose, verify, commit)``, event counts,
and the registry's protocol/ledger series.  The degraded-round tests pin
the failure semantics: an excluded bid emits ``reveal.excluded`` exactly
once, a fully-withheld round emits ``reveal.timeout`` and aborts with
partial phase timings tagged ``aborted``.
"""

import pytest

from repro.common.errors import RevealTimeoutError
from repro.faults.actors import WithholdingParticipant
from repro.ledger.miner import Miner
from repro.obs import Observability
from repro.obs.report import build_tree
from repro.obs.trace import load_jsonl
from repro.protocol.allocator import DecloudAllocator
from repro.protocol.exposure import ExposureProtocol, Participant
from tests.conftest import make_offer, make_request


def _network(n=3, bits=6):
    return [
        Miner(
            miner_id=f"m{i}",
            allocate=DecloudAllocator(),
            difficulty_bits=bits,
        )
        for i in range(n)
    ]


def _market(protocol, alice_cls=Participant):
    """Five participants, enough buyer/seller pairs to actually trade."""
    alice = alice_cls(participant_id="alice", deterministic=True)
    anna = Participant(participant_id="anna", deterministic=True)
    ada = Participant(participant_id="ada", deterministic=True)
    bob = Participant(participant_id="bob", deterministic=True)
    ben = Participant(participant_id="ben", deterministic=True)
    alice_txid = protocol.submit(
        alice, make_request(request_id="ra", client_id="alice", bid=2.0)
    ).txid()
    protocol.submit(
        anna, make_request(request_id="rb", client_id="anna", bid=1.5)
    )
    protocol.submit(
        ada, make_request(request_id="rc", client_id="ada", bid=1.0)
    )
    protocol.submit(
        bob, make_offer(offer_id="ob", provider_id="bob", bid=0.4)
    )
    protocol.submit(
        ben, make_offer(offer_id="oc", provider_id="ben", bid=0.6)
    )
    return [alice, anna, ada, bob, ben], alice_txid


def _events(obs, name):
    return [
        r
        for r in obs.tracer.records
        if r["type"] == "event" and r["name"] == name
    ]


def _span_names(node):
    return [child["name"] for child in node["children"]]


class TestHealthyRoundTrace:
    def _run(self):
        obs = Observability("healthy-round")
        protocol = ExposureProtocol(miners=_network(), obs=obs)
        participants, _ = _market(protocol)
        result = protocol.run_round(participants)
        return obs, result

    def test_span_tree_seal_mine_reveal_propose_verify_commit(self):
        obs, _ = self._run()
        roots = build_tree(load_jsonl(obs.trace_jsonl()))
        names = [r["name"] for r in roots]
        # five seals (one per submitted bid), then the round span
        assert names == ["seal"] * 5 + ["round"]
        round_node = roots[-1]
        assert round_node["status"] == "ok"
        assert _span_names(round_node) == [
            "mine", "reveal", "propose", "verify", "commit",
        ]
        assert all(
            child["status"] == "ok" for child in round_node["children"]
        )

    def test_round_committed_event_exactly_once(self):
        obs, result = self._run()
        committed = _events(obs, "round.committed")
        assert len(committed) == 1
        assert committed[0]["attrs"]["height"] == result.block.height
        assert committed[0]["attrs"]["excluded"] == 0

    def test_registry_counts_match_round(self):
        obs, result = self._run()
        reg = obs.registry
        assert reg.counter_value("protocol_seals_total") == 5.0
        assert reg.counter_value("protocol_rounds_total") == 1.0
        assert reg.counter_value("protocol_reveals_total") == 5.0
        assert reg.counter_value("protocol_commits_total") == 1.0
        assert reg.counter_value("protocol_excluded_bids_total") == 0.0
        assert reg.gauge_value("protocol_last_quorum") == float(
            len(result.accepted_by)
        )

    def test_ledger_metrics_recorded(self):
        obs, result = self._run()
        reg = obs.registry
        assert reg.counter_value("ledger_blocks_mined_total") == 1.0
        assert reg.counter_value("ledger_pow_iterations_total") == float(
            result.block.preamble.pow_nonce + 1
        )
        txs = reg.histogram_stats("ledger_block_txs")
        assert txs["count"] == 1
        assert txs["sum"] == len(result.block.preamble.transactions)
        assert reg.histogram_stats("ledger_block_bytes")["sum"] == len(
            result.block.preamble.canonical_bytes
        )

    def test_no_degradation_events_in_clean_round(self):
        obs, _ = self._run()
        for name in (
            "reveal.retry",
            "reveal.excluded",
            "reveal.timeout",
            "round.aborted",
            "round.fallback",
            "proposal.rejected",
        ):
            assert _events(obs, name) == [], name

    def test_phase_timer_covers_protocol_phases(self):
        obs, _ = self._run()
        assert {
            "seal", "mine", "reveal", "propose", "verify", "commit",
        } <= set(obs.timer.totals)
        assert obs.timer.aborted == {}


class TestDegradedRoundTrace:
    def test_excluded_bid_emits_exactly_one_exclusion_event(self):
        obs = Observability("degraded-round")
        protocol = ExposureProtocol(miners=_network(), obs=obs)
        participants, alice_txid = _market(
            protocol, alice_cls=WithholdingParticipant
        )
        result = protocol.run_round(participants)
        assert result.excluded_txids == (alice_txid,)

        excluded_events = _events(obs, "reveal.excluded")
        assert [e["attrs"]["txid"] for e in excluded_events] == [alice_txid]
        assert obs.registry.counter_value(
            "protocol_excluded_bids_total"
        ) == 1.0
        # the withheld reveal forces retry sweeps before exclusion
        assert len(_events(obs, "reveal.retry")) >= 1
        assert obs.registry.counter_value(
            "protocol_reveal_retries_total"
        ) >= 1.0
        # the degraded round still commits, and says so
        committed = _events(obs, "round.committed")
        assert len(committed) == 1
        assert committed[0]["attrs"]["excluded"] == 1

    def test_fully_withheld_round_aborts_with_tagged_timings(self):
        obs = Observability("timeout-round")
        protocol = ExposureProtocol(miners=_network(), obs=obs)
        alice = WithholdingParticipant(
            participant_id="alice", deterministic=True
        )
        protocol.submit(alice, make_request(client_id="alice"))
        with pytest.raises(RevealTimeoutError):
            protocol.run_round([alice])

        assert len(_events(obs, "reveal.timeout")) == 1
        aborted = _events(obs, "round.aborted")
        assert len(aborted) == 1
        assert aborted[0]["attrs"]["error"] == "RevealTimeoutError"
        assert obs.registry.counter_value(
            "protocol_rounds_aborted_total", reason="RevealTimeoutError"
        ) == 1.0
        assert obs.registry.counter_value("protocol_commits_total") == 0.0

        # satellite: partial phase timings are flushed and tagged, not
        # dropped — mine/reveal ran, the round carries the abort marker
        assert obs.timer.aborted.get("round") == 1
        assert "mine" in obs.timer.totals
        assert "reveal" in obs.timer.totals
        assert "commit" not in obs.timer.totals

        # the round span closed with status=error despite the raise
        roots = build_tree(load_jsonl(obs.trace_jsonl()))
        round_node = next(r for r in roots if r["name"] == "round")
        assert round_node["status"] == "error"
        assert _span_names(round_node) == ["mine", "reveal"]


class TestTraceExportDeterminism:
    def test_two_seeded_rounds_export_identical_stripped_traces(self):
        def run():
            obs = Observability("repro-round")
            protocol = ExposureProtocol(miners=_network(), obs=obs)
            participants, _ = _market(protocol)
            protocol.run_round(participants)
            return obs.trace_jsonl(strip_wall=True)

        assert run() == run()
