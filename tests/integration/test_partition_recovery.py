"""Integration: a partitioned miner catches up from blocks alone.

A miner offline during a round missed the gossip (sealed bids and
reveals), yet the block carries everything needed to validate: the
preamble's transactions, the disclosed keys, and the allocation.  The
straggler must accept the block purely by re-execution and end at the
same chain tip — the property that makes DeCloud tolerate transient
partitions.
"""

from repro.ledger.miner import Miner
from repro.protocol.allocator import DecloudAllocator
from repro.protocol.exposure import Participant
from repro.ledger.block import Block
from tests.conftest import make_offer, make_request


def _run_rounds(online_miners, rounds):
    """Drive `rounds` full rounds on the online miners; return blocks."""
    blocks = []
    for round_index in range(rounds):
        alice = Participant(participant_id=f"alice-{round_index}")
        anna = Participant(participant_id=f"anna-{round_index}")
        bob = Participant(participant_id=f"bob-{round_index}")
        bids = [
            (alice, make_request(
                request_id=f"ra{round_index}",
                client_id=f"alice-{round_index}",
                bid=2.0,
            )),
            (anna, make_request(
                request_id=f"rb{round_index}",
                client_id=f"anna-{round_index}",
                bid=1.5,
            )),
            (bob, make_offer(
                offer_id=f"o{round_index}",
                provider_id=f"bob-{round_index}",
                bid=0.4,
            )),
        ]
        for participant, bid in bids:
            tx = participant.seal(bid)
            for miner in online_miners:
                miner.accept_transaction(tx)
        leader = online_miners[round_index % len(online_miners)]
        preamble = leader.build_preamble()
        reveals = []
        for participant, _ in bids:
            reveals.extend(participant.reveals_for(preamble))
        block = Block(
            preamble=preamble,
            body=leader.build_body(preamble, tuple(reveals)),
        )
        for miner in online_miners:
            miner.accept_block(block)
        blocks.append(block)
    return blocks


def test_straggler_catches_up_from_blocks():
    online = [
        Miner(miner_id=f"m{i}", allocate=DecloudAllocator(), difficulty_bits=6)
        for i in range(2)
    ]
    straggler = Miner(
        miner_id="late", allocate=DecloudAllocator(), difficulty_bits=6
    )

    blocks = _run_rounds(online, rounds=3)
    assert all(len(m.chain) == 3 for m in online)
    assert len(straggler.chain) == 0  # saw nothing

    # Partition heals: the straggler receives the blocks in order and
    # validates each one from its own re-execution — no gossip replay.
    for block in blocks:
        straggler.accept_block(block)
    assert len(straggler.chain) == 3
    assert straggler.chain.tip_hash == online[0].chain.tip_hash
    assert straggler.chain.verify_linkage()


def test_straggler_rejects_out_of_order_blocks():
    import pytest

    from repro.common.errors import InvalidBlockError

    online = [
        Miner(miner_id="m0", allocate=DecloudAllocator(), difficulty_bits=6)
    ]
    straggler = Miner(
        miner_id="late", allocate=DecloudAllocator(), difficulty_bits=6
    )
    blocks = _run_rounds(online, rounds=2)
    with pytest.raises(InvalidBlockError):
        straggler.accept_block(blocks[1])  # height 1 before height 0
    straggler.accept_block(blocks[0])
    straggler.accept_block(blocks[1])
    assert len(straggler.chain) == 2
