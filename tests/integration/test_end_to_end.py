"""Integration: workload -> ledger protocol -> auction -> contracts."""

import pytest

from repro.common.rng import make_generator
from repro.core.auction import DecloudAuction
from repro.experiments.sweeps import eval_config
from repro.protocol.contracts import AgreementState, AllocationContract
from repro.protocol.exposure import Participant, build_miner_network
from repro.workloads.ec2_catalog import ProviderCatalog
from repro.workloads.google_trace import GoogleTraceWorkload, assign_valuations


@pytest.fixture(scope="module")
def market():
    rng = make_generator("integration")
    offers = ProviderCatalog().sample_offers(8, rng=rng)
    requests = GoogleTraceWorkload().sample_requests(16, rng=rng)
    requests = assign_valuations(requests, offers, rng=rng)
    # Re-own bids so each participant id matches its sender id.
    return requests, offers


class TestLedgerBackedAuction:
    def test_full_round_matches_direct_run(self, market):
        requests, offers = market
        protocol = build_miner_network(
            num_miners=3, config=eval_config(), difficulty_bits=6
        )
        clients = {
            r.client_id: Participant(participant_id=r.client_id)
            for r in requests
        }
        providers = {
            o.provider_id: Participant(participant_id=o.provider_id)
            for o in offers
        }
        for request in requests:
            protocol.submit(clients[request.client_id], request)
        for offer in offers:
            protocol.submit(providers[offer.provider_id], offer)

        result = protocol.run_round(
            list(clients.values()) + list(providers.values())
        )
        # Every miner accepted and holds the identical chain tip.
        assert len(result.accepted_by) == 3
        tips = {m.chain.tip_hash for m in protocol.miners}
        assert len(tips) == 1

        # The ledger-backed allocation equals a direct run seeded with the
        # same evidence — the round is a pure function of (bids, evidence).
        direct = DecloudAuction(eval_config()).run(
            requests, offers, evidence=result.block.preamble.evidence()
        )
        assert direct.to_payload() == result.block.body.allocation

    def test_agreement_lifecycle(self, market):
        requests, offers = market
        protocol = build_miner_network(
            num_miners=2, config=eval_config(), difficulty_bits=6
        )
        clients = {
            r.client_id: Participant(participant_id=r.client_id)
            for r in requests
        }
        providers = {
            o.provider_id: Participant(participant_id=o.provider_id)
            for o in offers
        }
        for request in requests:
            protocol.submit(clients[request.client_id], request)
        for offer in offers:
            protocol.submit(providers[offer.provider_id], offer)
        result = protocol.run_round(
            list(clients.values()) + list(providers.values())
        )
        outcome = result.outcome
        assert outcome.num_trades > 0

        contract = AllocationContract(chain=protocol.miners[0].chain)
        block_hash = result.block.hash()
        contract.register_block(
            block_hash,
            {m.request.request_id: m.request.client_id for m in outcome.matches},
        )
        for match in outcome.matches:
            agreement = contract.accept(
                match.request.client_id, block_hash, match.request.request_id
            )
            assert agreement.state is AgreementState.AGREED
        assert len(contract.agreements(AgreementState.AGREED)) == len(
            outcome.matches
        )


class TestMultiRoundResubmission:
    def test_unmatched_resubmit_and_eventually_trade(self):
        """Requests unmatched in round 1 can trade in round 2 (§III-B)."""
        rng = make_generator("resubmit")
        offers = ProviderCatalog().sample_offers(4, rng=rng)
        requests = GoogleTraceWorkload().sample_requests(10, rng=rng)
        requests = assign_valuations(
            requests, offers, rng=rng, coefficient_range=(1.5, 2.0)
        )

        protocol = build_miner_network(
            num_miners=2, config=eval_config(), difficulty_bits=6
        )
        clients = {
            r.client_id: Participant(participant_id=r.client_id)
            for r in requests
        }
        providers = {
            o.provider_id: Participant(participant_id=o.provider_id)
            for o in offers
        }

        pending = list(requests)
        total_matched = 0
        for _round in range(3):
            if not pending:
                break
            for request in pending:
                protocol.submit(clients[request.client_id], request)
            for offer in offers:
                resubmitted = offer.replace_bid(offer.bid)  # same offer again
                protocol.submit(providers[offer.provider_id], resubmitted)
            result = protocol.run_round(
                list(clients.values()) + list(providers.values())
            )
            matched_ids = {
                m.request.request_id for m in result.outcome.matches
            }
            total_matched += len(matched_ids)
            pending = [
                r for r in pending if r.request_id not in matched_ids
            ]
        assert total_matched > 0
        assert all(len(m.chain) >= 1 for m in protocol.miners)
