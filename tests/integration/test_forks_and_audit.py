"""Integration: fork reorgs with protocol blocks + universal auditing."""

import pytest

from repro.core.audit import audit_outcome
from repro.ledger.block import GENESIS_PARENT
from repro.ledger.forks import BlockTree
from repro.ledger.miner import Miner
from repro.protocol.allocator import DecloudAllocator, decode_round
from repro.protocol.exposure import Participant
from tests.conftest import make_offer, make_request


def _mine_block(miner, participants_and_bids, parent_hash=None, height=None):
    """Run the two-phase flow on one miner and return the block."""
    reveals = []
    for participant, bid in participants_and_bids:
        tx = participant.seal(bid)
        miner.accept_transaction(tx)
    preamble = miner.build_preamble()
    if parent_hash is not None or height is not None:
        # Rebuild at an explicit chain position (for forks).
        from repro.ledger import pow as pow_mod
        from repro.ledger.block import BlockPreamble

        preamble = BlockPreamble(
            height=height if height is not None else preamble.height,
            parent_hash=(
                parent_hash if parent_hash is not None else preamble.parent_hash
            ),
            transactions=preamble.transactions,
            timestamp=preamble.timestamp,
        )
        nonce = pow_mod.solve(
            preamble.pow_payload(), miner.difficulty_bits
        )
        preamble = preamble.with_nonce(nonce)
    for participant, _ in participants_and_bids:
        reveals.extend(participant.reveals_for(preamble))
    body = miner.build_body(preamble, tuple(reveals))
    from repro.ledger.block import Block

    return Block(preamble=preamble, body=body)


def _participants(tag):
    alice = Participant(participant_id=f"alice-{tag}")
    anna = Participant(participant_id=f"anna-{tag}")
    bob = Participant(participant_id=f"bob-{tag}")
    return [
        (alice, make_request(
            request_id=f"ra-{tag}", client_id=f"alice-{tag}", bid=2.0
        )),
        (anna, make_request(
            request_id=f"rb-{tag}", client_id=f"anna-{tag}", bid=1.5
        )),
        (bob, make_offer(
            offer_id=f"o-{tag}", provider_id=f"bob-{tag}", bid=0.4
        )),
    ]


class TestForkReorg:
    def test_protocol_blocks_flow_through_tree(self):
        tree = BlockTree(difficulty_bits=6)
        miner_a = Miner(
            miner_id="a", allocate=DecloudAllocator(), difficulty_bits=6
        )
        block0 = _mine_block(miner_a, _participants("r0"))
        root = tree.add_block(block0)

        # Two miners extend the root concurrently -> a fork.
        miner_b = Miner(
            miner_id="b", allocate=DecloudAllocator(), difficulty_bits=6
        )
        miner_c = Miner(
            miner_id="c", allocate=DecloudAllocator(), difficulty_bits=6
        )
        fork_b = _mine_block(
            miner_b, _participants("rb"), parent_hash=root, height=1
        )
        fork_c = _mine_block(
            miner_c, _participants("rc"), parent_hash=root, height=1
        )
        hash_b = tree.add_block(fork_b)
        tree.add_block(fork_c)
        assert tree.head() == hash_b  # first arrival wins the tie

        # Fork C grows a second block: the tree reorganizes onto C.
        miner_c2 = Miner(
            miner_id="c2", allocate=DecloudAllocator(), difficulty_bits=6
        )
        fork_c2 = _mine_block(
            miner_c2,
            _participants("rc2"),
            parent_hash=fork_c.hash(),
            height=2,
        )
        head = tree.add_block(fork_c2)
        assert tree.head() == head
        canonical = [b.hash() for b in tree.canonical_chain()]
        assert canonical == [root, fork_c.hash(), fork_c2.hash()]
        # Block B's allocation is void (orphaned); its participants are
        # free to resubmit.
        orphans = {b.hash() for b in tree.orphaned_blocks()}
        assert fork_b.hash() in orphans


class TestBlockAudit:
    def test_every_chain_block_audits_clean(self):
        """Any observer can audit any block from its revealed content."""
        miner = Miner(
            miner_id="m", allocate=DecloudAllocator(), difficulty_bits=6
        )
        block = _mine_block(miner, _participants("x"))
        body = block.require_complete()
        plaintexts = Miner._open_transactions(block.preamble, body.reveals)
        requests, offers = decode_round(plaintexts)

        allocator = DecloudAllocator()
        allocator(plaintexts, block.preamble.evidence())
        outcome = allocator.last_outcome
        assert outcome is not None
        assert outcome.to_payload() == body.allocation
        report = audit_outcome(requests, offers, outcome)
        assert report.ok, str(report)
