"""Integration: multi-container jobs through contracts and reputation.

An ALL_OR_NOTHING job that lands only partially must deny its placed
containers via the contract; the denial costs reputation and queues the
providers' offers for resubmission — the full §III-B loop driven by the
job layer.
"""

import pytest

from repro.common.timewindow import TimeWindow
from repro.experiments.sweeps import eval_config
from repro.market.jobs import CompletionPolicy, Job, ServiceSpec
from repro.protocol.contracts import AgreementState, AllocationContract
from repro.protocol.exposure import Participant, build_miner_network
from tests.conftest import make_offer, make_request


def _run_job_round(policy):
    protocol = build_miner_network(
        num_miners=2, config=eval_config(), difficulty_bits=6
    )
    acme = Participant(participant_id="acme")
    filler = Participant(participant_id="filler")
    providers = [
        Participant(participant_id=f"prov-{i}") for i in range(2)
    ]

    services = [
        ServiceSpec(name="web", resources={"cpu": 2, "ram": 4}, replicas=2),
        ServiceSpec(name="db", resources={"cpu": 4, "ram": 16}),
    ]
    if policy is CompletionPolicy.ALL_OR_NOTHING:
        # One service no machine can host: the job *must* be partial.
        services.append(
            ServiceSpec(name="giant", resources={"cpu": 64, "ram": 256})
        )
    job = Job(
        job_id="shop",
        client_id="acme",
        services=services,
        window=TimeWindow(0, 24),
        duration=6.0,
        budget=6.0,
        policy=policy,
    )
    for request in job.to_requests():
        protocol.submit(acme, request)
    # A filler client so trade reduction has someone to exclude.
    protocol.submit(
        filler,
        make_request(request_id="filler-r", client_id="filler", bid=0.3,
                     duration=4.0),
    )
    for i, provider in enumerate(providers):
        protocol.submit(
            provider,
            make_offer(
                offer_id=f"off-{i}",
                provider_id=provider.participant_id,
                resources={"cpu": 16, "ram": 64, "disk": 500},
                bid=1.0 + 0.2 * i,
            ),
        )
    result = protocol.run_round([acme, filler] + providers)
    return protocol, job, result


class TestJobContractFlow:
    def test_complete_job_accepts_everything(self):
        protocol, job, result = _run_job_round(CompletionPolicy.BEST_EFFORT)
        outcome = result.outcome
        placed = job.placed_containers(outcome)
        assert placed, "job found no capacity at all"

        contract = AllocationContract(chain=protocol.miners[0].chain)
        block_hash = result.block.hash()
        contract.register_block(
            block_hash,
            {m.request.request_id: m.request.client_id for m in outcome.matches},
        )
        for request_id in placed:
            agreement = contract.accept("acme", block_hash, request_id)
            assert agreement.state is AgreementState.AGREED
        assert contract.reputation.score("acme") == 1.0

    def test_partial_all_or_nothing_denies_and_pays_reputation(self):
        protocol, job, result = _run_job_round(
            CompletionPolicy.ALL_OR_NOTHING
        )
        outcome = result.outcome
        denials = job.denials_required(outcome)
        assert not job.is_complete(outcome)  # the giant service never fits
        if not denials:
            pytest.skip("no container placed at all this round")

        contract = AllocationContract(chain=protocol.miners[0].chain)
        block_hash = result.block.hash()
        contract.register_block(
            block_hash,
            {m.request.request_id: m.request.client_id for m in outcome.matches},
        )
        before = contract.reputation.score("acme")
        for request_id in denials:
            contract.deny("acme", block_hash, request_id)
        assert contract.reputation.score("acme") < before
        # Every denied offer is queued for provider resubmission.
        assert len(contract.resubmission_queue) == len(denials)

    def test_job_payment_within_budget(self):
        _, job, result = _run_job_round(CompletionPolicy.BEST_EFFORT)
        assert job.total_payment(result.outcome) <= job.budget + 1e-9
