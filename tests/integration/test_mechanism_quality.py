"""Integration: economic quality of the mechanism against references."""

import pytest

from repro.baselines.greedy import GreedyBenchmark
from repro.baselines.optimal import optimal_welfare
from repro.core.auction import DecloudAuction
from repro.experiments.sweeps import eval_config
from repro.workloads.generators import MarketScenario


class TestAgainstOptimal:
    @pytest.mark.parametrize("seed", range(5))
    def test_bounded_by_optimal_small_markets(self, seed):
        requests, offers = MarketScenario(
            n_requests=8, offers_per_request=0.5, seed=seed
        ).generate()
        best = optimal_welfare(requests, offers)
        truthful = DecloudAuction(eval_config()).run(requests, offers).welfare
        greedy = GreedyBenchmark(eval_config()).run(requests, offers).welfare
        assert truthful <= best + 1e-9
        assert greedy <= best + 1e-9

    @pytest.mark.parametrize("seed", range(5))
    def test_greedy_captures_most_of_optimal(self, seed):
        requests, offers = MarketScenario(
            n_requests=8, offers_per_request=0.75, seed=seed
        ).generate()
        best = optimal_welfare(requests, offers)
        if best <= 0:
            pytest.skip("degenerate market")
        greedy = GreedyBenchmark(eval_config()).run(requests, offers).welfare
        assert greedy >= 0.5 * best


class TestScalingBehaviour:
    def test_welfare_ratio_band_across_sizes(self):
        ratios = []
        for n in (50, 100, 200):
            for seed in range(3):
                requests, offers = MarketScenario(
                    n_requests=n, seed=seed
                ).generate()
                truthful = DecloudAuction(eval_config()).run(requests, offers)
                greedy = GreedyBenchmark(eval_config()).run(requests, offers)
                if greedy.welfare > 0:
                    ratios.append(truthful.welfare / greedy.welfare)
        mean_ratio = sum(ratios) / len(ratios)
        # The paper's qualitative band: a modest but bounded DSIC cost.
        assert 0.7 <= mean_ratio <= 1.02

    def test_reduced_trades_modest(self):
        fractions = []
        for n in (100, 200):
            for seed in range(3):
                requests, offers = MarketScenario(
                    n_requests=n, seed=seed
                ).generate()
                truthful = DecloudAuction(eval_config()).run(requests, offers)
                greedy = GreedyBenchmark(eval_config()).run(requests, offers)
                if greedy.num_trades:
                    lost = max(0, greedy.num_trades - truthful.num_trades)
                    fractions.append(lost / greedy.num_trades)
        assert sum(fractions) / len(fractions) < 0.10
