"""Chaos and crash-matrix suites driven through the async runtime.

Every harness in :mod:`repro.sim.chaos` takes ``engine="runtime"``:
the same seeded markets, Byzantine actors, fault plans, and crash
points, but driven by the pipelined reactor instead of the lockstep
engine.  The assertions mirror the lockstep suites — graceful
degradation under message loss, mechanism integrity on every committed
block, and the crash-matrix differential: a crash at any WAL boundary
(possibly with *several* pipelined rounds in flight) recovers to
bit-identical outcomes, chain tip, and ledger state.
"""

import pytest

from repro.faults.crash import CrashPoint
from repro.sim.chaos import (
    ChaosSpec,
    CrashMatrixResult,
    run_chaos_point,
    run_chaos_sweep,
    run_crash_matrix,
    run_durable_scenario,
)

#: Byzantine but network-deterministic (drop_rate stays 0 in the crash
#: matrix): committed outcomes are schedule-invariant only for lossless
#: plans, and the continuation runtime after a crash necessarily runs a
#: different schedule than the reference.
MATRIX_SPEC = ChaosSpec(
    num_clients=2,
    num_providers=1,
    num_miners=3,
    rounds=2,
    seed=11,
    withholding_clients=1,
    equivocating_leader=True,
)

SWEEP_SPEC = ChaosSpec(num_clients=4, num_providers=2, rounds=2, seed=3)


class TestRuntimeChaosSweep:
    def test_fault_free_point_matches_lockstep_welfare(self):
        lockstep = run_chaos_point(
            SWEEP_SPEC, 0.0, byzantine=False, engine="lockstep"
        )
        runtime = run_chaos_point(
            SWEEP_SPEC, 0.0, byzantine=False, engine="runtime"
        )
        assert runtime.rounds_completed == lockstep.rounds_completed
        assert runtime.welfare == pytest.approx(lockstep.welfare, abs=1e-9)
        assert runtime.integrity_failures == 0
        assert runtime.errors == []

    def test_sweep_degrades_gracefully(self):
        points = run_chaos_sweep(
            SWEEP_SPEC, drop_rates=(0.0, 0.3), engine="runtime"
        )
        clean, degraded = points
        assert clean.success_rate == 1.0
        assert clean.integrity_failures == 0
        assert clean.welfare_retention == pytest.approx(1.0)
        # every committed block still decodes to the fault-free replay
        # on its own survivor set, however lossy the network was
        assert degraded.integrity_failures == 0
        assert degraded.messages_dropped > 0

    def test_byzantine_point_excludes_withholder_and_falls_back(self):
        spec = ChaosSpec(
            num_clients=4,
            num_providers=2,
            rounds=2,
            seed=3,
            withholding_clients=1,
            equivocating_leader=True,
        )
        point = run_chaos_point(spec, 0.0, byzantine=True, engine="runtime")
        assert point.rounds_completed == spec.rounds
        assert point.excluded_bids >= spec.rounds  # one withheld bid/round
        # the equivocator leads (and gets rejected) once per rotation
        assert point.fallback_rounds >= 1
        assert point.integrity_failures == 0

    def test_monitored_sweep_raises_no_alerts(self):
        point = run_chaos_point(
            SWEEP_SPEC, 0.15, monitored=True, engine="runtime"
        )
        assert point.monitor_alerts == 0


class TestRuntimeDurableScenario:
    def test_uninterrupted_run_is_deterministic(self):
        first = run_durable_scenario(MATRIX_SPEC, engine="runtime")
        second = run_durable_scenario(MATRIX_SPEC, engine="runtime")
        assert first.crashes == 0
        assert all(o is not None for o in first.outcomes)
        assert first.outcomes == second.outcomes
        assert first.tip_hash == second.tip_hash
        assert first.state_digest == second.state_digest

    def test_mid_pipeline_crash_recovers_bit_identically(self):
        reference = run_durable_scenario(MATRIX_SPEC, engine="runtime")
        crashed = run_durable_scenario(
            MATRIX_SPEC,
            crash_point=CrashPoint(at_append=2, mode="torn"),
            engine="runtime",
        )
        assert crashed.crashes == 1
        assert crashed.replayed_rounds >= 1
        assert crashed.outcomes == reference.outcomes
        assert crashed.tip_hash == reference.tip_hash
        assert crashed.state_digest == reference.state_digest

    def test_unfired_crash_point_changes_nothing(self):
        reference = run_durable_scenario(MATRIX_SPEC, engine="runtime")
        beyond = CrashPoint(at_append=reference.append_count + 10)
        untouched = run_durable_scenario(
            MATRIX_SPEC, crash_point=beyond, engine="runtime"
        )
        assert not beyond.fired
        assert untouched.crashes == 0
        assert untouched.state_digest == reference.state_digest


@pytest.fixture(scope="module")
def matrix() -> CrashMatrixResult:
    return run_crash_matrix(MATRIX_SPEC, stride=5, engine="runtime")


class TestRuntimeCrashMatrix:
    def test_reference_run_is_clean(self, matrix):
        assert matrix.reference.crashes == 0
        assert matrix.reference.monitor_alerts == 0
        assert all(o is not None for o in matrix.reference.outcomes)

    def test_strided_boundaries_covered_in_every_mode(self, matrix):
        assert matrix.reference.append_count > 0
        assert len(matrix.points) >= 3
        assert {p.mode for p in matrix.points} == {"clean", "torn", "corrupt"}
        assert all(p.fired for p in matrix.points)
        assert all(p.crashes >= 1 for p in matrix.points)

    def test_all_crash_points_recover_bit_identically(self, matrix):
        assert matrix.all_match, "\n".join(
            f"at_append={p.at_append} mode={p.mode}: {p.detail}"
            for p in matrix.mismatches
        )

    def test_both_recovery_paths_exercised(self, matrix):
        # late boundaries leave earlier pipelined rounds durably decided
        # (credited from the chain); the in-flight tail replays
        assert any(p.resumed_rounds for p in matrix.points)
        assert any(p.replayed_rounds for p in matrix.points)
