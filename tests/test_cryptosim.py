"""Unit tests for the cryptographic primitives."""

import pytest

from repro.common.errors import DecryptionError, SignatureError
from repro.cryptosim import commitments, hashing, schnorr, symmetric


class TestHashing:
    def test_sha256_known_vector(self):
        assert (
            hashing.sha256_hex(b"abc")
            == "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
        )

    def test_canonical_json_key_order_independent(self):
        assert hashing.canonical_json({"b": 1, "a": 2}) == hashing.canonical_json(
            {"a": 2, "b": 1}
        )

    def test_hash_obj_stable(self):
        assert hashing.hash_obj([1, "x"]) == hashing.hash_obj([1, "x"])

    def test_hash_concat_framing(self):
        # Length-prefixing means ("ab","c") != ("a","bc").
        assert hashing.hash_concat(b"ab", b"c") != hashing.hash_concat(b"a", b"bc")


class TestSchnorrGroup:
    def test_generator_order(self):
        assert pow(schnorr.G, schnorr.Q, schnorr.P) == 1

    def test_safe_prime_relation(self):
        assert schnorr.P == 2 * schnorr.Q + 1


class TestSchnorrSignatures:
    def test_sign_verify_roundtrip(self):
        keypair = schnorr.KeyPair.generate(seed=b"k1")
        signature = schnorr.sign(keypair.secret, b"message")
        assert schnorr.verify(keypair.public, b"message", signature)

    def test_wrong_message_fails(self):
        keypair = schnorr.KeyPair.generate(seed=b"k1")
        signature = schnorr.sign(keypair.secret, b"message")
        assert not schnorr.verify(keypair.public, b"other", signature)

    def test_wrong_key_fails(self):
        keypair = schnorr.KeyPair.generate(seed=b"k1")
        other = schnorr.KeyPair.generate(seed=b"k2")
        signature = schnorr.sign(keypair.secret, b"message")
        assert not schnorr.verify(other.public, b"message", signature)

    def test_tampered_signature_fails(self):
        keypair = schnorr.KeyPair.generate(seed=b"k1")
        challenge, response = schnorr.sign(keypair.secret, b"message")
        assert not schnorr.verify(
            keypair.public, b"message", (challenge, (response + 1) % schnorr.Q)
        )

    def test_deterministic_signing(self):
        keypair = schnorr.KeyPair.generate(seed=b"k1")
        assert schnorr.sign(keypair.secret, b"m") == schnorr.sign(
            keypair.secret, b"m"
        )

    def test_seeded_keygen_deterministic(self):
        assert schnorr.KeyPair.generate(seed=b"s") == schnorr.KeyPair.generate(
            seed=b"s"
        )

    def test_unseeded_keygen_random(self):
        assert schnorr.KeyPair.generate() != schnorr.KeyPair.generate()

    def test_malformed_signature_rejected(self):
        keypair = schnorr.KeyPair.generate(seed=b"k1")
        assert not schnorr.verify(keypair.public, b"m", (0, 0))
        assert not schnorr.verify(keypair.public, b"m", "garbage")  # type: ignore[arg-type]
        assert not schnorr.verify(keypair.public, b"m", (-1, 5))

    def test_require_valid_raises(self):
        keypair = schnorr.KeyPair.generate(seed=b"k1")
        with pytest.raises(SignatureError):
            schnorr.require_valid(keypair.public, b"m", (1, 1))


class TestSymmetric:
    def test_roundtrip(self):
        key = symmetric.generate_key(seed=b"s")
        box = symmetric.encrypt(key, b"secret bid data")
        assert symmetric.decrypt(key, box) == b"secret bid data"

    def test_empty_plaintext(self):
        key = symmetric.generate_key(seed=b"s")
        assert symmetric.decrypt(key, symmetric.encrypt(key, b"")) == b""

    def test_long_plaintext(self):
        key = symmetric.generate_key(seed=b"s")
        plaintext = bytes(range(256)) * 41
        assert symmetric.decrypt(key, symmetric.encrypt(key, plaintext)) == plaintext

    def test_wrong_key_raises(self):
        box = symmetric.encrypt(symmetric.generate_key(seed=b"a"), b"data")
        with pytest.raises(DecryptionError):
            symmetric.decrypt(symmetric.generate_key(seed=b"b"), box)

    def test_tampered_ciphertext_raises(self):
        key = symmetric.generate_key(seed=b"s")
        box = symmetric.encrypt(key, b"data!")
        bad = symmetric.SealedBox(
            nonce=box.nonce,
            ciphertext=bytes([box.ciphertext[0] ^ 1]) + box.ciphertext[1:],
            tag=box.tag,
        )
        with pytest.raises(DecryptionError):
            symmetric.decrypt(key, bad)

    def test_tampered_tag_raises(self):
        key = symmetric.generate_key(seed=b"s")
        box = symmetric.encrypt(key, b"data!")
        bad = symmetric.SealedBox(
            nonce=box.nonce,
            ciphertext=box.ciphertext,
            tag=bytes([box.tag[0] ^ 1]) + box.tag[1:],
        )
        with pytest.raises(DecryptionError):
            symmetric.decrypt(key, bad)

    def test_bytes_roundtrip(self):
        key = symmetric.generate_key(seed=b"s")
        box = symmetric.encrypt(key, b"payload")
        parsed = symmetric.SealedBox.from_bytes(box.to_bytes())
        assert symmetric.decrypt(key, parsed) == b"payload"

    def test_short_box_rejected(self):
        with pytest.raises(DecryptionError):
            symmetric.SealedBox.from_bytes(b"short")

    def test_bad_key_size_rejected(self):
        with pytest.raises(DecryptionError):
            symmetric.encrypt(b"short-key", b"data")

    def test_distinct_nonces_give_distinct_ciphertexts(self):
        key = symmetric.generate_key(seed=b"s")
        a = symmetric.encrypt(key, b"data", nonce=b"0" * 16)
        b = symmetric.encrypt(key, b"data", nonce=b"1" * 16)
        assert a.ciphertext != b.ciphertext


class TestCommitments:
    def test_open_valid(self):
        commitment, opening = commitments.commit(b"value")
        assert commitments.verify_opening(commitment, opening)

    def test_wrong_value_fails(self):
        commitment, opening = commitments.commit(b"value")
        bad = commitments.Opening(value=b"other", blind=opening.blind)
        assert not commitments.verify_opening(commitment, bad)

    def test_wrong_blind_fails(self):
        commitment, opening = commitments.commit(b"value")
        bad = commitments.Opening(value=opening.value, blind=b"x" * 16)
        assert not commitments.verify_opening(commitment, bad)

    def test_hiding(self):
        a, _ = commitments.commit(b"value", blind=b"A" * 16)
        b, _ = commitments.commit(b"value", blind=b"B" * 16)
        assert a.digest != b.digest

    def test_short_blind_rejected(self):
        from repro.common.errors import CryptoError

        with pytest.raises(CryptoError):
            commitments.commit(b"v", blind=b"xy")
