"""Smoke tests: every example script runs to completion.

Examples are documentation that executes; breaking one silently is worse
than a failing test.  The slowest scripts run with reduced settings via
environment knobs where they expose none, so the whole set stays fast.
"""

import os
import subprocess
import sys

import pytest

EXAMPLES_DIR = os.path.join(os.path.dirname(__file__), "..", "examples")

FAST_EXAMPLES = [
    "quickstart.py",
    "iot_offloading.py",
    "sealed_bid_ledger.py",
    "private_enclave_market.py",
    "challenge_and_settlement.py",
    "edge_federation.py",
    "observability_demo.py",
    "degraded_round_demo.py",
    "pipelined_runtime_demo.py",
    "telemetry_demo.py",
]

SLOW_EXAMPLES = [
    "online_market.py",
    "flexibility_tradeoffs.py",
]


def _run(name, timeout=240, env=None):
    path = os.path.join(EXAMPLES_DIR, name)
    merged = dict(os.environ)
    if env:
        merged.update(env)
    return subprocess.run(
        [sys.executable, path],
        capture_output=True,
        text=True,
        timeout=timeout,
        env=merged,
    )


@pytest.mark.parametrize("name", FAST_EXAMPLES)
def test_fast_example_runs(name):
    result = _run(name)
    assert result.returncode == 0, result.stderr[-2000:]
    assert result.stdout.strip(), "example produced no output"


@pytest.mark.parametrize("name", SLOW_EXAMPLES)
def test_slow_example_runs(name):
    result = _run(name, timeout=600)
    assert result.returncode == 0, result.stderr[-2000:]
    assert "OK" in result.stdout or "Reading:" in result.stdout


def test_degraded_round_demo_renders_flight_bundle(tmp_path):
    result = _run(
        "degraded_round_demo.py", env={"PYTHONHASHSEED": "0"}
    )
    assert result.returncode == 0, result.stderr[-2000:]
    assert "triggered by QuorumError" in result.stdout
    assert "cli-0" in result.stdout
    assert result.stdout.rstrip().endswith("OK")


def test_sharding_sweep_reports_welfare_tradeoff(tmp_path):
    csv_path = str(tmp_path / "shard-sweep.csv")
    result = _run(
        "sharding_sweep.py",
        timeout=600,
        env={
            "DECLOUD_SWEEP_SIZES": "1000",
            "DECLOUD_SWEEP_WORKERS": "2",
            "DECLOUD_SWEEP_CSV": csv_path,
        },
    )
    assert result.returncode == 0, result.stderr[-2000:]
    assert "w-ratio" in result.stdout
    assert result.stdout.rstrip().endswith("OK")
    with open(csv_path) as handle:
        header = handle.readline()
    assert "welfare_ratio" in header and "spillover_trades" in header


def test_chaos_sweep_reports_monitor_alert_column():
    result = _run("chaos_sweep.py", timeout=600, env={"CHAOS_ROUNDS": "1"})
    assert result.returncode == 0, result.stderr[-2000:]
    assert "alerts" in result.stdout
    assert "passed all mechanism monitors" in result.stdout


def test_fault_free_chaos_sweep_produces_zero_monitor_alerts():
    from repro.sim.chaos import ChaosSpec, run_chaos_sweep

    spec = ChaosSpec(
        num_clients=4, num_providers=2, num_miners=3,
        rounds=1, seed=11, difficulty_bits=4,
    )
    points = run_chaos_sweep(
        spec, drop_rates=(0.0,), byzantine=False, monitored=True
    )
    assert [point.monitor_alerts for point in points] == [0]
    assert points[0].rounds_completed == 1
