"""Smoke tests: every example script runs to completion.

Examples are documentation that executes; breaking one silently is worse
than a failing test.  The slowest scripts run with reduced settings via
environment knobs where they expose none, so the whole set stays fast.
"""

import os
import subprocess
import sys

import pytest

EXAMPLES_DIR = os.path.join(os.path.dirname(__file__), "..", "examples")

FAST_EXAMPLES = [
    "quickstart.py",
    "iot_offloading.py",
    "sealed_bid_ledger.py",
    "private_enclave_market.py",
    "challenge_and_settlement.py",
    "edge_federation.py",
    "observability_demo.py",
]

SLOW_EXAMPLES = [
    "online_market.py",
    "flexibility_tradeoffs.py",
]


def _run(name, timeout=240):
    path = os.path.join(EXAMPLES_DIR, name)
    return subprocess.run(
        [sys.executable, path],
        capture_output=True,
        text=True,
        timeout=timeout,
    )


@pytest.mark.parametrize("name", FAST_EXAMPLES)
def test_fast_example_runs(name):
    result = _run(name)
    assert result.returncode == 0, result.stderr[-2000:]
    assert result.stdout.strip(), "example produced no output"


@pytest.mark.parametrize("name", SLOW_EXAMPLES)
def test_slow_example_runs(name):
    result = _run(name, timeout=600)
    assert result.returncode == 0, result.stderr[-2000:]
    assert "OK" in result.stdout or "Reading:" in result.stdout
