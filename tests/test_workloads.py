"""Unit tests for workload generation."""

import numpy as np
import pytest

from repro.common.errors import ValidationError
from repro.common.rng import make_generator
from repro.workloads.divergence import (
    CONFIG_CLASSES,
    DivergenceScenario,
    tilt_for_similarity,
    tilted_distribution,
)
from repro.workloads.ec2_catalog import (
    M5_INSTANCES,
    ProviderCatalog,
    instance_by_name,
)
from repro.workloads.generators import MarketScenario, generate_market
from repro.workloads.google_trace import GoogleTraceWorkload, assign_valuations


class TestEc2Catalog:
    def test_m5_family_matches_paper_ranges(self):
        cores = [i.vcpus for i in M5_INSTANCES]
        rams = [i.ram_gb for i in M5_INSTANCES]
        assert min(cores) == 2 and max(cores) == 16
        assert min(rams) == 8 and max(rams) == 64

    def test_published_prices(self):
        assert instance_by_name("m5.large").hourly_price == 0.096
        assert instance_by_name("m5.4xlarge").hourly_price == 0.768

    def test_unknown_instance_raises(self):
        with pytest.raises(ValidationError):
            instance_by_name("m5.metal")

    def test_sample_offers_deterministic(self):
        catalog = ProviderCatalog()
        a = catalog.sample_offers(10, rng=make_generator(3))
        b = catalog.sample_offers(10, rng=make_generator(3))
        assert [o.resources for o in a] == [o.resources for o in b]
        assert [o.bid for o in a] == [o.bid for o in b]

    def test_offers_within_family_envelope(self):
        catalog = ProviderCatalog()
        for offer in catalog.sample_offers(50, rng=make_generator(1)):
            assert 2 <= offer.resources["cpu"] <= 16
            assert 8 <= offer.resources["ram"] <= 64
            assert offer.bid > 0

    def test_weights_skew_distribution(self):
        catalog = ProviderCatalog()
        offers = catalog.sample_offers(
            200, rng=make_generator(5), weights=[1, 0, 0, 0]
        )
        assert all(o.resources["cpu"] == 2 for o in offers)

    def test_bad_weights_rejected(self):
        catalog = ProviderCatalog()
        with pytest.raises(ValidationError):
            catalog.sample_offers(5, weights=[1, 2])

    def test_cost_noise_bounds(self):
        catalog = ProviderCatalog(cost_noise=0.0, window_span=24.0)
        offers = catalog.sample_offers(20, rng=make_generator(2))
        for offer in offers:
            per_hour = offer.bid / 24.0
            assert any(
                per_hour == pytest.approx(inst.hourly_price)
                for inst in M5_INSTANCES
            )

    def test_invalid_noise_rejected(self):
        with pytest.raises(ValidationError):
            ProviderCatalog(cost_noise=1.5)


class TestGoogleTrace:
    def test_requests_shaped(self):
        workload = GoogleTraceWorkload()
        requests = workload.sample_requests(100, rng=make_generator(1))
        assert len(requests) == 100
        for request in requests:
            assert 0.25 <= request.resources["cpu"] <= 16
            assert 0.5 <= request.resources["ram"] <= 64
            assert request.duration <= workload.window_span
            assert request.bid == 0.0  # valuations assigned separately

    def test_heavy_tail_small_tasks_dominate(self):
        workload = GoogleTraceWorkload()
        requests = workload.sample_requests(500, rng=make_generator(2))
        cpus = np.array([r.resources["cpu"] for r in requests])
        assert np.median(cpus) < cpus.mean()  # right-skewed
        assert (cpus <= 4).mean() > 0.5  # most tasks are small

    def test_quantization(self):
        workload = GoogleTraceWorkload()
        requests = workload.sample_requests(50, rng=make_generator(3))
        for request in requests:
            assert (request.resources["cpu"] / 0.25) == pytest.approx(
                round(request.resources["cpu"] / 0.25)
            )

    def test_flexibility_marks_soft(self):
        workload = GoogleTraceWorkload(flexibility=0.8)
        request = workload.sample_requests(1, rng=make_generator(1))[0]
        assert request.flexibility == 0.8
        assert not request.is_strict("cpu")

    def test_invalid_params(self):
        with pytest.raises(ValidationError):
            GoogleTraceWorkload(ram_correlation=2.0)
        with pytest.raises(ValidationError):
            GoogleTraceWorkload(flexibility=0.0)


class TestAssignValuations:
    def test_values_positive_and_bounded(self):
        catalog = ProviderCatalog()
        offers = catalog.sample_offers(20, rng=make_generator(1))
        requests = GoogleTraceWorkload().sample_requests(
            50, rng=make_generator(2)
        )
        valued = assign_valuations(requests, offers, rng=make_generator(3))
        assert all(r.bid > 0 for r in valued)

    def test_coefficient_range_respected(self):
        from repro.core.matching import block_maxima, rank_offers
        from repro.core.welfare import resource_fraction

        catalog = ProviderCatalog()
        offers = catalog.sample_offers(10, rng=make_generator(1))
        requests = GoogleTraceWorkload().sample_requests(
            20, rng=make_generator(2)
        )
        valued = assign_valuations(
            requests, offers, rng=make_generator(3), coefficient_range=(1.0, 1.0)
        )
        maxima = block_maxima(requests, offers)
        for request in valued:
            ranked = rank_offers(request.strict_view(), offers, maxima)
            if not ranked:
                continue
            _, best = ranked[0]
            expected = resource_fraction(request.strict_view(), best) * best.bid
            assert request.bid == pytest.approx(expected)

    def test_flexibility_does_not_change_values(self):
        catalog = ProviderCatalog()
        offers = catalog.sample_offers(10, rng=make_generator(1))
        strict_requests = GoogleTraceWorkload(flexibility=1.0).sample_requests(
            20, rng=make_generator(2)
        )
        flexible_requests = GoogleTraceWorkload(flexibility=0.8).sample_requests(
            20, rng=make_generator(2)
        )
        a = assign_valuations(strict_requests, offers, rng=make_generator(3))
        b = assign_valuations(flexible_requests, offers, rng=make_generator(3))
        assert [r.bid for r in a] == pytest.approx([r.bid for r in b])

    def test_full_offer_basis(self):
        offers = ProviderCatalog().sample_offers(5, rng=make_generator(1))
        requests = GoogleTraceWorkload().sample_requests(5, rng=make_generator(2))
        valued = assign_valuations(
            requests, offers, rng=make_generator(3), basis="full_offer",
            coefficient_range=(1.0, 1.0),
        )
        # full-offer values are >= fraction values (fraction <= ... usually)
        assert all(r.bid > 0 for r in valued)

    def test_unknown_basis_rejected(self):
        offers = ProviderCatalog().sample_offers(2, rng=make_generator(1))
        with pytest.raises(ValidationError):
            assign_valuations([], offers, basis="vibes")

    def test_no_offers_rejected(self):
        with pytest.raises(ValidationError):
            assign_valuations([], [])


class TestDivergence:
    def test_tilted_distribution_sums_to_one(self):
        for tilt in (0.0, 0.5, 2.0):
            assert tilted_distribution(tilt, True).sum() == pytest.approx(1.0)

    def test_zero_tilt_uniform(self):
        dist = tilted_distribution(0.0, True)
        assert np.allclose(dist, 1.0 / len(CONFIG_CLASSES))

    def test_similarity_monotone_in_tilt(self):
        sims = [
            DivergenceScenario(tilt=t).similarity for t in (0.0, 0.3, 0.6, 1.0)
        ]
        assert sims == sorted(sims, reverse=True)
        assert sims[0] == pytest.approx(1.0)

    def test_tilt_for_similarity_inverts(self):
        for target in (0.2, 0.5, 0.8):
            tilt = tilt_for_similarity(target)
            assert DivergenceScenario(tilt=tilt).similarity == pytest.approx(
                target, abs=5e-3
            )

    def test_generate_deterministic(self):
        a = DivergenceScenario(tilt=0.5, seed=4).generate()
        b = DivergenceScenario(tilt=0.5, seed=4).generate()
        assert [r.bid for r in a[0]] == [r.bid for r in b[0]]

    def test_flexibility_pairing(self):
        strict, _ = DivergenceScenario(tilt=0.5, seed=4, flexibility=1.0).generate()
        flexible, _ = DivergenceScenario(tilt=0.5, seed=4, flexibility=0.8).generate()
        assert [r.resources for r in strict] == [r.resources for r in flexible]
        assert all(r.flexibility == 0.8 for r in flexible)

    def test_negative_tilt_rejected(self):
        with pytest.raises(ValidationError):
            DivergenceScenario(tilt=-1.0)


class TestMarketScenario:
    def test_generate_counts(self):
        scenario = MarketScenario(n_requests=40, offers_per_request=0.5, seed=1)
        requests, offers = scenario.generate()
        assert len(requests) == 40
        assert len(offers) == 20

    def test_deterministic_by_seed(self):
        a = MarketScenario(n_requests=10, seed=5).generate()
        b = MarketScenario(n_requests=10, seed=5).generate()
        assert [r.bid for r in a[0]] == [r.bid for r in b[0]]

    def test_different_seeds_differ(self):
        a = MarketScenario(n_requests=10, seed=5).generate()
        b = MarketScenario(n_requests=10, seed=6).generate()
        assert [r.bid for r in a[0]] != [r.bid for r in b[0]]

    def test_generate_market_helper(self):
        requests, offers = generate_market(12, n_offers=5, seed=2)
        assert len(requests) == 12
        assert len(offers) == 5

    def test_invalid_params(self):
        with pytest.raises(ValidationError):
            MarketScenario(n_requests=0)
        with pytest.raises(ValidationError):
            MarketScenario(n_requests=5, offers_per_request=0.0)
