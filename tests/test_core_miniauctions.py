"""Unit tests for mini-auction formation (Alg. 3)."""

from repro.core.cluster_allocation import allocate_cluster
from repro.core.clustering import Cluster
from repro.core.config import AuctionConfig
from repro.core.miniauctions import (
    build_mini_auctions,
    price_compatible,
    select_roots,
)
from tests.conftest import make_offer, make_request

CONFIG = AuctionConfig()


def _allocation(request_bids, offer_bids, tag, duration=4.0):
    """A one-cluster allocation whose price range derives from the bids."""
    requests = [
        make_request(request_id=f"r-{tag}-{i}", bid=bid, duration=duration)
        for i, bid in enumerate(request_bids)
    ]
    offers = [
        make_offer(offer_id=f"o-{tag}-{i}", bid=bid)
        for i, bid in enumerate(offer_bids)
    ]
    cluster = Cluster(
        offer_ids=frozenset(o.offer_id for o in offers),
        request_ids={r.request_id for r in requests},
    )
    return allocate_cluster(cluster, requests, offers, CONFIG)


class TestPriceCompatible:
    def test_overlapping_ranges_compatible(self):
        a = _allocation([8.0, 6.0], [2.0], tag="a")
        b = _allocation([7.0, 5.0], [3.0], tag="b")
        assert price_compatible(a, b)
        assert price_compatible(b, a)

    def test_disjoint_ranges_incompatible(self):
        cheap = _allocation([2.0], [0.1], tag="cheap", duration=8.0)
        dear = _allocation([200.0], [90.0], tag="dear", duration=1.0)
        assert not price_compatible(cheap, dear)

    def test_tradeless_cluster_never_compatible(self):
        trading = _allocation([8.0], [2.0], tag="t")
        empty = _allocation([0.0001], [50.0], tag="e")
        assert not empty.has_trades
        assert not price_compatible(trading, empty)


class TestSelectRoots:
    def test_non_overlapping_all_selected(self):
        cheap = _allocation([2.0], [0.1], tag="c", duration=8.0)
        dear = _allocation([200.0], [90.0], tag="d", duration=1.0)
        roots = select_roots([cheap, dear])
        assert len(roots) == 2

    def test_overlapping_picks_subset(self):
        a = _allocation([8.0, 6.0], [2.0], tag="a")
        b = _allocation([7.0, 5.0], [3.0], tag="b")
        roots = select_roots([a, b])
        assert len(roots) == 1

    def test_empty_input(self):
        assert select_roots([]) == []

    def test_narrow_interval_preferred(self):
        # Two overlapping clusters: the narrower price range should win
        # the root slot ("minimum non-overlapping ranges").
        narrow = _allocation([6.0, 5.9], [5.0], tag="n")
        wide = _allocation([60.0, 5.95], [0.5], tag="w")
        roots = select_roots([narrow, wide])
        if len(roots) == 1:
            low, high = roots[0].price_range
            n_low, n_high = narrow.price_range
            assert (high - low) <= (wide.price_range[1] - wide.price_range[0])


class TestBuildMiniAuctions:
    def test_tradeless_clusters_dropped(self):
        trading = _allocation([8.0], [2.0], tag="t")
        empty = _allocation([0.0001], [50.0], tag="e")
        auctions = build_mini_auctions([trading, empty], CONFIG)
        assert len(auctions) == 1
        assert auctions[0].allocations == [trading]

    def test_compatible_clusters_grouped(self):
        a = _allocation([8.0, 6.0], [2.0], tag="a")
        b = _allocation([7.0, 5.0], [3.0], tag="b")
        auctions = build_mini_auctions([a, b], CONFIG)
        # One path containing both (order may vary).
        assert any(len(auction.allocations) == 2 for auction in auctions)

    def test_incompatible_clusters_separate(self):
        cheap = _allocation([2.0], [0.1], tag="c", duration=8.0)
        dear = _allocation([200.0], [90.0], tag="d", duration=1.0)
        auctions = build_mini_auctions([cheap, dear], CONFIG)
        assert len(auctions) == 2
        assert all(len(a.allocations) == 1 for a in auctions)

    def test_disabled_mini_auctions_gives_singletons(self):
        a = _allocation([8.0, 6.0], [2.0], tag="a")
        b = _allocation([7.0, 5.0], [3.0], tag="b")
        config = AuctionConfig(enable_mini_auctions=False)
        auctions = build_mini_auctions([a, b], config)
        assert len(auctions) == 2
        assert all(len(x.allocations) == 1 for x in auctions)

    def test_sorted_by_welfare(self):
        small = _allocation([3.0], [2.5], tag="s", duration=8.0)
        big = _allocation([300.0, 250.0], [10.0, 11.0], tag="b", duration=1.0)
        auctions = build_mini_auctions([small, big], CONFIG)
        welfares = [a.tentative_welfare for a in auctions]
        assert welfares == sorted(welfares, reverse=True)

    def test_num_tentative_trades(self):
        a = _allocation([8.0, 6.0], [2.0], tag="a")
        auctions = build_mini_auctions([a], CONFIG)
        assert auctions[0].num_tentative_trades == len(a.matches)
