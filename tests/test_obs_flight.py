"""Flight recorder: round framing, the crash bundle, and its CLI render.

The acceptance scenario rides through here end to end: a seeded degraded
round (lossy network, one withholding client) followed by a quorum
failure must dump a self-contained bundle whose causal tree names the
excluded bidder and the failing message path, and
``python -m repro.obs.report --flight`` must render it.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.common.errors import QuorumError
from repro.common.timewindow import TimeWindow
from repro.faults.actors import WithholdingParticipant
from repro.faults.network import UnreliableNetwork
from repro.faults.plan import FaultPlan
from repro.ledger.miner import Miner
from repro.market.bids import Offer, Request
from repro.obs import Observability
from repro.obs.flight import FlightRecorder, load_flight
from repro.obs.report import main as report_main, render_flight
from repro.protocol.allocator import DecloudAllocator
from repro.protocol.exposure import ExposureProtocol, Participant


class TestFraming:
    def test_frames_archive_per_round_and_ring_is_bounded(self):
        flight = FlightRecorder(capacity=2)
        obs = Observability("framing", flight=flight)
        for index in range(4):
            flight.begin_round(index)
            with obs.tracer.span("round", index=index):
                obs.registry.inc("rounds_total")
            flight.end_round(index)
        frames = flight.frames
        assert len(frames) == 2  # capacity bound, oldest evicted
        assert [f.round_index for f in frames] == [2, 3]
        assert all(f.status == "ok" for f in frames)
        # each frame holds exactly its round's records + its delta
        assert all(len(f.records) == 2 for f in frames)
        assert all(
            f.delta["counters"]["rounds_total"] == 1.0 for f in frames
        )

    def test_records_between_rounds_belong_to_the_next_frame(self):
        flight = FlightRecorder()
        obs = Observability("framing", flight=flight)
        with obs.tracer.span("seal", participant="alice"):
            pass
        flight.begin_round(0)
        with obs.tracer.span("round", index=0):
            pass
        flight.end_round(0)
        names = [
            r["name"]
            for r in flight.frames[0].records
            if r["type"] == "span_start"
        ]
        assert names == ["seal", "round"]

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            FlightRecorder(capacity=0)


class TestDumpBundle:
    def test_dump_writes_roundtrippable_bundle(self, tmp_path):
        flight = FlightRecorder(out_dir=str(tmp_path))
        obs = Observability("bundle", flight=flight)
        flight.begin_round(0)
        with obs.tracer.span("round", index=0):
            obs.registry.inc("rounds_total")
        flight.end_round(0)
        obs.tracer.event("round.aborted", error="QuorumError")
        path = flight.dump(trigger="QuorumError", error="no quorum",
                           round_index=1)

        assert Path(path).name == "flight_1.jsonl"
        assert flight.dumps == [path]
        meta, records, headers = load_flight(Path(path).read_text())
        assert meta["trigger"] == "QuorumError"
        assert meta["error"] == "no quorum"
        assert meta["round"] == 1
        assert meta["frames"] == 2
        frame_rows = [h for h in headers if h["type"] == "round_frame"]
        assert [f["status"] for f in frame_rows] == ["ok", "QuorumError"]
        assert any(r.get("name") == "round.aborted" for r in records)
        deltas = [h for h in headers if h["type"] == "metrics_delta"]
        assert deltas[0]["delta"]["counters"]["rounds_total"] == 1.0
        assert obs.registry.counter_value(
            "flight_dumps_total", trigger="QuorumError"
        ) == 1.0

    def test_dump_does_not_consume_the_ring(self, tmp_path):
        flight = FlightRecorder(out_dir=str(tmp_path))
        obs = Observability("bundle", flight=flight)
        flight.begin_round(0)
        with obs.tracer.span("round", index=0):
            pass
        flight.end_round(0)
        first = flight.dump(trigger="monitor", round_index=1)
        second = flight.dump(trigger="monitor", round_index=2)
        meta1, _, _ = load_flight(Path(first).read_text())
        meta2, _, _ = load_flight(Path(second).read_text())
        assert meta1["frames"] == meta2["frames"] == 2

    def test_bundle_lines_are_compact_sorted_json(self, tmp_path):
        flight = FlightRecorder(out_dir=str(tmp_path))
        Observability("bundle", flight=flight)
        path = flight.dump(trigger="monitor")
        for line in Path(path).read_text().splitlines():
            obj = json.loads(line)
            assert line == json.dumps(
                obj, sort_keys=True, separators=(",", ":")
            )


def _degraded_round_bundle(tmp_path):
    """The acceptance scenario: degraded round then quorum failure."""
    plan = FaultPlan(
        seed="flight-demo", drop_rate=0.25, duplicate_rate=0.2,
        reorder_rate=0.2, max_delay=0.05,
    )
    network = UnreliableNetwork(plan=plan)
    obs = Observability(
        "degraded", flight=FlightRecorder(out_dir=str(tmp_path))
    )
    miners = [
        Miner(miner_id=f"miner-{m}", allocate=DecloudAllocator(),
              difficulty_bits=4)
        for m in range(3)
    ]
    protocol = ExposureProtocol(miners=miners, network=network, obs=obs)
    seal_seed = b"flight-demo"
    byzantine = WithholdingParticipant(
        participant_id="cli-0", deterministic=True, seal_seed=seal_seed
    )
    honest = Participant(
        participant_id="cli-1", deterministic=True, seal_seed=seal_seed
    )
    provider = Participant(
        participant_id="prov-0", deterministic=True, seal_seed=seal_seed
    )
    participants = [byzantine, honest, provider]

    def submit(round_index):
        for i, client in enumerate([byzantine, honest]):
            protocol.submit(
                client,
                Request(
                    request_id=f"req-{round_index}-{i}",
                    client_id=client.participant_id,
                    submit_time=0.1 * i,
                    resources={"cpu": 2, "ram": 4, "disk": 10},
                    window=TimeWindow(0, 10),
                    duration=4.0,
                    bid=2.0 + 0.5 * i,
                ),
            )
        protocol.submit(
            provider,
            Offer(
                offer_id=f"off-{round_index}",
                provider_id="prov-0",
                submit_time=0.0,
                resources={"cpu": 8, "ram": 32, "disk": 500},
                window=TimeWindow(0, 24),
                bid=0.5,
            ),
        )

    submit(0)
    result = protocol.run_round(participants)
    assert result.excluded_txids  # cli-0 withheld its key
    submit(1)
    network.crash_node("miner-1")
    network.crash_node("miner-2")
    with pytest.raises(QuorumError):
        protocol.run_round(participants)
    assert obs.flight.dumps
    return obs.flight.dumps[-1]


class TestDegradedRoundAcceptance:
    def test_protocol_failure_dumps_bundle_naming_the_failure_path(
        self, tmp_path
    ):
        bundle = _degraded_round_bundle(tmp_path)
        meta, records, headers = load_flight(Path(bundle).read_text())
        assert meta["trigger"] == "QuorumError"
        report = render_flight(meta, records, headers)
        # the causal tree names the excluded bidder...
        assert "reveal.excluded" in report
        assert "'sender': 'cli-0'" in report
        # ...and the failing message path is marked
        assert "!" in report
        assert "round.aborted" in report
        # the archived healthy round rides along for context
        frame_rows = [h for h in headers if h["type"] == "round_frame"]
        assert [f["status"] for f in frame_rows] == ["ok", "QuorumError"]

    def test_report_cli_renders_the_bundle(self, tmp_path, capsys):
        bundle = _degraded_round_bundle(tmp_path)
        assert report_main(["--flight", bundle]) == 0
        out = capsys.readouterr().out
        assert "triggered by QuorumError" in out
        assert "cli-0" in out
        assert "failing path marked" in out

    def test_bundle_is_deterministic_across_identical_runs(self, tmp_path):
        def stripped(bundle_dir):
            bundle_dir.mkdir()
            text = Path(_degraded_round_bundle(bundle_dir)).read_text()
            lines = []
            for line in text.splitlines():
                obj = json.loads(line)
                obj.pop("wall", None)
                lines.append(
                    json.dumps(obj, sort_keys=True, separators=(",", ":"))
                )
            return "\n".join(lines)

        # identical seeds -> identical bundles, wall-clock fields aside
        assert stripped(tmp_path / "a") == stripped(tmp_path / "b")
