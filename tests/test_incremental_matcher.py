"""Direct unit tests for IncrementalMatcher cache management.

The matcher was previously exercised only through the online-simulator
differential suite; these tests pin down the cache mechanics themselves:
LRU eviction at ``max_rows``, wholesale invalidation when an offer
mutates under its id or the block maxima change, registry compaction,
and the partial-row (:meth:`gather`) path the candidate stage uses
across online rounds.
"""

import numpy as np

from repro.core.candidates import ResourceVectorGenerator
from repro.core.matching import best_offer_set, block_maxima
from repro.core.matching_vectorized import (
    IncrementalMatcher,
    feasibility_matrix,
    score_matrix,
)

from tests.conftest import make_offer, make_request


def _requests(n, prefix="r"):
    return [
        make_request(
            request_id=f"{prefix}{i:02d}",
            submit_time=float(i),
            resources={"cpu": 1.0 + i % 4, "ram": 2.0 + i % 3},
        )
        for i in range(n)
    ]


def _offers(n, prefix="o", cpu=8.0):
    return [
        make_offer(
            offer_id=f"{prefix}{j:02d}",
            submit_time=float(j),
            resources={"cpu": cpu + j % 5, "ram": 16.0 + j % 7},
        )
        for j in range(n)
    ]


class TestRowEviction:
    def test_lru_eviction_at_max_rows(self):
        matcher = IncrementalMatcher(max_rows=4)
        offers = _offers(3)
        maxima = block_maxima(_requests(6), offers)
        requests = _requests(6)
        matcher.matrices(requests[:4], offers, maxima)
        assert len(matcher._rows) == 4
        # Two more rows evict the two least-recently-used ones.
        matcher.matrices(requests[4:], offers, maxima)
        assert len(matcher._rows) == 4
        assert "r00" not in matcher._rows
        assert "r01" not in matcher._rows
        assert "r05" in matcher._rows

    def test_evicted_row_recomputed_identically(self):
        matcher = IncrementalMatcher(max_rows=2)
        offers = _offers(4)
        requests = _requests(4)
        maxima = block_maxima(requests, offers)
        first, _ = matcher.matrices(requests, offers, maxima)
        misses_before = matcher.misses
        again, _ = matcher.matrices(requests, offers, maxima)
        assert matcher.misses > misses_before  # evictions forced recompute
        np.testing.assert_array_equal(first, again)
        np.testing.assert_array_equal(
            again, score_matrix(requests, offers, maxima)
        )


class TestInvalidation:
    def test_offer_mutation_resets_cache(self):
        matcher = IncrementalMatcher()
        requests = _requests(3)
        offers = _offers(3)
        maxima = block_maxima(requests, offers)
        matcher.matrices(requests, offers, maxima)
        assert len(matcher._rows) == 3

        # Same offer id, different content: every cached row is suspect.
        mutated = [
            make_offer(
                offer_id=offers[0].offer_id,
                submit_time=offers[0].submit_time,
                resources={"cpu": 99.0, "ram": 1.0},
            )
        ] + offers[1:]
        maxima2 = block_maxima(requests, mutated)
        scores, feasible = matcher.matrices(requests, mutated, maxima2)
        np.testing.assert_array_equal(
            scores, score_matrix(requests, mutated, maxima2)
        )
        np.testing.assert_array_equal(
            feasible, feasibility_matrix(requests, mutated)
        )

    def test_maxima_change_clears_rows(self):
        matcher = IncrementalMatcher()
        requests = _requests(3)
        offers = _offers(3)
        maxima = block_maxima(requests, offers)
        matcher.matrices(requests, offers, maxima)
        hits_before = matcher.hits
        # A new bigger offer shifts the cpu maximum: rows must not be
        # served from cache.
        grown = offers + [
            make_offer(offer_id="big", resources={"cpu": 500.0, "ram": 1.0})
        ]
        maxima2 = block_maxima(requests, grown)
        scores, _ = matcher.matrices(requests, grown, maxima2)
        assert matcher.hits == hits_before
        np.testing.assert_array_equal(
            scores, score_matrix(requests, grown, maxima2)
        )


class TestCompaction:
    def test_registry_compacts_when_offers_expire(self):
        matcher = IncrementalMatcher()
        requests = _requests(2)
        big = _offers(40)
        maxima = block_maxima(requests, big)
        matcher.matrices(requests, big, maxima)
        assert len(matcher._registry) == 40

        # Only two offers stay live: 40 > 2*2 + 32 triggers compaction.
        live = big[:2]
        scores, _ = matcher.matrices(requests, live, maxima)
        assert len(matcher._registry) == 2
        np.testing.assert_array_equal(
            scores, score_matrix(requests, live, maxima)
        )

    def test_compaction_preserves_partial_rows(self):
        matcher = IncrementalMatcher()
        requests = _requests(2)
        big = _offers(40)
        maxima = block_maxima(requests, big)
        scorer = matcher.scorer(big, maxima)
        scorer(requests, np.arange(40))
        assert len(matcher._partial) == 2

        live = big[:2]
        matcher.matrices(requests, live, maxima)  # triggers _compact
        assert len(matcher._registry) == 2
        assert len(matcher._partial) == 2
        scorer2 = matcher.scorer(live, maxima)
        hits_before = matcher.hits
        scores, _ = scorer2(requests, np.arange(2))
        assert matcher.hits == hits_before + 2  # compacted rows survived
        np.testing.assert_array_equal(
            scores, score_matrix(requests, live, maxima)
        )


class TestGather:
    def test_partial_rows_hit_across_rounds(self):
        matcher = IncrementalMatcher()
        requests = _requests(4)
        offers = _offers(6)
        maxima = block_maxima(requests, offers)
        scorer = matcher.scorer(offers, maxima)
        cols = np.array([0, 2, 4])
        scores, feasible = scorer(requests, cols)
        np.testing.assert_array_equal(
            scores, score_matrix(requests, offers, maxima)[:, cols]
        )
        misses_before = matcher.misses
        again, _ = scorer(requests, cols)
        assert matcher.misses == misses_before
        np.testing.assert_array_equal(scores, again)

    def test_gather_extends_to_new_columns(self):
        matcher = IncrementalMatcher()
        requests = _requests(3)
        offers = _offers(4)
        maxima = block_maxima(requests, offers)
        scorer = matcher.scorer(offers, maxima)
        scorer(requests, np.array([0, 1]))
        # New columns for cached rows: recomputed, old ones still valid.
        scores, feasible = scorer(requests, np.array([1, 2, 3]))
        np.testing.assert_array_equal(
            scores,
            score_matrix(requests, offers, maxima)[:, np.array([1, 2, 3])],
        )
        np.testing.assert_array_equal(
            feasible,
            feasibility_matrix(requests, offers)[:, np.array([1, 2, 3])],
        )

    def test_request_fingerprint_mismatch_recomputes(self):
        matcher = IncrementalMatcher()
        requests = _requests(1)
        offers = _offers(3)
        maxima = block_maxima(requests, offers)
        scorer = matcher.scorer(offers, maxima)
        scorer(requests, np.arange(3))
        changed = [
            make_request(
                request_id=requests[0].request_id,
                submit_time=requests[0].submit_time,
                resources={"cpu": 7.0},
            )
        ]
        scores, _ = scorer(changed, np.arange(3))
        np.testing.assert_array_equal(
            scores, score_matrix(changed, offers, maxima)
        )


class TestCandidateMaskInteraction:
    def test_candidate_masks_across_online_rounds(self):
        """The generator only ever sees matcher-gathered submatrices;
        across overlapping rounds the cached partial rows must keep the
        best sets identical to stateless scalar computation."""
        matcher = IncrementalMatcher()
        generator = ResourceVectorGenerator(group_size=3, verify="full")
        base_offers = _offers(9)
        round_requests = [
            _requests(6),
            _requests(6),  # identical round: pure cache hits
            _requests(8),  # two new requests join
        ]
        for rnd, requests in enumerate(round_requests):
            offers = base_offers + (_offers(2, prefix="late") if rnd == 2 else [])
            maxima = block_maxima(requests, offers)
            scorer = matcher.scorer(offers, maxima)
            result = generator.generate(
                requests, offers, maxima, 3, scorer=scorer
            )
            expected = [
                best_offer_set(request, offers, maxima, 3)
                for request in requests
            ]
            assert result.best_sets == expected, f"round {rnd}"
        assert matcher.hits > 0
