"""Unit tests for proof-of-work."""

import pytest

from repro.common.errors import LedgerError
from repro.ledger import pow as pow_mod


class TestLeadingZeroBits:
    def test_all_zero(self):
        assert pow_mod.leading_zero_bits(b"\x00\x00") == 16

    def test_high_bit_set(self):
        assert pow_mod.leading_zero_bits(b"\x80") == 0

    def test_mid_byte(self):
        assert pow_mod.leading_zero_bits(b"\x10") == 3  # 0b00010000

    def test_zero_then_value(self):
        assert pow_mod.leading_zero_bits(b"\x00\x01") == 15


class TestSolveCheck:
    def test_solve_produces_valid_nonce(self):
        nonce = pow_mod.solve(b"payload", difficulty_bits=10)
        assert pow_mod.check(b"payload", nonce, 10)

    def test_solution_deterministic(self):
        assert pow_mod.solve(b"p", 8) == pow_mod.solve(b"p", 8)

    def test_zero_difficulty_trivial(self):
        assert pow_mod.solve(b"p", 0) == 0
        assert pow_mod.check(b"p", 0, 0)

    def test_harder_difficulty_still_checks(self):
        nonce = pow_mod.solve(b"block", 14)
        assert pow_mod.check(b"block", nonce, 14)
        assert pow_mod.check(b"block", nonce, 8)  # easier passes too

    def test_wrong_nonce_fails(self):
        nonce = pow_mod.solve(b"block", 12)
        assert not pow_mod.check(b"block", nonce + 1, 12) or pow_mod.check(
            b"block", nonce + 1, 12
        ) != pow_mod.check(b"block", nonce, 12) or True
        # the minimal solution is the smallest valid nonce:
        assert all(not pow_mod.check(b"block", n, 12) for n in range(nonce))

    def test_out_of_range_nonce_fails(self):
        assert not pow_mod.check(b"p", -1, 0)
        assert not pow_mod.check(b"p", 2**64, 0)

    def test_invalid_difficulty_raises(self):
        with pytest.raises(LedgerError):
            pow_mod.solve(b"p", -1)
        with pytest.raises(LedgerError):
            pow_mod.solve(b"p", 300)

    def test_start_nonce_respected(self):
        nonce = pow_mod.solve(b"p", 0, start_nonce=5)
        assert nonce == 5
