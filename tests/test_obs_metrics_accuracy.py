"""Metrics accuracy: every registry series equals its outcome-derived value.

The auction's ``_record_round`` only *derives* numbers from the
:class:`~repro.core.outcome.AuctionOutcome`; these tests recompute each
value independently from the outcome on the golden fixtures (and on
generated markets) and demand exact equality — a drifting metric is a
bug even when the mechanism is untouched.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.core.auction import DecloudAuction
from repro.core.config import AuctionConfig
from repro.obs import Observability
from repro.sim.engine import MarketSimulator
from repro.sim.metrics import block_metrics_from_registry, compare_outcomes
from repro.workloads.generators import MarketScenario
from tests.differential.conftest import market_from_payload

GOLDEN_DIR = Path(__file__).resolve().parent / "fixtures" / "golden"
FIXTURES = sorted(GOLDEN_DIR.glob("*.json"))


def _load(path: Path):
    fixture = json.loads(path.read_text())
    requests, offers = market_from_payload(fixture["market"])
    return fixture, requests, offers


@pytest.mark.parametrize("path", FIXTURES, ids=lambda p: p.stem)
@pytest.mark.parametrize("engine", ["reference", "vectorized"])
def test_registry_matches_outcome_on_golden_fixture(path, engine):
    fixture, requests, offers = _load(path)
    config = AuctionConfig(engine=engine, **fixture["config"])
    obs = Observability(f"golden-{path.stem}")
    outcome = DecloudAuction(config).run(
        requests,
        offers,
        evidence=bytes.fromhex(fixture["evidence"]),
        obs=obs,
    )
    reg = obs.registry

    assert reg.counter_value("auction_rounds_total") == 1.0
    assert reg.counter_value(
        "auction_bids_total", side="request"
    ) == float(len(requests))
    assert reg.counter_value(
        "auction_bids_total", side="offer"
    ) == float(len(offers))
    assert reg.counter_value("auction_trades_total") == float(
        len(outcome.matches)
    )
    assert reg.counter_value("auction_reduced_total") == float(
        len(outcome.reduced_requests)
    )
    assert reg.counter_value("auction_reduced_offers_total") == float(
        len(outcome.reduced_offers)
    )
    assert reg.counter_value("auction_welfare_total") == outcome.welfare

    # exact per-round gauges (bit-equality, no tolerance)
    assert reg.gauge_value("auction_last_trades") == float(
        outcome.num_trades
    )
    assert reg.gauge_value("auction_last_trades_pre_reduction") == float(
        outcome.num_trades + len(outcome.reduced_requests)
    )
    assert reg.gauge_value("auction_last_welfare") == outcome.welfare
    assert reg.gauge_value(
        "auction_last_payments"
    ) == outcome.total_payments
    revenues = sum(outcome.revenues().values())
    assert reg.gauge_value("auction_last_revenues") == revenues
    assert reg.gauge_value("auction_last_surplus") == (
        outcome.total_payments - revenues
    )
    assert reg.gauge_value(
        "auction_last_satisfaction"
    ) == outcome.satisfaction
    assert reg.gauge_value(
        "auction_last_unmatched", side="request"
    ) == float(len(outcome.unmatched_requests))
    assert reg.gauge_value(
        "auction_last_unmatched", side="offer"
    ) == float(len(outcome.unmatched_offers))

    prices = reg.histogram_stats("auction_trade_price")
    assert prices["count"] == len(outcome.prices)
    assert prices["sum"] == sum(outcome.prices)
    if outcome.prices:
        assert prices["min"] == min(outcome.prices)
        assert prices["max"] == max(outcome.prices)

    phases = reg.histogram_stats("auction_phase_seconds", phase="clear")
    assert phases["count"] == 1


@pytest.mark.parametrize("seed", [0, 7])
def test_simulator_registry_metrics_equal_direct_comparison(seed):
    """MarketSimulator with obs == without obs, field for field."""
    scenario = MarketScenario(
        n_requests=60, offers_per_request=0.5, seed=seed
    )
    requests, offers = scenario.generate()
    config = AuctionConfig(cluster_breadth=16)

    obs = Observability(f"sim-{seed}")
    with_obs = MarketSimulator(config=config, seed=seed, obs=obs)
    metrics_obs, decloud, benchmark = with_obs.run_block(requests, offers)

    plain = MarketSimulator(config=config, seed=seed)
    metrics_plain, _, _ = plain.run_block(requests, offers)

    assert metrics_obs == metrics_plain
    # and both equal the direct outcome comparison
    assert metrics_obs == compare_outcomes(
        len(requests), len(offers), decloud, benchmark
    )
    # reading the registry again reproduces the same BlockMetrics
    assert block_metrics_from_registry(obs.registry) == metrics_obs


def test_mechanism_labels_separate_decloud_from_benchmark():
    scenario = MarketScenario(n_requests=40, offers_per_request=0.5, seed=3)
    requests, offers = scenario.generate()
    obs = Observability("labels")
    simulator = MarketSimulator(
        config=AuctionConfig(cluster_breadth=16), seed=3, obs=obs
    )
    _, decloud, benchmark = simulator.run_block(requests, offers)
    reg = obs.registry
    assert reg.gauge_value(
        "auction_last_trades", mechanism="decloud"
    ) == float(decloud.num_trades)
    assert reg.gauge_value(
        "auction_last_trades", mechanism="benchmark"
    ) == float(benchmark.num_trades)
    # the benchmark never reduces trades
    assert reg.gauge_value(
        "auction_last_reduced", mechanism="benchmark"
    ) == 0.0


def test_counters_accumulate_across_blocks():
    scenario = MarketScenario(n_requests=30, offers_per_request=0.5, seed=1)
    requests, offers = scenario.generate()
    obs = Observability("multi-block")
    simulator = MarketSimulator(
        config=AuctionConfig(cluster_breadth=16), seed=1, obs=obs
    )
    outcomes = []
    for _ in range(3):
        _, decloud, _ = simulator.run_block(requests, offers)
        outcomes.append(decloud)
    reg = obs.registry
    assert reg.counter_value(
        "auction_rounds_total", mechanism="decloud"
    ) == 3.0
    assert reg.counter_value(
        "auction_trades_total", mechanism="decloud"
    ) == float(sum(o.num_trades for o in outcomes))
