"""Unit tests for the MILP optimal-welfare solver."""

import pytest

from repro.baselines.greedy import GreedyBenchmark
from repro.baselines.ilp import optimal_allocation_ilp, optimal_welfare_ilp
from repro.baselines.optimal import optimal_welfare
from repro.core.auction import DecloudAuction
from repro.experiments.sweeps import eval_config
from repro.workloads.generators import MarketScenario
from tests.conftest import make_offer, make_request


class TestAgainstBranchAndBound:
    @pytest.mark.parametrize("seed", range(6))
    def test_matches_exact_solver_on_small_markets(self, seed):
        requests, offers = MarketScenario(n_requests=8, seed=seed).generate()
        exact = optimal_welfare(requests, offers)
        via_ilp = optimal_welfare_ilp(requests, offers, mip_rel_gap=0.0)
        assert via_ilp == pytest.approx(exact, abs=1e-6)


class TestIlpStructure:
    def test_empty_market(self):
        assert optimal_welfare_ilp([], []) == 0.0

    def test_single_pair(self):
        requests = [make_request(bid=5.0, duration=4)]
        offers = [make_offer(bid=1.0)]
        welfare, matches = optimal_allocation_ilp(requests, offers)
        assert len(matches) == 1
        assert welfare > 0

    def test_no_profitable_pair(self):
        requests = [make_request(bid=1e-9, duration=10)]
        offers = [make_offer(bid=100.0)]
        welfare, matches = optimal_allocation_ilp(requests, offers)
        assert welfare == 0.0
        assert matches == []

    def test_request_never_double_assigned(self):
        requests, offers = MarketScenario(n_requests=20, seed=3).generate()
        _, matches = optimal_allocation_ilp(requests, offers)
        matched = [r.request_id for r, _ in matches]
        assert len(matched) == len(set(matched))

    def test_capacity_respected(self):
        requests, offers = MarketScenario(n_requests=30, seed=4).generate()
        _, matches = optimal_allocation_ilp(requests, offers)
        for offer in offers:
            per_type = {}
            for request, matched_offer in matches:
                if matched_offer.offer_id != offer.offer_id:
                    continue
                share = request.duration / offer.span
                for key, amount in request.resources.items():
                    if key in offer.resources:
                        per_type[key] = per_type.get(key, 0.0) + share * min(
                            amount, offer.resources[key]
                        )
            for key, load in per_type.items():
                assert load <= offer.resources[key] + 1e-6


class TestUpperBoundProperty:
    @pytest.mark.parametrize("seed", range(4))
    def test_bounds_both_mechanisms(self, seed):
        requests, offers = MarketScenario(n_requests=25, seed=seed).generate()
        optimum = optimal_welfare_ilp(requests, offers, mip_rel_gap=0.0)
        greedy = GreedyBenchmark(eval_config()).run(requests, offers).welfare
        decloud = DecloudAuction(eval_config()).run(requests, offers).welfare
        assert greedy <= optimum + 1e-6
        assert decloud <= optimum + 1e-6
