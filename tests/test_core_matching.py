"""Unit tests for the quality-of-match heuristic (Eq. 18)."""

import pytest

from repro.core.matching import (
    best_offer_set,
    block_maxima,
    quality_of_match,
    rank_offers,
)
from tests.conftest import make_offer, make_request


class TestBlockMaxima:
    def test_maxima_over_both_sides(self):
        requests = [make_request(resources={"cpu": 10, "ram": 2})]
        offers = [make_offer(resources={"cpu": 4, "ram": 64})]
        maxima = block_maxima(requests, offers)
        assert maxima == {"cpu": 10, "ram": 64}

    def test_empty_block(self):
        assert block_maxima([], []) == {}


class TestQualityOfMatch:
    def test_perfect_match_scores_high(self):
        request = make_request(resources={"cpu": 4})
        exact = make_offer(offer_id="exact", resources={"cpu": 4})
        far = make_offer(offer_id="far", resources={"cpu": 1})
        maxima = block_maxima([request], [exact, far])
        assert quality_of_match(request, exact, maxima) > quality_of_match(
            request, far, maxima
        )

    def test_gravity_prefers_bigger_on_equal_distance(self):
        # Equal |rho'_o - rho'_r| but larger offer wins (numerator).
        request = make_request(resources={"cpu": 4})
        small = make_offer(offer_id="small", resources={"cpu": 2})
        big = make_offer(offer_id="big", resources={"cpu": 6})
        maxima = {"cpu": 8.0}
        assert quality_of_match(request, big, maxima) > quality_of_match(
            request, small, maxima
        )

    def test_significance_scales_contribution(self):
        offer = make_offer(resources={"cpu": 4, "ram": 8})
        strong = make_request(resources={"cpu": 4, "ram": 8})
        weak = make_request(
            resources={"cpu": 4, "ram": 8},
            significance={"cpu": 0.1, "ram": 0.1},
            flexibility=0.9,
        )
        maxima = block_maxima([strong], [offer])
        assert quality_of_match(strong, offer, maxima) > quality_of_match(
            weak, offer, maxima
        )

    def test_disjoint_types_score_zero(self):
        request = make_request(resources={"gpu": 1}, significance={"gpu": 0.5})
        offer = make_offer(resources={"cpu": 4})
        assert quality_of_match(request, offer, {"gpu": 1, "cpu": 4}) == 0.0

    def test_zero_maximum_contributes_nothing(self):
        request = make_request(resources={"cpu": 2})
        offer = make_offer(resources={"cpu": 4})
        assert quality_of_match(request, offer, {"cpu": 0.0}) == 0.0


class TestRankOffers:
    def test_infeasible_excluded(self):
        request = make_request(resources={"cpu": 6})
        offers = [
            make_offer(offer_id="too-small", resources={"cpu": 2}),
            make_offer(offer_id="fits", resources={"cpu": 8}),
        ]
        ranked = rank_offers(request, offers, block_maxima([request], offers))
        assert [o.offer_id for _, o in ranked] == ["fits"]

    def test_order_descending_quality(self):
        request = make_request(resources={"cpu": 4})
        offers = [
            make_offer(offer_id="huge", resources={"cpu": 64}),
            make_offer(offer_id="exact", resources={"cpu": 4}),
            make_offer(offer_id="ok", resources={"cpu": 8}),
        ]
        maxima = block_maxima([request], offers)
        ranked = rank_offers(request, offers, maxima)
        qualities = [q for q, _ in ranked]
        assert qualities == sorted(qualities, reverse=True)

    def test_tie_breaks_by_submit_time(self):
        request = make_request(resources={"cpu": 4})
        late = make_offer(offer_id="late", submit_time=5.0, resources={"cpu": 4})
        early = make_offer(offer_id="early", submit_time=1.0, resources={"cpu": 4})
        maxima = block_maxima([request], [late, early])
        ranked = rank_offers(request, [late, early], maxima)
        assert ranked[0][1].offer_id == "early"


class TestBestOfferSet:
    def test_breadth_respected(self):
        request = make_request(resources={"cpu": 4})
        offers = [
            make_offer(offer_id=f"o{i}", resources={"cpu": 4 + i}) for i in range(6)
        ]
        maxima = block_maxima([request], offers)
        best = best_offer_set(request, offers, maxima, breadth=3)
        assert len(best) == 3

    def test_fewer_offers_than_breadth(self):
        request = make_request()
        offers = [make_offer()]
        maxima = block_maxima([request], offers)
        assert len(best_offer_set(request, offers, maxima, breadth=5)) == 1

    def test_no_feasible_offer_gives_empty(self):
        request = make_request(resources={"cpu": 999})
        offers = [make_offer()]
        maxima = block_maxima([request], offers)
        assert best_offer_set(request, offers, maxima, breadth=3) == frozenset()
