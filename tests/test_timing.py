"""Unit tests for the zero-dependency phase timer."""

import json

from repro.common.timing import NULL_TIMER, PhaseTimer, resolve


class TestPhaseTimer:
    def test_phase_accumulates(self):
        timer = PhaseTimer()
        with timer.phase("match"):
            pass
        with timer.phase("match"):
            pass
        with timer.phase("clear"):
            pass
        assert set(timer.totals) == {"match", "clear"}
        assert timer.counts == {"match": 2, "clear": 1}
        assert timer.totals["match"] >= 0.0
        assert timer.total_seconds == sum(timer.totals.values())

    def test_add_and_merge(self):
        a = PhaseTimer()
        a.add("mine", 1.0)
        b = PhaseTimer()
        b.add("mine", 0.5)
        b.add("seal", 0.25)
        a.merge(b)
        assert a.totals == {"mine": 1.5, "seal": 0.25}
        assert a.counts == {"mine": 2, "seal": 1}

    def test_items_sorted_by_time(self):
        timer = PhaseTimer()
        timer.add("small", 0.1)
        timer.add("big", 2.0)
        assert [name for name, _ in timer.items()] == ["big", "small"]

    def test_reset(self):
        timer = PhaseTimer()
        timer.add("x", 1.0)
        timer.reset()
        assert timer.totals == {}
        assert timer.total_seconds == 0.0

    def test_report_mentions_every_phase(self):
        timer = PhaseTimer()
        timer.add("normalize", 0.75)
        timer.add("clear", 0.25)
        report = timer.report("round split")
        assert "round split" in report
        assert "normalize" in report and "clear" in report
        assert "75.0%" in report
        # empty timers still render
        assert "no phases" in PhaseTimer().report()

    def test_json_snapshot(self):
        timer = PhaseTimer()
        timer.add("verify", 0.5)
        document = json.loads(timer.to_json(label="bench"))
        assert document["label"] == "bench"
        assert document["phases"]["verify"] == {"seconds": 0.5, "count": 1}

    def test_exception_still_records(self):
        timer = PhaseTimer()
        try:
            with timer.phase("boom"):
                raise ValueError("x")
        except ValueError:
            pass
        assert timer.counts["boom"] == 1


class TestNullTimer:
    def test_null_timer_is_inert(self):
        with NULL_TIMER.phase("anything"):
            pass
        NULL_TIMER.add("anything", 1.0)
        NULL_TIMER.merge(PhaseTimer())
        assert not hasattr(NULL_TIMER, "totals")

    def test_resolve(self):
        assert resolve(None) is NULL_TIMER
        timer = PhaseTimer()
        assert resolve(timer) is timer
