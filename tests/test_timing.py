"""Unit tests for the zero-dependency phase timer."""

import json

from repro.common.timing import NULL_TIMER, PhaseTimer, resolve


class TestPhaseTimer:
    def test_phase_accumulates(self):
        timer = PhaseTimer()
        with timer.phase("match"):
            pass
        with timer.phase("match"):
            pass
        with timer.phase("clear"):
            pass
        assert set(timer.totals) == {"match", "clear"}
        assert timer.counts == {"match": 2, "clear": 1}
        assert timer.totals["match"] >= 0.0
        assert timer.total_seconds == sum(timer.totals.values())

    def test_add_and_merge(self):
        a = PhaseTimer()
        a.add("mine", 1.0)
        b = PhaseTimer()
        b.add("mine", 0.5)
        b.add("seal", 0.25)
        a.merge(b)
        assert a.totals == {"mine": 1.5, "seal": 0.25}
        assert a.counts == {"mine": 2, "seal": 1}

    def test_items_sorted_by_time(self):
        timer = PhaseTimer()
        timer.add("small", 0.1)
        timer.add("big", 2.0)
        assert [name for name, _ in timer.items()] == ["big", "small"]

    def test_reset(self):
        timer = PhaseTimer()
        timer.add("x", 1.0)
        timer.reset()
        assert timer.totals == {}
        assert timer.total_seconds == 0.0

    def test_report_mentions_every_phase(self):
        timer = PhaseTimer()
        timer.add("normalize", 0.75)
        timer.add("clear", 0.25)
        report = timer.report("round split")
        assert "round split" in report
        assert "normalize" in report and "clear" in report
        assert "75.0%" in report
        # empty timers still render
        assert "no phases" in PhaseTimer().report()

    def test_json_snapshot(self):
        timer = PhaseTimer()
        timer.add("verify", 0.5)
        document = json.loads(timer.to_json(label="bench"))
        assert document["label"] == "bench"
        assert document["phases"]["verify"] == {"seconds": 0.5, "count": 1}

    def test_exception_still_records(self):
        timer = PhaseTimer()
        try:
            with timer.phase("boom"):
                raise ValueError("x")
        except ValueError:
            pass
        assert timer.counts["boom"] == 1


class TestAbortedPhases:
    """Failed rounds must flush partial timings, tagged — not drop them."""

    def test_exception_tags_phase_aborted(self):
        timer = PhaseTimer()
        try:
            with timer.phase("reveal"):
                raise ValueError("withheld")
        except ValueError:
            pass
        assert timer.aborted == {"reveal": 1}
        # the partial elapsed time is kept alongside the marker
        assert timer.counts["reveal"] == 1
        assert timer.totals["reveal"] >= 0.0

    def test_clean_phase_not_tagged(self):
        timer = PhaseTimer()
        with timer.phase("mine"):
            pass
        assert timer.aborted == {}

    def test_mark_aborted_without_time(self):
        timer = PhaseTimer()
        timer.mark_aborted("round")
        assert timer.aborted == {"round": 1}
        assert "round" not in timer.totals

    def test_to_dict_carries_marker_only_when_aborted(self):
        timer = PhaseTimer()
        timer.add("mine", 0.5)
        timer.add("reveal", 0.1, aborted=True)
        timer.mark_aborted("round")
        snapshot = timer.to_dict()
        assert snapshot["mine"] == {"seconds": 0.5, "count": 1}
        assert snapshot["reveal"] == {
            "seconds": 0.1, "count": 1, "aborted": 1,
        }
        # a phase that only ever aborted still leaves visible evidence
        assert snapshot["round"] == {"seconds": 0.0, "count": 0, "aborted": 1}

    def test_merge_folds_aborted(self):
        a = PhaseTimer()
        a.add("reveal", 0.1, aborted=True)
        b = PhaseTimer()
        b.add("reveal", 0.2, aborted=True)
        b.mark_aborted("round")
        a.merge(b)
        assert a.aborted == {"reveal": 2, "round": 1}

    def test_reset_clears_aborted(self):
        timer = PhaseTimer()
        timer.mark_aborted("round")
        timer.reset()
        assert timer.aborted == {}

    def test_report_mentions_aborted(self):
        timer = PhaseTimer()
        timer.add("reveal", 0.1, aborted=True)
        timer.mark_aborted("round")
        report = timer.report()
        assert "(aborted x1)" in report
        assert "round" in report

    def test_null_timer_accepts_markers(self):
        NULL_TIMER.add("x", 1.0, aborted=True)
        NULL_TIMER.mark_aborted("x")
        assert not hasattr(NULL_TIMER, "aborted")


class TestNullTimer:
    def test_null_timer_is_inert(self):
        with NULL_TIMER.phase("anything"):
            pass
        NULL_TIMER.add("anything", 1.0)
        NULL_TIMER.merge(PhaseTimer())
        assert not hasattr(NULL_TIMER, "totals")

    def test_resolve(self):
        assert resolve(None) is NULL_TIMER
        timer = PhaseTimer()
        assert resolve(timer) is timer
