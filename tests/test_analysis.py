"""Unit tests for Loess smoothing, KL divergence, and statistics."""

import math

import numpy as np
import pytest

from repro.analysis.kld import empirical_distribution, kl_divergence, similarity
from repro.analysis.loess import loess, tricube
from repro.analysis.stats import Summary, ratio_of_sums, summarize
from repro.common.errors import ValidationError


class TestTricube:
    def test_zero_distance_is_one(self):
        assert tricube(np.array([0.0]))[0] == pytest.approx(1.0)

    def test_unit_distance_is_zero(self):
        assert tricube(np.array([1.0]))[0] == pytest.approx(0.0)

    def test_clipping(self):
        assert tricube(np.array([5.0]))[0] == pytest.approx(0.0)

    def test_monotone_decreasing(self):
        values = tricube(np.linspace(0, 1, 11))
        assert all(values[i] >= values[i + 1] for i in range(10))


class TestLoess:
    def test_recovers_linear_trend(self):
        x = np.linspace(0, 10, 50)
        y = 2.0 * x + 1.0
        _, fitted = loess(x, y, frac=0.5)
        assert np.allclose(fitted, y, atol=1e-8)

    def test_smooths_noise(self):
        rng = np.random.default_rng(0)
        x = np.linspace(0, 10, 200)
        y = np.sin(x) + rng.normal(0, 0.3, size=200)
        _, fitted = loess(x, y, frac=0.3)
        residual = fitted - np.sin(x)
        assert np.abs(residual).mean() < 0.15

    def test_eval_points(self):
        x = np.linspace(0, 10, 30)
        y = 3.0 * x
        targets, fitted = loess(x, y, frac=0.5, eval_x=[2.5, 7.5])
        assert list(targets) == [2.5, 7.5]
        assert fitted == pytest.approx([7.5, 22.5], abs=1e-8)

    def test_constant_x_fallback(self):
        x = [1.0, 1.0, 1.0]
        y = [2.0, 4.0, 6.0]
        _, fitted = loess(x, y, frac=1.0)
        assert np.allclose(fitted, 4.0)

    def test_too_few_points_rejected(self):
        with pytest.raises(ValidationError):
            loess([1.0], [2.0])

    def test_bad_frac_rejected(self):
        with pytest.raises(ValidationError):
            loess([1, 2, 3], [1, 2, 3], frac=0.0)

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValidationError):
            loess([1, 2, 3], [1, 2])


class TestKld:
    def test_identical_zero(self):
        assert kl_divergence([0.25] * 4, [0.25] * 4) == pytest.approx(0.0)

    def test_point_mass_vs_uniform_is_one(self):
        # base = support size makes this exactly 1.
        assert kl_divergence([1, 0, 0, 0], [0.25] * 4) == pytest.approx(1.0)

    def test_asymmetric(self):
        q = [0.7, 0.1, 0.1, 0.1]
        p = [0.1, 0.3, 0.3, 0.3]
        assert kl_divergence(q, p) != pytest.approx(kl_divergence(p, q))

    def test_infinite_when_support_missing(self):
        assert math.isinf(kl_divergence([0.5, 0.5], [1.0, 0.0]))

    def test_normalizes_inputs(self):
        assert kl_divergence([2, 2], [1, 1]) == pytest.approx(0.0)

    def test_invalid_inputs(self):
        with pytest.raises(ValidationError):
            kl_divergence([0.5], [0.5, 0.5])
        with pytest.raises(ValidationError):
            kl_divergence([-1, 2], [0.5, 0.5])
        with pytest.raises(ValidationError):
            kl_divergence([0, 0], [0.5, 0.5])

    def test_similarity_clipped(self):
        assert similarity([1, 0, 0, 0], [0.97, 0.01, 0.01, 0.01]) >= 0.0
        assert similarity([0.25] * 4, [0.25] * 4) == pytest.approx(1.0)

    def test_empirical_distribution(self):
        dist = empirical_distribution([0, 0, 1, 3], 4)
        assert dist == pytest.approx([0.5, 0.25, 0.0, 0.25])

    def test_empirical_rejects_out_of_range(self):
        with pytest.raises(ValidationError):
            empirical_distribution([5], 4)


class TestStats:
    def test_summary_mean(self):
        summary = summarize([1.0, 2.0, 3.0])
        assert summary.mean == pytest.approx(2.0)
        assert summary.count == 3
        assert summary.ci_low < 2.0 < summary.ci_high

    def test_single_value(self):
        summary = summarize([5.0])
        assert summary.mean == summary.ci_low == summary.ci_high == 5.0

    def test_empty_rejected(self):
        with pytest.raises(ValidationError):
            summarize([])

    def test_str(self):
        assert "n=2" in str(summarize([1.0, 3.0]))

    def test_ratio_of_sums(self):
        assert ratio_of_sums([1, 2], [2, 2]) == pytest.approx(0.75)

    def test_ratio_zero_denominator(self):
        assert ratio_of_sums([1.0], [0.0]) == 0.0
