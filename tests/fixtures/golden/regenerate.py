"""Regenerate the golden end-to-end auction fixtures.

Run from the repo root:

    PYTHONPATH=src:. python tests/fixtures/golden/regenerate.py

Each fixture freezes one small market (bid payloads), the auction
configuration, the evidence bytes, and the *canonical outcome* produced
by the reference engine — every float rendered with ``float.hex()`` so
replay comparison is exact to the last bit.
``tests/differential/test_golden_fixtures.py`` replays them on both
engines; a diff there means a refactor changed mechanism behaviour, not
just code shape.  Regenerate only when a behaviour change is intended,
and say so in the commit message.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.common.rng import make_generator
from repro.common.timewindow import TimeWindow
from repro.core.auction import DecloudAuction
from repro.core.config import AuctionConfig
from repro.market.bids import Offer, Request
from repro.workloads.generators import generate_market

from tests.differential.conftest import canonical_outcome, market_payload

GOLDEN_DIR = Path(__file__).resolve().parent

#: Config knobs a fixture may pin (everything else stays at defaults —
#: engine in particular is chosen by the replaying test, never stored).
CONFIG_KEYS = (
    "cluster_breadth",
    "enable_trade_reduction",
    "enable_randomization",
    "enable_mini_auctions",
    "enforce_price_consistency",
)


def _tied_market():
    """Hand-built market with deliberate exact float ties everywhere:
    equal resources, equal bids, equal submit times — only explicit
    id-lexicographic tie-breaking makes its outcome well-defined."""
    requests = [
        Request(
            request_id=f"tied-r{i}",
            client_id=f"c{i}",
            submit_time=0.0,
            resources={"cpu": 2.0, "ram": 4.0},
            window=TimeWindow(0, 8),
            duration=2.0,
            bid=1.0,
        )
        for i in range(6)
    ]
    offers = [
        Offer(
            offer_id=f"tied-o{j}",
            provider_id=f"p{j}",
            submit_time=0.0,
            resources={"cpu": 4.0, "ram": 8.0},
            window=TimeWindow(0, 16),
            bid=0.5,
        )
        for j in range(4)
    ]
    return requests, offers


def _chain_pricing_market():
    """Ladder of price-compatible single-type clusters plus surplus
    offers: long mini-auction chains, finite ``c_hat_{z'+1}`` pricing
    candidates in every cluster, and exact ties on the cheapest unused
    offers — the back-half (Alg. 3 + Alg. 4) edge cases in one market."""
    requests = []
    offers = []
    for k in range(10):
        rtype = f"t{k:02d}"
        low = 0.25 * k
        for j in range(3):
            offers.append(
                Offer(
                    offer_id=f"ch-o{k:02d}-{j}",
                    provider_id=f"chp-{k}-{j}",
                    submit_time=0.0,
                    resources={rtype: 1.0},
                    window=TimeWindow(0.0, 1.0),
                    bid=low + 0.05 * min(j, 1),  # two cheapest offers tie
                )
            )
        for i in range(2):
            requests.append(
                Request(
                    request_id=f"ch-r{k:02d}-{i}",
                    client_id=f"chc-{k}-{i}",
                    submit_time=0.0,
                    resources={rtype: 1.0},
                    window=TimeWindow(0.0, 1.0),
                    duration=1.0,
                    bid=low + 1.2 - 0.05 * i,
                )
            )
    return requests, offers


def _degraded_market():
    """A seeded market with a fault-injected reveal: a deterministic
    subset of bids never reveals and is excluded before clearing."""
    requests, offers = generate_market(24, seed=5)
    rng = make_generator(b"golden-degraded")
    dropped_r = set(rng.choice(len(requests), size=6, replace=False).tolist())
    dropped_o = set(rng.choice(len(offers), size=3, replace=False).tolist())
    return (
        [r for i, r in enumerate(requests) if i not in dropped_r],
        [o for j, o in enumerate(offers) if j not in dropped_o],
    )


def scenarios():
    yield "ec2_small", generate_market(20, seed=1), AuctionConfig(), b"golden-ec2"
    yield (
        "flexible_market",
        generate_market(16, seed=2, flexibility=0.7),
        AuctionConfig(),
        b"golden-flexible",
    )
    yield "tied_scores", _tied_market(), AuctionConfig(), b"golden-tied"
    yield (
        "benchmark_config",
        generate_market(20, seed=3),
        AuctionConfig.benchmark(),
        b"golden-benchmark",
    )
    yield (
        "no_mini_auctions",
        generate_market(20, seed=4),
        AuctionConfig(enable_mini_auctions=False),
        b"golden-nomini",
    )
    yield "degraded_round", _degraded_market(), AuctionConfig(), b"golden-degraded"
    yield (
        "chain_pricing",
        _chain_pricing_market(),
        AuctionConfig(),
        b"golden-chains",
    )


def main() -> None:
    defaults = AuctionConfig()
    for name, (requests, offers), config, evidence in scenarios():
        outcome = DecloudAuction(config).run(requests, offers, evidence=evidence)
        fixture = {
            "name": name,
            "config": {
                key: getattr(config, key)
                for key in CONFIG_KEYS
                if getattr(config, key) != getattr(defaults, key)
            },
            "evidence": evidence.hex(),
            "market": market_payload(requests, offers),
            "expected": canonical_outcome(outcome),
        }
        path = GOLDEN_DIR / f"{name}.json"
        path.write_text(json.dumps(fixture, indent=2, sort_keys=True) + "\n")
        print(
            f"wrote {path.name}: {len(requests)} requests, {len(offers)} "
            f"offers, {len(outcome.matches)} trades"
        )


if __name__ == "__main__":
    main()
