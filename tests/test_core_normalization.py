"""Unit tests for per-cluster normalization (§IV-C)."""

import math

import pytest

from repro.common.errors import AuctionError
from repro.core.config import AuctionConfig
from repro.core.normalization import (
    cluster_common_types,
    compute_economics,
    critical_types,
    payment_for,
    virtual_maximum,
)
from tests.conftest import make_offer, make_request

CONFIG = AuctionConfig()


class TestCommonTypes:
    def test_intersection_of_sides(self):
        requests = [make_request(resources={"cpu": 1, "gpu": 1})]
        offers = [make_offer(resources={"cpu": 8, "ram": 4})]
        assert cluster_common_types(requests, offers) == {"cpu"}

    def test_union_within_side(self):
        requests = [
            make_request(request_id="a", resources={"cpu": 1}),
            make_request(request_id="b", resources={"ram": 1}),
        ]
        offers = [make_offer(resources={"cpu": 8, "ram": 4})]
        assert cluster_common_types(requests, offers) == {"cpu", "ram"}


class TestVirtualMaximum:
    def test_per_type_max_over_offers(self):
        offers = [
            make_offer(offer_id="a", resources={"cpu": 4, "ram": 32}),
            make_offer(offer_id="b", resources={"cpu": 8, "ram": 16}),
        ]
        assert virtual_maximum(offers, {"cpu", "ram"}) == {"cpu": 8, "ram": 32}

    def test_restricted_to_common(self):
        offers = [make_offer(resources={"cpu": 4, "disk": 100})]
        assert virtual_maximum(offers, {"cpu"}) == {"cpu": 4}


class TestCriticalTypes:
    def test_defaults_plus_shared(self):
        requests = [
            make_request(request_id="a", resources={"cpu": 1, "latency": 5}),
            make_request(request_id="b", resources={"cpu": 2, "latency": 9}),
        ]
        critical = critical_types(requests, {"cpu", "latency"}, CONFIG)
        assert critical == {"cpu", "latency"}

    def test_non_shared_not_critical(self):
        requests = [
            make_request(request_id="a", resources={"cpu": 1, "latency": 5}),
            make_request(request_id="b", resources={"cpu": 2}),
        ]
        critical = critical_types(requests, {"cpu", "latency"}, CONFIG)
        assert critical == {"cpu"}


class TestComputeEconomics:
    def test_normalized_cost_formula(self):
        # Single offer: nu_o = 1, c_hat = bid / span.
        offers = [make_offer(resources={"cpu": 8}, bid=4.0)]  # span 24
        requests = [make_request(resources={"cpu": 4}, duration=6, bid=3.0)]
        economics = compute_economics(requests, offers, CONFIG)
        assert economics.nu_o("off-0") == pytest.approx(1.0)
        assert economics.c_hat("off-0") == pytest.approx(4.0 / 24.0)

    def test_normalized_value_uses_critical_fraction(self):
        offers = [make_offer(resources={"cpu": 8, "ram": 8}, bid=4.0)]
        # cpu usage 100% -> nu_r = 1 even though the l2 fraction is lower.
        requests = [
            make_request(resources={"cpu": 8, "ram": 1}, duration=6, bid=3.0)
        ]
        economics = compute_economics(requests, offers, CONFIG)
        assert economics.nu_r("req-0") == pytest.approx(1.0)
        assert economics.v_hat("req-0") == pytest.approx(3.0 / 6.0)

    def test_nu_r_capped_at_one(self):
        offers = [make_offer(resources={"cpu": 4}, bid=4.0)]
        requests = [make_request(resources={"cpu": 9}, duration=3, bid=3.0)]
        economics = compute_economics(requests, offers, CONFIG)
        assert economics.nu_r("req-0") == 1.0

    def test_offer_without_common_types_priced_infinite(self):
        offers = [
            make_offer(offer_id="good", resources={"cpu": 8}, bid=1.0),
            make_offer(offer_id="weird", resources={"fpga": 2}, bid=1.0),
        ]
        requests = [make_request(resources={"cpu": 2}, bid=1.0)]
        economics = compute_economics(requests, offers, CONFIG)
        assert math.isinf(economics.c_hat("weird"))

    def test_empty_cluster_raises(self):
        with pytest.raises(AuctionError):
            compute_economics([], [make_offer()], CONFIG)
        with pytest.raises(AuctionError):
            compute_economics([make_request()], [], CONFIG)

    def test_disjoint_cluster_raises(self):
        with pytest.raises(AuctionError):
            compute_economics(
                [make_request(resources={"gpu": 1})],
                [make_offer(resources={"cpu": 1})],
                CONFIG,
            )


class TestPaymentFor:
    def test_payment_scaling(self):
        offers = [make_offer(resources={"cpu": 8}, bid=4.0)]
        requests = [make_request(resources={"cpu": 4}, duration=6, bid=3.0)]
        economics = compute_economics(requests, offers, CONFIG)
        price = 0.1
        payment = payment_for(economics, requests[0], price)
        assert payment == pytest.approx(economics.nu_r("req-0") * 6 * 0.1)

    def test_ir_at_v_hat_price(self):
        # Paying exactly v_hat gives payment == bid (IR boundary).
        offers = [make_offer(resources={"cpu": 8}, bid=4.0)]
        requests = [make_request(resources={"cpu": 4}, duration=6, bid=3.0)]
        economics = compute_economics(requests, offers, CONFIG)
        payment = payment_for(
            economics, requests[0], economics.v_hat("req-0")
        )
        assert payment == pytest.approx(3.0)
