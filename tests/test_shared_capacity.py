"""Cross-cluster capacity sharing inside a mini-auction.

An offer that appears in several (nested) clusters of the same
mini-auction exposes ONE pool of capacity; the clearing logic must not
double-book it, and a request present in several clusters must win at
most once — the Const. (5)/(7) story at auction scope rather than
cluster scope.
"""

import random

import pytest

from repro.core.auction import DecloudAuction, _index_offers, _index_requests
from repro.core.cluster_allocation import allocate_cluster
from repro.core.clustering import Cluster
from repro.core.config import AuctionConfig
from repro.core.miniauctions import MiniAuction
from repro.core.trade_reduction import clear_mini_auction
from repro.common.timewindow import TimeWindow
from tests.conftest import make_offer, make_request

CONFIG = AuctionConfig()


class TestSharedOfferCapacity:
    def test_offer_in_two_clusters_not_double_booked(self):
        # One small machine shared by two clusters; total demand exceeds
        # its capacity: the auction may fill it once, not twice.
        shared = make_offer(
            offer_id="shared",
            resources={"cpu": 4, "ram": 8, "disk": 50},
            bid=0.2,
        )
        other = make_offer(
            offer_id="other",
            resources={"cpu": 4, "ram": 8, "disk": 50},
            bid=0.25,
        )
        # Each request consumes (12/24)*4 = 2 cpu of budget; capacity 4
        # fits exactly two of them per machine.
        requests = [
            make_request(
                request_id=f"r{i}",
                client_id=f"c{i}",
                resources={"cpu": 4, "ram": 4, "disk": 10},
                duration=12.0,
                window=TimeWindow(0, 24),
                bid=3.0 + 0.1 * i,
            )
            for i in range(6)
        ]
        cluster_a = Cluster(
            offer_ids=frozenset({"shared", "other"}),
            request_ids={"r0", "r1", "r2"},
        )
        cluster_b = Cluster(
            offer_ids=frozenset({"shared"}),
            request_ids={"r3", "r4", "r5"},
        )
        request_by_id = _index_requests(requests)
        offer_by_id = _index_offers([shared, other])
        alloc_a = allocate_cluster(
            cluster_a,
            [request_by_id[r] for r in sorted(cluster_a.request_ids)],
            [shared, other],
            CONFIG,
        )
        alloc_b = allocate_cluster(
            cluster_b,
            [request_by_id[r] for r in sorted(cluster_b.request_ids)],
            [shared],
            CONFIG,
        )
        auction = MiniAuction(allocations=[alloc_a, alloc_b])
        result = clear_mini_auction(
            auction,
            request_by_id,
            offer_by_id,
            set(),
            set(),
            CONFIG,
            random.Random(0),
        )
        # Capacity audit: time-weighted load per machine within budget.
        for offer in (shared, other):
            load = sum(
                (m.request.duration / offer.span)
                * m.request.resources["cpu"]
                for m in result.matches
                if m.offer.offer_id == offer.offer_id
            )
            assert load <= offer.resources["cpu"] + 1e-9
        # No request matched twice across the two clusters.
        matched = [m.request.request_id for m in result.matches]
        assert len(matched) == len(set(matched))

    def test_request_in_two_clusters_wins_once(self):
        offer_a = make_offer(offer_id="a", bid=0.2)
        offer_b = make_offer(offer_id="b", bid=0.3)
        wanted = make_request(
            request_id="hot", client_id="hot", bid=5.0, duration=4.0
        )
        fillers = [
            make_request(
                request_id=f"f{i}", client_id=f"f{i}", bid=2.0, duration=4.0
            )
            for i in range(2)
        ]
        requests = [wanted] + fillers
        request_by_id = _index_requests(requests)
        offer_by_id = _index_offers([offer_a, offer_b])
        cluster_a = Cluster(
            offer_ids=frozenset({"a"}), request_ids={"hot", "f0"}
        )
        cluster_b = Cluster(
            offer_ids=frozenset({"b"}), request_ids={"hot", "f1"}
        )
        alloc_a = allocate_cluster(
            cluster_a, [wanted, fillers[0]], [offer_a], CONFIG
        )
        alloc_b = allocate_cluster(
            cluster_b, [wanted, fillers[1]], [offer_b], CONFIG
        )
        auction = MiniAuction(allocations=[alloc_a, alloc_b])
        result = clear_mini_auction(
            auction,
            request_by_id,
            offer_by_id,
            set(),
            set(),
            CONFIG,
            random.Random(0),
        )
        assert (
            sum(1 for m in result.matches if m.request.request_id == "hot")
            <= 1
        )


class TestFullAuctionCapacityStress:
    @pytest.mark.parametrize("seed", [11, 22, 33])
    def test_no_offer_oversubscribed_under_pressure(self, seed):
        import numpy as np

        rng = np.random.default_rng(seed)
        offers = [
            make_offer(
                offer_id=f"o{j}",
                provider_id=f"p{j}",
                resources={"cpu": 4, "ram": 8, "disk": 40},
                bid=float(rng.uniform(0.2, 0.6)),
            )
            for j in range(3)
        ]
        requests = [
            make_request(
                request_id=f"r{i}",
                client_id=f"c{i}",
                resources={
                    "cpu": float(rng.uniform(1, 4)),
                    "ram": float(rng.uniform(1, 8)),
                    "disk": 5.0,
                },
                duration=float(rng.uniform(2, 9)),
                bid=float(rng.uniform(0.5, 4.0)),
            )
            for i in range(25)
        ]
        outcome = DecloudAuction(CONFIG).run(
            requests, offers, evidence=bytes([seed])
        )
        for offer in offers:
            for key in offer.resources:
                load = sum(
                    (m.request.duration / offer.span)
                    * min(m.request.resources.get(key, 0.0), offer.resources[key])
                    for m in outcome.matches
                    if m.offer.offer_id == offer.offer_id
                )
                assert load <= offer.resources[key] + 1e-6
