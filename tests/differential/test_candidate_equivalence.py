"""Differential oracle: candidate pruning never changes an outcome.

For every Hypothesis market — clustered-geo, uniform-geo, network-zone,
and latency-resource-attached — the auction must clear *bit-identically*
with and without each candidate generator, on both engines.  Four
flavors x 30 examples give 120+ generated markets per run, every one
also replayed through the scalar certificate checker (``verify="full"``),
plus the seeded zone markets and all seven golden fixtures with
candidates enabled.

The two engines consume certificates differently (the reference engine
re-ranks admitted offers with the scalar kernel; the vectorized engine
takes the generator's own lexsort ranking), so agreement here means two
independent consumers of the pruning reached the same outcome as two
independent all-pairs engines.
"""

from __future__ import annotations

import json
from dataclasses import replace
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.auction import DecloudAuction
from repro.core.candidates import (
    AllPairsGenerator,
    GeoBucketGenerator,
    NetworkZoneGenerator,
    ResourceVectorGenerator,
)
from repro.core.config import AuctionConfig
from repro.market.bids import Offer, Request
from repro.market.location import (
    GeoLocation,
    latency_headroom,
    pairwise_latency_ms,
)
from repro.obs import Observability
from repro.workloads.generators import generate_zone_market

from tests.differential.conftest import canonical_outcome, market_from_payload
from tests.differential.test_engine_equivalence import markets

GOLDEN_DIR = Path(__file__).resolve().parent.parent / "fixtures" / "golden"

ZONE_ANCHORS = (
    GeoLocation(60.2, 24.9),     # Helsinki
    GeoLocation(-33.9, 151.2),   # Sydney
    GeoLocation(-17.5, 179.8),   # Fiji — hugs the antimeridian
)
NETWORK_ZONES = (
    "eu/hel/cell-1",
    "eu/ber/cell-2",
    "us/nyc/cell-1",
    "apac/syd/cell-3",
    "edge",
)


def _clear_all_ways(requests, offers, generators, config=None):
    """Clear with no candidates and with each generator, on both engines;
    assert all canonical outcomes are identical."""
    base = config or AuctionConfig()
    digests = {}
    for engine in ("reference", "vectorized"):
        out = DecloudAuction(replace(base, engine=engine)).run(
            requests, offers, obs=Observability(f"cand-{engine}")
        )
        digests[f"allpairs/{engine}"] = canonical_outcome(out)
    for name, generator in generators:
        for engine in ("reference", "vectorized"):
            config_g = replace(base, engine=engine, candidates=generator)
            out = DecloudAuction(config_g).run(
                requests, offers, obs=Observability(f"cand-{name}-{engine}")
            )
            digests[f"{name}/{engine}"] = canonical_outcome(out)
    baseline = digests["allpairs/reference"]
    for key, digest in digests.items():
        assert digest == baseline, f"{key} diverged from all-pairs reference"
    return baseline


def _relocate(requests, offers, tags):
    """Copy bids onto a cycle of location tags."""
    new_requests = [
        replace(r, location=tags[i % len(tags)])
        for i, r in enumerate(requests)
    ]
    new_offers = [
        replace(o, location=tags[(j + 1) % len(tags)])
        for j, o in enumerate(offers)
    ]
    return new_requests, new_offers


@st.composite
def geo_tagged_markets(draw, clustered: bool):
    requests, offers = draw(markets(max_requests=8, max_offers=8))
    locations = {}
    tags = []
    n_tags = draw(st.integers(min_value=2, max_value=6))
    for t in range(n_tags):
        if clustered:
            anchor = ZONE_ANCHORS[t % len(ZONE_ANCHORS)]
            latitude = anchor.latitude + draw(
                st.floats(min_value=-1.5, max_value=1.5)
            )
            longitude = anchor.longitude + draw(
                st.floats(min_value=-1.5, max_value=1.5)
            )
        else:
            latitude = draw(st.floats(min_value=-89.0, max_value=89.0))
            longitude = draw(st.floats(min_value=-180.0, max_value=180.0))
        tag = f"site-{t}"
        locations[tag] = GeoLocation(
            max(-90.0, min(90.0, latitude)),
            ((longitude + 180.0) % 360.0) - 180.0,
        )
        tags.append(tag)
    requests, offers = _relocate(requests, offers, tags)
    cell_deg = draw(st.sampled_from((10.0, 30.0, 90.0)))
    return requests, offers, locations, cell_deg


@settings(max_examples=30, deadline=None)
@given(geo_tagged_markets(clustered=True))
def test_clustered_geo_markets(market):
    requests, offers, locations, cell_deg = market
    _clear_all_ways(
        requests,
        offers,
        [
            ("geo", GeoBucketGenerator(locations, cell_deg, verify="full")),
            ("res", ResourceVectorGenerator(group_size=3, verify="full")),
        ],
    )


@settings(max_examples=30, deadline=None)
@given(geo_tagged_markets(clustered=False))
def test_uniform_geo_markets(market):
    requests, offers, locations, cell_deg = market
    _clear_all_ways(
        requests,
        offers,
        [("geo", GeoBucketGenerator(locations, cell_deg, verify="full"))],
    )


@settings(max_examples=30, deadline=None)
@given(markets(max_requests=8, max_offers=8), st.integers(1, 2))
def test_network_zone_markets(market, depth):
    requests, offers = _relocate(*market, tags=NETWORK_ZONES)
    _clear_all_ways(
        requests,
        offers,
        [
            ("net", NetworkZoneGenerator(depth=depth, verify="full")),
            ("all", AllPairsGenerator(verify="full")),
        ],
    )


@st.composite
def latency_attached_markets(draw):
    """Markets where proximity is folded into the bidding language:
    every offer carries a ``latency`` headroom resource toward its
    zone's anchor, and requests demand it softly (§II-C)."""
    requests, offers = draw(markets(max_requests=7, max_offers=7))
    locations = {}
    tags = []
    for t, anchor in enumerate(ZONE_ANCHORS):
        tag = f"zone-{t}"
        locations[tag] = anchor
        tags.append(tag)
    requests, offers = _relocate(requests, offers, tags)
    tolerance = draw(st.sampled_from((30.0, 80.0)))
    new_offers = []
    for offer in offers:
        latency = pairwise_latency_ms(
            locations[offer.location], locations[tags[0]]
        )
        resources = dict(offer.resources)
        resources["latency"] = latency_headroom(latency, tolerance)
        new_offers.append(replace(offer, resources=resources))
    new_requests = []
    for request in requests:
        resources = dict(request.resources)
        resources["latency"] = tolerance * 0.1
        significance = dict(request.significance)
        significance["latency"] = 0.9
        new_requests.append(
            replace(request, resources=resources, significance=significance)
        )
    return new_requests, new_offers, locations


@settings(max_examples=30, deadline=None)
@given(latency_attached_markets())
def test_latency_resource_attached_markets(market):
    requests, offers, locations = market
    _clear_all_ways(
        requests,
        offers,
        [
            ("geo", GeoBucketGenerator(locations, 30.0, verify="full")),
            ("res", ResourceVectorGenerator(group_size=4, verify="full")),
        ],
    )


@pytest.mark.parametrize("kind", ["geo", "network"])
@pytest.mark.parametrize("locality", ["strong", "weak"])
def test_seeded_zone_markets(kind, locality):
    requests, offers, locations = generate_zone_market(
        80, n_zones=5, seed=11, kind=kind, locality=locality
    )
    generators = [("res", ResourceVectorGenerator(verify="sample"))]
    if kind == "geo":
        generators.append(
            ("geo", GeoBucketGenerator(locations, 15.0, verify="sample"))
        )
    else:
        generators.append(
            ("net", NetworkZoneGenerator(depth=1, verify="sample"))
        )
    _clear_all_ways(requests, offers, generators)


GOLDEN_GENERATORS = [
    ("all", lambda: AllPairsGenerator(verify="full")),
    ("res", lambda: ResourceVectorGenerator(group_size=3, verify="full")),
    ("geo", lambda: GeoBucketGenerator({}, cell_deg=30.0, verify="full")),
    ("net", lambda: NetworkZoneGenerator(verify="full")),
]


@pytest.mark.parametrize(
    "path", sorted(GOLDEN_DIR.glob("*.json")), ids=lambda p: p.stem
)
@pytest.mark.parametrize("engine", ["reference", "vectorized"])
@pytest.mark.parametrize(
    "factory", [g[1] for g in GOLDEN_GENERATORS], ids=[g[0] for g in GOLDEN_GENERATORS]
)
def test_golden_fixtures_with_candidates(path, engine, factory):
    """All 7 golden outcomes replay bit-identically with candidates on."""
    fixture = json.loads(path.read_text())
    requests, offers = market_from_payload(fixture["market"])
    config = AuctionConfig(
        engine=engine, candidates=factory(), **fixture["config"]
    )
    outcome = DecloudAuction(config).run(
        requests, offers, evidence=bytes.fromhex(fixture["evidence"])
    )
    assert canonical_outcome(outcome) == fixture["expected"], (
        f"{path.stem} diverged with candidates enabled on {engine}"
    )
