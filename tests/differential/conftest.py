"""Shared helpers for the differential (reference vs vectorized) suite.

The contract under test: for identical inputs (requests, offers,
evidence, config-modulo-engine), the vectorized engine must produce an
:class:`~repro.core.outcome.AuctionOutcome` *bit-identical* to the
reference engine — same allocations, same prices and payments down to
the last float bit, same reduced-trade sets, same welfare.

``canonical_outcome`` reduces an outcome to a plain, order-independent
structure in which every float is rendered with ``float.hex()`` so that
equality is exact, diffable, and JSON-serializable (golden fixtures
store exactly this structure).  It lives in
:mod:`repro.core.outcome` — the crash-matrix recovery harness compares
recovered rounds through the same digest — and is re-exported here for
the suite.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, List, Sequence, Tuple

from repro.core.auction import DecloudAuction
from repro.core.config import AuctionConfig
from repro.core.outcome import AuctionOutcome, canonical_outcome
from repro.market.bids import Offer, Request
from repro.obs import Observability

__all__ = [
    "assert_engines_agree",
    "canonical_outcome",
    "market_from_payload",
    "market_payload",
    "run_both_engines",
]


def run_both_engines(
    requests: Sequence[Request],
    offers: Sequence[Offer],
    evidence: bytes = b"differential-evidence",
    config: AuctionConfig | None = None,
) -> Tuple[Dict, Dict]:
    """Clear the same block on both engines; return canonical digests.

    Both engines run with a live :class:`~repro.obs.Observability`
    attached — the differential contract therefore also enforces that
    instrumentation never perturbs outcomes.
    """
    base = config or AuctionConfig()
    reference = DecloudAuction(replace(base, engine="reference"))
    vectorized = DecloudAuction(replace(base, engine="vectorized"))
    return (
        canonical_outcome(
            reference.run(
                requests, offers, evidence=evidence,
                obs=Observability("diff-reference"),
            )
        ),
        canonical_outcome(
            vectorized.run(
                requests, offers, evidence=evidence,
                obs=Observability("diff-vectorized"),
            )
        ),
    )


def assert_engines_agree(
    requests: Sequence[Request],
    offers: Sequence[Offer],
    evidence: bytes = b"differential-evidence",
    config: AuctionConfig | None = None,
) -> Dict:
    """Assert bit-identical outcomes; return the (shared) digest."""
    ref, vec = run_both_engines(requests, offers, evidence=evidence, config=config)
    assert vec == ref, _first_divergence(ref, vec)
    return ref


def _first_divergence(ref: Dict, vec: Dict) -> str:
    for key in ref:
        if ref[key] != vec[key]:
            return (
                f"engines diverge on {key!r}:\n"
                f"  reference:  {ref[key]!r}\n"
                f"  vectorized: {vec[key]!r}"
            )
    return "engines diverge"


def market_payload(
    requests: Sequence[Request], offers: Sequence[Offer]
) -> Dict[str, List[Dict]]:
    """JSON-ready market (golden fixtures store bids as payloads)."""
    return {
        "requests": [r.to_payload() for r in requests],
        "offers": [o.to_payload() for o in offers],
    }


def market_from_payload(
    payload: Dict[str, List[Dict]],
) -> Tuple[List[Request], List[Offer]]:
    return (
        [Request.from_payload(p) for p in payload["requests"]],
        [Offer.from_payload(p) for p in payload["offers"]],
    )
