"""Differential oracle: vectorized engine == reference engine, bit for bit.

Hypothesis generates adversarial markets — tie-heavy grid amounts,
mixed flexibility regimes, degenerate windows, zero amounts, duplicated
bids — and every one must clear identically on both engines.  Market
sizes stay small so hundreds of examples run in seconds; the seeded
Google-trace/EC2 markets in ``test_seeded_markets`` cover realistic
structure at larger sizes.

Degraded rounds mirror the exposure protocol's failure semantics: a
seeded subset of bids never reveals and is excluded before clearing
(§III-B / the fault model of docs/SECURITY.md), so the engines are also
compared on every such survivor market.
"""

from __future__ import annotations

from dataclasses import replace

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.timewindow import TimeWindow
from repro.core.auction import DecloudAuction
from repro.core.config import AuctionConfig
from repro.market.bids import Offer, Request
from repro.workloads.generators import generate_market

from tests.differential.conftest import assert_engines_agree, canonical_outcome

#: Grid values on purpose: exact float ties across participants are the
#: cases where only explicit tie-breaking keeps the engines aligned.
RESOURCE_TYPES = ("cpu", "ram", "disk", "gpu", "bw")
AMOUNTS = (0.0, 0.5, 1.0, 2.0, 4.0, 8.0)
GRID_BIDS = (0.25, 0.5, 1.0, 2.0, 4.0)
SUBMIT_TIMES = (0.0, 0.5, 1.0)

amounts = st.sampled_from(AMOUNTS)
bids = st.one_of(
    st.sampled_from(GRID_BIDS),
    st.floats(min_value=0.01, max_value=16.0, allow_nan=False),
)
sigmas = st.sampled_from((0.5, 0.9, 1.0))


@st.composite
def resource_vectors(draw, allow_zero=False):
    n_types = draw(st.integers(min_value=1, max_value=3))
    types = draw(
        st.lists(
            st.sampled_from(RESOURCE_TYPES),
            min_size=n_types,
            max_size=n_types,
            unique=True,
        )
    )
    vector = {t: draw(amounts) for t in types}
    if not allow_zero and all(v == 0.0 for v in vector.values()):
        vector[types[0]] = 1.0
    return vector


@st.composite
def requests(draw, index: int = 0):
    resources = draw(resource_vectors())
    significance = {
        t: draw(sigmas) for t in resources if draw(st.booleans())
    }
    start = draw(st.sampled_from((0.0, 1.0, 2.0)))
    duration = draw(st.sampled_from((1.0, 2.0, 4.0)))
    span = duration + draw(st.sampled_from((0.0, 2.0, 8.0)))
    return Request(
        request_id=f"r{index:02d}",
        client_id=f"c{draw(st.integers(min_value=0, max_value=6))}",
        submit_time=draw(st.sampled_from(SUBMIT_TIMES)),
        resources=resources,
        significance=significance,
        window=TimeWindow(start, start + span),
        duration=duration,
        bid=draw(bids),
        flexibility=draw(st.sampled_from((1.0, 0.8, 0.5))),
    )


@st.composite
def offers(draw, index: int = 0):
    start = draw(st.sampled_from((0.0, 1.0)))
    span = draw(st.sampled_from((4.0, 8.0, 24.0)))
    return Offer(
        offer_id=f"o{index:02d}",
        provider_id=f"p{draw(st.integers(min_value=0, max_value=4))}",
        submit_time=draw(st.sampled_from(SUBMIT_TIMES)),
        resources=draw(resource_vectors()),
        window=TimeWindow(start, start + span),
        bid=draw(bids),
    )


@st.composite
def markets(draw, max_requests: int = 10, max_offers: int = 8):
    n_requests = draw(st.integers(min_value=1, max_value=max_requests))
    n_offers = draw(st.integers(min_value=1, max_value=max_offers))
    return (
        [draw(requests(index=i)) for i in range(n_requests)],
        [draw(offers(index=j)) for j in range(n_offers)],
    )


CONFIGS = (
    AuctionConfig(),
    AuctionConfig(cluster_breadth=1),
    AuctionConfig(cluster_breadth=5),
    AuctionConfig(enable_mini_auctions=False),
    AuctionConfig(enable_randomization=False),
    AuctionConfig.benchmark(),
)


def _chain_market(num_bands=14, band_step=0.25, band_width=1.2):
    """Ladder of price-compatible clusters (exercises Alg. 3's DP/trees).

    Band ``k`` lives on its own resource type, so it forms its own
    cluster, with price range roughly ``[k*step, k*step + width]`` —
    consecutive bands overlap, so the bands chain into long
    price-compatible mini-auction paths.  Three offers against two
    requests per band leave an unused offer, giving every cluster a
    finite ``c_hat_{z'+1}`` pricing candidate.
    """
    requests_, offers_ = [], []
    for k in range(num_bands):
        rtype = f"t{k:02d}"
        low = band_step * k
        high = low + band_width
        for j in range(3):
            offers_.append(
                Offer(
                    offer_id=f"ch-o{k:02d}-{j}",
                    provider_id=f"chp-{k}-{j}",
                    submit_time=0.0,
                    resources={rtype: 1.0},
                    window=TimeWindow(0.0, 1.0),
                    bid=low + 0.05 * j,
                )
            )
        for i in range(2):
            requests_.append(
                Request(
                    request_id=f"ch-r{k:02d}-{i}",
                    client_id=f"chc-{k}-{i}",
                    submit_time=0.0,
                    resources={rtype: 1.0},
                    window=TimeWindow(0.0, 1.0),
                    duration=1.0,
                    bid=high - 0.05 * i,
                )
            )
    return requests_, offers_


def _single_trade_market(num_bands=8):
    """Isolated one-trade clusters: price ranges far apart, no chains.

    Every mini-auction holds exactly one tentative trade and no unused
    offer; the SBBA price comes from the winning request, whose client
    is then excluded — the whole auction reduces away.  The all-reduced
    edge is where sloppy pricing/reduction vectorization would diverge.
    """
    requests_, offers_ = [], []
    for k in range(num_bands):
        rtype = f"s{k:02d}"
        offers_.append(
            Offer(
                offer_id=f"st-o{k:02d}",
                provider_id=f"stp-{k}",
                submit_time=0.0,
                resources={rtype: 1.0},
                window=TimeWindow(0.0, 1.0),
                bid=10.0 * k + 1.0,
            )
        )
        requests_.append(
            Request(
                request_id=f"st-r{k:02d}",
                client_id=f"stc-{k}",
                submit_time=0.0,
                resources={rtype: 1.0},
                window=TimeWindow(0.0, 1.0),
                duration=1.0,
                bid=10.0 * k + 1.5,
            )
        )
    return requests_, offers_


def _tied_pricing_market():
    """Exact v_hat/c_hat ties everywhere, with surplus tied z'+1 offers.

    Two clusters with *identical* price ranges (so root selection and
    attachment tie on floats and must fall back to id-lexicographic
    keys), each with more identical offers than demand so the
    ``c_hat_{z'+1}`` pricing candidates tie across clusters too.
    """
    requests_, offers_ = [], []
    for rtype in ("tx", "ty"):
        for j in range(4):
            offers_.append(
                Offer(
                    offer_id=f"tp-o-{rtype}{j}",
                    provider_id=f"tpp-{rtype}{j}",
                    submit_time=0.0,
                    resources={rtype: 2.0},
                    window=TimeWindow(0.0, 4.0),
                    bid=1.0,
                )
            )
        for i in range(2):
            requests_.append(
                Request(
                    request_id=f"tp-r-{rtype}{i}",
                    client_id=f"tpc-{rtype}{i}",
                    submit_time=0.0,
                    resources={rtype: 2.0},
                    window=TimeWindow(0.0, 4.0),
                    duration=4.0,
                    bid=6.0,
                )
            )
    return requests_, offers_


class TestHypothesisMarkets:
    @given(market=markets(), evidence=st.binary(min_size=1, max_size=8))
    @settings(max_examples=120, deadline=None)
    def test_default_config(self, market, evidence):
        requests_, offers_ = market
        assert_engines_agree(requests_, offers_, evidence=evidence)

    @given(
        market=markets(max_requests=8, max_offers=6),
        config=st.sampled_from(CONFIGS),
    )
    @settings(max_examples=60, deadline=None)
    def test_config_regimes(self, market, config):
        requests_, offers_ = market
        assert_engines_agree(requests_, offers_, config=config)

    @given(
        market=markets(max_requests=8, max_offers=6),
        drop_requests=st.sets(st.integers(min_value=0, max_value=7)),
        drop_offers=st.sets(st.integers(min_value=0, max_value=5)),
    )
    @settings(max_examples=60, deadline=None)
    def test_degraded_rounds(self, market, drop_requests, drop_offers):
        """Fault-injected rounds: unrevealed bids are excluded up front."""
        requests_, offers_ = market
        survivors_r = [
            r for i, r in enumerate(requests_) if i not in drop_requests
        ]
        survivors_o = [
            o for j, o in enumerate(offers_) if j not in drop_offers
        ]
        assert_engines_agree(survivors_r, survivors_o, evidence=b"degraded")


class TestSeededMarkets:
    @pytest.mark.parametrize("size", [20, 60, 150])
    @pytest.mark.parametrize("flexibility", [1.0, 0.7])
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_google_trace_markets(self, size, flexibility, seed):
        requests_, offers_ = generate_market(
            size, seed=seed, flexibility=flexibility
        )
        assert_engines_agree(
            requests_, offers_, evidence=b"seeded-%d" % seed
        )

    @pytest.mark.parametrize("config", CONFIGS, ids=lambda c: "-".join(
        filter(None, [
            f"breadth{c.cluster_breadth}",
            "" if c.enable_mini_auctions else "nomini",
            "" if c.enable_trade_reduction else "benchmark",
            "" if c.enable_randomization else "norandom",
        ])
    ))
    def test_config_sweep_on_seeded_market(self, config):
        requests_, offers_ = generate_market(80, seed=7)
        assert_engines_agree(requests_, offers_, config=config)


class TestBackHalfMarkets:
    """Cluster-chain-heavy and pricing-edge markets for the back-half
    kernels (batched normalization, vectorized Alg. 3, batched SBBA
    pricing).  ``workers=0`` exercises the sequential shared-RNG path,
    ``workers=1`` the wave scheduler with its batched pricing pass."""

    @pytest.mark.parametrize("workers", [0, 1])
    def test_chain_heavy_market(self, workers):
        requests_, offers_ = _chain_market()
        digest = assert_engines_agree(
            requests_,
            offers_,
            evidence=b"chains",
            config=AuctionConfig(miniauction_workers=workers),
        )
        assert digest["matches"]  # chains actually trade

    @pytest.mark.parametrize(
        "band_step,band_width", [(0.1, 2.0), (0.5, 0.6), (0.25, 0.11)]
    )
    def test_chain_overlap_regimes(self, band_step, band_width):
        """From one giant chain to hairline intervals (the greedy fit
        shaves 0.1 off the width, so 0.11 leaves near-zero intervals —
        maximal 1/(1+width) DP weights and predecessor ties)."""
        requests_, offers_ = _chain_market(
            band_step=band_step, band_width=band_width
        )
        assert_engines_agree(requests_, offers_, evidence=b"overlap")

    @pytest.mark.parametrize("workers", [0, 1])
    def test_single_trade_all_reduced(self, workers):
        requests_, offers_ = _single_trade_market()
        digest = assert_engines_agree(
            requests_,
            offers_,
            evidence=b"single-trade",
            config=AuctionConfig(miniauction_workers=workers),
        )
        # One-trade auctions price off their only winner, whose client
        # is excluded: everything reduces, nothing clears.
        assert digest["matches"] == []
        assert digest["reduced_requests"]

    @pytest.mark.parametrize("workers", [0, 1])
    def test_tied_virtual_bids(self, workers):
        requests_, offers_ = _tied_pricing_market()
        assert_engines_agree(
            requests_,
            offers_,
            evidence=b"tied-pricing",
            config=AuctionConfig(miniauction_workers=workers),
        )

    def test_mixed_chain_and_seeded(self):
        """Chains grafted onto a realistic seeded market."""
        chain_r, chain_o = _chain_market(num_bands=8)
        seeded_r, seeded_o = generate_market(40, seed=13)
        assert_engines_agree(
            chain_r + seeded_r, chain_o + seeded_o, evidence=b"mixed"
        )


class TestParallelClearing:
    """miniauction_workers: per-auction RNG streams and the process pool
    are bit-identical to each other, on both engines."""

    @pytest.mark.parametrize("engine", ["reference", "vectorized"])
    def test_pool_matches_sequential_stream(self, engine):
        requests_, offers_ = generate_market(100, seed=3)
        outcomes = [
            canonical_outcome(
                DecloudAuction(
                    AuctionConfig(engine=engine, miniauction_workers=workers)
                ).run(requests_, offers_, evidence=b"parallel")
            )
            for workers in (1, 2, 4)
        ]
        assert outcomes[0] == outcomes[1] == outcomes[2]

    def test_engines_agree_under_workers(self):
        requests_, offers_ = generate_market(80, seed=11)
        assert_engines_agree(
            requests_,
            offers_,
            evidence=b"parallel-differential",
            config=AuctionConfig(miniauction_workers=2),
        )


class TestIncrementalMatcher:
    def test_online_rounds_reuse_rows_bit_identically(self):
        """One auction instance across overlapping blocks (the online
        pattern) must equal fresh per-block clearing."""
        requests_, offers_ = generate_market(60, seed=5)
        incremental = DecloudAuction(AuctionConfig(engine="vectorized"))
        for round_index in range(4):
            # Overlapping participant pools: drop a sliding window.
            lo = round_index * 5
            block_r = requests_[lo : lo + 40]
            block_o = offers_[: len(offers_) - round_index * 3]
            evidence = b"online-%d" % round_index
            cached = canonical_outcome(
                incremental.run(block_r, block_o, evidence=evidence)
            )
            fresh = canonical_outcome(
                DecloudAuction(AuctionConfig(engine="reference")).run(
                    block_r, block_o, evidence=evidence
                )
            )
            assert cached == fresh
        assert incremental._matcher is not None
        assert incremental._matcher.hits > 0
