"""Replay the golden fixtures on both engines.

The fixtures under ``tests/fixtures/golden/`` freeze six end-to-end
auction outcomes (market, config, evidence, canonical outcome with every
float in ``hex()``).  A future refactor that changes any allocation,
price, payment, reduced-trade set, or welfare — even in the last bit —
diffs here against a known-good outcome instead of hoping the property
suite notices.  Regenerate deliberately with
``tests/fixtures/golden/regenerate.py``.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.core.auction import DecloudAuction
from repro.core.config import AuctionConfig

from tests.differential.conftest import canonical_outcome, market_from_payload

GOLDEN_DIR = Path(__file__).resolve().parent.parent / "fixtures" / "golden"
FIXTURES = sorted(GOLDEN_DIR.glob("*.json"))


def _load(path: Path):
    fixture = json.loads(path.read_text())
    requests, offers = market_from_payload(fixture["market"])
    return fixture, requests, offers


def test_fixture_inventory():
    """The golden set is a deliberate artifact: exactly these seven."""
    assert [p.stem for p in FIXTURES] == [
        "benchmark_config",
        "chain_pricing",
        "degraded_round",
        "ec2_small",
        "flexible_market",
        "no_mini_auctions",
        "tied_scores",
    ]


@pytest.mark.parametrize("path", FIXTURES, ids=lambda p: p.stem)
@pytest.mark.parametrize("engine", ["reference", "vectorized"])
def test_golden_replay(path: Path, engine: str):
    fixture, requests, offers = _load(path)
    config = AuctionConfig(engine=engine, **fixture["config"])
    outcome = DecloudAuction(config).run(
        requests, offers, evidence=bytes.fromhex(fixture["evidence"])
    )
    assert canonical_outcome(outcome) == fixture["expected"], (
        f"{path.stem} diverged from its golden outcome on the {engine} "
        "engine; if this change is intended, regenerate via "
        "tests/fixtures/golden/regenerate.py"
    )


@pytest.mark.parametrize("path", FIXTURES, ids=lambda p: p.stem)
def test_golden_fixture_is_nontrivial(path: Path):
    """Fixtures must exercise the mechanism, not freeze empty outcomes."""
    fixture, requests, offers = _load(path)
    assert requests and offers
    if path.stem != "tied_scores":
        assert fixture["expected"]["matches"], (
            f"{path.stem} froze an outcome with zero trades — regenerate "
            "with a market that actually clears"
        )
