"""Differential contract of the sharded market fabric.

Four equivalences, each down to ``canonical_outcome`` bit-identity:

* **worker-layout invariance** — the same block and
  :class:`~repro.core.config.ShardPlan` clear identically whether shards
  run sequentially (``shard_workers=0``), in one process (``=1``), or
  across a process pool (``=N``): per-shard randomization streams are
  derived from ``(evidence, zone key)`` alone;
* **engine invariance** — reference and vectorized engines agree under
  sharding exactly as they do globally;
* **degenerate exactness** — a plan whose partition yields a single
  shard is bit-identical to running with no plan at all (raw block
  evidence, no spillover round);
* **spillover accounting** — the spillover round consumes *exactly* the
  unmatched survivors of the shard round (plus both sides of any shard
  missing a counterparty side), verified by re-implementing the fabric
  structurally out of public pieces and comparing digests.

Markets come from :func:`~repro.workloads.generators.generate_zone_market`
over both partition kinds and both locality regimes, with Hypothesis
steering the shape knobs.
"""

from __future__ import annotations

from dataclasses import replace

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.auction import DecloudAuction
from repro.core.config import AuctionConfig, ShardPlan
from repro.core.outcome import AuctionOutcome
from repro.core.sharding import (
    SPILLOVER_SHARD,
    derive_shard_evidence,
    partition_block,
    shard_config,
)
from repro.workloads.generators import generate_zone_market
from tests.differential.conftest import canonical_outcome

EVIDENCE = b"sharding-differential-evidence"


def zone_market_shapes():
    """Hypothesis strategy over ``generate_zone_market`` shape knobs."""
    return st.fixed_dictionaries(
        {
            "n_requests": st.integers(min_value=4, max_value=40),
            "n_zones": st.integers(min_value=2, max_value=6),
            "seed": st.integers(min_value=0, max_value=2**16),
            "kind": st.sampled_from(["network", "geo"]),
            "locality": st.sampled_from(["strong", "weak"]),
            "cross_zone_fraction": st.sampled_from([0.0, 0.25]),
        }
    )


def build_market(shape):
    requests, offers, locations = generate_zone_market(**shape)
    plan = ShardPlan(
        kind=shape["kind"],
        locations=locations if shape["kind"] == "geo" else None,
    )
    return requests, offers, plan


def run_sharded(requests, offers, plan, engine="vectorized", workers=0):
    config = AuctionConfig(
        engine=engine, sharding=replace(plan, shard_workers=workers)
    )
    return DecloudAuction(config).run(requests, offers, evidence=EVIDENCE)


@settings(max_examples=40, deadline=None)
@given(shape=zone_market_shapes())
def test_bit_identical_across_worker_counts(shape):
    """shard_workers 0 and 1 agree on every market shape (no pool)."""
    requests, offers, plan = build_market(shape)
    sequential = run_sharded(requests, offers, plan, workers=0)
    in_process = run_sharded(requests, offers, plan, workers=1)
    assert canonical_outcome(in_process) == canonical_outcome(sequential)


@pytest.mark.parametrize(
    "kind,locality",
    [("network", "strong"), ("network", "weak"), ("geo", "strong")],
)
def test_bit_identical_with_process_pool(kind, locality):
    """A real pool (shard_workers=3) matches the sequential digest."""
    requests, offers, locations = generate_zone_market(
        120, n_zones=5, seed=11, kind=kind, locality=locality,
        cross_zone_fraction=0.2,
    )
    plan = ShardPlan(
        kind=kind, locations=locations if kind == "geo" else None
    )
    digests = {
        workers: canonical_outcome(
            run_sharded(requests, offers, plan, workers=workers)
        )
        for workers in (0, 1, 3)
    }
    assert digests[1] == digests[0]
    assert digests[3] == digests[0]


@settings(max_examples=30, deadline=None)
@given(shape=zone_market_shapes())
def test_engines_agree_under_sharding(shape):
    requests, offers, plan = build_market(shape)
    reference = run_sharded(requests, offers, plan, engine="reference")
    vectorized = run_sharded(requests, offers, plan, engine="vectorized")
    assert canonical_outcome(vectorized) == canonical_outcome(reference)


@settings(max_examples=20, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**16),
    kind=st.sampled_from(["network", "geo"]),
    engine=st.sampled_from(["reference", "vectorized"]),
)
def test_single_shard_plan_equals_global(seed, kind, engine):
    """One zone => one shard => bit-identical to the unsharded auction.

    Geo jitter can straddle a cell boundary, so the geo variant uses a
    360-degree cell (a single world-spanning cell) to pin one shard.
    """
    requests, offers, locations = generate_zone_market(
        20, n_zones=1, seed=seed, kind=kind, locality="weak"
    )
    plan = ShardPlan(
        kind=kind,
        cell_deg=360.0,
        locations=locations if kind == "geo" else None,
    )
    auction = DecloudAuction(AuctionConfig(engine=engine, sharding=plan))
    sharded = auction.run(requests, offers, evidence=EVIDENCE)
    unsharded = DecloudAuction(AuctionConfig(engine=engine)).run(
        requests, offers, evidence=EVIDENCE
    )
    assert canonical_outcome(sharded) == canonical_outcome(unsharded)
    assert auction.last_shard_stats["degenerate"]
    assert not auction.last_shard_stats["spillover_ran"]


def _structural_sharded(requests, offers, plan, config):
    """The fabric re-built from public pieces: partition, per-shard
    sub-auctions on derived evidence, spillover over exactly the
    unmatched survivors.  Must match :func:`repro.core.sharding
    .run_sharded` digest-for-digest."""
    shards = partition_block(requests, offers, plan)
    sub = shard_config(config)
    merged = AuctionOutcome()
    spill_requests, spill_offers = [], []
    for shard in shards:
        if not (shard.requests and shard.offers):
            spill_requests.extend(shard.requests)
            spill_offers.extend(shard.offers)
            continue
        outcome = DecloudAuction(sub).run(
            list(shard.requests),
            list(shard.offers),
            evidence=derive_shard_evidence(EVIDENCE, shard.key),
        )
        merged.matches.extend(outcome.matches)
        merged.reduced_requests.extend(outcome.reduced_requests)
        merged.reduced_offers.extend(outcome.reduced_offers)
        merged.prices.extend(outcome.prices)
        spill_requests.extend(outcome.unmatched_requests)
        spill_offers.extend(outcome.unmatched_offers)
    if spill_requests and spill_offers:
        spill = DecloudAuction(
            replace(config, sharding=None, candidates=None)
        ).run(
            spill_requests,
            spill_offers,
            evidence=derive_shard_evidence(EVIDENCE, SPILLOVER_SHARD),
        )
        merged.matches.extend(spill.matches)
        merged.reduced_requests.extend(spill.reduced_requests)
        merged.reduced_offers.extend(spill.reduced_offers)
        merged.prices.extend(spill.prices)
        merged.unmatched_requests = list(spill.unmatched_requests)
        merged.unmatched_offers = list(spill.unmatched_offers)
    else:
        merged.unmatched_requests = spill_requests
        merged.unmatched_offers = spill_offers
    return merged, (spill_requests, spill_offers)


@settings(max_examples=25, deadline=None)
@given(shape=zone_market_shapes())
def test_spillover_consumes_exactly_the_unmatched_survivors(shape):
    requests, offers, plan = build_market(shape)
    config = AuctionConfig(engine="vectorized", sharding=plan)
    auction = DecloudAuction(config)
    fabric = auction.run(requests, offers, evidence=EVIDENCE)
    structural, (spill_requests, spill_offers) = _structural_sharded(
        requests, offers, plan, config
    )
    assert canonical_outcome(fabric) == canonical_outcome(structural)
    stats = auction.last_shard_stats
    if not stats["degenerate"]:
        assert stats["spillover_requests"] == len(spill_requests)
        assert stats["spillover_offers"] == len(spill_offers)


@settings(max_examples=25, deadline=None)
@given(shape=zone_market_shapes())
def test_sharded_outcome_conserves_bid_ids(shape):
    """Every input id lands in exactly one disposition set.

    Offer sets (not lists): one offer can host several requests under
    capacity sharing, so ``matches`` may repeat an offer id.
    """
    requests, offers, plan = build_market(shape)
    outcome = run_sharded(requests, offers, plan)
    req_matched = {m.request.request_id for m in outcome.matches}
    req_reduced = {r.request_id for r in outcome.reduced_requests}
    req_unmatched = {r.request_id for r in outcome.unmatched_requests}
    off_matched = {m.offer.offer_id for m in outcome.matches}
    off_reduced = {o.offer_id for o in outcome.reduced_offers}
    off_unmatched = {o.offer_id for o in outcome.unmatched_offers}
    assert req_matched | req_reduced | req_unmatched == {
        r.request_id for r in requests
    }
    assert off_matched | off_reduced | off_unmatched == {
        o.offer_id for o in offers
    }
    assert not (req_matched & req_reduced)
    assert not (req_matched & req_unmatched)
    assert not (req_reduced & req_unmatched)
    assert not (off_matched & off_reduced)
    assert not (off_matched & off_unmatched)
    assert not (off_reduced & off_unmatched)
