"""Differential oracle: async pipelined runtime == lockstep protocol.

Hypothesis explores three axes at once — scheduler seeds (delivery
order), market shapes (seeded bid populations), and fault plans — and
checks the runtime's equivalence contract against the lockstep
:class:`~repro.protocol.exposure.ExposureProtocol` on each draw:

* **fault-free plans** (including delay/reorder/duplicate-only plans,
  which perturb the schedule but lose nothing): every committed block
  is bit-identical to the lockstep run — block hash, canonical
  outcome, exclusions, approvals, and final chain tip — for *every*
  scheduler seed and with pipelining on or off;
* **Byzantine actors without message loss**: withholding clients are
  excluded identically, so bit-equality still holds end to end;
* **lossy plans**: committed sets may legitimately differ between the
  engines (different messages die), so the contract weakens to the
  chaos harness's integrity rule — every committed block, on either
  engine, equals the fault-free replay
  (:func:`~repro.sim.engine.replay_fault_free`) on exactly its
  surviving bid set, and the reported outcome is the block's own.

Markets stay small (≤ 6 clients × 3 providers, ≤ 3 rounds, 4-bit PoW)
so dozens of examples run in seconds.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.errors import ReproError
from repro.common.rng import make_generator
from repro.common.timewindow import TimeWindow
from repro.core.outcome import canonical_outcome
from repro.faults.actors import WithholdingParticipant
from repro.faults.network import UnreliableNetwork
from repro.faults.plan import FaultPlan
from repro.ledger.miner import Miner
from repro.ledger.network import BroadcastNetwork
from repro.market.bids import Offer, Request
from repro.protocol.allocator import DecloudAllocator, decode_round
from repro.protocol.exposure import ExposureProtocol, Participant
from repro.runtime import RoundInput, Runtime
from repro.sim.engine import replay_fault_free

# ----------------------------------------------------------------------
# Shared seeded drivers: one market, two engines
# ----------------------------------------------------------------------


def _miners(n: int = 3) -> List[Miner]:
    return [
        Miner(
            miner_id=f"m{i}",
            allocate=DecloudAllocator(),
            difficulty_bits=4,
        )
        for i in range(n)
    ]


def _market(
    market_seed: int, round_index: int, n_clients: int, n_providers: int
) -> Tuple[List[Request], List[Offer]]:
    """Seeded per-round bids; identical draws feed both engines."""
    rng = make_generator(f"rt-eq-{market_seed}-{round_index}")
    requests = [
        Request(
            request_id=f"req-{round_index}-{i}",
            client_id=f"cli-{i}",
            submit_time=0.1 * i,
            resources={"cpu": 2, "ram": 4},
            window=TimeWindow(0, 10),
            duration=4.0,
            bid=float(rng.uniform(1.2, 3.0)),
        )
        for i in range(n_clients)
    ]
    offers = [
        Offer(
            offer_id=f"off-{round_index}-{j}",
            provider_id=f"prov-{j}",
            submit_time=0.1 * j,
            resources={"cpu": 8, "ram": 32},
            window=TimeWindow(0, 24),
            bid=float(rng.uniform(0.2, 0.8)),
        )
        for j in range(n_providers)
    ]
    return requests, offers


def _participants(
    market_seed: int,
    n_clients: int,
    n_providers: int,
    withholding: int = 0,
) -> Dict[str, Participant]:
    """One participant object per id, shared across a run's rounds.

    Both engines build theirs from this function, so seal counters (and
    therefore temp keys, txids, and block bytes) line up by construction.
    """
    seal_seed = f"rt-eq-{market_seed}".encode("ascii")
    out: Dict[str, Participant] = {}
    for i in range(n_clients):
        cls = WithholdingParticipant if i < withholding else Participant
        out[f"cli-{i}"] = cls(
            participant_id=f"cli-{i}",
            deterministic=True,
            seal_seed=seal_seed,
        )
    for j in range(n_providers):
        out[f"prov-{j}"] = Participant(
            participant_id=f"prov-{j}",
            deterministic=True,
            seal_seed=seal_seed,
        )
    return out


def _round_bids(
    market_seed: int, round_index: int, n_clients: int, n_providers: int
) -> List[Tuple[str, object]]:
    """(participant_id, bid) pairs in the canonical submission order."""
    requests, offers = _market(
        market_seed, round_index, n_clients, n_providers
    )
    return [(r.client_id, r) for r in requests] + [
        (o.provider_id, o) for o in offers
    ]


def _run_lockstep(
    market_seed: int,
    rounds: int,
    n_clients: int,
    n_providers: int,
    withholding: int = 0,
    plan: Optional[FaultPlan] = None,
):
    """Drive the synchronous engine; aborted rounds record the error name."""
    miners = _miners()
    network = (
        UnreliableNetwork(plan=plan) if plan is not None else BroadcastNetwork()
    )
    protocol = ExposureProtocol(miners=miners, network=network)
    participants = _participants(
        market_seed, n_clients, n_providers, withholding
    )
    results: List[object] = []
    for round_index in range(rounds):
        for pid, bid in _round_bids(
            market_seed, round_index, n_clients, n_providers
        ):
            protocol.submit(participants[pid], bid)
        try:
            results.append(protocol.run_round(list(participants.values())))
        except ReproError as exc:
            results.append(type(exc).__name__)
    return results, miners


def _run_runtime(
    market_seed: int,
    rounds: int,
    n_clients: int,
    n_providers: int,
    schedule_seed: int = 0,
    pipeline: bool = True,
    plan: Optional[FaultPlan] = None,
    withholding: int = 0,
):
    miners = _miners()
    runtime = Runtime(
        miners, plan=plan, schedule_seed=schedule_seed, pipeline=pipeline
    )
    participants = _participants(
        market_seed, n_clients, n_providers, withholding
    )
    inputs = [
        RoundInput(
            submissions=tuple(
                (participants[pid], bid)
                for pid, bid in _round_bids(
                    market_seed, round_index, n_clients, n_providers
                )
            )
        )
        for round_index in range(rounds)
    ]
    return runtime.run(inputs), miners


def _assert_bit_identical(lockstep_results, report, lock_miners, rt_miners):
    assert len(report.rounds) == len(lockstep_results)
    for lock, rt_round in zip(lockstep_results, report.rounds):
        if isinstance(lock, str):  # lockstep aborted: runtime must too
            assert rt_round.result is None
            assert rt_round.error == lock
            continue
        run = rt_round.result
        assert run is not None, f"runtime aborted: {rt_round.error}"
        assert run.block.hash() == lock.block.hash()
        assert canonical_outcome(run.outcome) == canonical_outcome(
            lock.outcome
        )
        assert run.excluded_txids == lock.excluded_txids
        assert sorted(run.accepted_by) == sorted(lock.accepted_by)
    for lock_miner, rt_miner in zip(lock_miners, rt_miners):
        assert rt_miner.chain.tip_hash == lock_miner.chain.tip_hash


def _assert_integrity(result) -> None:
    """The chaos harness's mechanism-integrity rule, on one round."""
    body = result.block.require_complete()
    plaintexts = Miner._open_transactions(result.block.preamble, body.reveals)
    live_requests, live_offers = decode_round(plaintexts)
    expected = replay_fault_free(
        live_requests,
        live_offers,
        result.block.preamble.evidence(),
        None,
    )
    assert expected == body.allocation


# ----------------------------------------------------------------------
# Fault-free plans: full bit-equality across every schedule
# ----------------------------------------------------------------------


class TestFaultFreeEquivalence:
    @given(
        schedule_seed=st.integers(min_value=0, max_value=2**16),
        market_seed=st.integers(min_value=0, max_value=2**8),
        n_clients=st.integers(min_value=1, max_value=6),
        n_providers=st.integers(min_value=1, max_value=3),
        rounds=st.integers(min_value=1, max_value=3),
        pipeline=st.booleans(),
    )
    @settings(max_examples=30, deadline=None)
    def test_committed_rounds_bit_identical(
        self,
        schedule_seed,
        market_seed,
        n_clients,
        n_providers,
        rounds,
        pipeline,
    ):
        lockstep, lock_miners = _run_lockstep(
            market_seed, rounds, n_clients, n_providers
        )
        report, rt_miners = _run_runtime(
            market_seed,
            rounds,
            n_clients,
            n_providers,
            schedule_seed=schedule_seed,
            pipeline=pipeline,
        )
        _assert_bit_identical(lockstep, report, lock_miners, rt_miners)

    @given(
        schedule_seed=st.integers(min_value=0, max_value=2**16),
        market_seed=st.integers(min_value=0, max_value=2**8),
        min_delay=st.sampled_from((0.0, 0.02)),
        max_delay=st.sampled_from((0.05, 0.1, 0.15)),
        duplicate_rate=st.sampled_from((0.0, 0.3, 0.6)),
        reorder_rate=st.sampled_from((0.0, 0.3, 0.6)),
    )
    @settings(max_examples=25, deadline=None)
    def test_lossless_perturbations_preserve_bit_equality(
        self,
        schedule_seed,
        market_seed,
        min_delay,
        max_delay,
        duplicate_rate,
        reorder_rate,
    ):
        """Delay, reorder, and duplicate faults move messages around in
        time without losing any — so the runtime must still match the
        *pristine* lockstep run bit for bit."""
        plan = FaultPlan(
            seed=f"lossless-{market_seed}-{schedule_seed}",
            min_delay=min_delay,
            max_delay=max_delay,
            duplicate_rate=duplicate_rate,
            reorder_rate=reorder_rate,
            reorder_jitter=0.05,
        )
        lockstep, lock_miners = _run_lockstep(market_seed, 2, 4, 2)
        report, rt_miners = _run_runtime(
            market_seed, 2, 4, 2, schedule_seed=schedule_seed, plan=plan
        )
        _assert_bit_identical(lockstep, report, lock_miners, rt_miners)

    @given(
        schedule_seed=st.integers(min_value=0, max_value=2**16),
        market_seed=st.integers(min_value=0, max_value=2**8),
        withholding=st.integers(min_value=1, max_value=2),
    )
    @settings(max_examples=20, deadline=None)
    def test_withholding_clients_excluded_identically(
        self, schedule_seed, market_seed, withholding
    ):
        """Byzantine non-revealers without message loss: both engines
        exclude exactly the same sealed bids, so equality holds whole."""
        lockstep, lock_miners = _run_lockstep(
            market_seed, 2, 4, 2, withholding=withholding
        )
        report, rt_miners = _run_runtime(
            market_seed,
            2,
            4,
            2,
            schedule_seed=schedule_seed,
            withholding=withholding,
        )
        _assert_bit_identical(lockstep, report, lock_miners, rt_miners)
        for rt_round in report.rounds:
            if rt_round.result is not None:
                assert len(rt_round.result.excluded_txids) == withholding


# ----------------------------------------------------------------------
# Lossy plans: the integrity contract on whatever commits
# ----------------------------------------------------------------------


class TestDegradedIntegrity:
    @given(
        schedule_seed=st.integers(min_value=0, max_value=2**16),
        market_seed=st.integers(min_value=0, max_value=2**8),
        drop_rate=st.sampled_from((0.05, 0.15, 0.3)),
        duplicate_rate=st.sampled_from((0.0, 0.2)),
        reorder_rate=st.sampled_from((0.0, 0.2)),
    )
    @settings(max_examples=25, deadline=None)
    def test_runtime_committed_blocks_equal_fault_free_replay(
        self,
        schedule_seed,
        market_seed,
        drop_rate,
        duplicate_rate,
        reorder_rate,
    ):
        """Whatever survives a lossy schedule, the committed block is a
        fault-free clearing of exactly its surviving bids — the same
        guarantee the chaos harness enforces for the lockstep engine —
        and the runtime's reported outcome is that block's outcome."""
        plan = FaultPlan(
            seed=f"lossy-{market_seed}-{schedule_seed}",
            drop_rate=drop_rate,
            duplicate_rate=duplicate_rate,
            reorder_rate=reorder_rate,
            max_delay=0.05,
        )
        report, _ = _run_runtime(
            market_seed, 2, 4, 2, schedule_seed=schedule_seed, plan=plan
        )
        for result in report.committed:
            _assert_integrity(result)

    @given(
        market_seed=st.integers(min_value=0, max_value=2**8),
        drop_rate=st.sampled_from((0.1, 0.25)),
    )
    @settings(max_examples=15, deadline=None)
    def test_both_engines_satisfy_the_same_degraded_contract(
        self, market_seed, drop_rate
    ):
        """The weakened contract is engine-symmetric: run each engine
        under its own lossy stream and hold both to the replay rule."""
        lock_plan = FaultPlan(
            seed=f"deg-lock-{market_seed}", drop_rate=drop_rate
        )
        rt_plan = FaultPlan(seed=f"deg-rt-{market_seed}", drop_rate=drop_rate)
        lockstep, _ = _run_lockstep(market_seed, 2, 4, 2, plan=lock_plan)
        report, _ = _run_runtime(market_seed, 2, 4, 2, plan=rt_plan)
        for result in lockstep:
            if not isinstance(result, str):
                _assert_integrity(result)
        for result in report.committed:
            _assert_integrity(result)
