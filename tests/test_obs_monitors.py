"""Runtime mechanism monitors: clean outcomes pass, corruption is caught.

The monitor suite re-checks the paper's §IV guarantees on every cleared
block.  These tests pin both directions: every golden fixture clears
with zero violations under both engines, and a deliberately corrupted
outcome (a settlement layer skimming provider revenue) trips the
budget-balance monitor exactly once — with the structured alert event,
the counter, the flight-recorder dump, and (in strict mode) the raised
:class:`~repro.common.errors.MonitorViolationError` all in place.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.common.errors import MonitorViolationError
from repro.core.auction import DecloudAuction
from repro.core.config import AuctionConfig
from repro.obs import Observability
from repro.obs.flight import FlightRecorder, load_flight
from repro.obs.monitors import (
    BudgetBalanceMonitor,
    MonitorSuite,
    default_monitors,
    violation_total,
)
from repro.workloads.generators import MarketScenario
from tests.differential.conftest import market_from_payload

GOLDEN_DIR = Path(__file__).resolve().parent / "fixtures" / "golden"
FIXTURES = sorted(GOLDEN_DIR.glob("*.json"))


def _clear_market(seed: int = 3, n_requests: int = 30, obs=None):
    scenario = MarketScenario(n_requests=n_requests, seed=seed)
    requests, offers = scenario.generate()
    outcome = DecloudAuction(AuctionConfig()).run(
        requests, offers, evidence=b"monitor-test", obs=obs
    )
    return outcome


class _SkimmingOutcome:
    """Wraps a real outcome but skims revenue off the first provider —
    the settlement-tamper scenario the budget-balance monitor exists
    to catch."""

    def __init__(self, base, skim: float = 0.01) -> None:
        self._base = base
        self._skim = skim

    def __getattr__(self, name):
        return getattr(self._base, name)

    def revenues(self):
        revenues = dict(self._base.revenues())
        first = next(iter(revenues))
        revenues[first] -= self._skim
        return revenues


class TestGoldenFixturesPassClean:
    @pytest.mark.parametrize("path", FIXTURES, ids=lambda p: p.stem)
    @pytest.mark.parametrize("engine", ["reference", "vectorized"])
    def test_zero_violations_on_golden_fixture(self, path, engine):
        fixture = json.loads(path.read_text())
        requests, offers = market_from_payload(fixture["market"])
        config = AuctionConfig(engine=engine, **fixture["config"])
        outcome = DecloudAuction(config).run(
            requests, offers, evidence=bytes.fromhex(fixture["evidence"])
        )
        suite = MonitorSuite()
        assert suite.check_outcome(outcome) == []
        assert suite.checks_run == len(default_monitors())
        assert suite.violations_found == 0

    def test_integrated_auction_run_checks_every_monitor(self):
        obs = Observability("monitored", monitors=MonitorSuite())
        _clear_market(obs=obs)
        for monitor in default_monitors():
            assert obs.registry.counter_value(
                "monitor_checks_total", monitor=monitor.name
            ) == 1.0
        assert violation_total(obs.registry) == 0

    def test_generated_markets_pass_clean(self):
        suite = MonitorSuite()
        for seed in range(4):
            outcome = _clear_market(seed=seed)
            assert suite.check_outcome(outcome) == [], f"seed {seed}"


class TestCorruptedOutcomeIsCaught:
    def test_budget_balance_fires_exactly_once(self):
        outcome = _clear_market()
        assert outcome.num_trades > 0
        corrupted = _SkimmingOutcome(outcome)
        violations = MonitorSuite().check_outcome(corrupted)
        assert [v.monitor for v in violations] == ["budget_balance"]
        assert violations[0].details["surplus"] == pytest.approx(0.01)
        assert len(violations[0].details["offers"]) == 1

    def test_alert_event_and_counter_emitted(self):
        obs = Observability("corrupted", monitors=MonitorSuite())
        corrupted = _SkimmingOutcome(_clear_market())
        violations = obs.check_outcome(corrupted, source="test")
        assert len(violations) == 1
        assert obs.registry.counter_value(
            "monitor_violations_total", monitor="budget_balance"
        ) == 1.0
        assert violation_total(obs.registry) == 1
        alerts = [
            r
            for r in obs.tracer.records
            if r["type"] == "event" and r["name"] == "monitor.violation"
        ]
        assert len(alerts) == 1
        assert alerts[0]["attrs"]["monitor"] == "budget_balance"
        assert alerts[0]["attrs"]["source"] == "test"

    def test_monitor_violation_dumps_a_flight_bundle(self, tmp_path):
        obs = Observability(
            "corrupted",
            monitors=MonitorSuite(),
            flight=FlightRecorder(out_dir=str(tmp_path)),
        )
        corrupted = _SkimmingOutcome(_clear_market())
        obs.check_outcome(corrupted, round_index=7)
        assert len(obs.flight.dumps) == 1
        meta, records, _headers = load_flight(
            Path(obs.flight.dumps[0]).read_text()
        )
        assert meta["trigger"] == "monitor"
        assert meta["round"] == 7
        assert any(
            r.get("name") == "monitor.violation" for r in records
        )

    def test_strict_mode_escalates_after_emitting_evidence(self):
        obs = Observability(
            "strict", monitors=MonitorSuite(strict=True)
        )
        corrupted = _SkimmingOutcome(_clear_market())
        with pytest.raises(MonitorViolationError) as excinfo:
            obs.check_outcome(corrupted)
        assert excinfo.value.violations[0].monitor == "budget_balance"
        # the alert landed before the raise
        assert violation_total(obs.registry) == 1

    def test_clean_outcome_never_escalates_in_strict_mode(self):
        obs = Observability(
            "strict-clean", monitors=MonitorSuite(strict=True)
        )
        assert obs.check_outcome(_clear_market()) == []


class TestMonitorUnits:
    def test_budget_balance_is_exact_not_epsilon(self):
        outcome = _clear_market()
        assert outcome.num_trades > 0
        # even a one-ulp-scale skim must fire: fsum is exact
        corrupted = _SkimmingOutcome(outcome, skim=1e-9)
        assert BudgetBalanceMonitor().check(corrupted)
        assert BudgetBalanceMonitor().check(outcome) == []

    def test_violation_total_handles_registries_without_counters(self):
        class Bare:
            pass

        assert violation_total(Bare()) == 0
