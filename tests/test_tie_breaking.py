"""Regression tests for explicit tie-breaking under exact float ties.

Duplicated bids, grid-valued resources, and simultaneous submissions
produce *exact* float ties throughout the pipeline: equal
quality-of-match scores, equal cluster price ranges, equal tentative
welfare.  Every ordering decision must then fall back to a deterministic
identity key (submit time, then lexicographic id) — never to Python's
sort stability, which silently depends on input order.

These tests build markets that are tied on purpose and assert that the
outcome is a pure function of the *set* of bids, not of the order the
bids arrive in, on both engines.  They pin the fix for a latent
fragility in which ``select_roots`` and mini-auction assembly ordered
clusters by bare float keys.
"""

from __future__ import annotations

import itertools

import pytest

from repro.common.timewindow import TimeWindow
from repro.core.auction import DecloudAuction
from repro.core.config import AuctionConfig
from repro.core.matching import block_maxima, rank_offers
from repro.core.matching_vectorized import best_offer_sets
from repro.market.bids import Offer, Request

from tests.differential.conftest import canonical_outcome


def _tied_requests(n=6):
    return [
        Request(
            request_id=f"tied-r{i}",
            client_id=f"c{i}",
            submit_time=0.0,
            resources={"cpu": 2.0, "ram": 4.0},
            window=TimeWindow(0, 8),
            duration=2.0,
            bid=1.0,
        )
        for i in range(n)
    ]


def _tied_offers(n=4, submit_time=0.0):
    return [
        Offer(
            offer_id=f"tied-o{j}",
            provider_id=f"p{j}",
            submit_time=submit_time,
            resources={"cpu": 4.0, "ram": 8.0},
            window=TimeWindow(0, 16),
            bid=0.5,
        )
        for j in range(n)
    ]


class TestRankOffersTieRule:
    def test_identical_offers_rank_by_id(self):
        """All scores exactly equal -> pure id-lexicographic order."""
        request = _tied_requests(1)[0]
        offers = _tied_offers(5)
        maxima = block_maxima([request], offers)
        ranked = rank_offers(request, list(reversed(offers)), maxima)
        scores = [score for score, _ in ranked]
        assert len(set(scores)) == 1, "fixture must produce exact ties"
        assert [o.offer_id for _, o in ranked] == sorted(
            o.offer_id for o in offers
        )

    def test_earlier_submission_beats_id(self):
        """The paper's rule (§IV-D): submit time dominates the id."""
        request = _tied_requests(1)[0]
        early = _tied_offers(1, submit_time=0.0)[0].replace_bid(0.5)
        late = Offer(
            offer_id="tied-a-first-id",  # lexicographically before early
            provider_id="px",
            submit_time=1.0,
            resources={"cpu": 4.0, "ram": 8.0},
            window=TimeWindow(0, 16),
            bid=0.5,
        )
        maxima = block_maxima([request], [early, late])
        ranked = rank_offers(request, [late, early], maxima)
        assert [o.offer_id for _, o in ranked] == [
            early.offer_id,
            late.offer_id,
        ]

    def test_vectorized_best_sets_apply_the_same_rule(self):
        requests = _tied_requests(4)
        offers = _tied_offers(6)
        maxima = block_maxima(requests, offers)
        for breadth in (1, 2, 3):
            vectorized = best_offer_sets(
                requests, list(reversed(offers)), maxima, breadth
            )
            for request, best in zip(requests, vectorized):
                reference = frozenset(
                    o.offer_id
                    for _, o in rank_offers(request, offers, maxima)[:breadth]
                )
                assert best == reference


class TestInputOrderInvariance:
    """The cleared outcome is a function of the bid *set*."""

    @pytest.mark.parametrize("engine", ["reference", "vectorized"])
    def test_tied_market_is_order_invariant(self, engine):
        requests = _tied_requests(5)
        offers = _tied_offers(3)
        config = AuctionConfig(engine=engine)
        baseline = canonical_outcome(
            DecloudAuction(config).run(requests, offers, evidence=b"ties")
        )
        assert baseline["matches"], "tied market must actually clear"
        for perm_r in itertools.islice(itertools.permutations(requests), 8):
            for perm_o in itertools.permutations(offers):
                outcome = canonical_outcome(
                    DecloudAuction(config).run(
                        list(perm_r), list(perm_o), evidence=b"ties"
                    )
                )
                assert outcome == baseline

    @pytest.mark.parametrize("engine", ["reference", "vectorized"])
    def test_tied_clusters_survive_reversal_with_mini_auctions(self, engine):
        """Two disjoint resource pools forming identically-priced
        clusters: root selection and mini-auction assembly see exact
        interval ties and must order them by cluster identity."""
        requests, offers = [], []
        for pool, rtype in enumerate(("cpu", "gpu")):
            for i in range(3):
                requests.append(
                    Request(
                        request_id=f"p{pool}-r{i}",
                        client_id=f"c{pool}{i}",
                        submit_time=0.0,
                        resources={rtype: 2.0},
                        window=TimeWindow(0, 8),
                        duration=2.0,
                        bid=1.0,
                    )
                )
            offers.append(
                Offer(
                    offer_id=f"p{pool}-o0",
                    provider_id=f"pr{pool}",
                    submit_time=0.0,
                    resources={rtype: 4.0},
                    window=TimeWindow(0, 16),
                    bid=0.5,
                )
            )
        config = AuctionConfig(engine=engine)
        forward = canonical_outcome(
            DecloudAuction(config).run(requests, offers, evidence=b"pools")
        )
        backward = canonical_outcome(
            DecloudAuction(config).run(
                list(reversed(requests)),
                list(reversed(offers)),
                evidence=b"pools",
            )
        )
        assert forward["matches"]
        assert forward == backward
