"""Unit tests for arrivals and the online simulator."""

import pytest

from repro.common.errors import ValidationError
from repro.common.rng import make_generator
from repro.common.timewindow import TimeWindow
from repro.experiments.sweeps import eval_config
from repro.market.bids import Offer, Request
from repro.sim.arrivals import ArrivalProcess, poisson_arrival_times
from repro.sim.online import OnlineSimulator


class TestPoissonArrivals:
    def test_rate_matches_expectation(self):
        rng = make_generator(0)
        times = poisson_arrival_times(100.0, 10.0, rng)
        assert 850 <= len(times) <= 1150  # ~1000 +- 5 sigma

    def test_sorted_within_horizon(self):
        rng = make_generator(1)
        times = poisson_arrival_times(5.0, 20.0, rng)
        assert all(0 <= t <= 20 for t in times)
        assert list(times) == sorted(times)

    def test_invalid_params(self):
        rng = make_generator(2)
        with pytest.raises(ValidationError):
            poisson_arrival_times(0.0, 10.0, rng)
        with pytest.raises(ValidationError):
            poisson_arrival_times(1.0, 0.0, rng)


class TestArrivalProcess:
    def test_generate_deterministic(self):
        a = ArrivalProcess(request_rate=4, offer_rate=2, horizon=10, seed=7)
        b = ArrivalProcess(request_rate=4, offer_rate=2, horizon=10, seed=7)
        ra, oa = a.generate()
        rb, ob = b.generate()
        assert [r.bid for r in ra] == [r.bid for r in rb]
        assert [o.bid for o in oa] == [o.bid for o in ob]

    def test_windows_anchored_at_arrival(self):
        process = ArrivalProcess(
            request_rate=5, offer_rate=3, horizon=10, seed=1,
            request_patience=6.0, offer_span=12.0,
        )
        requests, offers = process.generate()
        for request in requests:
            assert request.window.start == pytest.approx(request.submit_time)
            assert request.window.span == pytest.approx(6.0)
            assert request.duration <= 6.0
        for offer in offers:
            assert offer.window.start == pytest.approx(offer.submit_time)
            assert offer.window.span == pytest.approx(12.0)

    def test_valuations_assigned(self):
        requests, offers = ArrivalProcess(
            request_rate=5, offer_rate=3, horizon=10, seed=2
        ).generate()
        if offers:
            assert all(r.bid > 0 for r in requests)


class TestOnlineSimulator:
    def _stream(self):
        return ArrivalProcess(
            request_rate=6, offer_rate=3, horizon=12, seed=3
        ).generate()

    def test_round_count(self):
        requests, offers = self._stream()
        result = OnlineSimulator(
            config=eval_config(), block_interval=3.0, seed=3
        ).run(requests, offers, horizon=12)
        assert len(result.rounds) == 4

    def test_requests_matched_at_most_once_across_rounds(self):
        requests, offers = self._stream()
        result = OnlineSimulator(
            config=eval_config(), block_interval=2.0, seed=3
        ).run(requests, offers, horizon=12)
        matched = [
            m.request.request_id
            for record in result.rounds
            for m in record.outcome.matches
        ]
        assert len(matched) == len(set(matched))

    def test_delays_non_negative(self):
        requests, offers = self._stream()
        result = OnlineSimulator(
            config=eval_config(), block_interval=2.0, seed=3
        ).run(requests, offers, horizon=12)
        assert all(d >= 0 for d in result.allocation_delay.values())

    def test_served_plus_expired_bounded_by_arrivals(self):
        requests, offers = self._stream()
        result = OnlineSimulator(
            config=eval_config(), block_interval=2.0, seed=3
        ).run(requests, offers, horizon=12)
        assert (
            len(result.allocation_delay) + len(result.expired_requests)
            <= len(requests)
        )

    def test_deterministic(self):
        requests, offers = self._stream()
        sim = lambda: OnlineSimulator(
            config=eval_config(), block_interval=2.0, seed=3
        ).run(requests, offers, horizon=12)
        a, b = sim(), sim()
        assert a.total_trades == b.total_trades
        assert a.allocation_delay == b.allocation_delay

    def test_expired_request_never_matches_later(self):
        # A request with a tight window must expire rather than match
        # after its window cannot host it.
        request = Request(
            request_id="tight",
            client_id="c",
            submit_time=0.5,
            resources={"cpu": 2, "ram": 4},
            window=TimeWindow(0.5, 2.0),
            duration=1.5,
            bid=5.0,
        )
        offer = Offer(
            offer_id="late-offer",
            provider_id="p",
            submit_time=4.0,  # arrives after the request can still start
            resources={"cpu": 8, "ram": 16},
            window=TimeWindow(4.0, 20.0),
            bid=0.5,
        )
        result = OnlineSimulator(block_interval=1.0, seed=0).run(
            [request], [offer], horizon=8
        )
        assert "tight" in result.expired_requests
        assert result.total_trades == 0

    def test_smaller_interval_lower_delay_hours(self):
        requests, offers = self._stream()
        fast = OnlineSimulator(
            config=eval_config(), block_interval=1.0, seed=3
        ).run(requests, offers, horizon=12)
        slow = OnlineSimulator(
            config=eval_config(), block_interval=4.0, seed=3
        ).run(requests, offers, horizon=12)
        # Compare delay measured in *hours* (blocks x interval).
        fast_hours = fast.mean_delay_blocks * 1.0
        slow_hours = slow.mean_delay_blocks * 4.0
        assert fast_hours <= slow_hours + 1.0

    def test_invalid_interval(self):
        with pytest.raises(ValidationError):
            OnlineSimulator(block_interval=0.0)

    def test_observability_counts_arrivals_expiry_and_trades(self):
        from repro.obs import Observability

        requests, offers = self._stream()
        obs = Observability("online")
        result = OnlineSimulator(
            config=eval_config(), block_interval=2.0, seed=3, obs=obs
        ).run(requests, offers, horizon=12)
        reg = obs.registry
        assert reg.counter_value("online_rounds_total") == float(
            len(result.rounds)
        )
        assert reg.counter_value("online_trades_total") == float(
            result.total_trades
        )
        # every request that arrived before the horizon was admitted
        admitted = sum(1 for r in requests if r.submit_time <= 12)
        assert reg.counter_value(
            "online_arrivals_total", side="request"
        ) == float(admitted)
        assert reg.counter_value(
            "online_expired_total", side="request"
        ) == float(len(result.expired_requests))
        # queue-depth gauges hold the last round's pool sizes
        assert reg.gauge_value("online_queue_depth", side="request") >= 0.0
        # one online.round event per cleared round
        events = [
            r
            for r in obs.tracer.records
            if r["type"] == "event" and r["name"] == "online.round"
        ]
        assert len(events) == len(result.rounds)
        assert [e["attrs"]["index"] for e in events] == [
            record.index for record in result.rounds
        ]

    def test_observability_does_not_change_results(self):
        from repro.obs import Observability

        requests, offers = self._stream()

        def run(obs):
            return OnlineSimulator(
                config=eval_config(), block_interval=2.0, seed=3, obs=obs
            ).run(requests, offers, horizon=12)

        plain, observed = run(None), run(Observability("check"))
        assert observed.total_trades == plain.total_trades
        assert observed.total_welfare == plain.total_welfare
        assert observed.allocation_delay == plain.allocation_delay
        assert observed.expired_requests == plain.expired_requests


class TestReputationResource:
    def test_reputation_annotation_and_floor(self):
        from repro.market.feasibility import is_feasible
        from repro.protocol.reputation import (
            ReputationLedger,
            attach_reputation_resource,
        )
        from tests.conftest import make_offer, make_request

        ledger = ReputationLedger()
        for _ in range(8):
            ledger.record_rejection("prov-bad")
        good = make_offer(offer_id="good", provider_id="prov-good")
        bad = make_offer(offer_id="bad", provider_id="prov-bad")
        request = make_request(
            resources={"cpu": 2, "ram": 4, "reputation": 0.8},
        )
        _, offers = attach_reputation_resource([request], [good, bad], ledger)
        by_id = {o.offer_id: o for o in offers}
        assert by_id["good"].resources["reputation"] == 1.0
        assert by_id["bad"].resources["reputation"] < 0.8
        assert is_feasible(request, by_id["good"])
        assert not is_feasible(request, by_id["bad"])
