"""Unit tests for the dot-product baseline and the trace CSV loader."""

import pytest

from repro.baselines.dot_product import (
    best_match_fit_error,
    dot_product_quality,
    rank_offers_dot,
)
from repro.common.errors import ValidationError
from repro.core.matching import block_maxima, rank_offers
from repro.workloads.traces import (
    EVENT_SUBMIT,
    parse_task_events_text,
    rows_to_requests,
)
from tests.conftest import make_offer, make_request


class TestDotProduct:
    def test_prefers_aligned_big_offer(self):
        request = make_request(resources={"cpu": 4, "ram": 8})
        small = make_offer(offer_id="small", resources={"cpu": 4, "ram": 8})
        big = make_offer(offer_id="big", resources={"cpu": 16, "ram": 64})
        maxima = block_maxima([request], [small, big])
        assert dot_product_quality(request, big, maxima) > dot_product_quality(
            request, small, maxima
        )

    def test_significance_scales(self):
        offer = make_offer(resources={"cpu": 8, "ram": 16})
        heavy = make_request(resources={"cpu": 4, "ram": 8})
        light = make_request(
            resources={"cpu": 4, "ram": 8},
            significance={"cpu": 0.1, "ram": 0.1},
            flexibility=0.9,
        )
        maxima = block_maxima([heavy], [offer])
        assert dot_product_quality(heavy, offer, maxima) > dot_product_quality(
            light, offer, maxima
        )

    def test_rank_filters_infeasible(self):
        request = make_request(resources={"cpu": 10})
        offers = [
            make_offer(offer_id="small", resources={"cpu": 4}),
            make_offer(offer_id="fits", resources={"cpu": 16}),
        ]
        maxima = block_maxima([request], offers)
        ranked = rank_offers_dot(request, offers, maxima)
        assert [o.offer_id for _, o in ranked] == ["fits"]

    def test_fit_error_zero_for_exact_match(self):
        request = make_request(resources={"cpu": 8, "ram": 32, "disk": 500})
        offer = make_offer(resources={"cpu": 8, "ram": 32, "disk": 500})
        error = best_match_fit_error([request], [offer], rank_offers)
        assert error == pytest.approx(0.0)

    def test_fit_error_positive_for_oversize(self):
        request = make_request(resources={"cpu": 2, "ram": 4, "disk": 50})
        offer = make_offer(resources={"cpu": 16, "ram": 64, "disk": 500})
        error = best_match_fit_error([request], [offer], rank_offers_dot)
        assert error > 1.0

    def test_fit_error_empty_market(self):
        assert best_match_fit_error([], [], rank_offers_dot) == 0.0


SAMPLE_CSV = (
    # ts, missing, machine, job, task, event, user, sched, prio, cpu, mem, disk
    "3600000000,,m1,6251,0,0,u,0,1,0.125,0.0625,0.001\n"
    "7200000000,,m2,6251,1,0,u,0,1,0.25,0.125,\n"
    "7300000000,,m2,6252,0,1,u,0,1,0.5,0.25,0.002\n"  # event type 1: skipped
    "9000000000,,m3,6253,0,0,u,0,1,,0.5,0.003\n"  # missing cpu: skipped
)


class TestTraceParsing:
    def test_parses_submit_events(self):
        events = parse_task_events_text(SAMPLE_CSV)
        assert len(events) == 2
        assert events[0].job_id == "6251"
        assert events[0].timestamp_hours == pytest.approx(1.0)
        assert events[0].cpu_request == pytest.approx(0.125)

    def test_missing_disk_defaults_zero(self):
        events = parse_task_events_text(SAMPLE_CSV)
        assert events[1].disk_request == 0.0

    def test_short_row_rejected(self):
        with pytest.raises(ValidationError):
            parse_task_events_text("1,2,3\n")

    def test_bad_event_type_rejected(self):
        bad = "1,,m,j,0,zzz,u,0,1,0.1,0.1,0.1\n"
        with pytest.raises(ValidationError):
            parse_task_events_text(bad)

    def test_non_submit_filtered(self):
        rows = "1,,m,j,0,5,u,0,1,0.1,0.1,0.1\n"
        assert parse_task_events_text(rows) == []
        assert EVENT_SUBMIT == 0


class TestRowsToRequests:
    def test_scaling_into_envelope(self):
        events = parse_task_events_text(SAMPLE_CSV)
        requests = rows_to_requests(events, max_cores=16, max_ram_gb=64)
        assert requests[0].resources["cpu"] == pytest.approx(2.0)
        assert requests[0].resources["ram"] == pytest.approx(4.0)
        assert requests[0].window.start == pytest.approx(1.0)

    def test_minimum_floors(self):
        events = parse_task_events_text(
            "0,,m,j,0,0,u,0,1,0.001,0.001,0.0\n"
        )
        requests = rows_to_requests(events)
        assert requests[0].resources["cpu"] >= 0.25
        assert requests[0].resources["ram"] >= 0.5
        assert requests[0].resources["disk"] >= 1.0

    def test_requests_usable_in_auction(self):
        from repro.core.auction import DecloudAuction
        from repro.workloads.google_trace import assign_valuations
        from repro.workloads.ec2_catalog import ProviderCatalog
        from repro.common.rng import make_generator

        events = parse_task_events_text(SAMPLE_CSV)
        requests = rows_to_requests(events)
        offers = ProviderCatalog().sample_offers(4, rng=make_generator(1))
        requests = assign_valuations(requests, offers, rng=make_generator(2))
        outcome = DecloudAuction().run(requests, offers)
        assert outcome.num_trades >= 0  # pipeline accepts trace requests

    def test_file_loader(self, tmp_path):
        from repro.workloads.traces import load_task_events

        path = tmp_path / "task_events.csv"
        path.write_text(SAMPLE_CSV)
        events = load_task_events(str(path), limit=1)
        assert len(events) == 1
