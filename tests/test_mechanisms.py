"""Unit tests for the classic single-good mechanisms (McAfee, SBBA)."""

import random

import pytest

from repro.common.errors import ValidationError
from repro.mechanisms import (
    UnitBid,
    breakeven_index,
    run_mcafee,
    run_sbba,
    sort_sides,
)


def bids(amounts, prefix):
    return [
        UnitBid(agent_id=f"{prefix}{i}", amount=a) for i, a in enumerate(amounts)
    ]


class TestTypes:
    def test_negative_bid_rejected(self):
        with pytest.raises(ValidationError):
            UnitBid(agent_id="x", amount=-1.0)

    def test_sort_sides(self):
        buyers, sellers = sort_sides(
            bids([1, 5, 3], "b"), bids([4, 2, 6], "s")
        )
        assert [b.amount for b in buyers] == [5, 3, 1]
        assert [s.amount for s in sellers] == [2, 4, 6]

    def test_breakeven_index(self):
        buyers, sellers = sort_sides(
            bids([9, 7, 2], "b"), bids([1, 3, 8], "s")
        )
        assert breakeven_index(buyers, sellers) == 2

    def test_breakeven_zero_when_no_trade(self):
        buyers, sellers = sort_sides(bids([1], "b"), bids([5], "s"))
        assert breakeven_index(buyers, sellers) == 0


class TestMcAfee:
    def test_interior_price_no_reduction(self):
        # v: 10, 8 | c: 1, 2; pair z+1 = (8, 2), p = 5 in [c_1, v_1] = [1, 10]
        # wait z = 2 here; need a next pair: add (4,6) non-trading pair.
        buyers = bids([10, 8, 4], "b")
        sellers = bids([1, 2, 6], "s")
        result = run_mcafee(buyers, sellers)
        assert result.price == pytest.approx(5.0)
        assert result.num_trades == 2
        assert result.reduced_buyers == []
        assert result.budget_surplus == pytest.approx(0.0)

    def test_reduction_case(self):
        # p = (v_{z+1}+c_{z+1})/2 falls outside [c_z, v_z] -> reduce pair z.
        buyers = bids([10, 9, 1], "b")
        sellers = bids([8, 8.5, 9.5], "s")
        result = run_mcafee(buyers, sellers)
        # z = 2 (10>=8, 9>=8.5); candidate p = (1+9.5)/2 = 5.25 < c_z=8.5
        assert result.num_trades == 1
        assert result.reduced_buyers == ["b1"]
        assert result.reduced_sellers == ["s1"]
        # buyers pay v_z = 9, sellers receive c_z = 8.5
        assert result.trades[0].buyer_pays == pytest.approx(9.0)
        assert result.trades[0].seller_gets == pytest.approx(8.5)
        assert result.budget_surplus > 0  # weak budget balance

    def test_no_next_pair_forces_reduction(self):
        buyers = bids([10, 9], "b")
        sellers = bids([1, 2], "s")
        result = run_mcafee(buyers, sellers)
        assert result.num_trades == 1
        assert result.reduced_buyers == ["b1"]

    def test_empty_market(self):
        assert run_mcafee([], []).num_trades == 0

    def test_no_profitable_pair(self):
        result = run_mcafee(bids([1], "b"), bids([9], "s"))
        assert result.num_trades == 0
        assert result.price is None

    def test_ir_for_traders(self):
        buyers = bids([10, 8, 6, 4], "b")
        sellers = bids([1, 3, 5, 7], "s")
        result = run_mcafee(buyers, sellers)
        values = {b.agent_id: b.amount for b in buyers}
        costs = {s.agent_id: s.amount for s in sellers}
        for trade in result.trades:
            assert trade.buyer_pays <= values[trade.buyer_id] + 1e-12
            assert trade.seller_gets >= costs[trade.seller_id] - 1e-12


class TestSbba:
    def test_seller_determined_price(self):
        # c_{z+1} = 4 <= v_z = 8: all z pairs trade at 4.
        buyers = bids([10, 8], "b")
        sellers = bids([1, 2, 4], "s")
        result = run_sbba(buyers, sellers)
        assert result.price == pytest.approx(4.0)
        assert result.num_trades == 2
        assert result.reduced_sellers == ["s2"]
        assert result.budget_surplus == pytest.approx(0.0)

    def test_buyer_determined_price_excludes_buyer(self):
        buyers = bids([10, 8], "b")
        sellers = bids([1, 2], "s")  # no seller z+1
        result = run_sbba(buyers, sellers, rng=random.Random(0))
        assert result.price == pytest.approx(8.0)
        assert result.reduced_buyers == ["b1"]
        assert result.num_trades == 1
        # one of the two sellers was dropped at random
        assert len(result.reduced_sellers) == 1

    def test_strong_budget_balance_always(self):
        rng = random.Random(7)
        for _ in range(50):
            buyers = bids([rng.uniform(0, 10) for _ in range(6)], "b")
            sellers = bids([rng.uniform(0, 10) for _ in range(6)], "s")
            result = run_sbba(buyers, sellers, rng=random.Random(1))
            assert result.budget_surplus == pytest.approx(0.0)

    def test_ir_always(self):
        rng = random.Random(13)
        for _ in range(50):
            buyers = bids([rng.uniform(0, 10) for _ in range(5)], "b")
            sellers = bids([rng.uniform(0, 10) for _ in range(5)], "s")
            result = run_sbba(buyers, sellers, rng=random.Random(2))
            values = {b.agent_id: b.amount for b in buyers}
            costs = {s.agent_id: s.amount for s in sellers}
            for trade in result.trades:
                assert trade.buyer_pays <= values[trade.buyer_id] + 1e-12
                assert trade.seller_gets >= costs[trade.seller_id] - 1e-12

    def test_empty_market(self):
        assert run_sbba([], []).num_trades == 0

    def test_price_determiner_never_trades(self):
        rng = random.Random(99)
        for _ in range(30):
            buyers = bids([rng.uniform(0, 10) for _ in range(5)], "b")
            sellers = bids([rng.uniform(0, 10) for _ in range(5)], "s")
            result = run_sbba(buyers, sellers, rng=random.Random(3))
            traders = {t.buyer_id for t in result.trades} | {
                t.seller_id for t in result.trades
            }
            for excluded in result.reduced_buyers + result.reduced_sellers:
                assert excluded not in traders
