"""Time-series store and drift detection (repro.obs.timeseries)."""

from __future__ import annotations

import json

import pytest

from repro.obs import Observability
from repro.obs.timeseries import (
    TimeSeriesStore,
    counter_series,
    detect_drift,
    gauge_series,
    latency_p95_drift,
    latency_series,
    least_squares_slope,
    main as timeseries_main,
    p95,
    revenue_drift,
)
from repro.sim.engine import MarketSimulator
from repro.workloads.generators import MarketScenario


def _rows_from_registry(tmp_path, updates):
    """Append one row per update batch through a live registry."""
    store = TimeSeriesStore(str(tmp_path / "history.jsonl"))
    obs = Observability("ts")
    for i, batch in enumerate(updates):
        batch(obs.registry)
        store.append(obs.registry.snapshot(), round=i)
    return store, TimeSeriesStore.load(store.path)


class TestStore:
    def test_append_load_roundtrip(self, tmp_path):
        store, rows = _rows_from_registry(
            tmp_path,
            [
                lambda reg: (reg.inc("trades_total", 3), reg.set("w", 1.5)),
                lambda reg: (reg.inc("trades_total", 2), reg.set("w", 2.5)),
            ],
        )
        assert store.appended == 2
        assert len(rows) == 2
        assert rows[0]["meta"] == {"round": 0}
        assert rows[1]["counters"]["trades_total"] == 5.0
        assert rows[1]["gauges"]["w"] == 2.5

    def test_rows_are_compact_sorted_json(self, tmp_path):
        store, _ = _rows_from_registry(
            tmp_path, [lambda reg: reg.inc("a", 1)]
        )
        line = open(store.path).read().splitlines()[0]
        assert line == json.dumps(
            json.loads(line), sort_keys=True, separators=(",", ":")
        )


class TestSeriesExtraction:
    def test_counter_series_diffs_cumulative_rows(self, tmp_path):
        _, rows = _rows_from_registry(
            tmp_path,
            [lambda reg, k=k: reg.inc("n", k) for k in (1, 4, 2)],
        )
        assert counter_series(rows, "n") == [1.0, 4.0, 2.0]
        assert counter_series(rows, "n", delta=False) == [1.0, 5.0, 7.0]

    def test_gauge_series_reads_values_directly(self, tmp_path):
        _, rows = _rows_from_registry(
            tmp_path,
            [lambda reg, v=v: reg.set("g", v) for v in (1.0, 3.0)],
        )
        assert gauge_series(rows, "g") == [1.0, 3.0]
        assert gauge_series(rows, "missing") == []

    def test_latency_series_is_delta_mean_per_row(self, tmp_path):
        _, rows = _rows_from_registry(
            tmp_path,
            [
                lambda reg: reg.observe("lat", 2.0),
                lambda reg: (reg.observe("lat", 4.0), reg.observe("lat", 6.0)),
            ],
        )
        assert latency_series(rows, "lat") == [2.0, 5.0]


class TestDriftDetection:
    def test_stable_series_does_not_drift(self):
        report = detect_drift([1.0] * 10, window=5)
        assert not report.drifting
        assert report.relative_change == 0.0

    def test_sustained_rise_drifts(self):
        values = [1.0] * 5 + [1.5, 1.6, 1.7, 1.8, 1.9]
        report = detect_drift(values, window=5, threshold=0.2)
        assert report.drifting
        assert report.relative_change > 0.2
        assert report.slope > 0
        assert "DRIFT" in report.describe()

    def test_single_spike_does_not_drift(self):
        # the mean moves but the trailing slope is flat-to-negative
        values = [1.0] * 5 + [5.0, 1.0, 1.0, 1.0, 1.0]
        report = detect_drift(values, window=5, threshold=0.2)
        assert not report.drifting

    def test_short_history_never_drifts(self):
        assert not detect_drift([1.0, 100.0], window=5).drifting

    def test_p95_statistic(self):
        assert p95([]) == 0.0
        assert p95(list(range(1, 101))) == 95
        report = detect_drift(
            [1.0] * 5 + [2.0] * 5, window=5, statistic="p95"
        )
        assert report.baseline == 1.0
        assert report.recent == 2.0

    def test_rejects_unknown_statistic_and_bad_window(self):
        with pytest.raises(ValueError):
            detect_drift([1.0], statistic="median")
        with pytest.raises(ValueError):
            detect_drift([1.0], window=0)

    def test_least_squares_slope(self):
        assert least_squares_slope([1.0, 2.0, 3.0]) == pytest.approx(1.0)
        assert least_squares_slope([2.0]) == 0.0


class TestCannedDetectors:
    def _history(self, tmp_path, revenues):
        store = TimeSeriesStore(str(tmp_path / "h.jsonl"))
        obs = Observability("canned")
        for i, rev in enumerate(revenues):
            obs.registry.set("auction_last_revenues", rev)
            obs.registry.observe(
                "auction_phase_seconds", 0.01, phase="clear"
            )
            store.append(obs.registry.snapshot(), round=i)
        return TimeSeriesStore.load(store.path)

    def test_revenue_drift_detects_quiet_decline(self, tmp_path):
        rows = self._history(
            tmp_path, [10.0] * 5 + [7.0, 6.5, 6.0, 5.5, 5.0]
        )
        report = revenue_drift(rows)
        assert report.drifting
        assert report.relative_change < -0.2

    def test_latency_p95_drift_stable_on_constant_history(self, tmp_path):
        rows = self._history(tmp_path, [10.0] * 10)
        assert not latency_p95_drift(rows, phase="clear").drifting


class TestSimulatorWiring:
    def test_market_simulator_appends_one_row_per_block(self, tmp_path):
        store = TimeSeriesStore(str(tmp_path / "sim.jsonl"))
        simulator = MarketSimulator(
            obs=Observability("sim"), history=store, seed=1
        )
        for _ in range(3):
            requests, offers = MarketScenario(
                n_requests=10, seed=1
            ).generate()
            simulator.run_block(requests, offers)
        rows = TimeSeriesStore.load(store.path)
        assert [row["meta"]["block"] for row in rows] == [0, 1, 2]
        assert gauge_series(
            rows, "auction_last_welfare{mechanism=decloud}"
        )


class TestCLI:
    def _write_history(self, tmp_path):
        store = TimeSeriesStore(str(tmp_path / "cli.jsonl"))
        obs = Observability("cli")
        values = [10.0] * 5 + [7.0, 6.5, 6.0, 5.5, 5.0]
        for value in values:
            obs.registry.set("auction_last_revenues", value)
            obs.registry.inc("auction_trades_total", 2)
            store.append(obs.registry.snapshot())
        return store.path

    def test_list_mode(self, tmp_path, capsys):
        path = self._write_history(tmp_path)
        assert timeseries_main([path, "--list"]) == 0
        out = capsys.readouterr().out
        assert "10 rows" in out
        assert "auction_last_revenues" in out

    def test_drifting_gauge_exits_nonzero(self, tmp_path, capsys):
        path = self._write_history(tmp_path)
        code = timeseries_main(
            [path, "--gauge", "auction_last_revenues", "--window", "5"]
        )
        assert code == 1
        assert "DRIFT" in capsys.readouterr().out

    def test_stable_counter_exits_zero(self, tmp_path, capsys):
        path = self._write_history(tmp_path)
        code = timeseries_main(
            [path, "--counter", "auction_trades_total", "--window", "5"]
        )
        assert code == 0
        assert "stable" in capsys.readouterr().out
