"""Unit tests for the market simulator and metrics."""

import pytest

from repro.core.outcome import AuctionOutcome, Match
from repro.sim.engine import MarketSimulator
from repro.sim.metrics import BlockMetrics, compare_outcomes, pooled_metrics
from repro.workloads.generators import MarketScenario
from tests.conftest import make_offer, make_request


def _metrics(dec_welfare=8.0, ben_welfare=10.0, dec_trades=8, ben_trades=10):
    return BlockMetrics(
        n_requests=20,
        n_offers=10,
        decloud_welfare=dec_welfare,
        benchmark_welfare=ben_welfare,
        decloud_trades=dec_trades,
        benchmark_trades=ben_trades,
        reduced_trades=ben_trades - dec_trades,
        decloud_satisfaction=dec_trades / 20,
        benchmark_satisfaction=ben_trades / 20,
        total_payments=5.0,
        total_revenues=5.0,
    )


class TestBlockMetrics:
    def test_welfare_ratio(self):
        assert _metrics().welfare_ratio == pytest.approx(0.8)

    def test_ratio_with_zero_benchmark(self):
        assert _metrics(dec_welfare=0.0, ben_welfare=0.0).welfare_ratio == 1.0

    def test_reduced_fraction(self):
        assert _metrics().reduced_trade_fraction == pytest.approx(0.2)

    def test_reduced_fraction_zero_benchmark(self):
        metrics = _metrics(dec_trades=0, ben_trades=0)
        assert metrics.reduced_trade_fraction == 0.0

    def test_budget_imbalance(self):
        assert _metrics().budget_imbalance == 0.0


class TestCompareOutcomes:
    def test_from_outcomes(self):
        request = make_request(bid=4.0)
        offer = make_offer(bid=1.0)
        decloud = AuctionOutcome(
            matches=[Match(request=request, offer=offer, payment=1.0, unit_price=0.2)]
        )
        benchmark = AuctionOutcome(
            matches=[Match(request=request, offer=offer, payment=2.0, unit_price=0.4)]
        )
        metrics = compare_outcomes(1, 1, decloud, benchmark)
        assert metrics.decloud_trades == metrics.benchmark_trades == 1
        assert metrics.total_payments == pytest.approx(1.0)
        assert metrics.budget_imbalance == pytest.approx(0.0)


class TestRunMetrics:
    def test_pooled_ratio(self):
        run = pooled_metrics([_metrics(), _metrics(dec_welfare=10, ben_welfare=10)])
        assert run.pooled_welfare_ratio == pytest.approx(18 / 20)

    def test_pooled_reduced(self):
        run = pooled_metrics([_metrics(dec_trades=9, ben_trades=10)])
        assert run.pooled_reduced_fraction == pytest.approx(0.1)

    def test_mean_satisfaction(self):
        run = pooled_metrics([_metrics(dec_trades=10), _metrics(dec_trades=0)])
        assert run.mean_satisfaction == pytest.approx(0.25)

    def test_empty(self):
        run = pooled_metrics([])
        assert run.pooled_welfare_ratio == 1.0
        assert run.mean_satisfaction == 0.0


class TestMarketSimulator:
    def test_run_block_consistent(self):
        requests, offers = MarketScenario(n_requests=30, seed=3).generate()
        simulator = MarketSimulator(seed=3)
        metrics, decloud, benchmark = simulator.run_block(requests, offers)
        assert metrics.decloud_trades == decloud.num_trades
        assert metrics.benchmark_trades == benchmark.num_trades
        assert metrics.n_requests == 30

    def test_evidence_deterministic_per_block_index(self):
        requests, offers = MarketScenario(n_requests=30, seed=3).generate()
        a = MarketSimulator(seed=3).run_block(requests, offers)[1]
        b = MarketSimulator(seed=3).run_block(requests, offers)[1]
        assert a.to_payload() == b.to_payload()

    def test_run_stream_aggregates(self):
        markets = [
            MarketScenario(n_requests=20, seed=s).generate() for s in range(3)
        ]
        run = MarketSimulator(seed=0).run_stream(markets)
        assert len(run.blocks) == 3
        assert 0.0 < run.pooled_welfare_ratio <= 1.5

    def test_budget_balance_every_block(self):
        requests, offers = MarketScenario(n_requests=40, seed=9).generate()
        metrics, _, _ = MarketSimulator(seed=9).run_block(requests, offers)
        assert abs(metrics.budget_imbalance) < 1e-9
