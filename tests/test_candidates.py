"""Unit tests for the candidate-generation stage (repro.core.candidates)."""

import numpy as np
import pytest

from repro.common.errors import CertificateError, ValidationError
from repro.common.timewindow import TimeWindow
from repro.core.candidates import (
    ADMITTED,
    PRUNED_RESOURCE,
    PRUNED_SCORE,
    PRUNED_WINDOW,
    AllPairsGenerator,
    GeoBucketGenerator,
    NetworkZoneGenerator,
    ResourceVectorGenerator,
    check_certificate,
    tie_rank_key,
)
from repro.core.config import AuctionConfig
from repro.core.matching import best_offer_set, block_maxima, quality_of_match
from repro.market.location import GeoLocation

from tests.conftest import make_offer, make_request


def _market(n_requests=12, n_offers=10):
    requests = [
        make_request(
            request_id=f"r{i:02d}",
            submit_time=float(i),
            resources={"cpu": 1.0 + (i % 5), "ram": 2.0 + (i % 3)},
        )
        for i in range(n_requests)
    ]
    offers = [
        make_offer(
            offer_id=f"o{j:02d}",
            submit_time=float(j),
            resources={"cpu": 2.0 + (j % 7), "ram": 4.0 + (j % 4)},
        )
        for j in range(n_offers)
    ]
    return requests, offers


def _reference_sets(requests, offers, maxima, breadth):
    return [
        best_offer_set(request, offers, maxima, breadth)
        for request in requests
    ]


class TestGeneratorsMatchReference:
    @pytest.mark.parametrize(
        "generator",
        [
            AllPairsGenerator(verify="full"),
            ResourceVectorGenerator(group_size=3, verify="full"),
            ResourceVectorGenerator(verify="full"),
            GeoBucketGenerator({}, cell_deg=30.0, verify="full"),
            NetworkZoneGenerator(verify="full"),
        ],
        ids=["all", "res3", "res-auto", "geo-fallback", "net-fallback"],
    )
    @pytest.mark.parametrize("breadth", [1, 3, 50])
    def test_best_sets_bit_identical(self, generator, breadth):
        requests, offers = _market()
        maxima = block_maxima(requests, offers)
        result = generator.generate(requests, offers, maxima, breadth)
        assert result.best_sets == _reference_sets(
            requests, offers, maxima, breadth
        )

    def test_empty_offers(self):
        requests, _ = _market(n_offers=0)
        result = ResourceVectorGenerator().generate(requests, [], {}, 3)
        assert result.best_sets == [frozenset() for _ in requests]
        assert result.stats["pairs_total"] == 0

    def test_empty_requests(self):
        _, offers = _market(n_requests=0)
        maxima = block_maxima([], offers)
        result = ResourceVectorGenerator().generate([], offers, maxima, 3)
        assert result.best_sets == []

    def test_chunking_invariant(self):
        requests, offers = _market(n_requests=20)
        maxima = block_maxima(requests, offers)
        whole = ResourceVectorGenerator(group_size=3)
        chunked = ResourceVectorGenerator(group_size=3, chunk_size=4)
        a = whole.generate(requests, offers, maxima, 3)
        b = chunked.generate(requests, offers, maxima, 3)
        assert a.best_sets == b.best_sets
        assert [
            c.to_payload(a.groups) for c in a.certificates
        ] == [c.to_payload(b.groups) for c in b.certificates]


class TestScreens:
    def test_window_screen_prunes_group(self):
        # One group full of offers that open too late for the request.
        request = make_request(window=TimeWindow(0.0, 6.0), duration=4.0)
        late = [
            make_offer(
                offer_id=f"late{j}", window=TimeWindow(8.0, 30.0), bid=1.0
            )
            for j in range(4)
        ]
        usable = [
            make_offer(offer_id=f"ok{j}", window=TimeWindow(0.0, 24.0))
            for j in range(4)
        ]
        offers = late + usable
        maxima = block_maxima([request], offers)
        generator = ResourceVectorGenerator(group_size=4, verify="full")
        result = generator.generate([request], offers, maxima, 2)
        assert result.stats["pairs_pruned_window"] >= 4
        assert result.best_sets[0] == best_offer_set(
            request, offers, maxima, 2
        )

    def test_resource_screen_strict_only(self):
        # 'cpu' is strict and undersupplied in one group; 'ram' demand
        # is non-strict and must NOT be screened (offers short on a
        # flexible type can still be feasible under the flexibility
        # discount).
        request = make_request(
            resources={"cpu": 16.0, "ram": 64.0},
            significance={"cpu": 1.0, "ram": 0.5},
            flexibility=0.5,
        )
        weak = [
            make_offer(
                offer_id=f"weak{j}", resources={"cpu": 4.0, "ram": 40.0}
            )
            for j in range(3)
        ]
        strong = [
            make_offer(
                offer_id=f"strong{j}", resources={"cpu": 32.0, "ram": 40.0}
            )
            for j in range(3)
        ]
        offers = weak + strong
        maxima = block_maxima([request], offers)
        generator = ResourceVectorGenerator(group_size=3, verify="full")
        result = generator.generate([request], offers, maxima, 2)
        assert result.stats["pairs_pruned_resource"] == 3
        # ram (non-strict, 40 < 64) did not disqualify the strong group.
        assert result.best_sets[0] == best_offer_set(
            request, offers, maxima, 2
        )
        assert result.best_sets[0] <= {"strong0", "strong1", "strong2"}

    def test_stats_partition_pairs(self):
        requests, offers = _market(n_requests=15, n_offers=12)
        maxima = block_maxima(requests, offers)
        generator = ResourceVectorGenerator(group_size=4)
        result = generator.generate(requests, offers, maxima, 2)
        s = result.stats
        assert (
            s["pairs_admitted"]
            + s["pairs_pruned_score"]
            + s["pairs_pruned_window"]
            + s["pairs_pruned_resource"]
            == s["pairs_total"]
            == len(requests) * len(offers)
        )
        assert generator.last_stats is s


class TestCandidateResult:
    def test_candidate_indices_sorted_and_complete(self):
        requests, offers = _market()
        maxima = block_maxima(requests, offers)
        result = ResourceVectorGenerator(group_size=3).generate(
            requests, offers, maxima, 3
        )
        for i, request in enumerate(requests):
            indices = result.candidate_indices(i)
            assert list(indices) == sorted(indices)
            admitted = [offers[j] for j in indices.tolist()]
            # The admitted subset reproduces the exact best set.
            assert best_offer_set(
                request, admitted, maxima, 3
            ) == best_offer_set(request, offers, maxima, 3)

    def test_certificate_payload_hexes_floats(self):
        requests, offers = _market(n_requests=2, n_offers=4)
        maxima = block_maxima(requests, offers)
        result = AllPairsGenerator().generate(requests, offers, maxima, 2)
        payload = result.certificates[0].to_payload(result.groups)
        if payload["threshold"] is not None:
            assert "0x" in payload["threshold"][0]
        assert payload["request_id"] == requests[0].request_id


class TestValidation:
    def test_bad_verify_mode(self):
        with pytest.raises(ValidationError):
            ResourceVectorGenerator(verify="always")

    def test_bad_chunk_size(self):
        with pytest.raises(ValidationError):
            AllPairsGenerator(chunk_size=0)

    def test_bad_group_size(self):
        with pytest.raises(ValidationError):
            ResourceVectorGenerator(group_size=0)

    def test_bad_zone_depth(self):
        with pytest.raises(ValidationError):
            NetworkZoneGenerator(depth=0)

    def test_bad_cell_deg(self):
        with pytest.raises(ValidationError):
            GeoBucketGenerator({}, cell_deg=0.0)

    def test_config_rejects_non_generator(self):
        with pytest.raises(ValidationError):
            AuctionConfig(candidates=object())

    def test_config_accepts_generator_and_ignores_in_eq(self):
        config = AuctionConfig(candidates=AllPairsGenerator())
        assert config == AuctionConfig()
        assert hash(config) == hash(AuctionConfig())


class TestGeoBuckets:
    def _locations(self):
        return {
            "hel": GeoLocation(60.17, 24.94),
            "ber": GeoLocation(52.52, 13.41),
            "syd": GeoLocation(-33.87, 151.21),
            "fiji-east": GeoLocation(-17.5, 179.5),
            "fiji-west": GeoLocation(-17.5, -179.5),
        }

    def test_located_market_matches_reference(self):
        locations = self._locations()
        tags = list(locations)
        requests = [
            make_request(
                request_id=f"r{i}",
                submit_time=float(i),
                location=tags[i % len(tags)],
            )
            for i in range(8)
        ]
        offers = [
            make_offer(
                offer_id=f"o{j}",
                submit_time=float(j),
                location=tags[j % len(tags)] if j % 3 else None,
            )
            for j in range(9)
        ]
        maxima = block_maxima(requests, offers)
        generator = GeoBucketGenerator(locations, cell_deg=10.0, verify="full")
        result = generator.generate(requests, offers, maxima, 3)
        assert result.best_sets == _reference_sets(requests, offers, maxima, 3)

    def test_antimeridian_neighbours_examined_early(self):
        # A request just east of the seam must reach the bucket just
        # west of it at ring distance 1, not across the whole grid.
        locations = self._locations()
        generator = GeoBucketGenerator(locations, cell_deg=5.0)
        requests = [make_request(location="fiji-east")]
        offers = [
            make_offer(offer_id="west", location="fiji-west"),
            make_offer(offer_id="hel", location="hel"),
        ]
        grouped = generator._group_offers(offers)
        keys = [key for key, _ in grouped]
        ub = np.zeros((1, len(keys)))
        priority = generator._priority_rows(requests, keys, ub)
        west_col = next(
            k for k, (_, idx) in enumerate(grouped) if 0 in idx.tolist()
        )
        hel_col = next(
            k for k, (_, idx) in enumerate(grouped) if 1 in idx.tolist()
        )
        assert priority[0, west_col] == 1.0
        assert priority[0, hel_col] > 10.0


class TestNetworkZones:
    def test_zone_market_matches_reference(self):
        requests = [
            make_request(
                request_id=f"r{i}",
                submit_time=float(i),
                location=("eu/hel/c1", "eu/ber/c2", "us/nyc/c1", "edge")[
                    i % 4
                ],
            )
            for i in range(8)
        ]
        offers = [
            make_offer(
                offer_id=f"o{j}",
                submit_time=float(j),
                location=("eu/hel/c1", "us/nyc/c1", None)[j % 3],
            )
            for j in range(9)
        ]
        maxima = block_maxima(requests, offers)
        for depth in (1, 2):
            generator = NetworkZoneGenerator(depth=depth, verify="full")
            result = generator.generate(requests, offers, maxima, 3)
            assert result.best_sets == _reference_sets(
                requests, offers, maxima, 3
            )

    def test_own_zone_examined_first(self):
        generator = NetworkZoneGenerator(depth=1)
        requests = [make_request(location="eu/hel/c1")]
        offers = [
            make_offer(offer_id="eu", location="eu/ber/c9"),
            make_offer(offer_id="us", location="us/nyc/c1"),
        ]
        grouped = generator._group_offers(offers)
        keys = [key for key, _ in grouped]
        priority = generator._priority_rows(
            requests, keys, np.zeros((1, len(keys)))
        )
        eu_col = keys.index("eu")
        us_col = keys.index("us")
        assert priority[0, eu_col] < priority[0, us_col]


class TestTieRankKey:
    def test_matches_reference_order(self):
        requests, offers = _market(n_requests=1, n_offers=6)
        maxima = block_maxima(requests, offers)
        keys = sorted(
            tie_rank_key(requests[0], offer, maxima) for offer in offers
        )
        scores = [-k[0] for k in keys]
        assert scores == sorted(scores, reverse=True)
        assert keys[0][0] == -max(
            quality_of_match(requests[0], o, maxima) for o in offers
        )


class TestCheckerCoverage:
    def test_checker_counts_work(self):
        requests, offers = _market(n_requests=4, n_offers=8)
        maxima = block_maxima(requests, offers)
        generator = ResourceVectorGenerator(group_size=2)
        result = generator.generate(requests, offers, maxima, 2)
        checks = check_certificate(
            requests[0], offers, maxima, result.certificates[0], result.groups
        )
        assert checks >= len(offers)

    def test_reason_codes_are_distinct(self):
        assert len({ADMITTED, PRUNED_SCORE, PRUNED_WINDOW, PRUNED_RESOURCE}) == 4

    def test_checker_rejects_missing_coverage(self):
        requests, offers = _market(n_requests=1, n_offers=4)
        maxima = block_maxima(requests, offers)
        result = AllPairsGenerator().generate(requests, offers, maxima, 2)
        certificate = result.certificates[0]
        with pytest.raises(CertificateError, match="cover"):
            check_certificate(
                requests[0],
                offers + [make_offer(offer_id="extra")],
                maxima,
                certificate,
                result.groups,
            )
