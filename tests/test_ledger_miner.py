"""Unit tests for the miner node and the network bus."""

import dataclasses

import pytest

from repro.common.errors import InvalidBlockError, ProtocolError
from repro.cryptosim import schnorr
from repro.ledger.block import Block, KeyReveal
from repro.ledger.miner import Miner, make_sealed_bid
from repro.ledger.network import BroadcastNetwork


def echo_allocator(plaintexts, evidence):
    """Deterministic toy allocation: record sorted sender ids."""
    return {
        "senders": sorted(plaintexts),
        "counts": {k: len(v) for k, v in sorted(plaintexts.items())},
    }


def _miner(miner_id="m0", bits=8):
    return Miner(miner_id=miner_id, allocate=echo_allocator, difficulty_bits=bits)


def _sealed(sender, plaintext=b"data"):
    keypair = schnorr.KeyPair.generate(seed=sender.encode())
    return make_sealed_bid(sender_id=sender, keypair=keypair, plaintext=plaintext)


class TestMinerRound:
    def test_full_round(self):
        miner = _miner()
        tx, reveal = _sealed("alice")
        miner.accept_transaction(tx)
        preamble = miner.build_preamble()
        assert preamble.check_pow(miner.difficulty_bits)
        body = miner.build_body(preamble, (reveal,))
        assert body.allocation["senders"] == ["alice"]
        block = Block(preamble=preamble, body=body)
        miner.accept_block(block)
        assert len(miner.chain) == 1
        assert len(miner.mempool) == 0

    def test_withheld_key_drops_bid(self):
        miner = _miner()
        tx_a, reveal_a = _sealed("alice")
        tx_b, _ = _sealed("bob")
        miner.accept_transaction(tx_a)
        miner.accept_transaction(tx_b)
        preamble = miner.build_preamble()
        body = miner.build_body(preamble, (reveal_a,))
        assert body.allocation["senders"] == ["alice"]

    def test_bad_commitment_raises(self):
        miner = _miner()
        tx, reveal = _sealed("alice")
        miner.accept_transaction(tx)
        preamble = miner.build_preamble()
        bad = KeyReveal(
            sender_id="alice",
            txid=reveal.txid,
            temp_key=b"\x00" * 32,
            blind=reveal.blind,
        )
        with pytest.raises(ProtocolError):
            miner.build_body(preamble, (bad,))

    def test_peer_verifies_by_reexecution(self):
        leader, peer = _miner("leader"), _miner("peer")
        tx, reveal = _sealed("alice")
        leader.accept_transaction(tx)
        peer.accept_transaction(tx)
        preamble = leader.build_preamble()
        block = Block(preamble=preamble, body=leader.build_body(preamble, (reveal,)))
        peer.accept_block(block)
        assert len(peer.chain) == 1
        assert len(peer.mempool) == 0  # included tx evicted

    def test_peer_rejects_forged_allocation(self):
        leader, peer = _miner("leader"), _miner("peer")
        tx, reveal = _sealed("alice")
        leader.accept_transaction(tx)
        peer.accept_transaction(tx)
        preamble = leader.build_preamble()
        body = leader.build_body(preamble, (reveal,))
        forged = dataclasses.replace(
            body, allocation={"senders": [], "counts": {}}
        ).signed_by(leader.keypair, preamble.hash())
        with pytest.raises(InvalidBlockError):
            peer.accept_block(Block(preamble=preamble, body=forged))

    def test_multiple_bids_per_sender(self):
        miner = _miner()
        keypair = schnorr.KeyPair.generate(seed=b"alice")
        reveals = []
        for i in range(3):
            tx, reveal = make_sealed_bid(
                sender_id="alice", keypair=keypair, plaintext=f"bid{i}".encode()
            )
            miner.accept_transaction(tx)
            reveals.append(reveal)
        preamble = miner.build_preamble()
        body = miner.build_body(preamble, tuple(reveals))
        assert body.allocation["counts"]["alice"] == 3

    def test_deterministic_keypair_from_id(self):
        assert _miner("mx").keypair == _miner("mx").keypair


class TestBroadcastNetwork:
    def test_delivery(self):
        network = BroadcastNetwork()
        seen = []
        network.subscribe("topic", lambda sender, payload: seen.append((sender, payload)))
        network.broadcast("topic", 42, sender="n1")
        assert seen == [("n1", 42)]

    def test_multiple_subscribers(self):
        network = BroadcastNetwork()
        a, b = [], []
        network.subscribe("t", lambda s, p: a.append(p))
        network.subscribe("t", lambda s, p: b.append(p))
        network.broadcast("t", "x")
        assert a == ["x"] and b == ["x"]

    def test_topic_isolation(self):
        network = BroadcastNetwork()
        seen = []
        network.subscribe("a", lambda s, p: seen.append(p))
        network.broadcast("b", "invisible")
        assert seen == []

    def test_log(self):
        network = BroadcastNetwork()
        network.broadcast("t", 1, sender="x")
        network.broadcast("u", 2, sender="y")
        assert [m.payload for m in network.messages("t")] == [1]
        assert len(network.log) == 2
