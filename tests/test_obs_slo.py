"""SLO objectives, error budgets, and the report CLI gates."""

import json

import pytest

from repro.obs import Observability
from repro.obs.report import main
from repro.obs.slo import (
    Objective,
    evaluate,
    evaluate_objective,
    load_objectives,
    render,
    summary_dict,
)
from repro.obs.timeseries import TimeSeriesStore


def _history(tmp_path, welfare):
    """A TimeSeriesStore history with one welfare gauge row per value."""
    path = tmp_path / "history.jsonl"
    store = TimeSeriesStore(str(path))
    obs = Observability()
    for i, value in enumerate(welfare):
        obs.registry.set("auction_last_welfare", value)
        obs.registry.observe("auction_phase_seconds", 0.01, phase="clear")
        store.append(obs.registry.snapshot(), round=i)
    return path


class TestObjective:
    def test_validation(self):
        with pytest.raises(ValueError):
            Objective(name="x", series="s", kind="quantile")
        with pytest.raises(ValueError):
            Objective(name="x", series="s", op="~=")
        with pytest.raises(ValueError):
            Objective(name="x", series="s", budget=1.5)

    def test_zero_budget_fails_on_single_violation(self, tmp_path):
        rows = TimeSeriesStore.load(str(_history(tmp_path, [10, 10, 3, 10])))
        result = evaluate_objective(
            rows,
            Objective(
                name="floor", series="auction_last_welfare",
                kind="gauge", op=">=", target=5.0,
            ),
        )
        assert result.violations == 1
        assert not result.ok
        assert result.budget_used == float("inf")

    def test_budget_tolerates_fraction(self, tmp_path):
        rows = TimeSeriesStore.load(
            str(_history(tmp_path, [10] * 9 + [3]))
        )
        objective = Objective(
            name="floor", series="auction_last_welfare",
            kind="gauge", op=">=", target=5.0, budget=0.2,
        )
        result = evaluate_objective(rows, objective)
        assert result.violations == 1
        assert result.violating_fraction == pytest.approx(0.1)
        assert result.budget_used == pytest.approx(0.5)
        assert result.ok

    def test_latency_objective_uses_delta_means(self, tmp_path):
        rows = TimeSeriesStore.load(str(_history(tmp_path, [10, 10, 10])))
        result = evaluate_objective(
            rows,
            Objective(
                name="clear-latency",
                series="auction_phase_seconds{phase=clear}",
                kind="latency", op="<=", target=0.05,
            ),
        )
        assert result.rounds == 3
        assert result.ok

    def test_no_data_is_not_compliance(self, tmp_path):
        rows = TimeSeriesStore.load(str(_history(tmp_path, [10])))
        result = evaluate_objective(
            rows,
            Objective(name="ghost", series="does_not_exist", kind="gauge"),
        )
        assert result.rounds == 0
        assert not result.ok
        assert "no data" in result.describe()

    def test_drift_attachment_fails_sliding_series(self, tmp_path):
        # every round individually passes the floor, but the series is
        # sliding toward it — the drift attachment catches the trend
        values = [10.0] * 5 + [9.0, 8.0, 7.0, 6.0, 5.5]
        rows = TimeSeriesStore.load(str(_history(tmp_path, values)))
        objective = Objective(
            name="floor", series="auction_last_welfare",
            kind="gauge", op=">=", target=5.0,
            drift={"window": 5, "threshold": 0.2},
        )
        result = evaluate_objective(rows, objective)
        assert result.violations == 0
        assert result.drifting
        assert not result.ok


class TestLoadRender:
    def test_load_objectives_round_trip(self, tmp_path):
        path = tmp_path / "slo.json"
        path.write_text(json.dumps({
            "objectives": [
                {"name": "floor", "series": "auction_last_welfare",
                 "kind": "gauge", "op": ">=", "target": 5.0,
                 "budget": 0.1, "drift": {"window": 3}},
            ]
        }))
        (objective,) = load_objectives(str(path))
        assert objective.name == "floor"
        assert objective.budget == 0.1
        assert objective.drift == {"window": 3}

    def test_load_objectives_rejects_empty(self, tmp_path):
        path = tmp_path / "slo.json"
        path.write_text(json.dumps({"objectives": []}))
        with pytest.raises(ValueError):
            load_objectives(str(path))

    def test_render_and_summary(self, tmp_path):
        rows = TimeSeriesStore.load(str(_history(tmp_path, [10, 3])))
        results = evaluate(rows, [
            Objective(name="floor", series="auction_last_welfare",
                      kind="gauge", op=">=", target=5.0),
            Objective(name="loose", series="auction_last_welfare",
                      kind="gauge", op=">=", target=1.0),
        ])
        text = render(results)
        assert "[VIOLATED] floor" in text and "[OK] loose" in text
        assert "1/2 objective(s) violated" in text
        summary = summary_dict(results)
        assert summary["ok"] is False
        assert summary["objectives"][0]["violations"] == 1


class TestCLI:
    def _slo_file(self, tmp_path, target):
        path = tmp_path / "slo.json"
        path.write_text(json.dumps({
            "objectives": [
                {"name": "floor", "series": "auction_last_welfare",
                 "kind": "gauge", "op": ">=", "target": target},
            ]
        }))
        return path

    def test_slo_cli_exits_nonzero_on_violation(self, tmp_path, capsys):
        history = _history(tmp_path, [10, 3, 10])
        assert main(["--slo", str(self._slo_file(tmp_path, 5.0)),
                     str(history)]) == 1
        assert "VIOLATED" in capsys.readouterr().out

    def test_slo_cli_exits_zero_when_met(self, tmp_path, capsys):
        history = _history(tmp_path, [10, 9, 10])
        assert main(["--slo", str(self._slo_file(tmp_path, 5.0)),
                     str(history)]) == 0
        assert "all 1 objective(s) met" in capsys.readouterr().out

    def test_slo_cli_diagnoses_missing_history(self, tmp_path, capsys):
        rc = main(["--slo", str(self._slo_file(tmp_path, 5.0)),
                   str(tmp_path / "absent.jsonl")])
        assert rc == 2
        assert "cannot read" in capsys.readouterr().err

    def test_slo_cli_diagnoses_empty_history(self, tmp_path, capsys):
        empty = tmp_path / "empty.jsonl"
        empty.write_text("")
        rc = main(["--slo", str(self._slo_file(tmp_path, 5.0)), str(empty)])
        assert rc == 2
        assert "empty history" in capsys.readouterr().err

    def test_slo_cli_diagnoses_bad_objectives(self, tmp_path, capsys):
        bad = tmp_path / "slo.json"
        bad.write_text("{not json")
        history = _history(tmp_path, [10])
        assert main(["--slo", str(bad), str(history)]) == 2
        assert "bad objectives file" in capsys.readouterr().err
