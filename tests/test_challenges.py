"""Unit tests for the TrueBit-style challenge game."""

import dataclasses

import pytest

from repro.common.errors import ProtocolError
from repro.ledger.block import Block
from repro.ledger.challenges import ChallengeGame, GameState
from repro.ledger.miner import Miner
from repro.protocol.allocator import DecloudAllocator
from repro.protocol.exposure import Participant
from repro.protocol.settlement import TokenLedger
from tests.conftest import make_offer, make_request


def _setup(cheat=False):
    """Build a block (honest or doctored) plus a referee miner."""
    leader = Miner(
        miner_id="leader", allocate=DecloudAllocator(), difficulty_bits=4
    )
    referee = Miner(
        miner_id="referee", allocate=DecloudAllocator(), difficulty_bits=4
    )
    alice = Participant(participant_id="alice")
    anna = Participant(participant_id="anna")
    bob = Participant(participant_id="bob")
    bids = [
        (alice, make_request(request_id="ra", client_id="alice", bid=2.0)),
        (anna, make_request(request_id="rb", client_id="anna", bid=1.5)),
        (bob, make_offer(provider_id="bob", bid=0.4)),
    ]
    for participant, bid in bids:
        tx = participant.seal(bid)
        leader.accept_transaction(tx)
        referee.accept_transaction(tx)
    preamble = leader.build_preamble()
    reveals = []
    for participant, _ in bids:
        reveals.extend(participant.reveals_for(preamble))
    body = leader.build_body(preamble, tuple(reveals))
    if cheat:
        body = dataclasses.replace(
            body, allocation={**body.allocation, "matches": []}
        ).signed_by(leader.keypair, preamble.hash())
    block = Block(preamble=preamble, body=body)

    ledger = TokenLedger()
    ledger.mint("leader", 100.0)
    ledger.mint("challenger", 100.0)
    game = ChallengeGame(ledger=ledger, deposit=10.0)
    return game, ledger, block, referee


class TestProposal:
    def test_deposit_locked_on_propose(self):
        game, ledger, block, _ = _setup()
        game.propose("leader", block)
        assert ledger.balance("leader") == 90.0

    def test_double_propose_rejected(self):
        game, _, block, _ = _setup()
        game.propose("leader", block)
        with pytest.raises(ProtocolError):
            game.propose("leader", block)

    def test_broke_leader_rejected(self):
        game, ledger, block, _ = _setup()
        with pytest.raises(ProtocolError):
            game.propose("pauper", block)

    def test_finalize_unchallenged_returns_deposit(self):
        game, ledger, block, _ = _setup()
        block_hash = game.propose("leader", block)
        game.finalize_unchallenged(block_hash)
        assert ledger.balance("leader") == 100.0
        assert game.state_of(block_hash) is GameState.FINALIZED


class TestChallengeOutcomes:
    def test_valid_challenge_slashes_cheater(self):
        game, ledger, block, referee = _setup(cheat=True)
        block_hash = game.propose("leader", block)
        game.raise_challenge("challenger", block_hash)
        assert game.adjudicate(block_hash, referee) is True
        assert game.state_of(block_hash) is GameState.REJECTED
        assert ledger.balance("challenger") == 110.0
        assert ledger.balance("leader") == 90.0

    def test_frivolous_challenge_slashes_challenger(self):
        game, ledger, block, referee = _setup(cheat=False)
        block_hash = game.propose("leader", block)
        game.raise_challenge("challenger", block_hash)
        assert game.adjudicate(block_hash, referee) is False
        assert game.state_of(block_hash) is GameState.FINALIZED
        assert ledger.balance("leader") == 110.0
        assert ledger.balance("challenger") == 90.0

    def test_challenge_after_finalize_rejected(self):
        game, _, block, _ = _setup()
        block_hash = game.propose("leader", block)
        game.finalize_unchallenged(block_hash)
        with pytest.raises(ProtocolError):
            game.raise_challenge("challenger", block_hash)

    def test_adjudicate_without_challenge_rejected(self):
        game, _, block, referee = _setup()
        block_hash = game.propose("leader", block)
        with pytest.raises(ProtocolError):
            game.adjudicate(block_hash, referee)

    def test_broke_challenger_rejected(self):
        game, _, block, _ = _setup()
        block_hash = game.propose("leader", block)
        with pytest.raises(ProtocolError):
            game.raise_challenge("pauper", block_hash)

    def test_token_supply_conserved(self):
        game, ledger, block, referee = _setup(cheat=True)
        supply = ledger.total_supply()
        block_hash = game.propose("leader", block)
        game.raise_challenge("challenger", block_hash)
        game.adjudicate(block_hash, referee)
        assert ledger.total_supply() == pytest.approx(supply)

    def test_unknown_proposal_rejected(self):
        game, _, _, _ = _setup()
        with pytest.raises(ProtocolError):
            game.state_of("ff" * 32)
