"""NodeStore recovery: journaled subsystems rebuild bit-for-bit."""

import pytest

from repro.common.errors import RecoveryError, StoreError
from repro.ledger.chain import Blockchain
from repro.ledger.mempool import Mempool
from repro.ledger.miner import Miner, make_sealed_bid
from repro.cryptosim import schnorr
from repro.protocol.settlement import (
    EscrowState,
    SettlementProcessor,
    TokenLedger,
)
from repro.sim.chaos import ChaosSpec, run_durable_scenario
from repro.store import NodeStore


def sealed_bid(i=0):
    keypair = schnorr.KeyPair.generate(seed=f"sender-{i}".encode())
    tx, _reveal = make_sealed_bid(
        sender_id=f"sender-{i}",
        keypair=keypair,
        plaintext=f"bid-{i}".encode(),
        temp_key=bytes([i]) * 32,
        nonce=bytes([i]) * 16,
        blind=bytes([i]) * 32,
    )
    return tx


class TestLedgerRecovery:
    def test_token_ops_replay_exactly(self):
        store = NodeStore.in_memory()
        # recovery needs an attached chain/mempool pair for state calls,
        # but the ledger journal alone drives this test
        ledger = TokenLedger()
        store.attach(ledger=ledger)
        ledger.mint("alice", 10.0)
        ledger.transfer("alice", "bob", 2.5)
        eid = ledger.open_escrow("alice", "carol", 3.0)
        ledger.release(eid)
        eid2 = ledger.open_escrow("alice", "carol", 1.0)
        ledger.refund(eid2)

        recovered = store.recover()
        assert recovered.ledger.balances == ledger.balances
        assert recovered.ledger._escrow_counter == ledger._escrow_counter
        assert set(recovered.ledger.escrows) == set(ledger.escrows)
        for eid, escrow in ledger.escrows.items():
            assert recovered.ledger.escrows[eid].state is escrow.state

    def test_settlement_intent_is_atomic_per_block(self):
        store = NodeStore.in_memory()
        ledger = TokenLedger()
        processor = SettlementProcessor(ledger=ledger)
        store.attach(settlement=processor)
        from tests.conftest import make_offer, make_request
        from repro.core.outcome import Match

        matches = [
            Match(
                request=make_request(request_id=f"r{i}", client_id=f"c{i}"),
                offer=make_offer(offer_id=f"o{i}", provider_id=f"p{i}"),
                payment=1.0 + i,
                unit_price=0.5,
            )
            for i in range(3)
        ]
        ids = processor.settle_block(matches, auto_fund=True, block_hash="h1")
        # exactly ONE settlement.block record covers the whole block:
        # mints and opens inside it are not journaled individually
        types = [r["type"] for r in store.wal.records()]
        assert types == ["settlement.block"]

        recovered = store.recover()
        assert recovered.settled_blocks == {"h1": ids}
        assert recovered.ledger.balances == ledger.balances
        assert set(recovered.ledger.escrows) == set(ledger.escrows)

    def test_recovered_settlement_is_idempotent_on_redelivery(self):
        store = NodeStore.in_memory()
        processor = SettlementProcessor(ledger=TokenLedger())
        store.attach(settlement=processor)
        from tests.conftest import make_offer, make_request
        from repro.core.outcome import Match

        match = Match(
            request=make_request(),
            offer=make_offer(),
            payment=2.0,
            unit_price=0.5,
        )
        first = processor.settle_block([match], auto_fund=True, block_hash="hh")
        recovered = store.recover()
        resumed = recovered.make_settlement(store=store)
        again = resumed.settle_block([match], auto_fund=True, block_hash="hh")
        assert again == first
        assert resumed.ledger.total_supply() == pytest.approx(2.0)


class TestChainAndMempoolRecovery:
    def _mined_store(self):
        store = NodeStore.in_memory()
        from repro.protocol.allocator import DecloudAllocator

        miner = Miner(
            miner_id="m0",
            allocate=DecloudAllocator(),
            difficulty_bits=4,
            store=store,
        )
        for i in range(3):
            miner.accept_transaction(sealed_bid(i))
        return store, miner

    def test_mempool_admissions_survive(self):
        store, miner = self._mined_store()
        recovered = store.recover(difficulty_bits=4)
        assert len(recovered.mempool) == 3
        assert [t.txid() for t in recovered.mempool.peek(3)] == [
            t.txid() for t in miner.mempool.peek(3)
        ]

    def test_committed_block_survives_and_evicts_mempool(self):
        store, miner = self._mined_store()
        preamble = miner.build_preamble()
        miner.accept_preamble(preamble)
        body = miner.build_body(preamble, ())
        from repro.ledger.block import Block

        miner.chain.append(Block(preamble=preamble, body=body))
        recovered = store.recover(difficulty_bits=4)
        assert recovered.committed_height == 1
        assert recovered.chain.tip_hash == miner.chain.tip_hash
        assert len(recovered.mempool) == 0

    def test_snapshot_plus_suffix_equals_pure_replay(self):
        store, miner = self._mined_store()
        digest_before = store.recover(difficulty_bits=4).state_digest()
        store.snapshot()  # compacts the replayed prefix away
        miner.accept_transaction(sealed_bid(7))
        with_suffix = store.recover(difficulty_bits=4)
        assert with_suffix.snapshot_used
        assert len(with_suffix.mempool) == 4
        # recover twice: recovery is a pure function of durable bytes
        assert (
            store.recover(difficulty_bits=4).state_digest()
            == with_suffix.state_digest()
        )
        assert digest_before != with_suffix.state_digest()

    def test_round_phase_markers_tracked(self):
        store, _miner = self._mined_store()
        store.log("round.phase", round=0, phase="reveal")
        recovered = store.recover(difficulty_bits=4)
        assert recovered.round_in_flight() == {"round": 0, "phase": "reveal"}
        store.log("round.phase", round=0, phase="committed", hash="x")
        assert store.recover(difficulty_bits=4).round_in_flight() is None

    def test_unknown_record_type_raises_recovery_error(self):
        store = NodeStore.in_memory()
        store.wal.append("no.such.record", {})
        with pytest.raises(RecoveryError):
            store.recover()

    def test_torn_tail_truncated_and_counted(self):
        store, _miner = self._mined_store()
        store.wal.backend.append(b"\xd7\xca partial garbage")
        recovered = store.recover(difficulty_bits=4)
        assert recovered.truncated_bytes > 0
        assert len(recovered.mempool) == 3
        # the log is appendable again after recovery
        store.log("round.phase", round=0, phase="seal")

    def test_snapshot_requires_attached_state(self):
        store = NodeStore.in_memory()
        with pytest.raises(StoreError):
            store.snapshot()


class TestFileBackedStore:
    def test_full_round_trip_from_disk(self, tmp_path):
        directory = str(tmp_path / "node0")
        store = NodeStore.at_path(directory)
        ledger = TokenLedger()
        chain = Blockchain(difficulty_bits=4)
        mempool = Mempool()
        store.attach(chain=chain, mempool=mempool, ledger=ledger)
        ledger.mint("alice", 5.0)
        mempool.submit(sealed_bid(1))
        store.snapshot()
        ledger.mint("bob", 1.0)
        digest = store.state_digest()
        store.close()

        reopened = NodeStore.at_path(directory)
        recovered = reopened.recover(difficulty_bits=4)
        assert recovered.snapshot_used
        assert recovered.state_digest() == digest
        assert recovered.ledger.balances == {"alice": 5.0, "bob": 1.0}
        reopened.close()


class TestDurableScenario:
    def test_durable_run_matches_plain_chaos_welfare(self):
        spec = ChaosSpec(
            num_clients=3,
            num_providers=2,
            num_miners=3,
            rounds=1,
            seed=11,
            max_delay=0.0,
        )
        result = run_durable_scenario(spec, byzantine=False, monitored=True)
        assert result.rounds_completed == 1
        assert result.crashes == 0
        assert result.monitor_alerts == 0
        assert result.outcomes[0] is not None
        assert result.outcomes[0]["matches"], "seeded market should trade"

    def test_durable_run_is_deterministic(self):
        spec = ChaosSpec(
            num_clients=3,
            num_providers=2,
            num_miners=3,
            rounds=2,
            seed=3,
            withholding_clients=1,
            max_delay=0.0,
        )
        a = run_durable_scenario(spec, snapshot_every=1)
        b = run_durable_scenario(spec, snapshot_every=1)
        assert a.outcomes == b.outcomes
        assert a.tip_hash == b.tip_hash
        assert a.state_digest == b.state_digest
        assert a.append_count == b.append_count
