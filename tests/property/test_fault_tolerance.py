"""Property: faults shrink the market, they never corrupt the mechanism.

For *any* seeded fault plan (message drop below 1.0, honest miner
majority) under which a protocol round completes, the allocation in the
committed block must equal a fault-free auction over exactly the bids
that survived the faults — dropped gossip and withheld keys exclude
bids, but can never change what the mechanism computes for the rest.
"""

from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.common.errors import ReproError
from repro.common.rng import make_generator
from repro.faults.actors import WithholdingParticipant
from repro.faults.network import UnreliableNetwork
from repro.faults.plan import FaultPlan
from repro.ledger.miner import Miner
from repro.protocol.allocator import DecloudAllocator, decode_round
from repro.protocol.exposure import ExposureProtocol, Participant
from repro.sim.engine import replay_fault_free
from tests.conftest import make_offer, make_request


def _run_faulty_round(seed: int, drop_rate: float, withholders: int):
    """One protocol round over a seeded unreliable network."""
    plan = FaultPlan(
        seed=f"prop-{seed}",
        drop_rate=drop_rate,
        duplicate_rate=0.1,
        min_delay=0.0,
        max_delay=0.05,
        reorder_rate=0.2,
    )
    miners = [
        Miner(
            miner_id=f"m{i}", allocate=DecloudAllocator(), difficulty_bits=2
        )
        for i in range(3)
    ]
    protocol = ExposureProtocol(
        miners=miners, network=UnreliableNetwork(plan=plan)
    )

    rng = make_generator(f"prop-market-{seed}")
    participants = []
    withheld_txids = set()
    for i in range(4):
        cls = WithholdingParticipant if i < withholders else Participant
        client = cls(
            participant_id=f"cli-{i}",
            deterministic=True,
            seal_seed=b"prop",
        )
        tx = protocol.submit(
            client,
            make_request(
                request_id=f"req-{i}",
                client_id=f"cli-{i}",
                bid=float(rng.uniform(1.0, 3.0)),
            ),
        )
        if cls is WithholdingParticipant:
            withheld_txids.add(tx.txid())
        participants.append(client)
    for j in range(2):
        provider = Participant(
            participant_id=f"prov-{j}",
            deterministic=True,
            seal_seed=b"prop",
        )
        protocol.submit(
            provider,
            make_offer(
                offer_id=f"off-{j}",
                provider_id=f"prov-{j}",
                bid=float(rng.uniform(0.2, 0.9)),
            ),
        )
        participants.append(provider)
    return protocol.run_round(participants), withheld_txids


class TestFaultToleranceProperty:
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        drop_rate=st.floats(min_value=0.0, max_value=0.5),
        withholders=st.integers(min_value=0, max_value=1),
    )
    @settings(max_examples=20, deadline=None)
    def test_completed_round_matches_fault_free_survivor_run(
        self, seed, drop_rate, withholders
    ):
        try:
            result, withheld_txids = _run_faulty_round(
                seed, drop_rate, withholders
            )
        except ReproError:
            # The round degraded to a typed abort instead of completing;
            # the property constrains completed rounds only.
            assume(False)
            return
        # Withheld keys can only ever exclude the withholder's own bids.
        # (A withheld bid whose *submission* was also dropped never made
        # the preamble at all — missing a round is not an exclusion.)
        preamble_txids = {
            tx.txid() for tx in result.block.preamble.transactions
        }
        assert withheld_txids & preamble_txids <= set(result.excluded_txids)
        body = result.block.require_complete()
        plaintexts = Miner._open_transactions(
            result.block.preamble, body.reveals
        )
        live_requests, live_offers = decode_round(plaintexts)
        expected = replay_fault_free(
            live_requests,
            live_offers,
            result.block.preamble.evidence(),
        )
        assert expected == body.allocation
