"""Batched §IV-C normalization == scalar normalization, bit for bit.

``compute_economics_batch`` pads every cluster of a block into one set
of masked NumPy arrays; these properties drive it with adversarial
cluster mixes — zero-magnitude virtual maxima, single-bid clusters,
exact grid ties, clusters with disjoint type universes side by side —
and require the result to match per-cluster ``compute_economics``
float-for-float (compared via ``float.hex``).  The batched SBBA pricing
kernel gets the same treatment against scalar ``pooled_price``.
"""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.errors import AuctionError
from repro.common.timewindow import TimeWindow
from repro.core.auction import DecloudAuction
from repro.core.cluster_allocation import allocate_cluster
from repro.core.clustering import Cluster, build_clusters
from repro.core.config import AuctionConfig
from repro.core.normalization import compute_economics
from repro.core.normalization_vectorized import compute_economics_batch
from repro.core.pricing import (
    pooled_price,
    pooled_price_vectorized,
    pooled_prices_batch,
)
from repro.market.bids import Offer, Request

TYPES = ("cpu", "ram", "disk", "gpu")
AMOUNTS = (0.0, 0.5, 1.0, 2.0, 8.0)
BIDS = (0.25, 1.0, 3.0)


@st.composite
def _cluster(draw, index: int):
    """One (requests, offers) cluster; may be degenerate on purpose.

    ``zero_maximum`` zeroes every offer amount on the cluster's types —
    the virtual maximum has zero magnitude and the scalar path prices
    every offer at ``inf`` and values every request at 0.0; the batch
    must do exactly the same.  Single-bid clusters (one request, one
    offer) exercise the reduceat segments of length one.
    """
    n_types = draw(st.integers(min_value=1, max_value=3))
    types = draw(
        st.lists(
            st.sampled_from(TYPES),
            min_size=n_types,
            max_size=n_types,
            unique=True,
        )
    )
    single_bid = draw(st.booleans())
    n_req = 1 if single_bid else draw(st.integers(min_value=1, max_value=4))
    n_off = 1 if single_bid else draw(st.integers(min_value=1, max_value=4))
    zero_maximum = draw(st.booleans())

    offers = []
    for j in range(n_off):
        amounts = {
            t: 0.0 if zero_maximum else draw(st.sampled_from(AMOUNTS))
            for t in types
        }
        offers.append(
            Offer(
                offer_id=f"c{index}-o{j}",
                provider_id=f"c{index}-p{j}",
                submit_time=0.0,
                resources=amounts,
                window=TimeWindow(0.0, draw(st.sampled_from((2.0, 8.0)))),
                bid=draw(st.sampled_from(BIDS)),
            )
        )
    requests = []
    for i in range(n_req):
        requests.append(
            Request(
                request_id=f"c{index}-r{i}",
                client_id=f"c{index}-c{i}",
                submit_time=0.0,
                resources={t: draw(st.sampled_from(AMOUNTS)) for t in types},
                significance={
                    t: 0.9 for t in types if draw(st.booleans())
                },
                window=TimeWindow(0.0, 4.0),
                duration=draw(st.sampled_from((1.0, 2.0))),
                bid=draw(st.sampled_from(BIDS)),
            )
        )
    return requests, offers


@st.composite
def _cluster_batches(draw, max_clusters: int = 5):
    n = draw(st.integers(min_value=1, max_value=max_clusters))
    return [draw(_cluster(index=i)) for i in range(n)]


def _hexed(economics):
    """ClusterEconomics reduced to an exactly-comparable structure."""

    def hex_map(mapping):
        return {k: float(v).hex() for k, v in mapping.items()}

    return {
        "common_types": sorted(economics.common_types),
        "virtual_maximum": hex_map(economics.virtual_maximum),
        "nu_offers": hex_map(economics.nu_offers),
        "nu_requests": hex_map(economics.nu_requests),
        "normalized_costs": hex_map(economics.normalized_costs),
        "normalized_values": hex_map(economics.normalized_values),
    }


class TestBatchedNormalization:
    @given(clusters=_cluster_batches())
    @settings(max_examples=150, deadline=None)
    def test_batch_matches_scalar_bitwise(self, clusters):
        config = AuctionConfig()
        batched = compute_economics_batch(clusters, config)
        for (requests, offers), result in zip(clusters, batched):
            scalar = compute_economics(requests, offers, config)
            assert _hexed(result) == _hexed(scalar)

    @given(clusters=_cluster_batches(max_clusters=3))
    @settings(max_examples=30, deadline=None)
    def test_single_cluster_batches(self, clusters):
        """Each cluster batched alone must equal the full batch — the
        shared type universe and padding never leak between clusters."""
        config = AuctionConfig()
        full = compute_economics_batch(clusters, config)
        for cluster, from_full in zip(clusters, full):
            alone = compute_economics_batch([cluster], config)[0]
            assert _hexed(alone) == _hexed(from_full)

    def test_empty_batch(self):
        assert compute_economics_batch([], AuctionConfig()) == []

    def test_empty_side_raises_like_scalar(self):
        config = AuctionConfig()
        good = (
            [
                Request(
                    request_id="r0",
                    client_id="c0",
                    submit_time=0.0,
                    resources={"cpu": 1.0},
                    window=TimeWindow(0.0, 4.0),
                    duration=1.0,
                    bid=1.0,
                )
            ],
            [
                Offer(
                    offer_id="o0",
                    provider_id="p0",
                    submit_time=0.0,
                    resources={"cpu": 1.0},
                    window=TimeWindow(0.0, 4.0),
                    bid=1.0,
                )
            ],
        )
        with pytest.raises(AuctionError, match="at least one of each side"):
            compute_economics_batch([good, ([], good[1])], config)

    def test_no_common_types_raises_like_scalar(self):
        config = AuctionConfig()
        requests = [
            Request(
                request_id="r0",
                client_id="c0",
                submit_time=0.0,
                resources={"cpu": 1.0},
                window=TimeWindow(0.0, 4.0),
                duration=1.0,
                bid=1.0,
            )
        ]
        offers = [
            Offer(
                offer_id="o0",
                provider_id="p0",
                submit_time=0.0,
                resources={"gpu": 1.0},
                window=TimeWindow(0.0, 4.0),
                bid=1.0,
            )
        ]
        with pytest.raises(AuctionError, match="no common resource types"):
            compute_economics_batch([(requests, offers)], config)


def _allocations_from_market(size: int, seed: int):
    """Real cluster allocations straight out of the front half."""
    from repro.workloads.generators import generate_market

    config = AuctionConfig()
    requests, offers = generate_market(size, seed=seed)
    request_by_id = {r.request_id: r for r in requests}
    offer_by_id = {o.offer_id: o for o in offers}
    clusters, _ = build_clusters(requests, offers, config)
    allocations = []
    for cluster in clusters:
        cluster_requests = [
            request_by_id[rid] for rid in sorted(cluster.request_ids)
        ]
        cluster_offers = [
            offer_by_id[oid] for oid in sorted(cluster.offer_ids)
        ]
        if cluster_requests and cluster_offers:
            allocations.append(
                allocate_cluster(
                    cluster, cluster_requests, cluster_offers, config
                )
            )
    return allocations


class TestBatchedPricing:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_batch_matches_scalar_on_real_clusters(self, seed):
        allocations = _allocations_from_market(60, seed)
        scalar = pooled_price(allocations)
        batched = pooled_price_vectorized(allocations)
        assert _price_hex(batched) == _price_hex(scalar)

    @pytest.mark.parametrize("seed", [4, 5])
    def test_batch_over_partitions(self, seed):
        """Many segments at once: every partition of the allocation list
        must price each part exactly as a scalar call on that part."""
        allocations = _allocations_from_market(60, seed)
        if len(allocations) < 3:
            pytest.skip("market produced too few clusters to partition")
        thirds = [
            allocations[0::3], allocations[1::3], allocations[2::3], []
        ]
        batched = pooled_prices_batch(thirds)
        for part, result in zip(thirds, batched):
            assert _price_hex(result) == _price_hex(pooled_price(part))

    def test_empty_inputs(self):
        assert pooled_prices_batch([]) == []
        assert pooled_prices_batch([[]]) == [(None, None, None)]


def _price_hex(result):
    price, z_request, z1_offer = result
    return (
        None if price is None else float(price).hex(),
        None if z_request is None else z_request.request_id,
        None if z1_offer is None else z1_offer.offer_id,
    )


class TestPhaseTimerIntegration:
    def test_auction_reports_all_phases(self):
        from repro.common.timing import PhaseTimer
        from repro.workloads.generators import generate_market

        requests, offers = generate_market(40, seed=9)
        timer = PhaseTimer()
        DecloudAuction(AuctionConfig(engine="vectorized")).run(
            requests, offers, timer=timer
        )
        phases = set(timer.to_dict())
        assert {"match", "cluster", "normalize", "assemble", "clear"} <= phases
        assert timer.total_seconds > 0.0
