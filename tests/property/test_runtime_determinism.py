"""Property: the async runtime is a pure function of its seeds.

Three invariants over Hypothesis-drawn scheduler seeds and fault plans:

* **replay determinism** — two runs with the same (schedule seed, fault
  plan, market) emit byte-identical stripped JSONL traces, identical
  registry counters/gauges, identical message-fate counters, and an
  identical durable ``state_digest`` on the journaling node;
* **observability inertness on the runtime path** — obs off, plain obs,
  and a monitored bundle all commit the same blocks (fault draws are
  content-addressed, so instrumentation cannot shift them), with zero
  monitor violations;
* **cost-shape independence** — :class:`~repro.runtime.reactor.RuntimeCosts`
  stretch the virtual schedule but never change committed outcomes.
"""

from __future__ import annotations

from typing import Optional

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.faults.plan import FaultPlan
from repro.ledger.miner import Miner
from repro.obs import Observability
from repro.obs.monitors import MonitorSuite, violation_total
from repro.protocol.allocator import DecloudAllocator
from repro.runtime import RoundInput, Runtime, RuntimeCosts
from repro.store import NodeStore
from tests.differential.test_runtime_equivalence import (
    _participants,
    _round_bids,
)

ROUNDS = 2
N_CLIENTS = 4
N_PROVIDERS = 2


def _drive(
    market_seed: int,
    schedule_seed: int,
    plan: Optional[FaultPlan] = None,
    obs=None,
    costs: Optional[RuntimeCosts] = None,
    store: Optional[NodeStore] = None,
    spacing: float = 0.2,
):
    """One seeded runtime run; node-0 journals when ``store`` is given."""
    miners = [
        Miner(
            miner_id=f"m{i}",
            allocate=DecloudAllocator(),
            difficulty_bits=4,
            store=store if i == 0 else None,
        )
        for i in range(3)
    ]
    if store is not None:
        store.attach(chain=miners[0].chain, mempool=miners[0].mempool)
    runtime = Runtime(
        miners,
        plan=plan,
        schedule_seed=schedule_seed,
        obs=obs,
        costs=costs,
        store=store,
    )
    participants = _participants(market_seed, N_CLIENTS, N_PROVIDERS)
    inputs = []
    for round_index in range(ROUNDS):
        bids = _round_bids(market_seed, round_index, N_CLIENTS, N_PROVIDERS)
        inputs.append(
            RoundInput(
                submissions=tuple(
                    (participants[pid], bid) for pid, bid in bids
                ),
                offsets=tuple(i * spacing for i in range(len(bids))),
            )
        )
    return runtime.run(inputs)


def _hashes(report):
    return tuple(
        r.result.block.hash() if r.result is not None else f"aborted:{r.error}"
        for r in report.rounds
    )


plans = st.one_of(
    st.none(),
    st.builds(
        FaultPlan,
        seed=st.integers(min_value=0, max_value=2**8).map(
            lambda s: f"det-{s}"
        ),
        drop_rate=st.sampled_from((0.0, 0.1, 0.25)),
        duplicate_rate=st.sampled_from((0.0, 0.2)),
        reorder_rate=st.sampled_from((0.0, 0.3)),
        max_delay=st.sampled_from((0.0, 0.05)),
    ),
)


@settings(max_examples=20, deadline=None)
@given(
    market_seed=st.integers(min_value=0, max_value=2**8),
    schedule_seed=st.integers(min_value=0, max_value=2**16),
    plan=plans,
)
def test_same_seed_is_byte_identical(market_seed, schedule_seed, plan):
    """Traces, counters, message fates, and the WAL-backed state digest
    all repeat exactly — the property crash replay and schedule
    exploration both rest on."""

    def run():
        obs = Observability("runtime-det")
        store = NodeStore.in_memory()
        report = _drive(
            market_seed, schedule_seed, plan=plan, obs=obs, store=store
        )
        snap = obs.registry.snapshot()
        fates = (
            report.messages_sent,
            report.messages_delivered,
            report.messages_dropped,
            report.messages_censored,
            report.backpressure_deferrals,
        )
        return (
            _hashes(report),
            obs.trace_jsonl(strip_wall=True),
            {"counters": snap["counters"], "gauges": snap["gauges"]},
            fates,
            store.state_digest(),
        )

    first, second = run(), run()
    assert first == second
    assert first[1]  # a driven round always leaves a trace


@settings(max_examples=20, deadline=None)
@given(
    market_seed=st.integers(min_value=0, max_value=2**8),
    schedule_seed=st.integers(min_value=0, max_value=2**16),
    plan=plans,
)
def test_obs_on_off_outcomes_identical(market_seed, schedule_seed, plan):
    """Instrumentation is read-only on the runtime path too: fault fates
    are keyed by message identity, not draw order, so attaching obs (or
    monitors) cannot shift a single delivery."""
    plain = _drive(market_seed, schedule_seed, plan=plan)
    observed = _drive(
        market_seed,
        schedule_seed,
        plan=plan,
        obs=Observability("runtime-obs"),
    )
    monitored_obs = Observability("runtime-mon", monitors=MonitorSuite())
    monitored = _drive(market_seed, schedule_seed, plan=plan, obs=monitored_obs)
    assert _hashes(plain) == _hashes(observed) == _hashes(monitored)
    assert (
        plain.messages_dropped
        == observed.messages_dropped
        == monitored.messages_dropped
    )
    assert violation_total(monitored_obs.registry) == 0


@settings(max_examples=15, deadline=None)
@given(
    market_seed=st.integers(min_value=0, max_value=2**8),
    schedule_seed=st.integers(min_value=0, max_value=2**16),
    scale=st.sampled_from((0.25, 2.0, 5.0)),
)
def test_costs_shape_schedule_not_outcomes(market_seed, schedule_seed, scale):
    """Stretching or shrinking every virtual phase width re-times the
    whole pipeline but commits the identical chain."""
    default = _drive(market_seed, schedule_seed)
    scaled = _drive(
        market_seed,
        schedule_seed,
        costs=RuntimeCosts(
            mine=1.0 * scale,
            reveal_deadline=1.0 * scale,
            propose=0.25 * scale,
            verify=0.25 * scale,
            commit=0.25 * scale,
            submit_check=0.25 * scale,
        ),
    )
    assert _hashes(default) == _hashes(scaled)
    assert scaled.virtual_time != default.virtual_time
