"""Property tests: input-order invariance and serialization stability.

* **Order invariance** — the mechanism must not depend on the list order
  of requests or offers (only on their submit times and ids); otherwise
  miners iterating mempools differently would diverge and collective
  verification would fail.
* **Serialization stability** — chains with arbitrary market content
  survive the JSON audit format byte-for-byte.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.auction import DecloudAuction
from repro.experiments.sweeps import eval_config
from repro.ledger.serialization import chain_from_json, chain_to_json
from repro.protocol.exposure import Participant, build_miner_network
from repro.workloads.generators import MarketScenario


class TestOrderInvariance:
    @given(
        seed=st.integers(min_value=0, max_value=500),
        shuffle_seed=st.integers(min_value=0, max_value=500),
    )
    @settings(max_examples=40, deadline=None)
    def test_outcome_independent_of_list_order(self, seed, shuffle_seed):
        import random

        requests, offers = MarketScenario(n_requests=10, seed=seed).generate()
        auction = DecloudAuction(eval_config())
        baseline = auction.run(requests, offers, evidence=b"ORD")

        rng = random.Random(shuffle_seed)
        shuffled_requests = list(requests)
        shuffled_offers = list(offers)
        rng.shuffle(shuffled_requests)
        rng.shuffle(shuffled_offers)
        shuffled = auction.run(
            shuffled_requests, shuffled_offers, evidence=b"ORD"
        )
        assert shuffled.to_payload() == baseline.to_payload()


class TestSerializationStability:
    @given(seed=st.integers(min_value=0, max_value=200))
    @settings(max_examples=10, deadline=None)
    def test_random_chain_roundtrip(self, seed):
        protocol = build_miner_network(1, difficulty_bits=4)
        requests, offers = MarketScenario(n_requests=4, seed=seed).generate()
        participants = {}
        for request in requests:
            participants.setdefault(
                request.client_id,
                Participant(participant_id=request.client_id),
            )
            protocol.submit(participants[request.client_id], request)
        for offer in offers:
            participants.setdefault(
                offer.provider_id,
                Participant(participant_id=offer.provider_id),
            )
            protocol.submit(participants[offer.provider_id], offer)
        protocol.run_round(list(participants.values()))

        chain = protocol.miners[0].chain
        restored = chain_from_json(chain_to_json(chain))
        assert restored.tip_hash == chain.tip_hash
        assert chain_to_json(restored) == chain_to_json(chain)
