"""Property tests: DSIC / IR / BB of the classic single-good mechanisms.

These are the exact theorems of McAfee (1992) and Segal-Halevi et al.
(2016), so any hypothesis counterexample is an implementation bug.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mechanisms import UnitBid, run_mcafee, run_sbba

amounts = st.floats(
    min_value=0.0, max_value=100.0, allow_nan=False, allow_infinity=False
)
markets = st.tuples(
    st.lists(amounts, min_size=1, max_size=8),
    st.lists(amounts, min_size=1, max_size=8),
)


def _bids(values, prefix):
    return [UnitBid(agent_id=f"{prefix}{i}", amount=v) for i, v in enumerate(values)]


def _buyer_utility(result, buyer_id, true_value):
    for trade in result.trades:
        if trade.buyer_id == buyer_id:
            return true_value - trade.buyer_pays
    return 0.0


def _seller_utility(result, seller_id, true_cost):
    for trade in result.trades:
        if trade.seller_id == seller_id:
            return trade.seller_gets - true_cost
    return 0.0


class TestMcAfeeProperties:
    @given(market=markets)
    @settings(max_examples=200, deadline=None)
    def test_individual_rationality(self, market):
        buyer_values, seller_costs = market
        buyers, sellers = _bids(buyer_values, "b"), _bids(seller_costs, "s")
        result = run_mcafee(buyers, sellers)
        values = {b.agent_id: b.amount for b in buyers}
        costs = {s.agent_id: s.amount for s in sellers}
        for trade in result.trades:
            assert trade.buyer_pays <= values[trade.buyer_id] + 1e-9
            assert trade.seller_gets >= costs[trade.seller_id] - 1e-9

    @given(market=markets)
    @settings(max_examples=200, deadline=None)
    def test_weak_budget_balance(self, market):
        buyers, sellers = (_bids(market[0], "b"), _bids(market[1], "s"))
        assert run_mcafee(buyers, sellers).budget_surplus >= -1e-9

    @given(
        market=markets,
        deviant=st.integers(min_value=0, max_value=7),
        factor=st.floats(min_value=0.0, max_value=3.0, allow_nan=False),
    )
    @settings(max_examples=200, deadline=None)
    def test_buyer_truthful_dominant(self, market, deviant, factor):
        buyer_values, seller_costs = market
        deviant %= len(buyer_values)
        buyers = _bids(buyer_values, "b")
        sellers = _bids(seller_costs, "s")
        true_value = buyer_values[deviant]

        honest = _buyer_utility(
            run_mcafee(buyers, sellers), f"b{deviant}", true_value
        )
        shaded = list(buyers)
        shaded[deviant] = UnitBid(
            agent_id=f"b{deviant}", amount=true_value * factor
        )
        deviated = _buyer_utility(
            run_mcafee(shaded, sellers), f"b{deviant}", true_value
        )
        assert deviated <= honest + 1e-9

    @given(
        market=markets,
        deviant=st.integers(min_value=0, max_value=7),
        factor=st.floats(min_value=0.0, max_value=3.0, allow_nan=False),
    )
    @settings(max_examples=200, deadline=None)
    def test_seller_truthful_dominant(self, market, deviant, factor):
        buyer_values, seller_costs = market
        deviant %= len(seller_costs)
        buyers = _bids(buyer_values, "b")
        sellers = _bids(seller_costs, "s")
        true_cost = seller_costs[deviant]

        honest = _seller_utility(
            run_mcafee(buyers, sellers), f"s{deviant}", true_cost
        )
        shaded = list(sellers)
        shaded[deviant] = UnitBid(
            agent_id=f"s{deviant}", amount=true_cost * factor
        )
        deviated = _seller_utility(
            run_mcafee(buyers, shaded), f"s{deviant}", true_cost
        )
        assert deviated <= honest + 1e-9


class TestSbbaProperties:
    @given(market=markets, seed=st.integers(min_value=0, max_value=99))
    @settings(max_examples=200, deadline=None)
    def test_strong_budget_balance(self, market, seed):
        buyers, sellers = (_bids(market[0], "b"), _bids(market[1], "s"))
        result = run_sbba(buyers, sellers, rng=random.Random(seed))
        assert abs(result.budget_surplus) < 1e-9

    @given(market=markets, seed=st.integers(min_value=0, max_value=99))
    @settings(max_examples=200, deadline=None)
    def test_individual_rationality(self, market, seed):
        buyers, sellers = (_bids(market[0], "b"), _bids(market[1], "s"))
        result = run_sbba(buyers, sellers, rng=random.Random(seed))
        values = {b.agent_id: b.amount for b in buyers}
        costs = {s.agent_id: s.amount for s in sellers}
        for trade in result.trades:
            assert trade.buyer_pays <= values[trade.buyer_id] + 1e-9
            assert trade.seller_gets >= costs[trade.seller_id] - 1e-9

    @given(
        market=markets,
        deviant=st.integers(min_value=0, max_value=7),
        factor=st.floats(min_value=0.0, max_value=3.0, allow_nan=False),
    )
    @settings(max_examples=200, deadline=None)
    def test_buyer_truthful_dominant(self, market, deviant, factor):
        buyer_values, seller_costs = market
        deviant %= len(buyer_values)
        buyers = _bids(buyer_values, "b")
        sellers = _bids(seller_costs, "s")
        true_value = buyer_values[deviant]

        honest = _buyer_utility(
            run_sbba(buyers, sellers, rng=random.Random(0)),
            f"b{deviant}",
            true_value,
        )
        shaded = list(buyers)
        shaded[deviant] = UnitBid(
            agent_id=f"b{deviant}", amount=true_value * factor
        )
        deviated = _buyer_utility(
            run_sbba(shaded, sellers, rng=random.Random(0)),
            f"b{deviant}",
            true_value,
        )
        assert deviated <= honest + 1e-9

    @given(
        market=markets,
        deviant=st.integers(min_value=0, max_value=7),
        factor=st.floats(min_value=0.0, max_value=3.0, allow_nan=False),
    )
    @settings(max_examples=200, deadline=None)
    def test_seller_truthful_dominant_in_expectation(
        self, market, deviant, factor
    ):
        # The seller-side lottery makes SBBA truthful in expectation over
        # its (uniform) coins; compute the expectation exactly from the
        # mechanism's structure instead of sampling lottery seeds.
        buyer_values, seller_costs = market
        deviant %= len(seller_costs)
        buyers = _bids(buyer_values, "b")
        sellers = _bids(seller_costs, "s")
        true_cost = seller_costs[deviant]
        seller_id = f"s{deviant}"

        def expected(seller_bids):
            result = run_sbba(buyers, seller_bids, rng=random.Random(0))
            if result.price is None:
                return 0.0
            traded = {t.seller_id for t in result.trades}
            margin = result.price - true_cost
            if result.reduced_buyers:
                # Buyer-determined price: a uniform lottery dropped one of
                # the pre-lottery trading set.
                pool = traded | set(result.reduced_sellers)
                if seller_id not in pool or not pool:
                    return 0.0
                return (len(traded) / len(pool)) * margin
            # Seller z+1 determined the price: deterministic allocation.
            return margin if seller_id in traded else 0.0

        shaded = list(sellers)
        shaded[deviant] = UnitBid(
            agent_id=seller_id, amount=true_cost * factor
        )
        assert expected(shaded) <= expected(sellers) + 1e-6
