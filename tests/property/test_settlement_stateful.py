"""Stateful property test: the token ledger under arbitrary op sequences.

Hypothesis drives random interleavings of mint / transfer / escrow /
release / refund and checks after every step that

* no balance ever goes negative,
* total supply changes only through mint,
* escrow states move along HELD -> {RELEASED, REFUNDED} exactly once.
"""

import math

from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    Bundle,
    RuleBasedStateMachine,
    invariant,
    rule,
)

from repro.common.errors import ContractError
from repro.protocol.settlement import EscrowState, TokenLedger

ACCOUNTS = ["alice", "bob", "carol", "dave"]
amounts = st.floats(min_value=0.0, max_value=100.0, allow_nan=False)


class LedgerMachine(RuleBasedStateMachine):
    def __init__(self) -> None:
        super().__init__()
        self.ledger = TokenLedger()
        self.minted = 0.0

    escrows = Bundle("escrows")

    @rule(account=st.sampled_from(ACCOUNTS), amount=amounts)
    def mint(self, account, amount):
        self.ledger.mint(account, amount)
        self.minted += amount

    @rule(
        sender=st.sampled_from(ACCOUNTS),
        recipient=st.sampled_from(ACCOUNTS),
        amount=amounts,
    )
    def transfer(self, sender, recipient, amount):
        try:
            self.ledger.transfer(sender, recipient, amount)
        except ContractError:
            pass  # overdraft correctly refused

    @rule(
        target=escrows,
        client=st.sampled_from(ACCOUNTS),
        provider=st.sampled_from(ACCOUNTS),
        amount=amounts,
    )
    def open_escrow(self, client, provider, amount):
        try:
            return self.ledger.open_escrow(client, provider, amount)
        except ContractError:
            return None  # unfunded, correctly refused

    @rule(escrow_id=escrows)
    def release(self, escrow_id):
        if escrow_id is None:
            return
        try:
            self.ledger.release(escrow_id)
        except ContractError:
            # already settled; state must not be HELD
            assert (
                self.ledger.escrows[escrow_id].state is not EscrowState.HELD
            )

    @rule(escrow_id=escrows)
    def refund(self, escrow_id):
        if escrow_id is None:
            return
        try:
            self.ledger.refund(escrow_id)
        except ContractError:
            assert (
                self.ledger.escrows[escrow_id].state is not EscrowState.HELD
            )

    @invariant()
    def balances_never_negative(self):
        for account, balance in self.ledger.balances.items():
            assert balance >= -1e-9, f"{account} went negative: {balance}"

    @invariant()
    def supply_conserved(self):
        assert math.isclose(
            self.ledger.total_supply(), self.minted, abs_tol=1e-6
        ), (
            f"supply {self.ledger.total_supply()} != minted {self.minted}"
        )


TestLedgerMachine = LedgerMachine.TestCase
TestLedgerMachine.settings = settings(
    max_examples=40, stateful_step_count=30, deadline=None
)
