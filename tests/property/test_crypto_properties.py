"""Property tests: cryptographic primitives."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cryptosim import commitments, schnorr, symmetric

keys = st.binary(min_size=32, max_size=32)
payloads = st.binary(min_size=0, max_size=2048)


class TestSymmetricProperties:
    @given(key=keys, plaintext=payloads)
    @settings(max_examples=50, deadline=None)
    def test_roundtrip(self, key, plaintext):
        box = symmetric.encrypt(key, plaintext)
        assert symmetric.decrypt(key, box) == plaintext

    @given(key=keys, plaintext=payloads)
    @settings(max_examples=50, deadline=None)
    def test_serialization_roundtrip(self, key, plaintext):
        box = symmetric.encrypt(key, plaintext)
        parsed = symmetric.SealedBox.from_bytes(box.to_bytes())
        assert symmetric.decrypt(key, parsed) == plaintext

    @given(key=keys, plaintext=st.binary(min_size=1, max_size=512),
           flip=st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=50, deadline=None)
    def test_any_ciphertext_bitflip_detected(self, key, plaintext, flip):
        import pytest

        box = symmetric.encrypt(key, plaintext)
        index = flip % len(box.ciphertext)
        tampered = symmetric.SealedBox(
            nonce=box.nonce,
            ciphertext=(
                box.ciphertext[:index]
                + bytes([box.ciphertext[index] ^ 0x01])
                + box.ciphertext[index + 1 :]
            ),
            tag=box.tag,
        )
        with pytest.raises(Exception):
            symmetric.decrypt(key, tampered)


class TestSchnorrProperties:
    @given(seed=st.binary(min_size=1, max_size=16), message=payloads)
    @settings(max_examples=25, deadline=None)
    def test_sign_verify(self, seed, message):
        keypair = schnorr.KeyPair.generate(seed=seed)
        assert schnorr.verify(
            keypair.public, message, schnorr.sign(keypair.secret, message)
        )

    @given(
        seed=st.binary(min_size=1, max_size=16),
        message=st.binary(min_size=1, max_size=64),
        other=st.binary(min_size=1, max_size=64),
    )
    @settings(max_examples=25, deadline=None)
    def test_signature_binds_message(self, seed, message, other):
        if message == other:
            return
        keypair = schnorr.KeyPair.generate(seed=seed)
        signature = schnorr.sign(keypair.secret, message)
        assert not schnorr.verify(keypair.public, other, signature)


class TestCommitmentProperties:
    @given(value=payloads)
    @settings(max_examples=50, deadline=None)
    def test_opens(self, value):
        commitment, opening = commitments.commit(value)
        assert commitments.verify_opening(commitment, opening)

    @given(value=payloads, other=payloads)
    @settings(max_examples=50, deadline=None)
    def test_binding(self, value, other):
        if value == other:
            return
        commitment, opening = commitments.commit(value)
        forged = commitments.Opening(value=other, blind=opening.blind)
        assert not commitments.verify_opening(commitment, forged)
