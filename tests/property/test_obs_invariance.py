"""Property: observability never perturbs outcomes, and traces are
deterministic.

Two invariants over Hypothesis-generated adversarial markets:

* clearing with a live :class:`~repro.obs.Observability` attached yields
  a ``canonical_outcome`` identical to clearing without one, on both
  engines — instrumentation is read-only by construction *and* by test;
* two seeded runs of the same market emit byte-identical JSONL traces
  once wall-clock fields are stripped.

PR 5 extends both invariants to the second observability layer: the
monitor suite and causal trace propagation must be just as inert — a
monitored bundle yields identical canonical outcomes, and a degraded
protocol round over an UnreliableNetwork (trace contexts riding every
message) still emits byte-identical stripped traces across seeded runs.
"""

from __future__ import annotations

from dataclasses import replace

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.auction import DecloudAuction
from repro.core.config import AuctionConfig
from repro.obs import Observability
from repro.obs.monitors import MonitorSuite, violation_total
from tests.differential.conftest import canonical_outcome
from tests.differential.test_engine_equivalence import markets

EVIDENCE = b"obs-invariance-evidence"


@settings(max_examples=60, deadline=None)
@given(market=markets())
def test_obs_on_equals_obs_off_both_engines(market):
    requests, offers = market
    for engine in ("reference", "vectorized"):
        config = AuctionConfig(engine=engine)
        plain = DecloudAuction(config).run(
            requests, offers, evidence=EVIDENCE
        )
        observed = DecloudAuction(config).run(
            requests,
            offers,
            evidence=EVIDENCE,
            obs=Observability(f"prop-{engine}"),
        )
        assert canonical_outcome(observed) == canonical_outcome(plain), (
            f"observability perturbed the {engine} engine's outcome"
        )


@settings(max_examples=60, deadline=None)
@given(market=markets())
def test_two_seeded_runs_emit_byte_identical_traces(market):
    requests, offers = market

    def run(engine: str) -> str:
        obs = Observability("trace-repro")
        DecloudAuction(AuctionConfig(engine=engine)).run(
            requests, offers, evidence=EVIDENCE, obs=obs
        )
        return obs.trace_jsonl(strip_wall=True)

    for engine in ("reference", "vectorized"):
        first, second = run(engine), run(engine)
        assert first == second
        assert first  # a cleared round always leaves a trace


@settings(max_examples=40, deadline=None)
@given(market=markets())
def test_registry_snapshot_is_run_deterministic(market):
    """Counters and gauges (not histogram timings) repeat exactly."""
    requests, offers = market

    def run() -> dict:
        obs = Observability("reg-repro")
        DecloudAuction(AuctionConfig()).run(
            requests, offers, evidence=EVIDENCE, obs=obs
        )
        snap = obs.registry.snapshot()
        return {"counters": snap["counters"], "gauges": snap["gauges"]}

    first, second = run(), run()
    # phase-seconds histograms legitimately vary run to run; the value
    # series must not (welfare totals are float-exact on equal inputs)
    assert first == second


@settings(max_examples=40, deadline=None)
@given(market=markets())
def test_obs_off_equals_null_obs_default(market):
    """Passing obs=None is the same as not passing it at all."""
    requests, offers = market
    config = AuctionConfig(engine="vectorized")
    default = DecloudAuction(config).run(requests, offers, evidence=EVIDENCE)
    explicit = DecloudAuction(replace(config)).run(
        requests, offers, evidence=EVIDENCE, obs=None
    )
    assert canonical_outcome(explicit) == canonical_outcome(default)


@settings(max_examples=40, deadline=None)
@given(market=markets())
def test_monitored_obs_equals_obs_off_both_engines(market):
    """The monitor suite is read-only: outcomes identical, zero alerts."""
    requests, offers = market
    for engine in ("reference", "vectorized"):
        config = AuctionConfig(engine=engine)
        plain = DecloudAuction(config).run(
            requests, offers, evidence=EVIDENCE
        )
        obs = Observability(f"mon-{engine}", monitors=MonitorSuite())
        monitored = DecloudAuction(config).run(
            requests, offers, evidence=EVIDENCE, obs=obs
        )
        assert canonical_outcome(monitored) == canonical_outcome(plain), (
            f"monitors perturbed the {engine} engine's outcome"
        )
        # and the invariants the monitors check actually held
        assert violation_total(obs.registry) == 0


@settings(max_examples=30, deadline=None)
@given(market=markets())
def test_monitored_trace_is_byte_identical_across_runs(market):
    """Monitors on + tracing on: stripped traces still reproduce."""
    requests, offers = market

    def run() -> str:
        obs = Observability("mon-trace", monitors=MonitorSuite())
        DecloudAuction(AuctionConfig(engine="vectorized")).run(
            requests, offers, evidence=EVIDENCE, obs=obs
        )
        return obs.trace_jsonl(strip_wall=True)

    assert run() == run()


def _zone_market(seed: int):
    from repro.workloads.generators import generate_zone_market

    requests, offers, _ = generate_zone_market(
        24, n_zones=3, seed=seed, kind="network", locality="strong",
        cross_zone_fraction=0.25,
    )
    return requests, offers


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(min_value=0, max_value=2**16))
def test_sharded_obs_on_equals_obs_off_both_engines(seed):
    """The shard fabric's instrumentation is just as inert: a sharded
    run with a live Observability (shard_* series, per-shard spans)
    yields the identical canonical outcome on both engines."""
    from repro.core.config import ShardPlan

    requests, offers = _zone_market(seed)
    for engine in ("reference", "vectorized"):
        config = AuctionConfig(
            engine=engine, sharding=ShardPlan(kind="network")
        )
        plain = DecloudAuction(config).run(
            requests, offers, evidence=EVIDENCE
        )
        observed = DecloudAuction(config).run(
            requests,
            offers,
            evidence=EVIDENCE,
            obs=Observability(f"shard-prop-{engine}"),
        )
        assert canonical_outcome(observed) == canonical_outcome(plain), (
            f"observability perturbed the sharded {engine} outcome"
        )


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(min_value=0, max_value=2**16))
def test_sharded_trace_is_byte_identical_across_runs(seed):
    from repro.core.config import ShardPlan

    requests, offers = _zone_market(seed)
    config = AuctionConfig(
        engine="vectorized", sharding=ShardPlan(kind="network")
    )

    def run() -> str:
        obs = Observability("shard-trace")
        DecloudAuction(config).run(
            requests, offers, evidence=EVIDENCE, obs=obs
        )
        return obs.trace_jsonl(strip_wall=True)

    first, second = run(), run()
    assert first == second
    assert '"sharded_auction"' in first


def _degraded_protocol_trace() -> tuple:
    """One seeded degraded round over an UnreliableNetwork."""
    from repro.faults.actors import WithholdingParticipant
    from repro.faults.network import UnreliableNetwork
    from repro.faults.plan import FaultPlan
    from repro.ledger.miner import Miner
    from repro.protocol.allocator import DecloudAllocator
    from repro.protocol.exposure import ExposureProtocol, Participant
    from tests.conftest import make_offer, make_request

    obs = Observability("prop-degraded", monitors=MonitorSuite())
    network = UnreliableNetwork(
        plan=FaultPlan(
            seed="prop-degraded", drop_rate=0.2, duplicate_rate=0.2,
            reorder_rate=0.2, max_delay=0.05,
        )
    )
    miners = [
        Miner(miner_id=f"m{i}", allocate=DecloudAllocator(),
              difficulty_bits=4)
        for i in range(3)
    ]
    protocol = ExposureProtocol(miners=miners, network=network, obs=obs)
    seal_seed = b"prop-degraded"
    mallory = WithholdingParticipant(
        participant_id="mallory", deterministic=True, seal_seed=seal_seed
    )
    alice = Participant(
        participant_id="alice", deterministic=True, seal_seed=seal_seed
    )
    bob = Participant(
        participant_id="bob", deterministic=True, seal_seed=seal_seed
    )
    protocol.submit(
        mallory, make_request(request_id="rm", client_id="mallory", bid=2.0)
    )
    protocol.submit(
        alice, make_request(request_id="ra", client_id="alice", bid=1.5)
    )
    protocol.submit(bob, make_offer(offer_id="ob", provider_id="bob", bid=0.4))
    result = protocol.run_round([mallory, alice, bob])
    return result, obs


def test_degraded_round_trace_is_byte_identical_across_seeded_runs():
    """Trace contexts on every message + faults: still deterministic."""
    first_result, first_obs = _degraded_protocol_trace()
    second_result, second_obs = _degraded_protocol_trace()
    assert first_result.excluded_txids == second_result.excluded_txids
    assert first_obs.trace_jsonl(strip_wall=True) == second_obs.trace_jsonl(
        strip_wall=True
    )
    assert violation_total(first_obs.registry) == 0


def test_degraded_round_outcome_unchanged_by_observability():
    """The same seeded degraded round clears identically with obs off."""
    from repro.faults.actors import WithholdingParticipant
    from repro.faults.network import UnreliableNetwork
    from repro.faults.plan import FaultPlan
    from repro.ledger.miner import Miner
    from repro.protocol.allocator import DecloudAllocator
    from repro.protocol.exposure import ExposureProtocol, Participant
    from tests.conftest import make_offer, make_request

    def run(obs):
        network = UnreliableNetwork(
            plan=FaultPlan(
                seed="prop-degraded", drop_rate=0.2, duplicate_rate=0.2,
                reorder_rate=0.2, max_delay=0.05,
            )
        )
        miners = [
            Miner(miner_id=f"m{i}", allocate=DecloudAllocator(),
                  difficulty_bits=4)
            for i in range(3)
        ]
        protocol = ExposureProtocol(miners=miners, network=network, obs=obs)
        seal_seed = b"prop-degraded"
        mallory = WithholdingParticipant(
            participant_id="mallory", deterministic=True,
            seal_seed=seal_seed,
        )
        alice = Participant(
            participant_id="alice", deterministic=True, seal_seed=seal_seed
        )
        bob = Participant(
            participant_id="bob", deterministic=True, seal_seed=seal_seed
        )
        protocol.submit(
            mallory,
            make_request(request_id="rm", client_id="mallory", bid=2.0),
        )
        protocol.submit(
            alice, make_request(request_id="ra", client_id="alice", bid=1.5)
        )
        protocol.submit(
            bob, make_offer(offer_id="ob", provider_id="bob", bid=0.4)
        )
        return protocol.run_round([mallory, alice, bob])

    observed = run(Observability("on", monitors=MonitorSuite()))
    plain = run(None)
    assert observed.excluded_txids == plain.excluded_txids
    assert canonical_outcome(observed.outcome) == canonical_outcome(
        plain.outcome
    )


# ----------------------------------------------------------------------
# PR 10: the telemetry plane is just as inert as the layers before it
# ----------------------------------------------------------------------
@settings(max_examples=25, deadline=None)
@given(seed=st.integers(min_value=0, max_value=2**16))
def test_telemetry_on_equals_telemetry_off_both_engines(seed):
    """Worker capture + parent merge never perturbs the cleared outcome."""
    from repro.core.config import ShardPlan

    requests, offers = _zone_market(seed)
    for engine in ("reference", "vectorized"):
        config = AuctionConfig(
            engine=engine, sharding=ShardPlan(kind="network")
        )
        plain = DecloudAuction(config).run(
            requests, offers, evidence=EVIDENCE
        )
        shipped = DecloudAuction(config).run(
            requests,
            offers,
            evidence=EVIDENCE,
            obs=Observability(f"tele-prop-{engine}", telemetry=True),
        )
        assert canonical_outcome(shipped) == canonical_outcome(plain), (
            f"telemetry capture perturbed the {engine} engine's outcome"
        )


def _merged_trace(engine: str, workers: int) -> tuple:
    from repro.core.config import ShardPlan

    requests, offers = _zone_market(404)
    config = AuctionConfig(
        engine=engine,
        sharding=ShardPlan(kind="network", shard_workers=workers),
    )
    obs = Observability("tele-merge", telemetry=True)
    outcome = DecloudAuction(config).run(
        requests, offers, evidence=EVIDENCE, obs=obs
    )
    return canonical_outcome(outcome), obs.trace_jsonl(strip_wall=True)


def test_merged_traces_byte_identical_across_worker_counts():
    """The capture decision follows the bundle, never the pool layout:
    the merged parent trace (worker spans grafted in submission order)
    is byte-identical whether shards ran in-process, under one worker,
    or fanned across three — and outcomes are bit-identical too."""
    for engine in ("reference", "vectorized"):
        runs = [_merged_trace(engine, workers) for workers in (0, 1, 3)]
        baseline_outcome, baseline_trace = runs[0]
        for canonical, trace in runs[1:]:
            assert canonical == baseline_outcome, (
                f"{engine}: outcome varies with workers"
            )
            assert trace == baseline_trace, (
                f"{engine}: merged trace varies with workers"
            )
        assert '"name":"worker"' in runs[0][1]


def test_runtime_telemetry_and_profiler_are_outcome_invariant():
    """The runtime engine's leg of the same invariant: attaching the
    stall profiler and periodic telemetry publisher must not change what
    gets committed, and the flame export replays byte-for-byte."""
    from repro.obs.profile import PipelineProfiler
    from repro.sim.sustained import SustainedSpec, run_sustained

    spec = SustainedSpec(rounds=3, seed=5, difficulty_bits=4)
    plain = run_sustained(spec, engine="runtime")
    foldeds = []
    for _ in range(2):
        profiler = PipelineProfiler()
        profiled = run_sustained(
            spec, engine="runtime",
            obs=Observability("tele-runtime"), profiler=profiler,
        )
        assert profiled.block_hashes == plain.block_hashes
        assert profiled.virtual_time == plain.virtual_time
        foldeds.append(profiler.to_folded())
    assert foldeds[0] == foldeds[1]
    assert foldeds[0]
