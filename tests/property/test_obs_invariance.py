"""Property: observability never perturbs outcomes, and traces are
deterministic.

Two invariants over Hypothesis-generated adversarial markets:

* clearing with a live :class:`~repro.obs.Observability` attached yields
  a ``canonical_outcome`` identical to clearing without one, on both
  engines — instrumentation is read-only by construction *and* by test;
* two seeded runs of the same market emit byte-identical JSONL traces
  once wall-clock fields are stripped.
"""

from __future__ import annotations

from dataclasses import replace

from hypothesis import given, settings

from repro.core.auction import DecloudAuction
from repro.core.config import AuctionConfig
from repro.obs import Observability
from tests.differential.conftest import canonical_outcome
from tests.differential.test_engine_equivalence import markets

EVIDENCE = b"obs-invariance-evidence"


@settings(max_examples=60, deadline=None)
@given(market=markets())
def test_obs_on_equals_obs_off_both_engines(market):
    requests, offers = market
    for engine in ("reference", "vectorized"):
        config = AuctionConfig(engine=engine)
        plain = DecloudAuction(config).run(
            requests, offers, evidence=EVIDENCE
        )
        observed = DecloudAuction(config).run(
            requests,
            offers,
            evidence=EVIDENCE,
            obs=Observability(f"prop-{engine}"),
        )
        assert canonical_outcome(observed) == canonical_outcome(plain), (
            f"observability perturbed the {engine} engine's outcome"
        )


@settings(max_examples=60, deadline=None)
@given(market=markets())
def test_two_seeded_runs_emit_byte_identical_traces(market):
    requests, offers = market

    def run(engine: str) -> str:
        obs = Observability("trace-repro")
        DecloudAuction(AuctionConfig(engine=engine)).run(
            requests, offers, evidence=EVIDENCE, obs=obs
        )
        return obs.trace_jsonl(strip_wall=True)

    for engine in ("reference", "vectorized"):
        first, second = run(engine), run(engine)
        assert first == second
        assert first  # a cleared round always leaves a trace


@settings(max_examples=40, deadline=None)
@given(market=markets())
def test_registry_snapshot_is_run_deterministic(market):
    """Counters and gauges (not histogram timings) repeat exactly."""
    requests, offers = market

    def run() -> dict:
        obs = Observability("reg-repro")
        DecloudAuction(AuctionConfig()).run(
            requests, offers, evidence=EVIDENCE, obs=obs
        )
        snap = obs.registry.snapshot()
        return {"counters": snap["counters"], "gauges": snap["gauges"]}

    first, second = run(), run()
    # phase-seconds histograms legitimately vary run to run; the value
    # series must not (welfare totals are float-exact on equal inputs)
    assert first == second


@settings(max_examples=40, deadline=None)
@given(market=markets())
def test_obs_off_equals_null_obs_default(market):
    """Passing obs=None is the same as not passing it at all."""
    requests, offers = market
    config = AuctionConfig(engine="vectorized")
    default = DecloudAuction(config).run(requests, offers, evidence=EVIDENCE)
    explicit = DecloudAuction(replace(config)).run(
        requests, offers, evidence=EVIDENCE, obs=None
    )
    assert canonical_outcome(explicit) == canonical_outcome(default)
