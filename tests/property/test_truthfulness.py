"""Truthfulness (DSIC) tests for the DeCloud auction (§IV-D).

Two tiers, matching what the theory actually guarantees:

* **Exact, single-cluster** — homogeneous machines, one cluster, no
  randomization: client misreports never gain, and provider *shading*
  (under-reporting cost) never gains.  These are the McAfee/SBBA
  arguments the paper invokes and must hold without exception.

* **Statistical, heterogeneous** — with endogenous clustering and
  mini-auction grouping, a misreport can shift group membership and the
  common price; the mechanism is epsilon-DSIC there.  We bound the
  empirical violation rate and magnitude.  (The paper itself concedes a
  gaming channel — the ``h'`` offer of §IV-D — and patches it with
  randomized exclusion, which repairs incentives in expectation, not
  per-coin-flip.)

Provider *over*-reporting in supply-scarce markets is a genuine leak of
the paper's mechanism (a monopolist seller can truncate the winner set
and lift ``v_hat_z``); it is measured and bounded here and documented in
EXPERIMENTS.md rather than hidden.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.timewindow import TimeWindow
from repro.core.auction import DecloudAuction
from repro.core.config import AuctionConfig
from repro.core.outcome import utility_of_client, utility_of_provider
from repro.market.bids import Offer, Request
from repro.workloads.generators import MarketScenario

NO_RANDOM = AuctionConfig(enable_randomization=False)


def _homogeneous_market(request_bids, offer_bids):
    requests = [
        Request(
            request_id=f"r{i}",
            client_id=f"c{i}",
            submit_time=i * 0.1,
            resources={"cpu": 4.0, "ram": 8.0},
            window=TimeWindow(0, 10),
            duration=4.0,
            bid=bid,
        )
        for i, bid in enumerate(request_bids)
    ]
    offers = [
        Offer(
            offer_id=f"o{j}",
            provider_id=f"p{j}",
            submit_time=j * 0.05,
            resources={"cpu": 8.0, "ram": 16.0},
            window=TimeWindow(0, 24),
            bid=bid,
        )
        for j, bid in enumerate(offer_bids)
    ]
    return requests, offers


bid_values = st.floats(min_value=0.05, max_value=5.0, allow_nan=False)
factors = st.floats(min_value=0.0, max_value=4.0, allow_nan=False)


class TestExactSingleCluster:
    @given(
        request_bids=st.lists(bid_values, min_size=2, max_size=8),
        offer_bids=st.lists(bid_values, min_size=1, max_size=3),
        deviant=st.integers(min_value=0, max_value=7),
        factor=factors,
    )
    @settings(max_examples=150, deadline=None)
    def test_client_misreport_never_gains(
        self, request_bids, offer_bids, deviant, factor
    ):
        deviant %= len(request_bids)
        requests, offers = _homogeneous_market(request_bids, offer_bids)
        auction = DecloudAuction(NO_RANDOM)
        true_value = request_bids[deviant]
        target_id = f"r{deviant}"

        honest = utility_of_client(
            auction.run(requests, offers, evidence=b"T"), target_id, true_value
        )
        deviated_requests = [
            r if r.request_id != target_id else r.replace_bid(true_value * factor)
            for r in requests
        ]
        deviated = utility_of_client(
            auction.run(deviated_requests, offers, evidence=b"T"),
            target_id,
            true_value,
        )
        assert deviated <= honest + 1e-6

    @given(
        request_bids=st.lists(bid_values, min_size=2, max_size=8),
        offer_bids=st.lists(bid_values, min_size=1, max_size=3),
        deviant=st.integers(min_value=0, max_value=2),
        factor=st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
    )
    @settings(max_examples=150, deadline=None)
    def test_provider_shading_never_gains(
        self, request_bids, offer_bids, deviant, factor
    ):
        deviant %= len(offer_bids)
        requests, offers = _homogeneous_market(request_bids, offer_bids)
        auction = DecloudAuction(NO_RANDOM)
        true_cost = offer_bids[deviant]
        target_offer = f"o{deviant}"
        target_provider = f"p{deviant}"

        honest = utility_of_provider(
            auction.run(requests, offers, evidence=b"T"),
            target_provider,
            {target_offer: true_cost},
        )
        deviated_offers = [
            o if o.offer_id != target_offer else o.replace_bid(true_cost * factor)
            for o in offers
        ]
        deviated = utility_of_provider(
            auction.run(requests, deviated_offers, evidence=b"T"),
            target_provider,
            {target_offer: true_cost},
        )
        assert deviated <= honest + 1e-6


class TestStatisticalHeterogeneous:
    """Epsilon-DSIC over realistic (Google-on-EC2) markets."""

    def _measure(self, side, factor_set, n_markets=30):
        auction = DecloudAuction(
            AuctionConfig(cluster_breadth=4, enable_randomization=False)
        )
        violations = 0
        total = 0
        total_honest_welfare = 0.0
        total_gain = 0.0
        for seed in range(n_markets):
            requests, offers = MarketScenario(
                n_requests=12, offers_per_request=0.5, seed=seed
            ).generate()
            honest_outcome = auction.run(requests, offers, evidence=b"S")
            total_honest_welfare += max(honest_outcome.welfare, 1e-9)
            if side == "client":
                for i in range(0, len(requests), 3):
                    request = requests[i]
                    honest = utility_of_client(
                        honest_outcome, request.request_id, request.bid
                    )
                    for factor in factor_set:
                        deviated_requests = [
                            r
                            if r.request_id != request.request_id
                            else r.replace_bid(request.bid * factor)
                            for r in requests
                        ]
                        outcome = auction.run(
                            deviated_requests, offers, evidence=b"S"
                        )
                        gain = (
                            utility_of_client(
                                outcome, request.request_id, request.bid
                            )
                            - honest
                        )
                        total += 1
                        if gain > 1e-6:
                            violations += 1
                            total_gain += gain
            else:
                for offer in offers[::2]:
                    honest = utility_of_provider(
                        honest_outcome,
                        offer.provider_id,
                        {offer.offer_id: offer.bid},
                    )
                    for factor in factor_set:
                        deviated_offers = [
                            o
                            if o.offer_id != offer.offer_id
                            else o.replace_bid(offer.bid * factor)
                            for o in offers
                        ]
                        outcome = auction.run(
                            requests, deviated_offers, evidence=b"S"
                        )
                        gain = (
                            utility_of_provider(
                                outcome,
                                offer.provider_id,
                                {offer.offer_id: offer.bid},
                            )
                            - honest
                        )
                        total += 1
                        if gain > 1e-6:
                            violations += 1
                            total_gain += gain
        return violations, total, total_gain, total_honest_welfare

    def test_client_epsilon_dsic(self):
        violations, total, gain, welfare = self._measure(
            "client", (0.4, 0.8, 1.3, 2.5)
        )
        assert total > 300
        assert violations / total < 0.05, (
            f"client misreports gained in {violations}/{total} probes"
        )
        assert gain / welfare < 0.02

    def test_provider_epsilon_dsic(self):
        violations, total, gain, welfare = self._measure(
            "provider", (0.4, 0.8, 1.5, 2.5)
        )
        assert total > 150
        assert violations / total < 0.12, (
            f"provider misreports gained in {violations}/{total} probes"
        )
        # Mean gain per successful manipulation stays small relative to
        # the mean per-market welfare (i.e., manipulation is possible in
        # scarce corners but not lucrative at market scale).
        mean_gain = gain / max(violations, 1)
        mean_market_welfare = welfare / 30
        assert mean_gain < 0.5 * mean_market_welfare
