"""Property tests: supporting data structures and analysis utilities."""

import math

from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.analysis.kld import kl_divergence
from repro.analysis.loess import loess
from repro.common.timewindow import TimeWindow
from repro.core.clustering import update_clusters
from repro.ledger import pow as pow_mod

finite = st.floats(
    min_value=0.0, max_value=1e6, allow_nan=False, allow_infinity=False
)


@st.composite
def windows(draw):
    start = draw(finite)
    span = draw(st.floats(min_value=0.0, max_value=1e6, allow_nan=False))
    return TimeWindow(start, start + span)


class TestTimeWindowProperties:
    @given(a=windows(), b=windows())
    @settings(max_examples=200, deadline=None)
    def test_contains_implies_overlap(self, a, b):
        if a.contains(b):
            assert a.overlaps(b)

    @given(a=windows(), b=windows())
    @settings(max_examples=200, deadline=None)
    def test_overlap_symmetric(self, a, b):
        assert a.overlaps(b) == b.overlaps(a)

    @given(a=windows(), b=windows())
    @settings(max_examples=200, deadline=None)
    def test_intersection_contained_in_both(self, a, b):
        intersection = a.intersection(b)
        if intersection is not None:
            assert a.contains(intersection)
            assert b.contains(intersection)

    @given(a=windows())
    @settings(max_examples=100, deadline=None)
    def test_self_containment(self, a):
        assert a.contains(a)
        assert a.can_host(a.span)


class TestKldProperties:
    @given(
        p=st.lists(
            st.floats(min_value=0.01, max_value=10.0, allow_nan=False),
            min_size=2,
            max_size=8,
        )
    )
    @settings(max_examples=200, deadline=None)
    def test_self_divergence_zero(self, p):
        assert kl_divergence(p, p) == 0.0

    @given(
        p=st.lists(
            st.floats(min_value=0.01, max_value=10.0, allow_nan=False),
            min_size=2,
            max_size=8,
        ),
        q=st.lists(
            st.floats(min_value=0.01, max_value=10.0, allow_nan=False),
            min_size=2,
            max_size=8,
        ),
    )
    @settings(max_examples=200, deadline=None)
    def test_non_negative(self, p, q):
        assume(len(p) == len(q))
        assert kl_divergence(p, q) >= -1e-12

    @given(
        p=st.lists(
            st.floats(min_value=0.01, max_value=10.0, allow_nan=False),
            min_size=2,
            max_size=8,
        ),
        scale=st.floats(min_value=0.1, max_value=100.0, allow_nan=False),
    )
    @settings(max_examples=100, deadline=None)
    def test_scale_invariant(self, p, scale):
        scaled = [x * scale for x in p]
        assert kl_divergence(p, scaled) < 1e-9


class TestLoessProperties:
    @given(
        slope=st.floats(min_value=-10, max_value=10, allow_nan=False),
        intercept=st.floats(min_value=-10, max_value=10, allow_nan=False),
        n=st.integers(min_value=5, max_value=40),
    )
    @settings(max_examples=100, deadline=None)
    def test_linear_functions_reproduced(self, slope, intercept, n):
        x = [i * 0.7 for i in range(n)]
        y = [slope * xi + intercept for xi in x]
        _, fitted = loess(x, y, frac=0.6)
        for yi, fi in zip(sorted(y), sorted(fitted)):
            assert math.isclose(fi, yi, rel_tol=1e-6, abs_tol=1e-6)

    @given(
        values=st.lists(
            st.floats(min_value=-100, max_value=100, allow_nan=False),
            min_size=3,
            max_size=30,
        )
    )
    @settings(max_examples=100, deadline=None)
    def test_output_within_data_hull_for_constant(self, values):
        x = list(range(len(values)))
        constant = [values[0]] * len(values)
        _, fitted = loess(x, constant, frac=1.0)
        for fi in fitted:
            assert math.isclose(fi, values[0], rel_tol=1e-9, abs_tol=1e-9)


class TestPowProperties:
    @given(payload=st.binary(min_size=0, max_size=64))
    @settings(max_examples=30, deadline=None)
    def test_solution_valid_and_minimal(self, payload):
        nonce = pow_mod.solve(payload, 6)
        assert pow_mod.check(payload, nonce, 6)
        assert all(not pow_mod.check(payload, n, 6) for n in range(nonce))


class TestClusteringProperties:
    @given(
        sets=st.lists(
            st.sets(
                st.sampled_from([f"o{i}" for i in range(6)]),
                min_size=1,
                max_size=4,
            ),
            min_size=1,
            max_size=8,
        )
    )
    @settings(max_examples=150, deadline=None)
    def test_every_request_lands_in_its_best_cluster(self, sets):
        clusters = []
        for index, best in enumerate(sets):
            update_clusters(clusters, f"r{index}", frozenset(best))
        for index, best in enumerate(sets):
            exact = next(
                c for c in clusters if c.offer_ids == frozenset(best)
            )
            assert f"r{index}" in exact.request_ids

    @given(
        sets=st.lists(
            st.sets(
                st.sampled_from([f"o{i}" for i in range(6)]),
                min_size=1,
                max_size=4,
            ),
            min_size=1,
            max_size=8,
        )
    )
    @settings(max_examples=150, deadline=None)
    def test_cluster_offer_sets_unique(self, sets):
        clusters = []
        for index, best in enumerate(sets):
            update_clusters(clusters, f"r{index}", frozenset(best))
        offer_sets = [c.offer_ids for c in clusters]
        assert len(offer_sets) == len(set(offer_sets))

    @given(
        sets=st.lists(
            st.sets(
                st.sampled_from([f"o{i}" for i in range(5)]),
                min_size=1,
                max_size=3,
            ),
            min_size=1,
            max_size=6,
        )
    )
    @settings(max_examples=150, deadline=None)
    def test_subset_clusters_accumulate_superset_requests(self, sets):
        clusters = []
        for index, best in enumerate(sets):
            update_clusters(clusters, f"r{index}", frozenset(best))
        # Invariant from Alg. 2: when cluster A's offers are a subset of
        # cluster B's offers and B existed when A was last updated, A's
        # requests include the request whose best set equals B... the
        # robust check: the exact-match cluster of each request contains
        # every request whose best set is a superset.
        exact = {frozenset(s): i for i, s in enumerate(sets)}
        for best, index in exact.items():
            cluster = next(c for c in clusters if c.offer_ids == best)
            for other_best, other_index in exact.items():
                if best < other_best and other_index < index:
                    assert f"r{other_index}" in cluster.request_ids
