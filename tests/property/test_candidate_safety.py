"""Safety certificates: sound, deterministic, and actually enforced.

Three properties guard the candidate stage:

1. **Soundness** — for every Hypothesis market and every generator, each
   per-request certificate verifies against the *scalar* reference
   kernel: pruned-as-infeasible offers really are infeasible, score
   bounds dominate the exact scores of every pruned offer, and each
   bound sits strictly below the request's breadth-th best admitted
   feasible score under the §IV-D tie rule.
2. **Determinism** — two independently constructed generators produce
   byte-identical certificate payloads for the same market (the
   certificates are part of what a verifying miner would recompute).
3. **Non-vacuity** — deliberately broken generators (over-pruning a
   feasible group as "infeasible", claiming a lying score bound, or
   recording a doctored threshold) are rejected by the checker.  A
   checker that cannot fail proves nothing.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.errors import CertificateError
from repro.core.candidates import (
    PRUNED_RESOURCE,
    PRUNED_SCORE,
    AllPairsGenerator,
    GeoBucketGenerator,
    NetworkZoneGenerator,
    ResourceVectorGenerator,
    check_certificate,
)
from repro.core.matching import best_offer_set, block_maxima, quality_of_match
from repro.market.feasibility import is_feasible

from tests.conftest import make_offer, make_request
from tests.differential.test_engine_equivalence import markets


def _generators():
    return [
        AllPairsGenerator(),
        ResourceVectorGenerator(group_size=2),
        ResourceVectorGenerator(),
        GeoBucketGenerator({}, cell_deg=45.0),
        NetworkZoneGenerator(),
    ]


@settings(max_examples=60, deadline=None)
@given(markets(max_requests=8, max_offers=10), st.integers(1, 4))
def test_certificates_hold_on_every_market(market, breadth):
    requests, offers = market
    maxima = block_maxima(requests, offers)
    for generator in _generators():
        result = generator.generate(requests, offers, maxima, breadth)
        checks = 0
        for i, request in enumerate(requests):
            checks += check_certificate(
                request, offers, maxima, result.certificates[i], result.groups
            )
        assert checks >= len(requests) * 1  # the checker did real work
        # And the admitted sets really do reproduce the exact best sets.
        assert result.best_sets == [
            best_offer_set(request, offers, maxima, breadth)
            for request in requests
        ]


@settings(max_examples=25, deadline=None)
@given(markets(max_requests=6, max_offers=8))
def test_certificates_deterministic(market):
    requests, offers = market
    maxima = block_maxima(requests, offers)
    payloads = []
    for _ in range(2):
        generator = ResourceVectorGenerator(group_size=3)
        result = generator.generate(requests, offers, maxima, 3)
        payloads.append(
            [c.to_payload(result.groups) for c in result.certificates]
        )
    assert payloads[0] == payloads[1]


def _simple_market():
    """Four offers with strictly decreasing quality for one request."""
    request = make_request(
        request_id="r0", resources={"cpu": 8.0, "ram": 16.0}
    )
    offers = [
        make_offer(
            offer_id=f"o{j}",
            submit_time=float(j),
            resources={"cpu": 8.0 + 2.0 * j, "ram": 16.0 + 4.0 * j},
        )
        for j in range(4)
    ]
    maxima = block_maxima([request], offers)
    scores = [quality_of_match(request, o, maxima) for o in offers]
    assert len(set(scores)) == 4  # strictly distinct qualities
    assert all(is_feasible(request, o) for o in offers)
    return request, offers, maxima


class OverPruningGenerator(ResourceVectorGenerator):
    """Adversary 1: silently drops an admitted group into the pruned set.

    Caught by the threshold recomputation — with a top group missing, the
    breadth-th best feasible admitted score no longer matches the record.
    """

    def generate(self, requests, offers, maxima, breadth, scorer=None):
        result = super().generate(requests, offers, maxima, breadth, scorer)
        for certificate in result.certificates:
            if len(certificate.admitted_groups):
                victim = certificate.admitted_groups[-1:]
                certificate.admitted_groups = certificate.admitted_groups[:-1]
                certificate.pruned_groups = np.concatenate(
                    [certificate.pruned_groups, victim]
                )
                certificate.reasons = np.concatenate(
                    [certificate.reasons, [PRUNED_RESOURCE]]
                ).astype(np.int8)
                certificate.bounds = np.concatenate(
                    [certificate.bounds, [0.0]]
                )
        return result


class FeasibilityLyingGenerator(ResourceVectorGenerator):
    """Adversary 2: relabels score-pruned groups as resource-infeasible.

    The tamper happens inside ``_resolve_chunk`` — before certificates
    are built — so the inline ``verify`` pass sees exactly what a buggy
    screen would have produced.  Caught by the feasibility replay.
    """

    def _resolve_chunk(self, *args, **kwargs):
        reason, ub = super()._resolve_chunk(*args, **kwargs)
        reason[reason == PRUNED_SCORE] = PRUNED_RESOURCE
        return reason, ub


class LyingBoundGenerator(ResourceVectorGenerator):
    """Adversary 3: prunes a below-threshold admitted group with a fake
    low bound.  The threshold stays consistent (the top group survives),
    so only the bound-dominance clause can catch the lie."""

    def generate(self, requests, offers, maxima, breadth, scorer=None):
        result = super().generate(requests, offers, maxima, breadth, scorer)
        for certificate in result.certificates:
            if len(certificate.admitted_groups) > breadth:
                victim = certificate.admitted_groups[breadth : breadth + 1]
                certificate.admitted_groups = np.concatenate(
                    [
                        certificate.admitted_groups[:breadth],
                        certificate.admitted_groups[breadth + 1 :],
                    ]
                )
                certificate.pruned_groups = np.concatenate(
                    [certificate.pruned_groups, victim]
                )
                certificate.reasons = np.concatenate(
                    [certificate.reasons, [PRUNED_SCORE]]
                ).astype(np.int8)
                certificate.bounds = np.concatenate(
                    [certificate.bounds, [-1.0]]
                )
        return result


def test_over_pruning_admitted_group_is_caught():
    request, offers, maxima = _simple_market()
    generator = OverPruningGenerator(group_size=2)
    result = generator.generate([request], offers, maxima, 1)
    with pytest.raises(CertificateError, match="threshold"):
        check_certificate(
            request, offers, maxima, result.certificates[0], result.groups
        )


def test_feasibility_lie_is_caught():
    request, offers, maxima = _simple_market()
    generator = FeasibilityLyingGenerator(group_size=2)
    result = generator.generate([request], offers, maxima, 1)
    certificate = result.certificates[0]
    assert (certificate.reasons == PRUNED_RESOURCE).any()
    with pytest.raises(CertificateError, match="but is feasible"):
        check_certificate(
            request, offers, maxima, certificate, result.groups
        )


def test_lying_score_bound_is_caught():
    request, offers, maxima = _simple_market()
    generator = LyingBoundGenerator(group_size=1)
    result = generator.generate([request], offers, maxima, 1)
    certificate = result.certificates[0]
    assert (certificate.reasons == PRUNED_SCORE).sum() >= 1
    with pytest.raises(CertificateError, match="does not dominate"):
        check_certificate(
            request, offers, maxima, certificate, result.groups
        )


def test_doctored_threshold_is_caught():
    request, offers, maxima = _simple_market()
    result = ResourceVectorGenerator(group_size=2).generate(
        [request], offers, maxima, 1
    )
    certificate = result.certificates[0]
    assert certificate.threshold is not None
    score, submit, offer_id = certificate.threshold
    certificate.threshold = (score * 2.0, submit, offer_id)
    with pytest.raises(CertificateError, match="threshold"):
        check_certificate(
            request, offers, maxima, certificate, result.groups
        )


def test_incomplete_coverage_is_caught():
    request, offers, maxima = _simple_market()
    result = ResourceVectorGenerator(group_size=2).generate(
        [request], offers, maxima, 1
    )
    certificate = result.certificates[0]
    certificate.admitted_groups = certificate.admitted_groups[:-1]
    with pytest.raises(CertificateError, match="cover"):
        check_certificate(
            request, offers, maxima, certificate, result.groups
        )


def test_double_assignment_is_caught():
    request, offers, maxima = _simple_market()
    result = ResourceVectorGenerator(group_size=2).generate(
        [request], offers, maxima, 1
    )
    certificate = result.certificates[0]
    certificate.pruned_groups = np.concatenate(
        [certificate.pruned_groups, certificate.admitted_groups[:1]]
    )
    certificate.reasons = np.concatenate(
        [certificate.reasons, [PRUNED_SCORE]]
    ).astype(np.int8)
    certificate.bounds = np.concatenate([certificate.bounds, [0.0]])
    with pytest.raises(CertificateError, match="both admitted and pruned"):
        check_certificate(
            request, offers, maxima, certificate, result.groups
        )


def test_verify_full_runs_checker_inline():
    request, offers, maxima = _simple_market()
    generator = ResourceVectorGenerator(group_size=2, verify="full")
    generator.generate([request], offers, maxima, 1)
    assert generator.last_stats["certificate_checks"] > 0


def test_adversary_caught_by_verify_mode_too():
    request, offers, maxima = _simple_market()
    generator = FeasibilityLyingGenerator(group_size=2, verify="full")
    with pytest.raises(CertificateError, match="but is feasible"):
        # verify="full" replays certificates inside generate() itself —
        # a generator with a broken screen cannot even return a result.
        generator.generate([request], offers, maxima, 1)
