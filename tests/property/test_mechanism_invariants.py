"""Mechanism invariants pinned on the *vectorized* engine (§IV-D, §V).

The differential suite proves the vectorized engine equals the reference
bit-for-bit; this file independently asserts the economic properties the
paper claims, directly on the fast path, so a future divergence between
the engines cannot silently take the guarantees with it:

* **Individual rationality** — a truthful participant never ends up
  worse off than not trading.  Client IR is exact: every matched client
  pays at most its bid.  Provider IR is exact in *normalized* terms
  (clearing price at or above every trading offer's normalized cost,
  §IV-E); in the fraction-scaled monetary accounting of
  ``utility_of_provider`` it is exact on homogeneous clusters and
  epsilon-bounded on heterogeneous markets, where a request's virtual
  fraction ``nu_r`` and its raw resource fraction can differ.
* **Strong budget balance** — the auctioneer keeps nothing: client
  payments are transferred to providers in full, per trade and in total.
* **DSIC spot-checks** — in the exact single-cluster regime (homogeneous
  machines, randomization off) a client misreport or provider cost
  shading never gains.  The reference engine's deeper truthfulness
  analysis lives in ``test_truthfulness.py``; these are the same checks
  pointed at the fast path.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.auction import DecloudAuction
from repro.core.config import AuctionConfig
from repro.core.outcome import utility_of_client, utility_of_provider
from repro.workloads.generators import generate_market

from tests.differential.test_engine_equivalence import markets
from tests.property.test_truthfulness import _homogeneous_market

VECTORIZED = AuctionConfig(engine="vectorized")
VECTORIZED_NO_RANDOM = AuctionConfig(
    engine="vectorized", enable_randomization=False
)

EPS = 1e-9

bid_values = st.floats(min_value=0.05, max_value=5.0, allow_nan=False)


class TestIndividualRationality:
    @given(market=markets(), evidence=st.binary(min_size=1, max_size=8))
    @settings(max_examples=100, deadline=None)
    def test_client_ir_is_exact(self, market, evidence):
        requests, offers = market
        outcome = DecloudAuction(VECTORIZED).run(
            requests, offers, evidence=evidence
        )
        for match in outcome.matches:
            assert match.payment <= match.request.bid + EPS
            assert (
                utility_of_client(
                    outcome, match.request.request_id, match.request.bid
                )
                >= -EPS
            ), (
                f"client {match.request.request_id} pays {match.payment} "
                f"against a bid of {match.request.bid}"
            )
        assert all(p >= 0 for p in outcome.prices)

    @given(
        request_bids=st.lists(bid_values, min_size=2, max_size=8),
        offer_bids=st.lists(bid_values, min_size=1, max_size=3),
    )
    @settings(max_examples=100, deadline=None)
    def test_provider_ir_is_exact_on_homogeneous_clusters(
        self, request_bids, offer_bids
    ):
        requests, offers = _homogeneous_market(request_bids, offer_bids)
        outcome = DecloudAuction(VECTORIZED).run(
            requests, offers, evidence=b"ir"
        )
        true_costs = {o.offer_id: o.bid for o in offers}
        for provider_id in {o.provider_id for o in offers}:
            assert (
                utility_of_provider(outcome, provider_id, true_costs) >= -EPS
            ), f"provider {provider_id} trades below declared cost"

    def test_provider_ir_is_epsilon_bounded_on_heterogeneous_markets(self):
        """Monetary provider IR over realistic markets: violations are
        rare (the nu_r vs resource-fraction accounting gap) and
        negligible against market-scale payments."""
        shortfall = 0.0
        payments = 0.0
        negative = probed = 0
        for seed in range(40):
            requests, offers = generate_market(40, seed=seed)
            outcome = DecloudAuction(VECTORIZED).run(
                requests, offers, evidence=b"ir"
            )
            true_costs = {o.offer_id: o.bid for o in offers}
            payments += outcome.total_payments
            for provider_id in {o.provider_id for o in offers}:
                utility = utility_of_provider(
                    outcome, provider_id, true_costs
                )
                probed += 1
                if utility < -EPS:
                    negative += 1
                    shortfall += -utility
        assert probed > 500
        assert negative / probed < 0.02, (
            f"{negative}/{probed} providers traded below cost"
        )
        assert shortfall < 0.01 * payments


class TestStrongBudgetBalance:
    @given(market=markets(), evidence=st.binary(min_size=1, max_size=8))
    @settings(max_examples=100, deadline=None)
    def test_payments_equal_revenues(self, market, evidence):
        requests, offers = market
        outcome = DecloudAuction(VECTORIZED).run(
            requests, offers, evidence=evidence
        )
        # Per-trade: the clearing transfers the client payment to the
        # provider untouched — the revenue ledger is built from the very
        # same payments, so totals agree up to summation reordering.
        revenues = outcome.revenues()
        total_revenue = sum(sorted(revenues.values()))
        total_payment = outcome.total_payments
        assert abs(total_payment - total_revenue) <= EPS * max(
            1.0, abs(total_payment)
        )
        per_offer = {}
        for match in outcome.matches:
            per_offer[match.offer.offer_id] = (
                per_offer.get(match.offer.offer_id, 0.0) + match.payment
            )
        assert per_offer == revenues

    def test_no_payment_without_trade(self):
        requests, offers = generate_market(30, seed=9)
        outcome = DecloudAuction(VECTORIZED).run(
            requests, offers, evidence=b"bb"
        )
        matched_offers = {m.offer.offer_id for m in outcome.matches}
        assert set(outcome.revenues()) == matched_offers


class TestDsicSpotChecks:
    """Exact single-cluster DSIC, replayed on the fast path."""

    @given(
        request_bids=st.lists(bid_values, min_size=2, max_size=8),
        offer_bids=st.lists(bid_values, min_size=1, max_size=3),
        deviant=st.integers(min_value=0, max_value=7),
        factor=st.floats(min_value=0.0, max_value=4.0, allow_nan=False),
    )
    @settings(max_examples=75, deadline=None)
    def test_client_misreport_never_gains(
        self, request_bids, offer_bids, deviant, factor
    ):
        deviant %= len(request_bids)
        requests, offers = _homogeneous_market(request_bids, offer_bids)
        auction = DecloudAuction(VECTORIZED_NO_RANDOM)
        true_value = request_bids[deviant]
        target_id = f"r{deviant}"

        honest = utility_of_client(
            auction.run(requests, offers, evidence=b"T"), target_id, true_value
        )
        deviated_requests = [
            r if r.request_id != target_id else r.replace_bid(true_value * factor)
            for r in requests
        ]
        deviated = utility_of_client(
            auction.run(deviated_requests, offers, evidence=b"T"),
            target_id,
            true_value,
        )
        assert deviated <= honest + 1e-6

    @given(
        request_bids=st.lists(bid_values, min_size=2, max_size=8),
        offer_bids=st.lists(bid_values, min_size=1, max_size=3),
        deviant=st.integers(min_value=0, max_value=2),
        factor=st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
    )
    @settings(max_examples=75, deadline=None)
    def test_provider_shading_never_gains(
        self, request_bids, offer_bids, deviant, factor
    ):
        deviant %= len(offer_bids)
        requests, offers = _homogeneous_market(request_bids, offer_bids)
        auction = DecloudAuction(VECTORIZED_NO_RANDOM)
        true_cost = offer_bids[deviant]
        target_offer = f"o{deviant}"
        target_provider = f"p{deviant}"

        honest = utility_of_provider(
            auction.run(requests, offers, evidence=b"T"),
            target_provider,
            {target_offer: true_cost},
        )
        deviated_offers = [
            o if o.offer_id != target_offer else o.replace_bid(true_cost * factor)
            for o in offers
        ]
        deviated = utility_of_provider(
            auction.run(requests, deviated_offers, evidence=b"T"),
            target_provider,
            {target_offer: true_cost},
        )
        assert deviated <= honest + 1e-6
