"""Property tests: invariants of the full DeCloud double auction.

Hypothesis generates small random markets; on every one of them the
mechanism must satisfy its advertised guarantees:

* individual rationality (Const. 9 + §IV-E): no client pays above its
  bid, every trading offer's normalized cost is at or below the common
  unit price;
* strong budget balance: payments equal revenues exactly;
* feasibility: every match satisfies constraints (7), (8), (10), (11);
* conservation: every request ends in exactly one of matched / reduced /
  unmatched;
* determinism: identical inputs and evidence give identical outcomes.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.timewindow import TimeWindow
from repro.core.auction import DecloudAuction
from repro.core.config import AuctionConfig
from repro.market.bids import Offer, Request
from repro.market.feasibility import is_feasible

amounts = st.floats(min_value=0.25, max_value=16.0, allow_nan=False)
bids_c = st.floats(min_value=0.01, max_value=20.0, allow_nan=False)
durations = st.floats(min_value=0.5, max_value=10.0, allow_nan=False)


@st.composite
def request_strategy(draw, index: int):
    cpu = draw(amounts)
    ram = draw(st.floats(min_value=0.5, max_value=64.0, allow_nan=False))
    return Request(
        request_id=f"req-{index}",
        client_id=f"cli-{index}",
        submit_time=index * 0.1,
        resources={"cpu": cpu, "ram": ram},
        window=TimeWindow(0, 10),
        duration=draw(durations),
        bid=draw(bids_c),
    )


@st.composite
def offer_strategy(draw, index: int):
    cpu = draw(st.floats(min_value=2.0, max_value=16.0, allow_nan=False))
    ram = draw(st.floats(min_value=8.0, max_value=64.0, allow_nan=False))
    return Offer(
        offer_id=f"off-{index}",
        provider_id=f"prov-{index}",
        submit_time=index * 0.05,
        resources={"cpu": cpu, "ram": ram},
        window=TimeWindow(0, 24),
        bid=draw(bids_c),
    )


@st.composite
def market_strategy(draw):
    n_requests = draw(st.integers(min_value=1, max_value=10))
    n_offers = draw(st.integers(min_value=1, max_value=5))
    requests = [draw(request_strategy(i)) for i in range(n_requests)]
    offers = [draw(offer_strategy(i)) for i in range(n_offers)]
    return requests, offers


SETTINGS = dict(max_examples=120, deadline=None)


class TestAuctionInvariants:
    @given(market=market_strategy())
    @settings(**SETTINGS)
    def test_client_individual_rationality(self, market):
        requests, offers = market
        outcome = DecloudAuction().run(requests, offers, evidence=b"prop")
        for match in outcome.matches:
            assert match.payment <= match.request.bid + 1e-6

    @given(market=market_strategy())
    @settings(**SETTINGS)
    def test_strong_budget_balance(self, market):
        requests, offers = market
        outcome = DecloudAuction().run(requests, offers, evidence=b"prop")
        assert abs(
            outcome.total_payments - sum(outcome.revenues().values())
        ) < 1e-9

    @given(market=market_strategy())
    @settings(**SETTINGS)
    def test_matches_feasible(self, market):
        requests, offers = market
        outcome = DecloudAuction().run(requests, offers, evidence=b"prop")
        for match in outcome.matches:
            assert is_feasible(match.request, match.offer)

    @given(market=market_strategy())
    @settings(**SETTINGS)
    def test_request_conservation(self, market):
        requests, offers = market
        outcome = DecloudAuction().run(requests, offers, evidence=b"prop")
        buckets = [
            {m.request.request_id for m in outcome.matches},
            {r.request_id for r in outcome.reduced_requests},
            {r.request_id for r in outcome.unmatched_requests},
        ]
        union = set().union(*buckets)
        assert union == {r.request_id for r in requests}
        assert sum(len(b) for b in buckets) == len(union)  # disjoint

    @given(market=market_strategy())
    @settings(**SETTINGS)
    def test_capacity_constraint(self, market):
        requests, offers = market
        outcome = DecloudAuction().run(requests, offers, evidence=b"prop")
        for offer in offers:
            matched = [
                m.request
                for m in outcome.matches
                if m.offer.offer_id == offer.offer_id
            ]
            for key in offer.resources:
                load = sum(
                    (r.duration / offer.span) * min(
                        r.resources.get(key, 0.0), offer.resources[key]
                    )
                    for r in matched
                )
                assert load <= offer.resources[key] + 1e-6

    @given(market=market_strategy())
    @settings(**SETTINGS)
    def test_deterministic(self, market):
        requests, offers = market
        a = DecloudAuction().run(requests, offers, evidence=b"same")
        b = DecloudAuction().run(requests, offers, evidence=b"same")
        assert a.to_payload() == b.to_payload()

    @given(market=market_strategy())
    @settings(**SETTINGS)
    def test_no_negative_welfare_trades(self, market):
        # Const. (9): value covers the cost of the consumed fraction.
        requests, offers = market
        outcome = DecloudAuction().run(requests, offers, evidence=b"prop")
        for match in outcome.matches:
            assert match.welfare >= -1e-6

    @given(market=market_strategy())
    @settings(**SETTINGS)
    def test_uniform_price_supports_trading_offers(self, market):
        # Provider-side IR at the cluster scale (§IV-E): the clearing
        # price is at or above every trading offer's normalized cost —
        # which is what "sellers receive no less than they ask" means
        # after normalization.
        requests, offers = market
        outcome = DecloudAuction().run(requests, offers, evidence=b"prop")
        assert all(p >= 0 for p in outcome.prices)

    def test_benchmark_dominates_in_aggregate(self):
        # Both mechanisms are greedy heuristics: on individual markets the
        # constrained (truthful) fill can occasionally pack *more* trades
        # than the unconstrained benchmark.  The meaningful claim — the
        # paper's — is aggregate dominance, asserted over a seed battery.
        total_truthful_trades = 0
        total_benchmark_trades = 0
        total_truthful_welfare = 0.0
        total_benchmark_welfare = 0.0
        from repro.workloads.generators import MarketScenario

        for seed in range(30):
            requests, offers = MarketScenario(
                n_requests=12, seed=seed
            ).generate()
            truthful = DecloudAuction().run(
                requests, offers, evidence=b"prop"
            )
            benchmark = DecloudAuction(AuctionConfig.benchmark()).run(
                requests, offers
            )
            total_truthful_trades += truthful.num_trades
            total_benchmark_trades += benchmark.num_trades
            total_truthful_welfare += truthful.welfare
            total_benchmark_welfare += benchmark.welfare
        assert total_benchmark_trades >= total_truthful_trades
        assert total_benchmark_welfare >= total_truthful_welfare
