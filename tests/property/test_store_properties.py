"""Property + fuzz tests for the durability layer.

Two contracts, driven by Hypothesis:

* **Replay idempotence** — recovery is a pure function of the durable
  bytes: recovering twice, or recovering from any snapshot + log-suffix
  split, yields exactly the state of recovering once from the full log.
* **Tail-corruption safety** — flip or truncate arbitrary bytes of the
  log and recovery still succeeds, reconstructing a *prefix* of the
  original record sequence: damage can lose the newest records, never
  crash the node, and never resurrect or invent state.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ledger.chain import Blockchain
from repro.ledger.mempool import Mempool
from repro.ledger.miner import make_sealed_bid
from repro.cryptosim import schnorr
from repro.protocol.settlement import TokenLedger
from repro.store import NodeStore

ACCOUNTS = ("alice", "bob", "carol")

#: one journaled operation: (kind, actor index, counterparty index, amount)
op_strategy = st.tuples(
    st.sampled_from(["mint", "transfer", "open", "close", "submit"]),
    st.integers(min_value=0, max_value=2),
    st.integers(min_value=0, max_value=2),
    st.floats(min_value=0.1, max_value=5.0, allow_nan=False),
)


def sealed_bid(i):
    keypair = schnorr.KeyPair.generate(seed=f"prop-sender-{i}".encode())
    tx, _ = make_sealed_bid(
        sender_id=f"prop-sender-{i}",
        keypair=keypair,
        plaintext=f"prop-bid-{i}".encode(),
        temp_key=bytes([i % 256]) * 32,
        nonce=bytes([i % 256]) * 16,
        blind=bytes([i % 256]) * 32,
    )
    return tx


def apply_ops(store, ops, snapshot_at=frozenset()):
    """Drive one deterministic op sequence through a journaled node.

    Ops with unmet preconditions are skipped *before* journaling (the
    public ledger API validates first), so two stores fed the same list
    journal identical record sequences regardless of snapshot points.
    """
    ledger = TokenLedger()
    chain = Blockchain(difficulty_bits=4)
    mempool = Mempool()
    store.attach(chain=chain, mempool=mempool, ledger=ledger)
    opened = []
    for index, (kind, a, b, amount) in enumerate(ops):
        if kind == "mint":
            ledger.mint(ACCOUNTS[a], amount)
        elif kind == "transfer":
            if ledger.balance(ACCOUNTS[a]) >= amount:
                ledger.transfer(ACCOUNTS[a], ACCOUNTS[b], amount)
        elif kind == "open":
            if a != b and ledger.balance(ACCOUNTS[a]) >= amount:
                opened.append(
                    ledger.open_escrow(ACCOUNTS[a], ACCOUNTS[b], amount)
                )
        elif kind == "close":
            if opened:
                eid = opened.pop(0)
                if a % 2:
                    ledger.release(eid)
                else:
                    ledger.refund(eid)
        elif kind == "submit":
            mempool.submit(sealed_bid(index))
        if index in snapshot_at:
            store.snapshot()
    return store


class TestReplayIdempotence:
    @settings(max_examples=25, deadline=None)
    @given(ops=st.lists(op_strategy, min_size=1, max_size=20))
    def test_recover_twice_equals_recover_once(self, ops):
        store = apply_ops(NodeStore.in_memory(), ops)
        once = store.recover(difficulty_bits=4)
        twice = store.recover(difficulty_bits=4)
        assert twice.state_digest() == once.state_digest()
        assert twice.replayed_records == once.replayed_records

    @settings(max_examples=25, deadline=None)
    @given(
        ops=st.lists(op_strategy, min_size=1, max_size=20),
        data=st.data(),
    )
    def test_any_snapshot_split_equals_pure_replay(self, ops, data):
        snapshot_at = frozenset(
            data.draw(
                st.sets(
                    st.integers(min_value=0, max_value=len(ops) - 1),
                    max_size=3,
                )
            )
        )
        plain = apply_ops(NodeStore.in_memory(), ops)
        split = apply_ops(NodeStore.in_memory(), ops, snapshot_at)
        recovered_plain = plain.recover(difficulty_bits=4)
        recovered_split = split.recover(difficulty_bits=4)
        # the round marker is not part of this op alphabet, and the
        # snapshot marks themselves are invisible to recovered state
        assert (
            recovered_split.state_digest() == recovered_plain.state_digest()
        )

    @settings(max_examples=25, deadline=None)
    @given(ops=st.lists(op_strategy, min_size=1, max_size=20))
    def test_live_state_equals_recovered_state(self, ops):
        store = apply_ops(NodeStore.in_memory(), ops)
        live_digest = store.state_digest()
        assert store.recover(difficulty_bits=4).state_digest() == live_digest


class TestTailCorruptionFuzz:
    @settings(max_examples=40, deadline=None)
    @given(
        ops=st.lists(op_strategy, min_size=2, max_size=15),
        data=st.data(),
    )
    def test_byte_flips_recover_to_a_record_prefix(self, ops, data):
        # lead with a funded mint so the log always has at least one frame
        store = apply_ops(NodeStore.in_memory(), [("mint", 0, 0, 5.0)] + ops)
        original = [
            (r["seq"], r["type"], r["data"]) for r in store.wal.records()
        ]
        raw = bytearray(store.wal.backend.read())
        flips = data.draw(
            st.lists(
                st.tuples(
                    st.integers(min_value=0, max_value=len(raw) - 1),
                    st.integers(min_value=1, max_value=255),
                ),
                min_size=1,
                max_size=4,
            )
        )
        for offset, mask in flips:
            raw[offset] ^= mask
        store.wal.backend.replace(bytes(raw))

        recovered = store.recover(difficulty_bits=4)  # must not raise
        surviving = [
            (r["seq"], r["type"], r["data"]) for r in store.wal.records()
        ]
        assert surviving == original[: len(surviving)], (
            "corruption resurrected or altered records"
        )

    @settings(max_examples=40, deadline=None)
    @given(
        ops=st.lists(op_strategy, min_size=2, max_size=15),
        data=st.data(),
    )
    def test_truncation_recovers_to_a_record_prefix(self, ops, data):
        store = apply_ops(NodeStore.in_memory(), [("mint", 0, 0, 5.0)] + ops)
        original = [
            (r["seq"], r["type"], r["data"]) for r in store.wal.records()
        ]
        size = store.wal.backend.size()
        cut = data.draw(st.integers(min_value=0, max_value=size - 1))
        store.wal.backend.truncate_to(cut)

        recovered = store.recover(difficulty_bits=4)  # must not raise
        surviving = [
            (r["seq"], r["type"], r["data"]) for r in store.wal.records()
        ]
        assert surviving == original[: len(surviving)]
        # recovery leaves an appendable log behind
        store.log("round.phase", round=0, phase="seal")

    @settings(max_examples=20, deadline=None)
    @given(
        ops=st.lists(op_strategy, min_size=2, max_size=12),
        data=st.data(),
    )
    def test_corruption_after_snapshot_never_loses_snapshotted_state(
        self, ops, data
    ):
        # snapshot midway, then corrupt the log: everything up to the
        # snapshot is durable no matter what happens to the suffix
        midpoint = len(ops) // 2
        store = apply_ops(
            NodeStore.in_memory(), ops, snapshot_at=frozenset({midpoint})
        )
        checkpoint = apply_ops(
            NodeStore.in_memory(), ops[: midpoint + 1]
        ).recover(difficulty_bits=4)
        raw = bytearray(store.wal.backend.read())
        if raw:
            offset = data.draw(
                st.integers(min_value=0, max_value=len(raw) - 1)
            )
            raw[offset] ^= 0x5A
            store.wal.backend.replace(bytes(raw))
        recovered = store.recover(difficulty_bits=4)
        assert recovered.ledger.total_supply() >= 0.0
        for account, balance in checkpoint.ledger.balances.items():
            # snapshotted balances exist; post-snapshot records may be
            # lost but the snapshot itself is untouched by log damage
            assert account in recovered.ledger.balances or balance == 0.0
