"""Property tests: the full ledger pipeline and the outcome auditor.

Two end-to-end invariants on randomly generated markets:

* **audit universality** — every outcome the mechanism produces passes
  the independent invariant auditor;
* **ledger equivalence** — clearing a block through the sealed-bid
  protocol yields byte-for-byte the payload of a direct auction run with
  the same evidence (purity of the allocation function, the property
  collective verification rests on).
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.audit import audit_outcome
from repro.core.auction import DecloudAuction
from repro.core.config import AuctionConfig
from repro.ledger.block import Block
from repro.ledger.miner import Miner
from repro.protocol.allocator import DecloudAllocator
from repro.protocol.exposure import Participant
from repro.workloads.generators import MarketScenario


class TestAuditUniversality:
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        n_requests=st.integers(min_value=2, max_value=24),
        breadth=st.integers(min_value=1, max_value=8),
    )
    @settings(max_examples=60, deadline=None)
    def test_outcomes_always_audit_clean(self, seed, n_requests, breadth):
        requests, offers = MarketScenario(
            n_requests=n_requests, seed=seed
        ).generate()
        config = AuctionConfig(cluster_breadth=breadth)
        outcome = DecloudAuction(config).run(
            requests, offers, evidence=seed.to_bytes(4, "big")
        )
        report = audit_outcome(requests, offers, outcome)
        assert report.ok, str(report)

    @given(seed=st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=30, deadline=None)
    def test_benchmark_outcomes_audit_clean(self, seed):
        requests, offers = MarketScenario(n_requests=12, seed=seed).generate()
        outcome = DecloudAuction(AuctionConfig.benchmark()).run(
            requests, offers
        )
        report = audit_outcome(requests, offers, outcome)
        assert report.ok, str(report)


class TestLedgerEquivalence:
    @given(seed=st.integers(min_value=0, max_value=1_000))
    @settings(max_examples=15, deadline=None)
    def test_protocol_round_equals_direct_run(self, seed):
        requests, offers = MarketScenario(n_requests=6, seed=seed).generate()
        miner = Miner(
            miner_id="m", allocate=DecloudAllocator(), difficulty_bits=4
        )
        participants = {}
        for request in requests:
            participants.setdefault(
                request.client_id, Participant(participant_id=request.client_id)
            )
        for offer in offers:
            participants.setdefault(
                offer.provider_id,
                Participant(participant_id=offer.provider_id),
            )
        for request in requests:
            miner.accept_transaction(
                participants[request.client_id].seal(request)
            )
        for offer in offers:
            miner.accept_transaction(
                participants[offer.provider_id].seal(offer)
            )
        preamble = miner.build_preamble()
        reveals = []
        for participant in participants.values():
            reveals.extend(participant.reveals_for(preamble))
        body = miner.build_body(preamble, tuple(reveals))
        block = Block(preamble=preamble, body=body)

        direct = DecloudAuction().run(
            requests, offers, evidence=preamble.evidence()
        )
        assert direct.to_payload() == body.allocation
        # And a fresh peer accepts the block by re-execution.
        peer = Miner(
            miner_id="peer", allocate=DecloudAllocator(), difficulty_bits=4
        )
        peer.accept_block(block)
        assert len(peer.chain) == 1
