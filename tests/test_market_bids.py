"""Unit tests for the bidding language: resources, requests, offers."""

import pytest

from repro.common.errors import ValidationError
from repro.common.timewindow import TimeWindow
from repro.market import resources as res
from repro.market.bids import Offer, Request, decode_bid_payload
from tests.conftest import make_offer, make_request


class TestResourceHelpers:
    def test_validate_rejects_empty(self):
        with pytest.raises(ValidationError):
            res.validate_vector({}, "thing")

    def test_validate_rejects_negative(self):
        with pytest.raises(ValidationError):
            res.validate_vector({"cpu": -1.0}, "thing")

    def test_validate_rejects_nan(self):
        with pytest.raises(ValidationError):
            res.validate_vector({"cpu": float("nan")}, "thing")

    def test_validate_rejects_bad_key(self):
        with pytest.raises(ValidationError):
            res.validate_vector({"": 1.0}, "thing")

    def test_common_types(self):
        assert res.common_types({"a": 1, "b": 2}, {"b": 3, "c": 4}) == {"b"}

    def test_l2_norm(self):
        assert res.l2_norm({"a": 3.0, "b": 4.0}) == pytest.approx(5.0)

    def test_l2_norm_restricted_keys(self):
        assert res.l2_norm({"a": 3.0, "b": 4.0}, keys=["a"]) == pytest.approx(3.0)

    def test_l2_norm_missing_key_is_zero(self):
        assert res.l2_norm({"a": 3.0}, keys=["a", "zz"]) == pytest.approx(3.0)

    def test_elementwise_max(self):
        assert res.elementwise_max([{"a": 1, "b": 5}, {"a": 3}]) == {"a": 3, "b": 5}

    def test_normalized(self):
        out = res.normalized({"a": 2.0, "b": 1.0}, {"a": 4.0, "b": 0.0})
        assert out == {"a": 0.5, "b": 0.0}


class TestRequestValidation:
    def test_valid_request(self):
        request = make_request()
        assert request.sigma("cpu") == 1.0
        assert request.is_strict("cpu")

    def test_negative_bid_rejected(self):
        with pytest.raises(ValidationError):
            make_request(bid=-1.0)

    def test_duration_exceeding_window_rejected(self):
        with pytest.raises(ValidationError):
            make_request(window=TimeWindow(0, 3), duration=5.0)

    def test_zero_duration_rejected(self):
        with pytest.raises(ValidationError):
            make_request(duration=0.0)

    def test_flexibility_bounds(self):
        with pytest.raises(ValidationError):
            make_request(flexibility=0.0)
        with pytest.raises(ValidationError):
            make_request(flexibility=1.5)

    def test_significance_for_unknown_resource_rejected(self):
        with pytest.raises(ValidationError):
            make_request(significance={"gpu": 0.5})

    def test_significance_out_of_range_rejected(self):
        with pytest.raises(ValidationError):
            make_request(significance={"cpu": 0.0})
        with pytest.raises(ValidationError):
            make_request(significance={"cpu": 1.2})

    def test_default_significance_is_strict(self):
        request = make_request(significance={"cpu": 0.5})
        assert request.sigma("cpu") == 0.5
        assert request.sigma("ram") == 1.0
        assert not request.is_strict("cpu")

    def test_resources_immutable(self):
        request = make_request()
        with pytest.raises(TypeError):
            request.resources["cpu"] = 99  # type: ignore[index]


class TestOfferValidation:
    def test_valid_offer(self):
        offer = make_offer()
        assert offer.span == 24.0

    def test_zero_span_rejected(self):
        with pytest.raises(ValidationError):
            make_offer(window=TimeWindow(5, 5))

    def test_negative_bid_rejected(self):
        with pytest.raises(ValidationError):
            make_offer(bid=-0.5)

    def test_empty_resources_rejected(self):
        with pytest.raises(ValidationError):
            Offer(
                offer_id="off-empty",
                provider_id="prov",
                submit_time=0.0,
                resources={},
                window=TimeWindow(0, 10),
                bid=1.0,
            )


class TestSerialization:
    def test_request_roundtrip(self):
        request = make_request(significance={"cpu": 0.7}, flexibility=0.8)
        assert Request.from_payload(request.to_payload()) == request

    def test_offer_roundtrip(self):
        offer = make_offer(location="edge-x")
        assert Offer.from_payload(offer.to_payload()) == offer

    def test_decode_bid_payload_request(self):
        request = make_request()
        decoded = decode_bid_payload(request.to_json())
        assert isinstance(decoded, Request)
        assert decoded == request

    def test_decode_bid_payload_offer(self):
        offer = make_offer()
        decoded = decode_bid_payload(offer.to_json())
        assert isinstance(decoded, Offer)
        assert decoded == offer

    def test_decode_garbage_raises(self):
        with pytest.raises(ValidationError):
            decode_bid_payload(b"\xff\xfe not json")

    def test_decode_unknown_kind_raises(self):
        with pytest.raises(ValidationError):
            decode_bid_payload(b'{"kind": "mystery"}')

    def test_wrong_kind_from_payload_raises(self):
        offer = make_offer()
        with pytest.raises(ValidationError):
            Request.from_payload(offer.to_payload())


class TestCopies:
    def test_replace_bid(self):
        request = make_request(bid=2.0)
        assert request.replace_bid(9.0).bid == 9.0
        assert request.bid == 2.0

    def test_offer_replace_bid(self):
        offer = make_offer(bid=1.0)
        assert offer.replace_bid(0.5).bid == 0.5

    def test_strict_view(self):
        request = make_request(
            significance={"cpu": 0.4}, flexibility=0.6
        )
        strict = request.strict_view()
        assert strict.flexibility == 1.0
        assert strict.is_strict("cpu")
        assert strict.resources == request.resources
