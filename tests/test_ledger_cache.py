"""Regression tests for the canonical-bytes caches on ledger objects.

The contract: cached bytes are byte-identical to a cold recomputation
(the wire/hash format is unchanged), and "mutation" — which for frozen
value objects means building a new instance via ``dataclasses.replace``
/ ``with_nonce`` / ``signed_by`` — never serves stale bytes.
"""

import dataclasses

from repro.cryptosim import hashing, schnorr
from repro.cryptosim.commitments import Commitment
from repro.cryptosim.symmetric import SealedBox
from repro.ledger.block import Block, BlockBody, BlockPreamble, KeyReveal
from repro.ledger.transaction import SealedBidTransaction


def make_tx(sender: str = "alice", payload: bytes = b"ciphertext") -> SealedBidTransaction:
    keypair = schnorr.KeyPair.generate(seed=sender.encode("utf-8"))
    box = SealedBox(nonce=b"n" * 16, ciphertext=payload, tag=b"t" * 32)
    commitment = Commitment(digest=hashing.sha256(sender.encode()))
    return SealedBidTransaction.create(sender, keypair, box, commitment)


def fresh_copy(tx: SealedBidTransaction) -> SealedBidTransaction:
    """Field-identical instance with an empty cache."""
    return SealedBidTransaction(
        sender_id=tx.sender_id,
        sender_public=tx.sender_public,
        box=tx.box,
        key_commitment=tx.key_commitment,
        signature=tx.signature,
    )


class TestTransactionCache:
    def test_cached_payload_matches_cold_computation(self):
        tx = make_tx()
        cold = fresh_copy(tx).signing_payload()
        assert tx.signing_payload() == cold
        # second read serves the cache, still identical
        assert tx.signing_payload() == cold
        assert tx.canonical_bytes == cold

    def test_txid_cached_and_format_stable(self):
        tx = make_tx()
        assert tx.txid() == hashing.sha256_hex(fresh_copy(tx).signing_payload())
        assert tx.txid() is tx.txid()  # served from cache

    def test_replace_mutation_invalidates(self):
        tx = make_tx()
        _ = tx.signing_payload()  # warm the cache
        other_box = SealedBox(nonce=b"m" * 16, ciphertext=b"other", tag=b"t" * 32)
        mutated = dataclasses.replace(tx, box=other_box)
        assert mutated.signing_payload() != tx.signing_payload()
        assert mutated.signing_payload() == fresh_copy(mutated).signing_payload()
        assert mutated.txid() != tx.txid()


class TestPreambleCache:
    def make_preamble(self, nonce: int = 0) -> BlockPreamble:
        return BlockPreamble(
            height=3,
            parent_hash="ab" * 32,
            transactions=(make_tx("alice"), make_tx("bob")),
            timestamp=12.5,
            pow_nonce=nonce,
        )

    def test_payload_and_hash_match_cold_computation(self):
        preamble = self.make_preamble()
        cold = self.make_preamble()
        assert preamble.pow_payload() == cold.pow_payload()
        assert preamble.hash() == cold.hash()
        assert preamble.hash() is preamble.hash()

    def test_with_nonce_reuses_payload_but_not_hash(self):
        preamble = self.make_preamble()
        _ = preamble.pow_payload()
        _ = preamble.hash()
        renonced = preamble.with_nonce(41)
        assert renonced.pow_payload() == preamble.pow_payload()
        assert renonced.hash() != preamble.hash()
        assert renonced.hash() == self.make_preamble(nonce=41).hash()

    def test_canonical_bytes_cover_nonce(self):
        preamble = self.make_preamble(nonce=7)
        assert preamble.canonical_bytes == (
            preamble.pow_payload() + (7).to_bytes(8, "big")
        )


class TestBodyAndBlockCache:
    def make_body(self, allocation=None, miner_public: int = 5) -> BlockBody:
        reveal = KeyReveal(
            sender_id="alice", txid="ff" * 32, temp_key=b"k" * 32, blind=b"b" * 16
        )
        return BlockBody(
            reveals=(reveal,),
            allocation=allocation or {"matches": [{"request_id": "r1"}]},
            miner_id="miner-0",
            miner_public=miner_public,
        )

    def test_signing_payload_matches_cold_per_preamble_hash(self):
        body = self.make_body()
        cold = self.make_body()
        phash_a, phash_b = "aa" * 32, "bb" * 32
        assert body.signing_payload(phash_a) == cold.signing_payload(phash_a)
        # a different preamble hash must not be served from the cache
        assert body.signing_payload(phash_b) == cold.signing_payload(phash_b)
        assert body.signing_payload(phash_a) != body.signing_payload(phash_b)

    def test_allocation_replace_invalidates(self):
        body = self.make_body()
        phash = "aa" * 32
        _ = body.signing_payload(phash)
        mutated = dataclasses.replace(body, allocation={"matches": []})
        assert mutated.signing_payload(phash) != body.signing_payload(phash)
        assert (
            mutated.allocation_bytes()
            == hashing.canonical_json({"matches": []})
        )

    def test_signed_by_carries_valid_cache(self):
        keypair = schnorr.KeyPair.generate(seed=b"miner-seed")
        phash = "cc" * 32
        body = self.make_body(miner_public=keypair.public)
        signed = body.signed_by(keypair, phash)
        cold = self.make_body(miner_public=keypair.public)
        assert signed.signing_payload(phash) == cold.signing_payload(phash)
        assert signed.verify_signature(phash)

    def test_block_hash_matches_cold_computation(self):
        preamble = TestPreambleCache().make_preamble()
        block = Block(preamble=preamble, body=self.make_body())
        cold = Block(
            preamble=TestPreambleCache().make_preamble(), body=self.make_body()
        )
        assert block.hash() == cold.hash()
        assert block.hash() is block.hash()
