"""Unit tests for the identity registry and its protocol integration."""

import pytest

from repro.common.errors import ProtocolError
from repro.protocol.exposure import ExposureProtocol, Participant
from repro.protocol.identity import IdentityRegistry
from repro.ledger.miner import Miner
from repro.protocol.allocator import DecloudAllocator
from tests.conftest import make_offer, make_request


class TestRegistry:
    def test_first_come_binding(self):
        registry = IdentityRegistry()
        registry.register("alice", 123)
        assert registry.is_bound("alice")
        assert registry.key_of("alice") == 123

    def test_idempotent_reregistration(self):
        registry = IdentityRegistry()
        registry.register("alice", 123)
        registry.register("alice", 123)  # no error

    def test_conflicting_claim_rejected(self):
        registry = IdentityRegistry()
        registry.register("alice", 123)
        with pytest.raises(ProtocolError):
            registry.register("alice", 456)

    def test_verify(self):
        registry = IdentityRegistry()
        registry.register("alice", 123)
        assert registry.verify("alice", 123)
        assert not registry.verify("alice", 456)
        assert not registry.verify("unknown", 123)

    def test_key_of_unregistered_raises(self):
        with pytest.raises(ProtocolError):
            IdentityRegistry().key_of("ghost")

    def test_check_or_register(self):
        registry = IdentityRegistry()
        registry.check_or_register("alice", 123)
        registry.check_or_register("alice", 123)
        with pytest.raises(ProtocolError):
            registry.check_or_register("alice", 999)


class TestFreshKeys:
    def test_default_key_is_derivable(self):
        a = Participant(participant_id="alice")
        b = Participant(participant_id="alice")
        assert a.keypair == b.keypair  # simulation convenience

    def test_fresh_key_is_not_derivable(self):
        a = Participant(participant_id="alice", fresh_key=True)
        b = Participant(participant_id="alice", fresh_key=True)
        assert a.keypair != b.keypair


class TestProtocolIntegration:
    def _protocol(self):
        miners = [
            Miner(
                miner_id="m0",
                allocate=DecloudAllocator(),
                difficulty_bits=4,
            )
        ]
        return ExposureProtocol(miners=miners, registry=IdentityRegistry())

    def test_honest_resubmission_allowed(self):
        protocol = self._protocol()
        alice = Participant(participant_id="alice", fresh_key=True)
        protocol.submit(alice, make_request(request_id="r1", client_id="alice"))
        protocol.submit(alice, make_request(request_id="r2", client_id="alice"))

    def test_impersonation_rejected_at_submission(self):
        protocol = self._protocol()
        alice = Participant(participant_id="alice", fresh_key=True)
        protocol.submit(alice, make_request(client_id="alice"))
        mallory = Participant(participant_id="alice", fresh_key=True)
        with pytest.raises(ProtocolError):
            protocol.submit(
                mallory, make_request(request_id="r-evil", client_id="alice")
            )

    def test_round_with_registry(self):
        protocol = self._protocol()
        alice = Participant(participant_id="alice", fresh_key=True)
        anna = Participant(participant_id="anna", fresh_key=True)
        bob = Participant(participant_id="bob", fresh_key=True)
        protocol.submit(
            alice, make_request(request_id="ra", client_id="alice", bid=2.0)
        )
        protocol.submit(
            anna, make_request(request_id="rb", client_id="anna", bid=1.5)
        )
        protocol.submit(bob, make_offer(provider_id="bob", bid=0.4))
        result = protocol.run_round([alice, anna, bob])
        assert result.outcome.num_trades == 1
