"""Unit tests for pricing and trade reduction (Alg. 4, Eq. 19-20)."""

import random

import pytest

from repro.core.auction import _index_offers, _index_requests
from repro.core.cluster_allocation import allocate_cluster
from repro.core.clustering import Cluster
from repro.core.config import AuctionConfig
from repro.core.miniauctions import MiniAuction
from repro.core.trade_reduction import clear_mini_auction, pooled_price
from tests.conftest import make_offer, make_request

CONFIG = AuctionConfig()


def _allocation(requests, offers):
    cluster = Cluster(
        offer_ids=frozenset(o.offer_id for o in offers),
        request_ids={r.request_id for r in requests},
    )
    return allocate_cluster(cluster, requests, offers, CONFIG)


def _clear(requests, offers, config=CONFIG, rng=None):
    allocation = _allocation(requests, offers)
    auction = MiniAuction(allocations=[allocation])
    return clear_mini_auction(
        auction,
        _index_requests(requests),
        _index_offers(offers),
        set(),
        set(),
        config,
        rng or random.Random(0),
    )


class TestPooledPrice:
    def test_price_from_next_offer(self):
        requests = [make_request(bid=10.0, duration=4)]
        offers = [
            make_offer(offer_id="used", bid=0.5),
            make_offer(offer_id="next", bid=1.0),
        ]
        allocation = _allocation(requests, offers)
        price, z_request, z1_offer = pooled_price([allocation])
        assert z_request is None
        assert z1_offer.offer_id == "next"
        assert price == pytest.approx(allocation.c_z_plus_1)

    def test_price_from_marginal_request(self):
        requests = [make_request(bid=10.0, duration=4)]
        offers = [make_offer(offer_id="only", bid=0.5)]
        allocation = _allocation(requests, offers)
        price, z_request, z1_offer = pooled_price([allocation])
        assert z1_offer is None
        assert z_request.request_id == "req-0"
        assert price == pytest.approx(allocation.v_z)

    def test_expensive_next_offer_ignored(self):
        # c_{z'+1} above v_z cannot be the price (Eq. 20 takes the min).
        requests = [make_request(bid=10.0, duration=4)]
        offers = [
            make_offer(offer_id="used", bid=0.5),
            make_offer(offer_id="too-dear", bid=500.0),
        ]
        allocation = _allocation(requests, offers)
        price, z_request, _ = pooled_price([allocation])
        assert price == pytest.approx(allocation.v_z)
        assert z_request is not None

    def test_no_trades_gives_none(self):
        requests = [make_request(bid=0.0001, duration=1)]
        offers = [make_offer(bid=100.0)]
        assert pooled_price([_allocation(requests, offers)]) == (None, None, None)


class TestClearMiniAuction:
    def test_offer_determined_price_loses_no_trades(self):
        requests = [
            make_request(request_id=f"r{i}", bid=5.0 + i, duration=4)
            for i in range(3)
        ]
        offers = [
            make_offer(offer_id="used", bid=0.5),
            make_offer(offer_id="next", bid=1.0),
        ]
        result = _clear(requests, offers)
        assert result.tentative_trades == 3
        assert len(result.matches) == 3
        assert result.reduced_requests == []

    def test_request_determined_price_excludes_client(self):
        requests = [
            make_request(request_id="hi", client_id="c-hi", bid=9.0, duration=4),
            make_request(request_id="lo", client_id="c-lo", bid=5.0, duration=4),
        ]
        offers = [make_offer(offer_id="only", bid=0.5)]
        result = _clear(requests, offers)
        # z = "lo" (lowest winner); its client is excluded.
        matched_ids = {m.request.request_id for m in result.matches}
        assert "lo" not in matched_ids
        assert "hi" in matched_ids
        assert any(r.request_id == "lo" for r in result.reduced_requests)

    def test_all_client_requests_excluded(self):
        requests = [
            make_request(request_id="hi", client_id="c-other", bid=9.0, duration=4),
            make_request(request_id="z1", client_id="c-z", bid=5.0, duration=4),
            make_request(request_id="z2", client_id="c-z", bid=8.0, duration=4),
        ]
        offers = [make_offer(offer_id="only", bid=0.5)]
        result = _clear(requests, offers)
        matched_clients = {m.request.client_id for m in result.matches}
        assert "c-z" not in matched_clients

    def test_common_price_for_all_matches(self):
        requests = [
            make_request(request_id=f"r{i}", bid=5.0 + i, duration=4)
            for i in range(3)
        ]
        offers = [
            make_offer(offer_id="used", bid=0.5),
            make_offer(offer_id="next", bid=1.0),
        ]
        result = _clear(requests, offers)
        prices = {m.unit_price for m in result.matches}
        assert len(prices) == 1
        assert result.price in prices

    def test_payments_ir(self):
        requests = [
            make_request(request_id=f"r{i}", bid=3.0 + i, duration=4)
            for i in range(4)
        ]
        offers = [make_offer(offer_id=f"o{i}", bid=0.4 + 0.2 * i) for i in range(3)]
        result = _clear(requests, offers)
        for match in result.matches:
            assert match.payment <= match.request.bid + 1e-9

    def test_benchmark_mode_keeps_all_trades(self):
        requests = [
            make_request(request_id="hi", bid=9.0, duration=4),
            make_request(request_id="lo", bid=5.0, duration=4),
        ]
        offers = [make_offer(offer_id="only", bid=0.5)]
        result = _clear(requests, offers, config=AuctionConfig.benchmark())
        assert len(result.matches) == result.tentative_trades == 2
        assert result.price is None
        assert result.reduced_requests == []

    def test_consumed_participants_skipped(self):
        requests = [make_request(bid=9.0, duration=4)]
        offers = [make_offer(bid=0.5)]
        allocation = _allocation(requests, offers)
        auction = MiniAuction(allocations=[allocation])
        result = clear_mini_auction(
            auction,
            _index_requests(requests),
            _index_offers(offers),
            {"req-0"},  # already consumed in an earlier auction
            set(),
            CONFIG,
            random.Random(0),
        )
        assert result.tentative_trades == 0
        assert result.matches == []

    def test_participants_recorded(self):
        requests = [
            make_request(request_id=f"r{i}", bid=5.0 + i, duration=4)
            for i in range(2)
        ]
        offers = [
            make_offer(offer_id="used", bid=0.5),
            make_offer(offer_id="next", bid=1.0),
        ]
        result = _clear(requests, offers)
        assert result.participant_requests == {
            m.request.request_id for m in result.matches
        }
        assert result.participant_offers == {
            m.offer.offer_id for m in result.matches
        }

    def test_randomization_deterministic_per_evidence(self):
        requests = [
            make_request(request_id=f"r{i}", client_id=f"c{i}", bid=4.0, duration=4)
            for i in range(6)
        ]
        # One small offer: surplus of eligible requests -> randomization.
        offers = [
            make_offer(offer_id="tiny", resources={"cpu": 2, "ram": 4, "disk": 20}, bid=0.2),
            make_offer(offer_id="next", resources={"cpu": 2, "ram": 4, "disk": 20}, bid=0.4),
        ]
        a = _clear(requests, offers, rng=random.Random(42))
        b = _clear(requests, offers, rng=random.Random(42))
        assert [m.request.request_id for m in a.matches] == [
            m.request.request_id for m in b.matches
        ]
