"""Unit tests for the outcome auditor."""

import pytest

from repro.core.audit import audit_outcome
from repro.core.auction import DecloudAuction
from repro.core.config import AuctionConfig
from repro.core.outcome import AuctionOutcome, Match
from repro.experiments.sweeps import eval_config
from repro.workloads.generators import MarketScenario
from tests.conftest import make_offer, make_request


class TestCleanOutcomes:
    @pytest.mark.parametrize("seed", range(3))
    def test_mechanism_outcomes_pass(self, seed):
        requests, offers = MarketScenario(n_requests=30, seed=seed).generate()
        outcome = DecloudAuction(eval_config()).run(requests, offers)
        report = audit_outcome(requests, offers, outcome)
        assert report.ok, str(report)

    def test_benchmark_outcomes_pass(self):
        requests, offers = MarketScenario(n_requests=30, seed=5).generate()
        outcome = DecloudAuction(AuctionConfig.benchmark()).run(
            requests, offers
        )
        report = audit_outcome(requests, offers, outcome)
        assert report.ok, str(report)

    def test_empty_outcome_with_all_unmatched(self):
        requests = [make_request()]
        outcome = AuctionOutcome(unmatched_requests=list(requests))
        report = audit_outcome(requests, [], outcome)
        assert report.ok


class TestViolationsDetected:
    def _base(self):
        request = make_request(request_id="r1", client_id="c1", bid=2.0)
        offer = make_offer(offer_id="o1", provider_id="p1", bid=1.0)
        return request, offer

    def test_unknown_request_detected(self):
        request, offer = self._base()
        outcome = AuctionOutcome(
            matches=[Match(request=request, offer=offer, payment=1.0, unit_price=1.0)]
        )
        report = audit_outcome([], [offer], outcome)
        assert not report.ok
        assert any("unknown request" in v for v in report.violations)

    def test_altered_bid_detected(self):
        request, offer = self._base()
        forged = request.replace_bid(99.0)
        outcome = AuctionOutcome(
            matches=[Match(request=forged, offer=offer, payment=1.0, unit_price=1.0)],
        )
        report = audit_outcome([request], [offer], outcome)
        assert any("alters the bid" in v for v in report.violations)

    def test_double_allocation_detected(self):
        request, offer = self._base()
        match = Match(request=request, offer=offer, payment=0.5, unit_price=0.5)
        outcome = AuctionOutcome(matches=[match, match])
        report = audit_outcome([request], [offer], outcome)
        assert any("Const. 5" in v for v in report.violations)

    def test_overcharge_detected(self):
        request, offer = self._base()
        outcome = AuctionOutcome(
            matches=[Match(request=request, offer=offer, payment=5.0, unit_price=1.0)],
        )
        report = audit_outcome([request], [offer], outcome)
        assert any("(IR)" in v for v in report.violations)

    def test_infeasible_match_detected(self):
        request = make_request(request_id="r1", resources={"cpu": 64}, bid=9.0)
        offer = make_offer(offer_id="o1", resources={"cpu": 4}, bid=0.1)
        outcome = AuctionOutcome(
            matches=[Match(request=request, offer=offer, payment=0.1, unit_price=0.1)],
        )
        report = audit_outcome([request], [offer], outcome)
        assert any("infeasible" in v for v in report.violations)

    def test_oversubscription_detected(self):
        offer = make_offer(offer_id="o1", resources={"cpu": 4}, bid=0.1)
        requests = [
            make_request(
                request_id=f"r{i}",
                client_id=f"c{i}",
                resources={"cpu": 4},
                duration=10.0,
                bid=5.0,
            )
            for i in range(8)
        ]
        matches = [
            Match(request=r, offer=offer, payment=0.01, unit_price=0.01)
            for r in requests
        ]
        outcome = AuctionOutcome(matches=matches)
        report = audit_outcome(requests, [offer], outcome)
        assert any("Const. 7" in v for v in report.violations)

    def test_unaccounted_request_detected(self):
        request, offer = self._base()
        outcome = AuctionOutcome()  # request missing from every bucket
        report = audit_outcome([request], [offer], outcome)
        assert any("unaccounted" in v for v in report.violations)

    def test_bucket_overlap_detected(self):
        request, offer = self._base()
        outcome = AuctionOutcome(
            matches=[Match(request=request, offer=offer, payment=0.1, unit_price=0.1)],
            unmatched_requests=[request],
        )
        report = audit_outcome([request], [offer], outcome)
        assert any("two buckets" in v for v in report.violations)

    def test_str_lists_violations(self):
        request, offer = self._base()
        report = audit_outcome([request], [offer], AuctionOutcome())
        assert "audit:" in str(report)
        assert not report.ok
