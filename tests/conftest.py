"""Shared test factories.

``make_request`` / ``make_offer`` build valid bids with sensible defaults
so individual tests override only what they exercise.
"""

from __future__ import annotations

from typing import Mapping, Optional

import pytest

from repro.common.timewindow import TimeWindow
from repro.market.bids import Offer, Request


def make_request(
    request_id: str = "req-0",
    client_id: Optional[str] = None,
    submit_time: float = 0.0,
    resources: Optional[Mapping[str, float]] = None,
    significance: Optional[Mapping[str, float]] = None,
    window: Optional[TimeWindow] = None,
    duration: float = 4.0,
    bid: float = 2.0,
    location: Optional[str] = None,
    flexibility: float = 1.0,
) -> Request:
    return Request(
        request_id=request_id,
        client_id=client_id if client_id is not None else f"cli-{request_id}",
        submit_time=submit_time,
        resources=dict(resources or {"cpu": 2, "ram": 4, "disk": 10}),
        significance=dict(significance or {}),
        window=window or TimeWindow(0, 10),
        duration=duration,
        bid=bid,
        location=location,
        flexibility=flexibility,
    )


def make_offer(
    offer_id: str = "off-0",
    provider_id: Optional[str] = None,
    submit_time: float = 0.0,
    resources: Optional[Mapping[str, float]] = None,
    window: Optional[TimeWindow] = None,
    bid: float = 1.0,
    location: Optional[str] = None,
) -> Offer:
    return Offer(
        offer_id=offer_id,
        provider_id=provider_id if provider_id is not None else f"prov-{offer_id}",
        submit_time=submit_time,
        resources=dict(resources or {"cpu": 8, "ram": 32, "disk": 500}),
        window=window or TimeWindow(0, 24),
        bid=bid,
        location=location,
    )


@pytest.fixture
def request_factory():
    return make_request


@pytest.fixture
def offer_factory():
    return make_offer
