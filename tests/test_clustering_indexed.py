"""_IndexedClusters == repeated update_clusters, exactly.

``build_clusters`` now grows the Alg. 2 structure through an
inverted-index builder (O(touched) per insertion instead of O(clusters));
these tests pin the equivalence down to append order and request-set
contents against the direct reference transcription, which stays
exported as the oracle.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.clustering import Cluster, _IndexedClusters, update_clusters

OFFER_IDS = tuple(f"o{j}" for j in range(8))

best_sets = st.lists(
    st.frozensets(st.sampled_from(OFFER_IDS), min_size=0, max_size=5),
    min_size=1,
    max_size=25,
)


def _reference(insertions):
    clusters = []
    for i, best in enumerate(insertions):
        update_clusters(clusters, f"r{i}", best)
    return clusters


def _indexed(insertions):
    builder = _IndexedClusters()
    for i, best in enumerate(insertions):
        builder.insert(f"r{i}", best)
    return builder.clusters


def _shape(clusters):
    return [(c.offer_ids, sorted(c.request_ids)) for c in clusters]


@settings(max_examples=300, deadline=None)
@given(best_sets)
def test_indexed_builder_matches_reference(insertions):
    assert _shape(_indexed(insertions)) == _shape(_reference(insertions))


def test_subset_superset_folding():
    # A chain a ⊂ ab ⊂ abc inserted out of order: superset requests must
    # fold into subsets, intersections must materialize once.
    insertions = [
        frozenset({"o0", "o1", "o2"}),
        frozenset({"o0", "o1"}),
        frozenset({"o1", "o2", "o3"}),
        frozenset({"o0", "o1"}),
        frozenset({"o0"}),
    ]
    assert _shape(_indexed(insertions)) == _shape(_reference(insertions))


def test_empty_best_set_ignored():
    builder = _IndexedClusters()
    builder.insert("r0", frozenset())
    assert builder.clusters == []


def test_intersection_seeded_with_host_requests():
    insertions = [
        frozenset({"o0", "o1", "o2"}),
        frozenset({"o1", "o2", "o3"}),
    ]
    indexed = _indexed(insertions)
    reference = _reference(insertions)
    assert _shape(indexed) == _shape(reference)
    by_key = {c.offer_ids: c for c in indexed}
    assert by_key[frozenset({"o1", "o2"})].request_ids == {"r0", "r1"}


def test_duplicate_cluster_objects_never_created():
    insertions = [frozenset({"o0", "o1"})] * 4 + [frozenset({"o0", "o2"})] * 3
    indexed = _indexed(insertions)
    keys = [c.offer_ids for c in indexed]
    assert len(keys) == len(set(keys))
    assert _shape(indexed) == _shape(_reference(insertions))
