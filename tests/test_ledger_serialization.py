"""Unit tests for chain JSON import/export."""

import json

import pytest

from repro.common.errors import LedgerError
from repro.ledger.serialization import chain_from_json, chain_to_json
from repro.protocol.exposure import Participant, build_miner_network
from tests.conftest import make_offer, make_request


def _chain_with_blocks(rounds=2):
    protocol = build_miner_network(1, difficulty_bits=4)
    alice = Participant(participant_id="alice")
    anna = Participant(participant_id="anna")
    bob = Participant(participant_id="bob")
    for i in range(rounds):
        protocol.submit(
            alice,
            make_request(request_id=f"ra{i}", client_id="alice", bid=2.0),
        )
        protocol.submit(
            anna,
            make_request(request_id=f"rb{i}", client_id="anna", bid=1.5),
        )
        protocol.submit(
            bob, make_offer(offer_id=f"o{i}", provider_id="bob", bid=0.5)
        )
        protocol.run_round([alice, anna, bob])
    return protocol.miners[0].chain


class TestRoundTrip:
    def test_hashes_preserved(self):
        chain = _chain_with_blocks()
        restored = chain_from_json(chain_to_json(chain))
        assert len(restored) == len(chain)
        for original, copy in zip(chain, restored):
            assert original.hash() == copy.hash()

    def test_restored_chain_valid(self):
        chain = _chain_with_blocks()
        restored = chain_from_json(chain_to_json(chain))
        assert restored.verify_linkage()
        assert restored.tip_hash == chain.tip_hash

    def test_allocations_preserved(self):
        chain = _chain_with_blocks()
        restored = chain_from_json(chain_to_json(chain))
        for original, copy in zip(chain, restored):
            assert (
                original.require_complete().allocation
                == copy.require_complete().allocation
            )

    def test_unverified_import(self):
        chain = _chain_with_blocks()
        restored = chain_from_json(chain_to_json(chain), verify=False)
        assert len(restored) == len(chain)


class TestTampering:
    def test_recorded_hash_mismatch_rejected(self):
        chain = _chain_with_blocks(rounds=1)
        data = json.loads(chain_to_json(chain))
        data["blocks"][0]["hash"] = "0" * 64
        with pytest.raises(LedgerError):
            chain_from_json(json.dumps(data))

    def test_tampered_allocation_rejected(self):
        chain = _chain_with_blocks(rounds=1)
        data = json.loads(chain_to_json(chain))
        data["blocks"][0]["body"]["allocation"]["matches"] = []
        with pytest.raises(LedgerError):
            chain_from_json(json.dumps(data))

    def test_garbage_rejected(self):
        with pytest.raises(LedgerError):
            chain_from_json("{not json")

    def test_wrong_version_rejected(self):
        chain = _chain_with_blocks(rounds=1)
        data = json.loads(chain_to_json(chain))
        data["format_version"] = 99
        with pytest.raises(LedgerError):
            chain_from_json(json.dumps(data))
