"""Edge-case tests across modules: deep mini-auction trees, adversarial
preambles, metric degeneracies, and boundary market shapes."""

import dataclasses

import pytest

from repro.core.auction import DecloudAuction
from repro.core.cluster_allocation import allocate_cluster
from repro.core.clustering import Cluster
from repro.core.config import AuctionConfig
from repro.core.miniauctions import build_mini_auctions
from repro.sim.metrics import BlockMetrics
from tests.conftest import make_offer, make_request

CONFIG = AuctionConfig()


def _allocation(request_bids, offer_bids, tag, duration=4.0):
    requests = [
        make_request(
            request_id=f"r-{tag}-{i}",
            client_id=f"c-{tag}-{i}",
            bid=bid,
            duration=duration,
        )
        for i, bid in enumerate(request_bids)
    ]
    offers = [
        make_offer(offer_id=f"o-{tag}-{i}", bid=bid)
        for i, bid in enumerate(offer_bids)
    ]
    cluster = Cluster(
        offer_ids=frozenset(o.offer_id for o in offers),
        request_ids={r.request_id for r in requests},
    )
    return allocate_cluster(cluster, requests, offers, CONFIG)


class TestDeepMiniAuctionTrees:
    def test_three_compatible_clusters_form_one_path(self):
        a = _allocation([8.0, 6.0], [2.0], tag="a")
        b = _allocation([7.5, 5.5], [2.5], tag="b")
        c = _allocation([7.0, 5.0], [3.0], tag="c")
        auctions = build_mini_auctions([a, b, c], CONFIG)
        sizes = sorted(len(x.allocations) for x in auctions)
        # All three are mutually price-compatible: at least one auction
        # pools all of them (path of depth 3).
        assert sizes[-1] == 3

    def test_two_roots_each_with_leaf(self):
        cheap_a = _allocation([2.0, 1.8], [0.1], tag="ca", duration=8.0)
        cheap_b = _allocation([2.1, 1.9], [0.2], tag="cb", duration=8.0)
        dear_a = _allocation([300.0, 250.0], [100.0], tag="da", duration=1.0)
        dear_b = _allocation([320.0, 260.0], [110.0], tag="db", duration=1.0)
        auctions = build_mini_auctions(
            [cheap_a, cheap_b, dear_a, dear_b], CONFIG
        )
        # The cheap pair groups together, the dear pair groups together,
        # but cheap and dear never share an auction.
        for auction in auctions:
            tags = {
                allocation.requests[0].request_id.split("-")[1]
                for allocation in auction.allocations
            }
            assert not (
                tags & {"ca", "cb"} and tags & {"da", "db"}
            ), f"incompatible clusters pooled: {tags}"


class TestAdversarialPreambles:
    def test_forged_transaction_in_preamble_rejected(self):
        from repro.ledger.miner import Miner, make_sealed_bid
        from repro.ledger.block import Block, BlockPreamble
        from repro.ledger import pow as pow_mod
        from repro.protocol.allocator import DecloudAllocator
        from repro.cryptosim import schnorr
        from repro.common.errors import InvalidBlockError

        keypair = schnorr.KeyPair.generate(seed=b"alice")
        tx, reveal = make_sealed_bid(
            sender_id="alice",
            keypair=keypair,
            plaintext=make_request(client_id="alice").to_json(),
        )
        forged = dataclasses.replace(tx, sender_id="mallory")
        preamble = BlockPreamble(
            height=0,
            parent_hash="0" * 64,
            transactions=(forged,),
            timestamp=0.0,
        )
        nonce = pow_mod.solve(preamble.pow_payload(), 4)
        preamble = preamble.with_nonce(nonce)

        leader = Miner(
            miner_id="leader", allocate=DecloudAllocator(), difficulty_bits=4
        )
        # The leader itself can *build* a body for it (decryption skips
        # unrevealed bids), but no peer accepts the block.
        body = leader.build_body(preamble, ())
        peer = Miner(
            miner_id="peer", allocate=DecloudAllocator(), difficulty_bits=4
        )
        with pytest.raises(InvalidBlockError):
            peer.accept_block(Block(preamble=preamble, body=body))


class TestMetricDegeneracies:
    def test_infinite_ratio_when_benchmark_zero(self):
        metrics = BlockMetrics(
            n_requests=2,
            n_offers=1,
            decloud_welfare=1.0,
            benchmark_welfare=0.0,
            decloud_trades=1,
            benchmark_trades=0,
            reduced_trades=0,
            decloud_satisfaction=0.5,
            benchmark_satisfaction=0.0,
            total_payments=0.1,
            total_revenues=0.1,
        )
        assert metrics.welfare_ratio == float("inf")
        assert metrics.reduced_trade_fraction == 0.0


class TestBoundaryMarkets:
    def test_single_request_single_offer_reduces_to_nothing(self):
        # The McAfee degenerate case: the lone pair is sacrificed.
        outcome = DecloudAuction().run(
            [make_request(bid=5.0)], [make_offer(bid=0.5)]
        )
        assert outcome.num_trades == 0
        assert len(outcome.reduced_requests) == 1

    def test_identical_bids_tie_broken_by_time(self):
        requests = [
            make_request(
                request_id="late", client_id="late", bid=2.0, submit_time=9.0
            ),
            make_request(
                request_id="early", client_id="early", bid=2.0, submit_time=1.0
            ),
        ]
        offers = [make_offer(bid=0.2)]
        outcome = DecloudAuction().run(requests, offers)
        if outcome.num_trades == 1:
            # Earlier submission wins the tie (paper §IV-D).
            assert outcome.matches[0].request.request_id == "early"

    def test_zero_value_request_never_trades(self):
        requests = [
            make_request(request_id="zero", client_id="z", bid=0.0),
            make_request(request_id="ok", client_id="o", bid=2.0),
        ]
        offers = [make_offer(bid=0.5)]
        outcome = DecloudAuction().run(requests, offers)
        assert all(
            m.request.request_id != "zero" for m in outcome.matches
        )

    def test_free_offer(self):
        # A zero-cost offer is legal and trades at a non-negative price.
        requests = [
            make_request(request_id=f"r{i}", client_id=f"c{i}", bid=1.0)
            for i in range(3)
        ]
        offers = [make_offer(offer_id="free", bid=0.0)]
        outcome = DecloudAuction().run(requests, offers)
        for match in outcome.matches:
            assert match.payment >= 0.0

    def test_huge_market_of_identical_bids(self):
        requests = [
            make_request(
                request_id=f"r{i}", client_id=f"c{i}", bid=1.0,
                submit_time=0.001 * i,
            )
            for i in range(60)
        ]
        offers = [
            make_offer(offer_id=f"o{j}", bid=0.5, submit_time=0.0001 * j)
            for j in range(6)
        ]
        outcome = DecloudAuction().run(requests, offers)
        # Identical v-hats: z excludes one client; everything else is
        # capacity-limited but deterministic.
        assert outcome.num_trades > 0
        assert outcome.total_payments == pytest.approx(
            sum(outcome.revenues().values())
        )
