"""Tests for the extension experiments: regret, sensitivity, prices,
matching, and CSV export."""

import csv
import os

import numpy as np
import pytest

from repro.experiments import (
    export,
    matching_ablation,
    price_dynamics,
    sensitivity,
    strategy_regret,
)
from repro.experiments import runner
from repro.experiments.common import FigureResult


class TestStrategyRegret:
    def test_truthful_has_zero_advantage(self):
        result = strategy_regret.run(n_markets=4, n_requests=8)
        rows = {
            row["strategy"]: row
            for row in result.rows
            if row["side"] == "client"
        }
        assert rows["truthful"]["mean_advantage"] == 0.0

    def test_all_strategies_present(self):
        result = strategy_regret.run(n_markets=2, n_requests=8)
        client = [r for r in result.rows if r["side"] == "client"]
        provider = [r for r in result.rows if r["side"] == "provider"]
        assert len(client) == len(strategy_regret.DEFAULT_STRATEGIES)
        assert len(provider) == len(strategy_regret.PROVIDER_STRATEGIES)

    def test_sorted_by_utility_within_side(self):
        result = strategy_regret.run(n_markets=3, n_requests=8)
        for side in ("client", "provider"):
            utilities = [
                row["mean_utility"]
                for row in result.rows
                if row["side"] == side
            ]
            assert utilities == sorted(utilities, reverse=True)


class TestSensitivity:
    def test_rows_cover_grid(self):
        result = sensitivity.run(
            n_requests=40,
            supply_levels=(1.0, 0.25),
            duration_scales=(0.7,),
            seeds=range(1),
        )
        assert len(result.rows) == 2
        assert result.notes

    def test_metrics_in_range(self):
        result = sensitivity.run(
            n_requests=40,
            supply_levels=(0.5,),
            duration_scales=(0.7,),
            seeds=range(2),
        )
        row = result.rows[0]
        assert 0.0 < row["mean_welfare_ratio"] <= 1.5
        assert 0.0 <= row["mean_reduced_pct"] <= 100.0
        assert 0.0 <= row["mean_satisfaction"] <= 1.0


class TestPriceDynamics:
    def test_rounds_reported(self):
        result = price_dynamics.run(horizon=9.0, block_interval=3.0)
        assert len(result.rows) == 3
        for row in result.rows:
            assert row["pending_requests"] >= 0
            assert row["mean_price"] >= 0.0

    def test_surge_raises_demand_ratio(self):
        result = price_dynamics.run(horizon=12.0, block_interval=2.0)
        ratios = [row["demand_supply_ratio"] for row in result.rows]
        # The middle-third surge pushes the ratio above the opening level.
        assert max(ratios[2:]) > ratios[0]


class TestMatchingAblation:
    def test_regimes_present(self):
        result = matching_ablation.run(n_requests=30, seeds=range(2))
        regimes = {row["regime"] for row in result.rows}
        assert regimes == {"ec2-correlated", "heterogeneous"}

    def test_correlated_supply_agrees(self):
        result = matching_ablation.run(n_requests=30, seeds=range(2))
        rates = [
            row["disagreement_rate"]
            for row in result.rows
            if row["regime"] == "ec2-correlated"
        ]
        assert np.mean(rates) < 0.1


class TestCsvExport:
    def _result(self):
        return FigureResult(
            figure="demo",
            title="demo",
            columns=["a", "b"],
            rows=[{"a": 1, "b": 2.5}, {"a": 3, "b": 4.5}],
        )

    def test_write_csv(self, tmp_path):
        path = export.write_csv(self._result(), str(tmp_path))
        assert os.path.basename(path) == "demo.csv"
        with open(path) as handle:
            rows = list(csv.DictReader(handle))
        assert rows[0]["a"] == "1"
        assert rows[1]["b"] == "4.5"

    def test_write_all(self, tmp_path):
        paths = export.write_all([self._result()], str(tmp_path))
        assert len(paths) == 1

    def test_runner_csv_flag(self, tmp_path, capsys):
        assert runner.main(["mechanisms", "--fast", "--csv", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "wrote" in out
        assert (tmp_path / "mechanisms.csv").exists()

    def test_runner_prices_fast(self, capsys):
        assert runner.main(["prices", "--fast"]) == 0
        assert "surge" in capsys.readouterr().out or True
