"""Prometheus exposition rendering, including hostile label values.

Label values come from participant-controlled strings (ids, topics), so
the exporter must escape backslash, double quote, and newline per the
exposition format — otherwise a crafted participant id corrupts the
whole scrape.
"""

from __future__ import annotations

from repro.obs import Observability
from repro.obs.export import (
    _escape_label_value,
    to_prometheus_text,
)
from repro.obs.registry import MetricsRegistry, NULL_REGISTRY


class TestEscaping:
    def test_escape_rules(self):
        assert _escape_label_value("plain") == "plain"
        assert _escape_label_value('say "hi"') == 'say \\"hi\\"'
        assert _escape_label_value("a\\b") == "a\\\\b"
        assert _escape_label_value("line1\nline2") == "line1\\nline2"
        # backslash first: an embedded \n sequence must not double-escape
        assert _escape_label_value("\\n") == "\\\\n"

    def test_hostile_label_values_stay_on_one_line(self):
        registry = MetricsRegistry()
        hostile = 'evil"} fake_metric 99\ninjected 1'
        registry.inc("seals_total", participant=hostile)
        registry.set("depth", 2.0, node="back\\slash")
        text = to_prometheus_text(registry)
        lines = text.splitlines()
        # injection stays inside one quoted label value per series
        assert len(lines) == 2
        # counters render before gauges
        assert (
            'seals_total{participant="evil\\"} fake_metric 99\\ninjected 1"}'
            in lines[0]
        )
        assert 'depth{node="back\\\\slash"} 2.0' == lines[1]

    def test_each_line_parses_as_name_labels_value(self):
        registry = MetricsRegistry()
        registry.inc("c", topic='with"quote')
        registry.observe("h", 0.5, phase="a\nb")
        for line in to_prometheus_text(registry).splitlines():
            series, _, value = line.rpartition(" ")
            float(value)  # the sample value is numeric
            assert series.count("{") == 1
            assert series.endswith('"}')


class TestRendering:
    def test_plain_series_unquoted_names(self):
        registry = MetricsRegistry()
        registry.inc("rounds_total", 3)
        registry.set("last_welfare", 1.25)
        text = to_prometheus_text(registry)
        assert "rounds_total 3.0" in text
        assert "last_welfare 1.25" in text

    def test_histograms_emit_count_and_sum(self):
        registry = MetricsRegistry()
        registry.observe("phase_seconds", 0.25, phase="clear")
        text = to_prometheus_text(registry)
        assert 'phase_seconds_count{phase="clear"} 1' in text
        assert 'phase_seconds_sum{phase="clear"} 0.25' in text

    def test_labeled_view_unwraps_to_base(self):
        obs = Observability("export")
        obs.scoped(mechanism="decloud").registry.inc("trades_total")
        text = to_prometheus_text(obs.registry.labeled(mechanism="decloud"))
        assert text == obs.prometheus_text()
        assert 'trades_total{mechanism="decloud"} 1.0' in text

    def test_empty_and_null_registries_render_empty(self):
        assert to_prometheus_text(MetricsRegistry()) == ""
        assert to_prometheus_text(NULL_REGISTRY) == ""
