"""Fault-injection layer: unreliable networks, Byzantine actors, degradation.

The protocol's claims only mean something if faults can actually occur;
these tests inject them deterministically and assert the two-phase
exposure protocol degrades exactly as designed: faulty bids drop out,
honest bids clear, typed errors fire only when quorum is unreachable.
"""

import warnings

import pytest

from repro.common.errors import (
    ByzantineFaultError,
    EquivocationError,
    InsecureKeyWarning,
    QuorumError,
    RevealTimeoutError,
    ValidationError,
)
from repro.faults import (
    CrashSpec,
    EquivocatingMiner,
    FaultPlan,
    TamperingParticipant,
    UnreliableNetwork,
    WithholdingParticipant,
    detect_equivocation,
    make_partition,
)
from repro.ledger.miner import Miner
from repro.ledger.network import BroadcastNetwork
from repro.protocol.allocator import DecloudAllocator
from repro.protocol.contracts import AgreementState, AllocationContract
from repro.protocol.exposure import ExposureProtocol, Participant
from repro.protocol.settlement import SettlementProcessor, TokenLedger
from repro.sim.chaos import ChaosSpec, run_chaos_point, run_chaos_sweep
from tests.conftest import make_offer, make_request


def _protocol(plan=None, num_miners=3, bits=4, leader_cls=Miner, **kwargs):
    miners = [
        (leader_cls if i == 0 else Miner)(
            miner_id=f"m{i}",
            allocate=DecloudAllocator(),
            difficulty_bits=bits,
        )
        for i in range(num_miners)
    ]
    network = (
        UnreliableNetwork(plan=plan) if plan is not None else BroadcastNetwork()
    )
    return ExposureProtocol(miners=miners, network=network, **kwargs)


def _participant(pid, cls=Participant):
    return cls(participant_id=pid, deterministic=True, seal_seed=b"faults")


def _submit_market(protocol, client_cls=Participant):
    """Three clients, two providers — deep enough that the double
    auction's trade reduction still leaves honest trades when one bid
    drops out.  ``client_cls`` swaps in a Byzantine actor for alice.
    Returns (participants, txids by participant id)."""
    alice = _participant("alice", client_cls)
    anna = _participant("anna")
    ada = _participant("ada")
    bob = _participant("bob")
    ben = _participant("ben")
    txids = {
        "alice": protocol.submit(
            alice, make_request(request_id="ra", client_id="alice", bid=2.0)
        ).txid(),
        "anna": protocol.submit(
            anna, make_request(request_id="rb", client_id="anna", bid=1.5)
        ).txid(),
        "ada": protocol.submit(
            ada, make_request(request_id="rc", client_id="ada", bid=1.0)
        ).txid(),
        "bob": protocol.submit(
            bob, make_offer(offer_id="ob", provider_id="bob", bid=0.4)
        ).txid(),
        "ben": protocol.submit(
            ben, make_offer(offer_id="oc", provider_id="ben", bid=0.6)
        ).txid(),
    }
    return [alice, anna, ada, bob, ben], txids


class TestFaultPlan:
    def test_rejects_bad_rates(self):
        with pytest.raises(ValidationError):
            FaultPlan(drop_rate=1.0)
        with pytest.raises(ValidationError):
            FaultPlan(duplicate_rate=-0.1)
        with pytest.raises(ValidationError):
            FaultPlan(min_delay=2.0, max_delay=1.0)

    def test_rejects_bad_windows(self):
        with pytest.raises(ValidationError):
            CrashSpec(node_id="m0", at=5.0, until=1.0)
        with pytest.raises(ValidationError):
            make_partition(("a",), ("a", "b"))  # overlapping groups
        with pytest.raises(ValidationError):
            make_partition(("a", "b"))  # one group is no partition

    def test_equal_plans_equal_fault_streams(self):
        draws_a = FaultPlan(seed=42).rng().random(8).tolist()
        draws_b = FaultPlan(seed=42).rng().random(8).tolist()
        assert draws_a == draws_b


class TestUnreliableNetwork:
    def _counting_net(self, plan):
        net = UnreliableNetwork(plan=plan)
        received = []
        net.subscribe_node(
            "n0", "t", lambda sender, payload: received.append(payload)
        )
        return net, received

    def test_lossless_plan_delivers_everything(self):
        net, received = self._counting_net(FaultPlan())
        for i in range(10):
            net.broadcast("t", i)
        net.flush()
        assert received == list(range(10))
        assert net.dropped == 0

    def test_drops_are_deterministic(self):
        outcomes = []
        for _ in range(2):
            net, received = self._counting_net(FaultPlan(drop_rate=0.5, seed=7))
            for i in range(50):
                net.broadcast("t", i)
            net.flush()
            outcomes.append(tuple(received))
        assert outcomes[0] == outcomes[1]
        assert 0 < len(outcomes[0]) < 50  # actually lossy, not degenerate

    def test_duplicates_delivered_twice(self):
        net, received = self._counting_net(
            FaultPlan(duplicate_rate=0.99, seed=1)
        )
        net.broadcast("t", "msg")
        net.flush()
        assert received == ["msg", "msg"]
        assert net.duplicated == 1

    def test_delay_reorders_across_broadcasts(self):
        net, received = self._counting_net(
            FaultPlan(min_delay=0.0, max_delay=1.0, seed=3)
        )
        for i in range(20):
            net.broadcast("t", i)
        net.flush()
        assert sorted(received) == list(range(20))
        assert received != list(range(20))  # delivery order != send order

    def test_flush_until_holds_late_messages(self):
        net, received = self._counting_net(
            FaultPlan(min_delay=0.9, max_delay=1.0)
        )
        net.broadcast("t", "late")
        assert net.flush(until=0.5) == 0
        assert received == []
        assert net.pending == 1
        net.flush()
        assert received == ["late"]

    def test_crashed_node_receives_nothing(self):
        net, received = self._counting_net(FaultPlan())
        net.crash_node("n0")
        net.broadcast("t", "lost")
        net.flush()
        assert received == []
        assert net.censored == 1
        net.recover_node("n0")
        net.broadcast("t", "after")
        net.flush()
        assert received == ["after"]

    def test_crashed_sender_is_silent(self):
        net, received = self._counting_net(FaultPlan())
        net.crash_node("chatty")
        net.broadcast("t", "x", sender="chatty")
        net.flush()
        assert received == []

    def test_scheduled_crash_from_plan(self):
        plan = FaultPlan(
            crashes=(CrashSpec(node_id="n0", at=1.0, until=2.0),),
            min_delay=1.2,
            max_delay=1.4,
        )
        net, received = self._counting_net(plan)
        net.broadcast("t", "in-window")  # lands at ~1.3, inside the crash
        net.flush()
        assert received == []
        net.broadcast("t", "recovered")  # lands past the recovery at 2.0
        net.flush()
        assert received == ["recovered"]

    def test_partition_and_heal(self):
        net = UnreliableNetwork(plan=FaultPlan())
        inbox_a, inbox_b = [], []
        net.subscribe_node("a", "t", lambda s, p: inbox_a.append(p))
        net.subscribe_node("b", "t", lambda s, p: inbox_b.append(p))
        net.partition(("a",), ("b",))
        net.broadcast("t", "split", sender="a")
        net.flush()
        assert inbox_a == ["split"]  # own side still reachable
        assert inbox_b == []
        net.heal()
        net.broadcast("t", "joined", sender="a")
        net.flush()
        assert inbox_b == ["joined"]

    def test_reorder_jitter_does_not_warp_clock(self):
        """Regression: reorder jitter must perturb ordering, not the clock.

        Previously ``flush`` advanced ``now`` to the *jittered* delivery
        time, so one reordered copy warped the virtual clock for all
        later traffic — subsequent sends landed inside absolute-time
        crash windows they should never have reached, and delivery fates
        depended on where the driver's flush barriers fell (a lockstep
        round-barrier assumption).
        """
        plan = FaultPlan(
            seed=11,
            min_delay=0.1,
            max_delay=0.1,
            reorder_rate=0.99,
            reorder_jitter=50.0,
            crashes=(CrashSpec(node_id="n0", at=5.0, until=1000.0),),
        )
        net, received = self._counting_net(plan)
        net.broadcast("t", "jittered")
        # The reordered copy is late in *ordering*: it misses an early
        # flush horizon...
        assert net.flush(until=1.0) == 0
        assert net.pending == 1
        # ...but the clock did not jump toward the crash window, so a
        # message sent now (arriving ~1.2, well before the node dies at
        # t=5) must not be censored, and neither must the jittered copy
        # (it *arrived* at 0.2 — only its ordering slot moved).
        net.broadcast("t", "prompt")
        net.flush()
        assert sorted(received) == ["jittered", "prompt"]
        assert net.censored == 0
        assert net.now < 5.0

    def test_messages_log_matches_broadcastnetwork_contract(self):
        net = UnreliableNetwork(plan=FaultPlan(drop_rate=0.9, seed=0))
        net.broadcast("topic-x", "payload", sender="s")
        assert [m.payload for m in net.messages("topic-x")] == ["payload"]


class TestBroadcastNetworkSnapshot:
    def test_subscribe_during_delivery_not_delivered_current_message(self):
        net = BroadcastNetwork()
        late_inbox = []

        def resubscriber(sender, payload):
            net.subscribe("t", lambda s, p: late_inbox.append(p))

        net.subscribe("t", resubscriber)
        net.broadcast("t", "first")  # must not blow up nor reach late_inbox
        assert late_inbox == []
        net.broadcast("t", "second")
        assert late_inbox == ["second"]


class TestParticipantKeys:
    def test_default_keypair_warns(self):
        with pytest.warns(InsecureKeyWarning):
            Participant(participant_id="naive")

    def test_deterministic_optin_is_silent(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error", InsecureKeyWarning)
            Participant(participant_id="sim", deterministic=True)

    def test_fresh_key_is_silent_and_unforgeable(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error", InsecureKeyWarning)
            p = Participant(participant_id="real", fresh_key=True)
        clone = Participant(participant_id="real", deterministic=True)
        assert p.keypair.secret != clone.keypair.secret

    def test_seal_seed_reproduces_txids(self):
        txids = []
        for _ in range(2):
            p = Participant(
                participant_id="alice", deterministic=True, seal_seed=b"s"
            )
            tx = p.seal(make_request(client_id="alice"))
            txids.append(tx.txid())
        assert txids[0] == txids[1]


class TestDegradedRounds:
    def test_acceptance_20pct_drop_one_withholder(self):
        """The PR's acceptance gate: 20% drop + a withholding participant.

        The round must complete, excluding exactly the withheld bid, and
        two identical runs must produce identical outcomes.
        """
        fingerprints = []
        for _ in range(2):
            plan = FaultPlan(seed="acceptance", drop_rate=0.2)
            protocol = _protocol(plan=plan)
            participants, txids = _submit_market(
                protocol, client_cls=WithholdingParticipant
            )
            result = protocol.run_round(participants)
            assert result.excluded_txids == (txids["alice"],)
            matched = {
                m["request_id"]
                for m in result.block.body.allocation["matches"]
            }
            assert "ra" not in matched  # the withheld bid
            assert "rb" in matched  # the honest client still trades
            assert len(result.accepted_by) == 3
            fingerprints.append(
                (result.block.hash(), str(result.block.body.allocation))
            )
        assert fingerprints[0] == fingerprints[1]

    def test_all_reveals_withheld_raises_typed_error(self):
        protocol = _protocol()
        alice = _participant("alice", WithholdingParticipant)
        bob = _participant("bob", WithholdingParticipant)
        protocol.submit(
            alice, make_request(request_id="ra", client_id="alice")
        )
        protocol.submit(bob, make_offer(provider_id="bob"))
        with pytest.raises(RevealTimeoutError):
            protocol.run_round([alice, bob])

    def test_tampered_reveal_excluded_with_evidence(self):
        protocol = _protocol()
        participants, txids = _submit_market(
            protocol, client_cls=TamperingParticipant
        )
        result = protocol.run_round(participants)
        assert result.excluded_txids == (txids["alice"],)
        leader = protocol.miners[0]
        reasons = [reason for _, reason in leader.rejected_reveals]
        assert "commitment mismatch" in reasons

    def test_equivocating_leader_falls_back_to_next_miner(self):
        protocol = _protocol(leader_cls=EquivocatingMiner)
        participants, _ = _submit_market(protocol)
        result = protocol.run_round(participants)
        assert result.failed_proposers == ("m0",)
        assert result.block.body.miner_id == "m1"
        # the honest body carries no Byzantine payload
        assert "subsidy" not in result.block.body.allocation
        assert len(result.accepted_by) >= protocol.quorum

    def test_all_miners_byzantine_raises(self):
        miners = [
            EquivocatingMiner(
                miner_id=f"m{i}",
                allocate=DecloudAllocator(),
                difficulty_bits=4,
            )
            for i in range(2)
        ]
        protocol = ExposureProtocol(miners=miners)
        participants, _ = _submit_market(protocol)
        with pytest.raises(ByzantineFaultError):
            protocol.run_round(participants)

    def test_crashed_majority_raises_quorum_error(self):
        plan = FaultPlan()
        protocol = _protocol(plan=plan)
        network = protocol.network
        network.crash_node("m0")
        network.crash_node("m1")
        with pytest.raises(QuorumError):
            protocol.run_round([])

    def test_partitioned_client_drops_out_of_preamble(self):
        plan = FaultPlan(
            partitions=(
                make_partition(("alice",), ("m0", "m1", "m2")),
            )
        )
        protocol = _protocol(plan=plan)
        participants, txids = _submit_market(protocol)
        result = protocol.run_round(participants)
        block_txids = {
            tx.txid() for tx in result.block.preamble.transactions
        }
        assert txids["alice"] not in block_txids  # never reached any miner
        assert txids["anna"] in block_txids
        assert txids["bob"] in block_txids

    def test_detect_equivocation_from_conflicting_bodies(self):
        miner = EquivocatingMiner(
            miner_id="evil", allocate=DecloudAllocator(), difficulty_bits=4
        )
        alice = _participant("alice")
        tx = alice.seal(make_request(client_id="alice"))
        miner.accept_transaction(tx)
        preamble = miner.build_preamble()
        reveals = tuple(alice.reveals_for(preamble))
        honest, doctored = miner.equivocate(preamble, reveals)
        with pytest.raises(EquivocationError):
            detect_equivocation(preamble, honest, doctored)
        # a single consistent body is not equivocation
        detect_equivocation(preamble, honest, honest)


class TestGossipIngestion:
    def _miner_with_preamble(self):
        miner = Miner(
            miner_id="m", allocate=DecloudAllocator(), difficulty_bits=4
        )
        alice = _participant("alice")
        tx = alice.seal(make_request(client_id="alice"))
        miner.accept_transaction(tx)
        preamble = miner.build_preamble()
        (reveal,) = alice.reveals_for(preamble)
        return miner, preamble, reveal

    def test_duplicate_preamble_is_idempotent(self):
        miner, preamble, _ = self._miner_with_preamble()
        assert miner.accept_preamble(preamble) is True
        assert miner.accept_preamble(preamble) is False
        assert len(miner.preamble_inbox) == 1

    def test_duplicate_reveal_is_idempotent(self):
        miner, preamble, reveal = self._miner_with_preamble()
        miner.accept_preamble(preamble)
        assert miner.accept_reveal(preamble.hash(), reveal) is True
        assert miner.accept_reveal(preamble.hash(), reveal) is False
        assert len(miner.reveal_inbox[preamble.hash()]) == 1

    def test_reveal_before_preamble_is_screened_on_arrival(self):
        miner, preamble, reveal = self._miner_with_preamble()
        # reordered gossip: the reveal races ahead of its preamble
        assert miner.accept_reveal(preamble.hash(), reveal) is False
        assert miner.collected_reveals(preamble) == ()
        miner.accept_preamble(preamble)
        assert miner.collected_reveals(preamble) == (reveal,)


class TestDuplicateDeliverySafety:
    def test_settlement_is_idempotent_per_block(self):
        class _Bid:
            def __init__(self, **kw):
                self.__dict__.update(kw)

        match = _Bid(
            request=_Bid(client_id="cli", request_id="req"),
            offer=_Bid(provider_id="prov"),
            payment=5.0,
        )
        processor = SettlementProcessor(ledger=TokenLedger())
        first = processor.settle_block(
            [match], auto_fund=True, block_hash="b1"
        )
        again = processor.settle_block(
            [match], auto_fund=True, block_hash="b1"
        )
        assert first == again
        assert len(processor.ledger.escrows) == 1
        assert processor.ledger.total_supply() == 5.0

    def test_void_block_releases_suggestions_without_penalty(self):
        protocol = _protocol(num_miners=1)
        participants, _ = _submit_market(protocol)
        result = protocol.run_round(participants)
        chain = protocol.miners[0].chain
        contract = AllocationContract(chain=chain)
        block_hash = result.block.hash()
        contract.register_block(
            block_hash, {m.request.request_id: m.request.client_id
                         for m in result.outcome.matches}
        )
        suggested = contract.agreements(AgreementState.SUGGESTED)
        assert suggested
        client = suggested[0].client_id
        before = contract.reputation.score(client)
        voided = contract.void_block(block_hash)
        assert voided
        assert contract.reputation.score(client) == before  # no penalty
        assert all(
            a.state is AgreementState.VOID
            for a in contract.agreements(AgreementState.VOID)
        )


class TestChaosHarness:
    def test_sweep_is_deterministic(self):
        spec = ChaosSpec(rounds=1, num_clients=4, withholding_clients=1)
        sweep_a = run_chaos_sweep(spec, drop_rates=(0.0, 0.3))
        sweep_b = run_chaos_sweep(spec, drop_rates=(0.0, 0.3))
        for a, b in zip(sweep_a, sweep_b):
            assert (a.welfare, a.excluded_bids, a.messages_dropped) == (
                b.welfare,
                b.excluded_bids,
                b.messages_dropped,
            )

    def test_faultless_point_retains_all_welfare(self):
        spec = ChaosSpec(rounds=1, num_clients=4)
        (point,) = run_chaos_sweep(spec, drop_rates=(0.0,))
        assert point.success_rate == 1.0
        assert point.welfare_retention == pytest.approx(1.0)
        assert point.integrity_failures == 0

    def test_byzantine_point_completes_with_exclusions(self):
        spec = ChaosSpec(
            rounds=1,
            num_clients=4,
            withholding_clients=1,
            equivocating_leader=True,
        )
        point = run_chaos_point(spec, 0.2)
        assert point.success_rate == 1.0
        assert point.excluded_bids >= 1
        assert point.fallback_rounds == 1
        assert point.integrity_failures == 0
