"""Unit tests for feasibility (constraints 8, 10, 11 + flexibility)."""

from repro.common.timewindow import TimeWindow
from repro.market.feasibility import (
    explain_infeasibility,
    feasible_offers,
    is_feasible,
    required_amount,
    resource_feasible,
    temporally_feasible,
)
from tests.conftest import make_offer, make_request


class TestTemporal:
    def test_window_contained(self):
        request = make_request(window=TimeWindow(2, 8), duration=3)
        offer = make_offer(window=TimeWindow(0, 10))
        assert temporally_feasible(request, offer)

    def test_window_overhang_fails(self):
        request = make_request(window=TimeWindow(2, 30), duration=3)
        offer = make_offer(window=TimeWindow(0, 10))
        assert not temporally_feasible(request, offer)

    def test_exact_window_ok(self):
        request = make_request(window=TimeWindow(0, 10), duration=10)
        offer = make_offer(window=TimeWindow(0, 10))
        assert temporally_feasible(request, offer)


class TestResources:
    def test_sufficient(self):
        request = make_request(resources={"cpu": 2, "ram": 4})
        offer = make_offer(resources={"cpu": 4, "ram": 8})
        assert resource_feasible(request, offer)

    def test_insufficient_strict(self):
        request = make_request(resources={"cpu": 8})
        offer = make_offer(resources={"cpu": 4})
        assert not resource_feasible(request, offer)

    def test_missing_strict_resource(self):
        request = make_request(resources={"cpu": 2, "sgx": 1.0})
        offer = make_offer(resources={"cpu": 4})
        assert not resource_feasible(request, offer)

    def test_missing_soft_resource_tolerated(self):
        request = make_request(
            resources={"cpu": 2, "gpu": 1.0},
            significance={"gpu": 0.3},
            flexibility=0.8,
        )
        offer = make_offer(resources={"cpu": 4})
        assert resource_feasible(request, offer)

    def test_no_common_types(self):
        request = make_request(resources={"gpu": 1.0}, significance={"gpu": 0.5}, flexibility=0.9)
        offer = make_offer(resources={"cpu": 4})
        assert not resource_feasible(request, offer)

    def test_flexibility_discounts_soft_resources(self):
        request = make_request(
            resources={"cpu": 10},
            significance={"cpu": 0.5},
            flexibility=0.8,
        )
        # 0.8 * 10 = 8 <= 8: feasible flexible, infeasible strict
        offer = make_offer(resources={"cpu": 8})
        assert resource_feasible(request, offer)
        assert not resource_feasible(request.strict_view(), offer)

    def test_zero_amount_request_ignored(self):
        request = make_request(resources={"cpu": 2, "disk": 0.0})
        offer = make_offer(resources={"cpu": 4, "ram": 8})
        # disk demanded at 0 -> no constraint even though offer lacks disk
        assert resource_feasible(request, offer)


class TestRequiredAmount:
    def test_strict_full(self):
        request = make_request(resources={"cpu": 4})
        assert required_amount(request, "cpu") == 4

    def test_soft_discounted(self):
        request = make_request(
            resources={"cpu": 4}, significance={"cpu": 0.5}, flexibility=0.75
        )
        assert required_amount(request, "cpu") == 3.0

    def test_unknown_resource_zero(self):
        assert required_amount(make_request(), "zz") == 0.0


class TestIsFeasibleAndHelpers:
    def test_full_check(self):
        assert is_feasible(make_request(), make_offer())

    def test_feasible_offers_filters(self):
        request = make_request(resources={"cpu": 6})
        offers = [
            make_offer(offer_id="small", resources={"cpu": 4}),
            make_offer(offer_id="big", resources={"cpu": 8}),
        ]
        assert [o.offer_id for o in feasible_offers(request, offers)] == ["big"]

    def test_explain_infeasibility_lists_reasons(self):
        request = make_request(
            resources={"cpu": 32}, window=TimeWindow(0, 48), duration=4
        )
        offer = make_offer(resources={"cpu": 4}, window=TimeWindow(0, 10))
        reasons = explain_infeasibility(request, offer)
        assert len(reasons) == 2
        assert any("window" in r for r in reasons)
        assert any("insufficient" in r for r in reasons)

    def test_explain_feasible_is_empty(self):
        assert explain_infeasibility(make_request(), make_offer()) == []
