"""Unit tests for the metrics registry (repro.obs.registry)."""

from repro.obs import (
    NULL_OBS,
    NULL_REGISTRY,
    MetricsRegistry,
    NullObservability,
    Observability,
    resolve,
    snapshot_diff,
)
from repro.obs.export import format_snapshot_diff, to_prometheus_text
from repro.obs.registry import series_name


class TestCounters:
    def test_inc_accumulates(self):
        reg = MetricsRegistry()
        reg.inc("hits")
        reg.inc("hits", 2)
        assert reg.counter_value("hits") == 3.0

    def test_labels_separate_series(self):
        reg = MetricsRegistry()
        reg.inc("bids", 3, side="request")
        reg.inc("bids", 5, side="offer")
        assert reg.counter_value("bids", side="request") == 3.0
        assert reg.counter_value("bids", side="offer") == 5.0
        assert reg.counter_value("bids") == 0.0

    def test_label_order_is_irrelevant(self):
        reg = MetricsRegistry()
        reg.inc("m", 1, a="1", b="2")
        assert reg.counter_value("m", b="2", a="1") == 1.0

    def test_float_counters_allowed(self):
        reg = MetricsRegistry()
        reg.inc("welfare", 1.25)
        reg.inc("welfare", 0.75)
        assert reg.counter_value("welfare") == 2.0


class TestGauges:
    def test_set_holds_last_exact_value(self):
        reg = MetricsRegistry()
        reg.set("last_welfare", 0.1 + 0.2)
        reg.set("last_welfare", 7.25)
        assert reg.gauge_value("last_welfare") == 7.25

    def test_default_for_missing_series(self):
        reg = MetricsRegistry()
        assert reg.gauge_value("nope") == 0.0
        assert reg.gauge_value("nope", default=-1.0) == -1.0


class TestHistograms:
    def test_stats(self):
        reg = MetricsRegistry()
        for value in (0.5, 1.5, 4.0):
            reg.observe("price", value)
        stats = reg.histogram_stats("price")
        assert stats["count"] == 3
        assert stats["sum"] == 6.0
        assert stats["min"] == 0.5
        assert stats["max"] == 4.0

    def test_empty_stats(self):
        reg = MetricsRegistry()
        assert reg.histogram_stats("nothing") == {"count": 0, "sum": 0.0}


class TestLabeledView:
    def test_stamps_labels_on_every_kind(self):
        reg = MetricsRegistry()
        view = reg.labeled(mechanism="decloud")
        view.inc("trades", 2)
        view.set("last", 4.0)
        view.observe("price", 1.0)
        assert reg.counter_value("trades", mechanism="decloud") == 2.0
        assert reg.gauge_value("last", mechanism="decloud") == 4.0
        assert reg.histogram_stats("price", mechanism="decloud")["count"] == 1

    def test_nested_labels_merge(self):
        reg = MetricsRegistry()
        view = reg.labeled(mechanism="decloud").labeled(side="request")
        view.inc("bids")
        assert reg.counter_value(
            "bids", mechanism="decloud", side="request"
        ) == 1.0

    def test_call_site_labels_override(self):
        reg = MetricsRegistry()
        view = reg.labeled(side="request")
        view.inc("bids", side="offer")
        assert reg.counter_value("bids", side="offer") == 1.0


class TestSnapshot:
    def test_snapshot_keys_render_labels(self):
        reg = MetricsRegistry()
        reg.inc("bids", 2, side="request")
        snap = reg.snapshot()
        assert snap["counters"] == {"bids{side=request}": 2.0}
        assert series_name("bids", (("side", "request"),)) == "bids{side=request}"

    def test_snapshot_diff(self):
        reg = MetricsRegistry()
        reg.inc("rounds")
        reg.set("depth", 5)
        before = reg.snapshot()
        reg.inc("rounds", 2)
        reg.set("depth", 3)
        reg.observe("price", 1.0)
        diff = snapshot_diff(before, reg.snapshot())
        assert diff["counters"] == {"rounds": 2.0}
        assert diff["gauges"] == {"depth": 3.0}
        assert diff["histograms"]["price"]["count"] == 1

    def test_snapshot_diff_unchanged_is_empty(self):
        reg = MetricsRegistry()
        reg.inc("rounds")
        snap = reg.snapshot()
        diff = snapshot_diff(snap, reg.snapshot())
        assert diff == {"counters": {}, "gauges": {}, "histograms": {}}

    def test_format_snapshot_diff_renders(self):
        reg = MetricsRegistry()
        before = reg.snapshot()
        reg.inc("rounds")
        text = format_snapshot_diff(snapshot_diff(before, reg.snapshot()))
        assert "rounds" in text
        assert format_snapshot_diff(
            snapshot_diff(before, before)
        ) == "  (no changes)"


class TestPrometheusExport:
    def test_series_quoting_and_histogram_pairs(self):
        reg = MetricsRegistry()
        reg.inc("trades", 3, mechanism="decloud")
        reg.set("depth", 2)
        reg.observe("price", 1.5)
        text = to_prometheus_text(reg)
        assert 'trades{mechanism="decloud"} 3.0' in text
        assert "depth 2.0" in text
        assert "price_count 1" in text
        assert "price_sum 1.5" in text

    def test_empty_registry_renders_empty(self):
        assert to_prometheus_text(MetricsRegistry()) == ""


class TestNullPath:
    def test_null_registry_is_inert(self):
        NULL_REGISTRY.inc("x")
        NULL_REGISTRY.set("x", 1.0)
        NULL_REGISTRY.observe("x", 1.0)
        assert NULL_REGISTRY.counter_value("x") == 0.0
        assert NULL_REGISTRY.series() == []
        assert NULL_REGISTRY.labeled(a="b") is NULL_REGISTRY
        assert NULL_REGISTRY.to_prometheus_text() == ""

    def test_resolve(self):
        assert resolve(None) is NULL_OBS
        obs = Observability("t")
        assert resolve(obs) is obs

    def test_null_observability_scoped_is_self(self):
        assert NULL_OBS.scoped(mechanism="decloud") is NULL_OBS
        assert not NULL_OBS.enabled
        assert isinstance(NULL_OBS, NullObservability)


class TestObservabilityBundle:
    def test_scoped_shares_tracer_and_timer(self):
        obs = Observability("run")
        view = obs.scoped(mechanism="decloud")
        assert view.tracer is obs.tracer
        assert view.timer is obs.timer
        view.registry.inc("rounds")
        assert obs.registry.counter_value(
            "rounds", mechanism="decloud"
        ) == 1.0

    def test_prometheus_text_unwraps_scoped_registry(self):
        obs = Observability("run")
        view = obs.scoped(mechanism="decloud")
        view.registry.inc("rounds")
        assert "rounds" in view.prometheus_text()
