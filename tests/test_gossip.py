"""Unit tests for the lossy gossip network."""

import pytest

from repro.common.errors import ValidationError
from repro.ledger.gossip import GossipNetwork


def _collector(network, node_id, topic):
    inbox = []
    network.subscribe(node_id, topic, lambda s, p: inbox.append((s, p)))
    return inbox


class TestDelivery:
    def test_lossless_delivers_all(self):
        network = GossipNetwork(drop_rate=0.0, seed=1)
        inbox_a = _collector(network, "a", "t")
        inbox_b = _collector(network, "b", "t")
        for i in range(10):
            network.broadcast("t", i)
        network.run_until()
        assert [p for _, p in inbox_a] and len(inbox_a) == 10
        assert len(inbox_b) == 10

    def test_delivery_in_time_order(self):
        network = GossipNetwork(seed=2, min_delay=0.0, max_delay=1.0)
        times = []
        network.subscribe("a", "t", lambda s, p: times.append(network.now))
        for i in range(20):
            network.broadcast("t", i)
        network.run_until()
        assert times == sorted(times)

    def test_deadline_limits_delivery(self):
        network = GossipNetwork(seed=3, min_delay=0.5, max_delay=1.5)
        inbox = _collector(network, "a", "t")
        for i in range(10):
            network.broadcast("t", i)
        network.run_until(deadline=0.4)
        assert inbox == []
        assert network.pending == 10
        network.run_until()
        assert len(inbox) == 10

    def test_topic_isolation(self):
        network = GossipNetwork(seed=4)
        inbox = _collector(network, "a", "only-this")
        network.broadcast("other", "x")
        network.run_until()
        assert inbox == []

    def test_deterministic_given_seed(self):
        def run(seed):
            network = GossipNetwork(drop_rate=0.3, seed=seed)
            inbox = _collector(network, "a", "t")
            for i in range(50):
                network.broadcast("t", i)
            network.run_until()
            return [p for _, p in inbox]

        assert run(7) == run(7)
        assert run(7) != run(8)


class TestLoss:
    def test_drop_rate_statistics(self):
        network = GossipNetwork(drop_rate=0.5, seed=5)
        network.register_node("a")
        for i in range(1000):
            network.broadcast("t", i)
        total = network.dropped + network.pending
        assert total == 1000
        assert 400 <= network.dropped <= 600

    def test_zero_drop_loses_nothing(self):
        network = GossipNetwork(drop_rate=0.0, seed=6)
        network.register_node("a")
        for i in range(100):
            network.broadcast("t", i)
        assert network.dropped == 0

    def test_invalid_params(self):
        with pytest.raises(ValidationError):
            GossipNetwork(drop_rate=1.0)
        with pytest.raises(ValidationError):
            GossipNetwork(min_delay=-1.0)
        with pytest.raises(ValidationError):
            GossipNetwork(min_delay=2.0, max_delay=1.0)


class TestProtocolOverLossyGossip:
    def test_lost_reveal_drops_only_that_bid(self):
        """A participant whose reveal is lost silently leaves the round."""
        from repro.ledger.miner import Miner
        from repro.protocol.allocator import DecloudAllocator
        from repro.protocol.exposure import Participant
        from tests.conftest import make_offer, make_request

        miner = Miner(
            miner_id="m", allocate=DecloudAllocator(), difficulty_bits=4
        )
        network = GossipNetwork(drop_rate=0.0, seed=9)
        network.subscribe(
            "m", "bids", lambda s, tx: miner.accept_transaction(tx)
        )

        alice = Participant(participant_id="alice")
        anna = Participant(participant_id="anna")
        bob = Participant(participant_id="bob")
        bids = [
            (alice, make_request(request_id="ra", client_id="alice", bid=2.0)),
            (anna, make_request(request_id="rb", client_id="anna", bid=1.9)),
            (bob, make_offer(provider_id="bob", bid=0.4)),
        ]
        for participant, bid in bids:
            network.broadcast("bids", participant.seal(bid))
        network.run_until()

        preamble = miner.build_preamble()
        assert len(preamble.transactions) == 3

        # Reveal phase over a lossy channel: drop anna's key.
        reveals = []
        for participant, _ in bids:
            for reveal in participant.reveals_for(preamble):
                if participant is not anna:
                    reveals.append(reveal)
        body = miner.build_body(preamble, tuple(reveals))
        matched = {m["request_id"] for m in body.allocation["matches"]}
        assert "rb" not in matched  # anna's bid stayed sealed
