"""Unit tests for the async runtime: scheduler, transport, reactor, sockets.

The heavyweight guarantees (lockstep bit-equality across schedules and
fault plans, trace determinism) live in the differential and property
suites; these tests pin the building blocks — seeded scheduling,
fault-keyed transport fates, backpressure, pipelining overlap — plus a
direct single/multi-round equivalence smoke against the lockstep engine.
"""

import asyncio

import pytest

from repro.core.outcome import canonical_outcome
from repro.faults.plan import CrashSpec, FaultPlan
from repro.ledger.miner import Miner
from repro.ledger.network import BroadcastNetwork
from repro.protocol import messages
from repro.protocol.allocator import DecloudAllocator
from repro.protocol.exposure import ExposureProtocol, Participant
from repro.runtime import (
    DeterministicScheduler,
    DeterministicTransport,
    RoundInput,
    Runtime,
    RuntimeCosts,
)
from repro.runtime.sockets import AsyncioBroadcastHub, AsyncioSocketTransport
from tests.conftest import make_offer, make_request


def _miners(n=3, bits=4, prefix="m"):
    return [
        Miner(
            miner_id=f"{prefix}{i}",
            allocate=DecloudAllocator(),
            difficulty_bits=bits,
        )
        for i in range(n)
    ]


def _participant(pid):
    return Participant(
        participant_id=pid, deterministic=True, seal_seed=b"runtime"
    )


def _market_bids():
    """Submission order shared by both engines (3 clients, 2 providers)."""
    return [
        ("alice", make_request(request_id="ra", client_id="alice", bid=2.0)),
        ("anna", make_request(request_id="rb", client_id="anna", bid=1.5)),
        ("ada", make_request(request_id="rc", client_id="ada", bid=1.0)),
        ("bob", make_offer(offer_id="ob", provider_id="bob", bid=0.4)),
        ("ben", make_offer(offer_id="oc", provider_id="ben", bid=0.6)),
    ]


def _lockstep_round(rounds=1):
    protocol = ExposureProtocol(miners=_miners(), network=BroadcastNetwork())
    # one participant object per id across all rounds, mirroring the
    # runtime side below (seal counters must line up between engines)
    participants = {pid: _participant(pid) for pid, _ in _market_bids()}
    results = []
    for _ in range(rounds):
        for pid, bid in _market_bids():
            protocol.submit(participants[pid], bid)
        results.append(protocol.run_round(list(participants.values())))
    return results


def _runtime_rounds(
    rounds=1, schedule_seed=0, pipeline=True, plan=None, spacing=0.0
):
    runtime = Runtime(
        _miners(), plan=plan, schedule_seed=schedule_seed, pipeline=pipeline
    )
    participants = {pid: _participant(pid) for pid, _ in _market_bids()}
    bids = _market_bids()
    inputs = [
        RoundInput(
            submissions=tuple(
                (participants[pid], bid) for pid, bid in bids
            ),
            offsets=tuple(i * spacing for i in range(len(bids))),
        )
        for _ in range(rounds)
    ]
    return runtime.run(inputs), runtime


class TestScheduler:
    def test_same_seed_same_order(self):
        def trace_for(seed):
            sched = DeterministicScheduler(seed=seed)
            order = []
            for i in range(10):
                sched.call_later(0.0, lambda i=i: order.append(i))
            sched.run()
            return order

        assert trace_for(7) == trace_for(7)

    def test_different_seeds_permute_cotemporal_events(self):
        orders = set()
        for seed in range(8):
            sched = DeterministicScheduler(seed=seed)
            order = []
            for i in range(6):
                sched.call_later(0.0, lambda i=i: order.append(i))
            sched.run()
            orders.add(tuple(order))
        assert len(orders) > 1  # seeds genuinely explore schedules

    def test_time_ordering_beats_tiebreak(self):
        sched = DeterministicScheduler(seed=0)
        order = []
        sched.call_later(2.0, lambda: order.append("late"))
        sched.call_later(1.0, lambda: order.append("early"))
        sched.run()
        assert order == ["early", "late"]
        assert sched.now == 2.0

    def test_cancel(self):
        sched = DeterministicScheduler(seed=0)
        order = []
        handle = sched.call_later(1.0, lambda: order.append("cancelled"))
        sched.call_later(2.0, lambda: order.append("kept"))
        sched.cancel(handle)
        sched.run()
        assert order == ["kept"]


class TestDeterministicTransport:
    def _bus(self, plan=None, **kwargs):
        sched = DeterministicScheduler(seed=1)
        bus = DeterministicTransport(sched, plan=plan, **kwargs)
        inbox = []
        bus.subscribe_node("n0", "t", lambda s, p: inbox.append(p))
        return sched, bus, inbox

    def test_faultless_plan_delivers_everything(self):
        sched, bus, inbox = self._bus()
        for i in range(10):
            bus.broadcast("t", i)
        sched.run()
        assert sorted(inbox) == list(range(10))
        assert bus.dropped == 0

    def test_keyed_fates_are_independent_of_send_order(self):
        """The same logical key draws the same fate at any stream position.

        This is the property crash-recovery replay rests on: a
        continuation re-broadcasts the surviving suffix of a run, so
        global send order differs — fates must not.
        """
        def fates(keys):
            sched = DeterministicScheduler(seed=1)
            bus = DeterministicTransport(
                sched, plan=FaultPlan(seed=5, drop_rate=0.5)
            )
            inbox = []
            bus.subscribe_node("n0", "t", lambda s, p: inbox.append(p))
            for key in keys:
                bus.broadcast("t", key, key=key)
            sched.run()
            return set(inbox)

        keys = [f"k{i}" for i in range(30)]
        full = fates(keys)
        suffix = fates(keys[10:])
        assert 0 < len(full) < 30  # actually lossy
        assert suffix == {k for k in full if k in keys[10:]}

    def test_crash_window_censors_at_arrival_time(self):
        plan = FaultPlan(
            min_delay=1.2,
            max_delay=1.4,
            crashes=(CrashSpec(node_id="n0", at=1.0, until=2.0),),
        )
        sched, bus, inbox = self._bus(plan=plan)
        bus.broadcast("t", "in-window", key="a")  # lands ~1.3: censored
        sched.run()
        assert inbox == []
        assert bus.censored == 1
        bus.broadcast("t", "recovered", key="b")  # lands past 2.0
        sched.run()
        assert inbox == ["recovered"]

    def test_backpressure_defers_and_eventually_delivers(self):
        sched, bus, inbox = self._bus(inbox_capacity=2)
        for i in range(10):
            bus.broadcast("t", i)
        sched.run()
        assert sorted(inbox) == list(range(10))  # nothing lost
        assert bus.deferred > 0  # but the edge genuinely pushed back
        assert bus.inbox_high_watermark <= 2

    def test_partition_and_heal(self):
        sched = DeterministicScheduler(seed=0)
        bus = DeterministicTransport(sched)
        inbox_a, inbox_b = [], []
        bus.subscribe_node("a", "t", lambda s, p: inbox_a.append(p))
        bus.subscribe_node("b", "t", lambda s, p: inbox_b.append(p))
        bus.partition(("a",), ("b",))
        bus.broadcast("t", "split", sender="a")
        sched.run()
        assert inbox_a == ["split"] and inbox_b == []
        bus.heal()
        bus.broadcast("t", "joined", sender="a")
        sched.run()
        assert inbox_b == ["joined"]


class TestRuntimeEngine:
    def test_single_round_bit_identical_to_lockstep(self):
        (lockstep,) = _lockstep_round(rounds=1)
        report, _ = _runtime_rounds(rounds=1)
        (run,) = report.committed
        assert run.block.hash() == lockstep.block.hash()
        assert canonical_outcome(run.outcome) == canonical_outcome(
            lockstep.outcome
        )
        assert run.excluded_txids == lockstep.excluded_txids
        assert sorted(run.accepted_by) == sorted(lockstep.accepted_by)

    def test_three_rounds_pipelined_chain_matches_lockstep(self):
        lockstep = _lockstep_round(rounds=3)
        report, runtime = _runtime_rounds(rounds=3)
        assert len(report.committed) == 3
        for lock, run in zip(lockstep, report.committed):
            assert run.block.hash() == lock.block.hash()
        # the pipelined runtime's chains equal the lockstep chains
        assert report.overlap_rounds == 2  # rounds 1 and 2 overlapped
        for miner in runtime.miners:
            assert miner.chain.tip_hash == lockstep[-1].block.hash()

    def test_schedule_seeds_do_not_change_outcomes(self):
        hashes = set()
        for seed in range(5):
            report, _ = _runtime_rounds(rounds=2, schedule_seed=seed)
            hashes.add(tuple(r.block.hash() for r in report.committed))
        assert len(hashes) == 1

    def test_pipelining_improves_virtual_throughput(self):
        # Sustained arrivals: each round's bids trickle in over ~1.2
        # virtual seconds, comparable to the mine+verify+commit span —
        # the regime pipelining exists for.
        pipelined, _ = _runtime_rounds(rounds=4, pipeline=True, spacing=0.3)
        lockstepped, _ = _runtime_rounds(rounds=4, pipeline=False, spacing=0.3)
        assert len(pipelined.committed) == len(lockstepped.committed) == 4
        assert pipelined.overlap_rounds == 3
        assert lockstepped.overlap_rounds == 0
        assert pipelined.virtual_time < lockstepped.virtual_time
        # identical blocks either way: pipelining is pure schedule
        for fast, slow in zip(pipelined.committed, lockstepped.committed):
            assert fast.block.hash() == slow.block.hash()

    def test_withheld_reveal_excluded_and_round_commits(self):
        from repro.faults.actors import WithholdingParticipant

        runtime = Runtime(_miners(), schedule_seed=3)
        withholder = WithholdingParticipant(
            participant_id="alice", deterministic=True, seal_seed=b"runtime"
        )
        others = {
            pid: _participant(pid) for pid, _ in _market_bids() if pid != "alice"
        }
        submissions = tuple(
            (withholder if pid == "alice" else others[pid], bid)
            for pid, bid in _market_bids()
        )
        report = runtime.run([RoundInput(submissions=submissions)])
        (result,) = report.committed
        assert len(result.excluded_txids) == 1
        matched = {
            m["request_id"] for m in result.block.body.allocation["matches"]
        }
        assert "ra" not in matched and "rb" in matched

    def test_equivocating_leader_falls_back(self):
        from repro.faults.actors import EquivocatingMiner

        miners = _miners()
        miners[0] = EquivocatingMiner(
            miner_id="m0", allocate=DecloudAllocator(), difficulty_bits=4
        )
        runtime = Runtime(miners, schedule_seed=0)
        participants = {pid: _participant(pid) for pid, _ in _market_bids()}
        report = runtime.run(
            [
                RoundInput(
                    submissions=tuple(
                        (participants[pid], bid)
                        for pid, bid in _market_bids()
                    )
                )
            ]
        )
        (result,) = report.committed
        assert result.failed_proposers == ("m0",)
        assert result.block.body.miner_id == "m1"

    def test_crashed_majority_aborts_with_quorum_reason(self):
        runtime = Runtime(_miners(), schedule_seed=0)
        runtime.transport.crash_node("m0")
        runtime.transport.crash_node("m1")
        report = runtime.run([RoundInput(submissions=())])
        assert report.committed == []
        assert report.rounds[0].error == "QuorumError"


class TestSocketTransport:
    def test_bid_submission_over_real_sockets(self):
        async def scenario():
            hub = AsyncioBroadcastHub()
            await hub.start()
            sender = AsyncioSocketTransport("127.0.0.1", hub.port)
            receiver = AsyncioSocketTransport("127.0.0.1", hub.port)
            await sender.connect()
            await receiver.connect()
            got = []
            receiver.subscribe_node(
                "m0", messages.TOPIC_BIDS, lambda s, p: got.append(p)
            )
            alice = _participant("alice")
            tx = alice.seal(make_request(client_id="alice"))
            await sender.broadcast(
                messages.TOPIC_BIDS,
                messages.BidSubmission(transaction=tx, sequence=0),
                sender="alice",
            )
            await asyncio.wait_for(receiver.pump(1), timeout=5.0)
            await sender.close()
            await receiver.close()
            await hub.stop()
            return got, tx

        got, tx = asyncio.run(scenario())
        assert len(got) == 1
        assert got[0].transaction.txid() == tx.txid()
        assert got[0].sequence == 0
