"""Unit tests for cluster formation (Alg. 2)."""

from repro.core.clustering import (
    Cluster,
    build_clusters,
    clusters_by_offer,
    update_clusters,
)
from repro.core.config import AuctionConfig
from tests.conftest import make_offer, make_request


class TestUpdateClusters:
    def test_creates_cluster_for_new_set(self):
        clusters = []
        update_clusters(clusters, "r1", frozenset({"o1", "o2"}))
        assert len(clusters) == 1
        assert clusters[0].request_ids == {"r1"}

    def test_same_set_reuses_cluster(self):
        clusters = []
        update_clusters(clusters, "r1", frozenset({"o1", "o2"}))
        update_clusters(clusters, "r2", frozenset({"o1", "o2"}))
        assert len(clusters) == 1
        assert clusters[0].request_ids == {"r1", "r2"}

    def test_subset_receives_request(self):
        clusters = [Cluster(offer_ids=frozenset({"o1"}), request_ids={"r0"})]
        update_clusters(clusters, "r1", frozenset({"o1", "o2"}))
        subset = next(c for c in clusters if c.offer_ids == {"o1"})
        assert "r1" in subset.request_ids

    def test_superset_requests_folded_into_subset(self):
        clusters = []
        update_clusters(clusters, "r-wide", frozenset({"o1", "o2", "o3"}))
        update_clusters(clusters, "r-narrow", frozenset({"o1", "o2"}))
        narrow = next(c for c in clusters if c.offer_ids == {"o1", "o2"})
        # The wide request can also be served by the narrow offer set.
        assert narrow.request_ids == {"r-wide", "r-narrow"}

    def test_intersection_cluster_created(self):
        clusters = []
        update_clusters(clusters, "r1", frozenset({"o1", "o2", "o3"}))
        update_clusters(clusters, "r2", frozenset({"o2", "o3", "o4"}))
        intersection = next(
            (c for c in clusters if c.offer_ids == {"o2", "o3"}), None
        )
        assert intersection is not None
        assert "r2" in intersection.request_ids
        assert "r1" in intersection.request_ids

    def test_singleton_intersection_not_created(self):
        clusters = []
        update_clusters(clusters, "r1", frozenset({"o1", "o2"}))
        update_clusters(clusters, "r2", frozenset({"o2", "o9"}))
        assert not any(c.offer_ids == {"o2"} for c in clusters)

    def test_existing_intersection_reused(self):
        clusters = []
        update_clusters(clusters, "r1", frozenset({"o1", "o2", "o3"}))
        update_clusters(clusters, "r2", frozenset({"o2", "o3", "o4"}))
        count = len(clusters)
        update_clusters(clusters, "r3", frozenset({"o2", "o3", "o5"}))
        intersection = next(c for c in clusters if c.offer_ids == {"o2", "o3"})
        assert "r3" in intersection.request_ids
        # o2/o3 intersection existed; only the new best set is added.
        assert len(clusters) == count + 1

    def test_empty_best_set_ignored(self):
        clusters = []
        update_clusters(clusters, "r1", frozenset())
        assert clusters == []


class TestBuildClusters:
    def test_requests_without_feasible_offer_are_orphans(self):
        requests = [
            make_request(request_id="fits", resources={"cpu": 2}),
            make_request(request_id="huge", resources={"cpu": 999}),
        ]
        offers = [make_offer(resources={"cpu": 8})]
        clusters, orphans = build_clusters(requests, offers, AuctionConfig())
        assert [r.request_id for r in orphans] == ["huge"]
        assert any("fits" in c.request_ids for c in clusters)

    def test_similar_requests_share_cluster(self):
        requests = [
            make_request(request_id=f"r{i}", resources={"cpu": 2, "ram": 4})
            for i in range(4)
        ]
        offers = [
            make_offer(offer_id=f"o{i}", resources={"cpu": 4, "ram": 8})
            for i in range(2)
        ]
        clusters, orphans = build_clusters(requests, offers, AuctionConfig())
        assert not orphans
        assert len(clusters) == 1
        assert clusters[0].request_ids == {f"r{i}" for i in range(4)}

    def test_submission_order_processed(self):
        # Clusters must not depend on list order, only on submit_time.
        early = make_request(request_id="early", submit_time=0.0)
        late = make_request(request_id="late", submit_time=9.0)
        offers = [make_offer()]
        a, _ = build_clusters([late, early], offers, AuctionConfig())
        b, _ = build_clusters([early, late], offers, AuctionConfig())
        assert [c.offer_ids for c in a] == [c.offer_ids for c in b]
        assert [c.request_ids for c in a] == [c.request_ids for c in b]

    def test_clusters_by_offer_index(self):
        clusters = [
            Cluster(offer_ids=frozenset({"o1", "o2"}), request_ids={"r1"}),
            Cluster(offer_ids=frozenset({"o2"}), request_ids={"r2"}),
        ]
        index = clusters_by_offer(clusters)
        assert len(index["o2"]) == 2
        assert len(index["o1"]) == 1
