"""Unit tests for welfare accounting and outcome bookkeeping."""

import pytest

from repro.common.errors import InfeasibleMatchError, ValidationError
from repro.core.config import AuctionConfig
from repro.core.outcome import (
    AuctionOutcome,
    Match,
    utility_of_client,
    utility_of_provider,
)
from repro.core.welfare import (
    pair_welfare,
    resource_fraction,
    satisfaction,
    total_welfare,
)
from tests.conftest import make_offer, make_request


class TestResourceFraction:
    def test_eq6_formula(self):
        request = make_request(
            resources={"cpu": 2, "ram": 8}, duration=6
        )
        offer = make_offer(resources={"cpu": 4, "ram": 32})  # span 24
        # time share 6/24 = 0.25; mean(2/4, 8/32) = 0.375 -> 0.09375
        assert resource_fraction(request, offer) == pytest.approx(0.09375)

    def test_zero_capacity_types_skipped(self):
        request = make_request(resources={"cpu": 2, "sgx": 1.0}, duration=6)
        offer = make_offer(resources={"cpu": 4, "sgx": 0.0})
        # sgx has 0 capacity -> only cpu ratio counts
        assert resource_fraction(request, offer) == pytest.approx(
            (6 / 24) * (2 / 4)
        )

    def test_disjoint_types_raise(self):
        request = make_request(resources={"gpu": 1.0}, significance={"gpu": 0.5})
        offer = make_offer(resources={"cpu": 4})
        with pytest.raises(InfeasibleMatchError):
            resource_fraction(request, offer)


class TestPairWelfare:
    def test_default_uses_bids(self):
        request = make_request(bid=5.0, duration=6)
        offer = make_offer(bid=2.0)
        expected = 5.0 - resource_fraction(request, offer) * 2.0
        assert pair_welfare(request, offer) == pytest.approx(expected)

    def test_explicit_values_override(self):
        request = make_request(bid=5.0, duration=6)
        offer = make_offer(bid=2.0)
        welfare = pair_welfare(request, offer, value=10.0, cost=0.0)
        assert welfare == pytest.approx(10.0)

    def test_total_welfare_sums(self):
        request = make_request(bid=5.0)
        offer = make_offer(bid=2.0)
        assert total_welfare([(request, offer)] * 3) == pytest.approx(
            3 * pair_welfare(request, offer)
        )


class TestSatisfaction:
    def test_basic(self):
        assert satisfaction(3, 4) == 0.75

    def test_empty(self):
        assert satisfaction(0, 0) == 0.0


class TestOutcome:
    def _outcome(self):
        outcome = AuctionOutcome()
        r1 = make_request(request_id="r1", client_id="c1", bid=5.0)
        r2 = make_request(request_id="r2", client_id="c2", bid=4.0)
        offer = make_offer(offer_id="o1", provider_id="p1", bid=1.0)
        outcome.matches.append(
            Match(request=r1, offer=offer, payment=2.0, unit_price=0.5)
        )
        outcome.matches.append(
            Match(request=r2, offer=offer, payment=1.5, unit_price=0.5)
        )
        outcome.unmatched_requests.append(
            make_request(request_id="r3", client_id="c3")
        )
        return outcome

    def test_revenues_grouped_by_offer(self):
        outcome = self._outcome()
        assert outcome.revenues() == {"o1": 3.5}

    def test_total_payments(self):
        assert self._outcome().total_payments == pytest.approx(3.5)

    def test_client_utilities(self):
        utilities = self._outcome().client_utilities()
        assert utilities["r1"] == pytest.approx(3.0)
        assert utilities["r2"] == pytest.approx(2.5)

    def test_satisfaction_counts_all_buckets(self):
        assert self._outcome().satisfaction == pytest.approx(2 / 3)

    def test_reduced_fraction(self):
        outcome = self._outcome()
        outcome.reduced_requests.append(
            make_request(request_id="r4", client_id="c4")
        )
        assert outcome.reduced_trade_fraction == pytest.approx(1 / 3)

    def test_match_for(self):
        outcome = self._outcome()
        assert outcome.match_for("r1") is outcome.matches[0]
        assert outcome.match_for("zz") is None

    def test_payload_sorted_and_rounded(self):
        payload = self._outcome().to_payload()
        ids = [m["request_id"] for m in payload["matches"]]
        assert ids == sorted(ids)
        assert payload["unmatched_requests"] == ["r3"]

    def test_utility_of_client_unallocated_zero(self):
        assert utility_of_client(self._outcome(), "nope", true_value=9.0) == 0.0

    def test_utility_of_client_allocated(self):
        assert utility_of_client(
            self._outcome(), "r1", true_value=5.0
        ) == pytest.approx(3.0)

    def test_utility_of_provider(self):
        outcome = self._outcome()
        utility = utility_of_provider(outcome, "p1", {"o1": 1.0})
        fraction = sum(m.fraction for m in outcome.matches)
        assert utility == pytest.approx(3.5 - fraction * 1.0)

    def test_utility_of_other_provider_zero(self):
        assert utility_of_provider(self._outcome(), "nobody", {}) == 0.0


class TestConfig:
    def test_benchmark_flags(self):
        config = AuctionConfig.benchmark()
        assert not config.enable_trade_reduction
        assert not config.enable_randomization
        assert not config.enforce_price_consistency

    def test_benchmark_overrides(self):
        config = AuctionConfig.benchmark(cluster_breadth=9)
        assert config.cluster_breadth == 9

    def test_invalid_breadth(self):
        with pytest.raises(ValidationError):
            AuctionConfig(cluster_breadth=0)

    def test_invalid_epsilon(self):
        with pytest.raises(ValidationError):
            AuctionConfig(price_epsilon=-1.0)
