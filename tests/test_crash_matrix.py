"""The crash-matrix differential: recovery is outcome-invisible.

The central durability guarantee of ``repro.store``: kill the durable
node at ANY write-ahead record boundary — with a clean, torn, or
corrupted final frame — restart it from (snapshot, valid log prefix),
and the supervised run's committed outcomes, chain tip, and ledger
state are bit-identical (``canonical_outcome`` / exact digests) to the
uninterrupted run, with zero monitor violations.
"""

import pytest

from repro.sim.chaos import (
    ChaosSpec,
    CrashMatrixResult,
    run_crash_matrix,
    run_durable_scenario,
)
from repro.faults.crash import CrashPoint

#: deliberately degraded (one withholder) but network-deterministic —
#: the differential contract needs the replayed round to see the exact
#: message stream the first attempt saw
MATRIX_SPEC = ChaosSpec(
    num_clients=2,
    num_providers=1,
    num_miners=3,
    rounds=1,
    seed=5,
    withholding_clients=1,
    max_delay=0.0,
)


@pytest.fixture(scope="module")
def matrix() -> CrashMatrixResult:
    return run_crash_matrix(MATRIX_SPEC, snapshot_every=1)


class TestCrashMatrix:
    def test_every_boundary_covered_in_every_mode(self, matrix):
        assert matrix.reference.append_count > 0
        assert len(matrix.points) == matrix.reference.append_count * 3
        assert all(p.fired for p in matrix.points)
        assert all(p.crashes >= 1 for p in matrix.points)

    def test_reference_run_is_clean(self, matrix):
        assert matrix.reference.crashes == 0
        assert matrix.reference.monitor_alerts == 0
        assert all(o is not None for o in matrix.reference.outcomes)

    def test_all_crash_points_recover_bit_identically(self, matrix):
        assert matrix.all_match, "\n".join(
            f"at_append={p.at_append} mode={p.mode}: {p.detail}"
            for p in matrix.mismatches
        )

    def test_torn_and_corrupt_tails_were_truncated(self, matrix):
        damaged = [
            p for p in matrix.points if p.mode in ("torn", "corrupt")
        ]
        assert damaged
        assert all(p.truncated_bytes > 0 for p in damaged)
        clean = [p for p in matrix.points if p.mode == "clean"]
        assert all(p.truncated_bytes == 0 for p in clean)

    def test_both_recovery_paths_exercised(self, matrix):
        # early boundaries leave the round undecided (abort-and-replay);
        # boundaries at/after the chain.append record leave it decided
        # (credit from the chain, resume settlement)
        assert any(p.replayed_rounds for p in matrix.points)
        assert any(p.resumed_rounds for p in matrix.points)
        assert any(p.resumed_settlements for p in matrix.points)


class TestSupervisedScenario:
    def test_mid_round_crash_replays_to_identical_outcome(self):
        reference = run_durable_scenario(MATRIX_SPEC, snapshot_every=1)
        crashed = run_durable_scenario(
            MATRIX_SPEC,
            snapshot_every=1,
            crash_point=CrashPoint(at_append=2, mode="torn"),
        )
        assert crashed.crashes == 1
        assert crashed.replayed_rounds == 1
        assert crashed.outcomes == reference.outcomes
        assert crashed.state_digest == reference.state_digest

    def test_unfired_crash_point_changes_nothing(self):
        reference = run_durable_scenario(MATRIX_SPEC)
        beyond = CrashPoint(at_append=reference.append_count + 10)
        untouched = run_durable_scenario(MATRIX_SPEC, crash_point=beyond)
        assert not beyond.fired
        assert untouched.crashes == 0
        assert untouched.state_digest == reference.state_digest

    def test_multi_round_schedule_survives_a_crash(self):
        spec = ChaosSpec(
            num_clients=2,
            num_providers=1,
            num_miners=3,
            rounds=2,
            seed=9,
            max_delay=0.0,
        )
        reference = run_durable_scenario(spec)
        crashed = run_durable_scenario(
            spec,
            # fire inside round 1 (second round) — the first round's
            # durable state must carry through the restart
            crash_point=CrashPoint(
                at_append=reference.append_count - 3, mode="clean"
            ),
        )
        assert crashed.crashes == 1
        assert crashed.outcomes == reference.outcomes
        assert crashed.tip_hash == reference.tip_hash
