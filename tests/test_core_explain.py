"""Unit tests for outcome explainability."""

import pytest

from repro.core.auction import DecloudAuction
from repro.core.explain import explain_block, explain_request
from repro.experiments.sweeps import eval_config
from repro.workloads.generators import MarketScenario
from tests.conftest import make_offer, make_request


class TestMatchedAndUnknown:
    def test_matched_request(self):
        requests = [
            make_request(request_id="a", client_id="a", bid=3.0),
            make_request(request_id="b", client_id="b", bid=2.0),
        ]
        offers = [make_offer(bid=0.4)]
        outcome = DecloudAuction().run(requests, offers)
        matched = outcome.matches[0].request.request_id
        explanation = explain_request(requests, offers, outcome, matched)
        assert explanation.status == "matched"
        assert explanation.matched_offer == "off-0"
        assert explanation.payment is not None
        assert "unit price" in explanation.render()

    def test_unknown_request(self):
        outcome = DecloudAuction().run([], [])
        explanation = explain_request([], [], outcome, "ghost")
        assert explanation.status == "unknown"


class TestUnmatchedReasons:
    def test_infeasible(self):
        request = make_request(request_id="big", resources={"cpu": 999}, bid=9.0)
        offers = [make_offer()]
        outcome = DecloudAuction().run([request], offers)
        explanation = explain_request([request], offers, outcome, "big")
        assert explanation.status == "unmatched"
        assert explanation.feasible_offers == 0
        assert any("hard constraints" in r for r in explanation.reasons)

    def test_priced_out(self):
        request = make_request(request_id="cheap", bid=1e-9, duration=8.0)
        offers = [make_offer(bid=50.0)]
        outcome = DecloudAuction().run([request], offers)
        explanation = explain_request([request], offers, outcome, "cheap")
        assert explanation.feasible_offers == 1
        assert explanation.affordable_offers == 0
        assert any("Const. 9" in r for r in explanation.reasons)

    def test_reduced(self):
        # Single pair: the lone trade is sacrificed (McAfee degenerate).
        request = make_request(request_id="solo", bid=5.0)
        offers = [make_offer(bid=0.5)]
        outcome = DecloudAuction().run([request], offers)
        explanation = explain_request([request], offers, outcome, "solo")
        assert explanation.status == "reduced"
        assert any("trade reduction" in r for r in explanation.reasons)

    def test_lost_on_price(self):
        # Feasible, affordable, but priced below the clearing price.
        requests = [
            make_request(request_id="rich", client_id="r", bid=9.0),
            make_request(request_id="mid", client_id="m", bid=8.0),
            make_request(request_id="poor", client_id="p", bid=0.05,
                         duration=8.0),
        ]
        offers = [make_offer(bid=0.8)]
        outcome = DecloudAuction().run(requests, offers)
        if outcome.match_for("poor") is not None:
            pytest.skip("poor request unexpectedly matched")
        explanation = explain_request(requests, offers, outcome, "poor")
        assert explanation.status in ("unmatched", "reduced")
        assert explanation.reasons


class TestExplainBlock:
    def test_every_request_explained(self):
        requests, offers = MarketScenario(n_requests=15, seed=6).generate()
        outcome = DecloudAuction(eval_config()).run(requests, offers)
        explanations = explain_block(requests, offers, outcome)
        assert len(explanations) == 15
        statuses = {e.status for e in explanations}
        assert statuses <= {"matched", "reduced", "unmatched"}
        for explanation in explanations:
            assert explanation.render().startswith("request ")

    def test_statuses_match_outcome_buckets(self):
        requests, offers = MarketScenario(n_requests=20, seed=7).generate()
        outcome = DecloudAuction(eval_config()).run(requests, offers)
        explanations = {
            e.request_id: e for e in explain_block(requests, offers, outcome)
        }
        for match in outcome.matches:
            assert explanations[match.request.request_id].status == "matched"
        for reduced in outcome.reduced_requests:
            assert explanations[reduced.request_id].status == "reduced"
