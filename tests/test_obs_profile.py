"""Pipeline stall profiler: folded export, flush metrics, reactor wiring."""

import pytest

from repro.obs import Observability
from repro.obs.profile import COUNT_CAUSES, PipelineProfiler, load_folded
from repro.sim.sustained import SustainedSpec, run_sustained


class TestProfilerUnit:
    def _profiler(self):
        profiler = PipelineProfiler()
        profiler.add(0, "mine", 1.0)
        profiler.add(0, "seal_wait", 0.5)
        profiler.add(1, "mine", 1.0)
        profiler.count(1, "wal_append", 3)
        profiler.node_stall("m0", "backpressure_deferral", 0.005)
        return profiler

    def test_folded_lines_sorted_with_integer_weights(self):
        text = self._profiler().to_folded()
        lines = text.splitlines()
        assert lines == sorted(lines)
        assert text.endswith("\n")
        assert "runtime;round_0000;mine 1000000" in lines
        assert "runtime;round_0000;seal_wait 500000" in lines
        # count causes export raw event counts, not microseconds
        assert "wal_append" in COUNT_CAUSES
        assert "runtime;round_0001;wal_append 3" in lines
        assert "runtime;transport;m0;backpressure_deferral 5000" in lines

    def test_zero_and_negative_intervals_are_dropped(self):
        profiler = PipelineProfiler()
        profiler.add(0, "mine", 0.0)
        profiler.add(0, "commit", -1.0)
        assert profiler.to_folded() == ""

    def test_load_folded_round_trips(self):
        profiler = self._profiler()
        stacks = load_folded(profiler.to_folded())
        assert ("runtime;round_0000;mine", 1_000_000) in stacks
        assert ("runtime;round_0001;wal_append", 3) in stacks

    def test_totals(self):
        profiler = self._profiler()
        assert profiler.round_total(0) == pytest.approx(1.5)
        totals = profiler.cause_totals()
        assert totals["mine"] == pytest.approx(2.0)
        assert totals["wal_append"] == 3

    def test_flush_emits_metrics_once(self):
        profiler = self._profiler()
        obs = Observability()
        profiler.flush(obs.registry, virtual_time=5.0)
        profiler.flush(obs.registry, virtual_time=5.0)  # idempotent
        reg = obs.registry
        assert reg.counter_value("pipeline_stall_seconds", cause="mine") == 2.0
        assert (
            reg.counter_value("pipeline_stall_events_total", cause="wal_append")
            == 3
        )
        assert (
            reg.counter_value(
                "pipeline_node_stall_seconds",
                node="m0", cause="backpressure_deferral",
            )
            == pytest.approx(0.005)
        )
        # occupancy = busy time / virtual span (wal_append is a count,
        # not time, so it does not inflate the numerator)
        assert reg.gauge_value("pipeline_occupancy") == pytest.approx(
            2.505 / 5.0
        )

    def test_write_folded(self, tmp_path):
        path = tmp_path / "stalls.folded"
        self._profiler().write_folded(str(path))
        assert load_folded(path.read_text()) == load_folded(
            self._profiler().to_folded()
        )


class TestReactorWiring:
    SPEC = SustainedSpec(rounds=3, seed=11, difficulty_bits=4)

    def _run(self, profiler=None, obs=None):
        return run_sustained(
            self.SPEC, engine="runtime", pipeline=True,
            obs=obs, profiler=profiler,
        )

    def test_profiler_attributes_every_pipeline_stage(self):
        profiler = PipelineProfiler()
        obs = Observability()
        result = self._run(profiler=profiler, obs=obs)
        assert result.rounds_committed == 3
        totals = profiler.cause_totals()
        for cause in ("seal_wait", "mine", "propose", "verify_quorum", "commit"):
            assert totals.get(cause, 0.0) > 0.0, cause
        # every committed round shows up as its own frame
        for i in range(3):
            assert profiler.round_total(i) > 0.0
        assert obs.registry.gauge_value("pipeline_occupancy") > 0.0

    def test_folded_export_byte_identical_across_replays(self):
        texts = []
        for _ in range(2):
            profiler = PipelineProfiler()
            self._run(profiler=profiler)
            texts.append(profiler.to_folded())
        assert texts[0] == texts[1]

    def test_profiler_is_outcome_invariant(self):
        plain = self._run()
        profiled = self._run(profiler=PipelineProfiler(), obs=Observability())
        assert plain.block_hashes == profiled.block_hashes
        assert plain.virtual_time == profiled.virtual_time

    def test_telemetry_ticks_reach_an_aggregator_on_the_transport(self):
        from repro.obs import TelemetryAggregator
        from repro.runtime import Runtime
        from repro.sim.sustained import _build_miners, _participants, build_round_inputs

        obs = Observability()
        runtime = Runtime(
            _build_miners(self.SPEC),
            schedule_seed="telemetry-tick-test",
            obs=obs,
            telemetry_interval=0.5,
        )
        aggregator = TelemetryAggregator()
        aggregator.subscribe(runtime.transport)
        report = runtime.run(
            build_round_inputs(self.SPEC, _participants(self.SPEC))
        )
        assert len(report.committed) == 3
        # periodic ticks plus the closing frame all landed and merged
        assert aggregator.frames >= 2
        assert aggregator.nodes() == ["runtime"]
        # the aggregated view agrees with the source registry's totals
        assert aggregator.counter_total("runtime_rounds_total") == (
            obs.registry.counter_value("runtime_rounds_total")
        )
