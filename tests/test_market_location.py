"""Unit tests for location and latency-as-a-resource."""

import math

import pytest

from repro.common.errors import ValidationError
from repro.core.auction import DecloudAuction
from repro.core.config import AuctionConfig
from repro.market.location import (
    GeoLocation,
    NetworkLocation,
    attach_latency_resource,
    grid_cell,
    grid_columns,
    grid_ring_distance,
    latency_headroom,
    pairwise_latency_ms,
    zone_prefix,
)
from tests.conftest import make_offer, make_request

HELSINKI = GeoLocation(60.1699, 24.9384)
BERLIN = GeoLocation(52.5200, 13.4050)
SYDNEY = GeoLocation(-33.8688, 151.2093)


class TestGeoLocation:
    def test_distance_helsinki_berlin(self):
        # Known great-circle distance ~1104 km.
        assert HELSINKI.distance_km(BERLIN) == pytest.approx(1104, rel=0.02)

    def test_distance_symmetric(self):
        assert HELSINKI.distance_km(SYDNEY) == pytest.approx(
            SYDNEY.distance_km(HELSINKI)
        )

    def test_distance_to_self_zero(self):
        assert HELSINKI.distance_km(HELSINKI) == pytest.approx(0.0)

    def test_latency_scales_with_distance(self):
        assert HELSINKI.latency_ms(SYDNEY) > HELSINKI.latency_ms(BERLIN)

    def test_invalid_coordinates(self):
        with pytest.raises(ValidationError):
            GeoLocation(91.0, 0.0)
        with pytest.raises(ValidationError):
            GeoLocation(0.0, 181.0)


class TestNetworkLocation:
    def test_same_zone_zero_hops(self):
        a = NetworkLocation("eu/helsinki/cell-1")
        assert a.hops_to(a) == 0

    def test_sibling_zones(self):
        a = NetworkLocation("eu/helsinki/cell-1")
        b = NetworkLocation("eu/helsinki/cell-2")
        assert a.hops_to(b) == 2

    def test_cross_region(self):
        a = NetworkLocation("eu/helsinki/cell-1")
        b = NetworkLocation("us/nyc/cell-9")
        assert a.hops_to(b) == 6

    def test_parent_child(self):
        a = NetworkLocation("eu/helsinki")
        b = NetworkLocation("eu/helsinki/cell-1")
        assert a.hops_to(b) == 1

    def test_latency_from_hops(self):
        a = NetworkLocation("eu/x")
        b = NetworkLocation("eu/y")
        assert a.latency_ms(b) == pytest.approx(4.0)

    def test_malformed_zone(self):
        with pytest.raises(ValidationError):
            NetworkLocation("/leading")
        with pytest.raises(ValidationError):
            NetworkLocation("")

    def test_empty_interior_segment_rejected(self):
        # Regression: "eu//cell-1" used to parse, and its empty segment
        # counted as a shared tree level — "eu//a".hops_to("eu//b")
        # came out one hop closer than "eu/x/a".hops_to("eu/y/b").
        with pytest.raises(ValidationError):
            NetworkLocation("eu//cell-1")
        with pytest.raises(ValidationError):
            NetworkLocation("eu///cell-1")

    def test_single_segment_zones(self):
        # Regression: single-segment zones are leaves directly under the
        # (implicit) root — two distinct ones are exactly two hops apart,
        # and a single-segment zone is one hop from its children.
        assert NetworkLocation("edge").hops_to(NetworkLocation("edge")) == 0
        assert NetworkLocation("edge").hops_to(NetworkLocation("core")) == 2
        assert (
            NetworkLocation("edge").hops_to(NetworkLocation("edge/cell-1"))
            == 1
        )


class TestGridBucketing:
    def test_cells_partition_coordinates(self):
        n_cols = grid_columns(15.0)
        assert n_cols == 24
        assert grid_cell(GeoLocation(0.0, 0.0), 15.0) == (6, 12)

    def test_poles_clamp_to_top_row(self):
        assert (
            grid_cell(GeoLocation(90.0, 0.0), 15.0)[0]
            == grid_cell(GeoLocation(89.0, 0.0), 15.0)[0]
        )

    def test_antimeridian_wraps_to_same_or_neighbouring_cell(self):
        # Regression: +180 and -180 are the same meridian; +179.9 and
        # -179.9 straddle it and must land in *neighbouring* buckets,
        # not at opposite ends of the grid.
        n_cols = grid_columns(15.0)
        east = grid_cell(GeoLocation(0.0, 179.9), 15.0)
        west = grid_cell(GeoLocation(0.0, -179.9), 15.0)
        assert grid_ring_distance(east, west, n_cols) == 1
        assert grid_cell(GeoLocation(0.0, 180.0), 15.0) == grid_cell(
            GeoLocation(0.0, -180.0), 15.0
        )

    def test_ring_distance_wraps_east_west(self):
        n_cols = grid_columns(15.0)
        assert grid_ring_distance((3, 0), (3, n_cols - 1), n_cols) == 1
        assert grid_ring_distance((3, 0), (3, n_cols // 2), n_cols) == (
            n_cols // 2
        )
        assert grid_ring_distance((0, 5), (4, 5), n_cols) == 4

    def test_invalid_cell_size(self):
        with pytest.raises(ValidationError):
            grid_columns(0.0)
        with pytest.raises(ValidationError):
            grid_columns(400.0)


class TestZonePrefix:
    def test_prefix_depths(self):
        assert zone_prefix("eu/hel/cell-1", 1) == "eu"
        assert zone_prefix("eu/hel/cell-1", 2) == "eu/hel"
        assert zone_prefix("edge", 3) == "edge"

    def test_invalid_depth(self):
        with pytest.raises(ValidationError):
            zone_prefix("eu/hel", 0)


class TestPairwiseLatency:
    def test_unknown_is_infinite(self):
        assert math.isinf(pairwise_latency_ms(None, HELSINKI))

    def test_mixed_kinds_rejected(self):
        with pytest.raises(ValidationError):
            pairwise_latency_ms(HELSINKI, NetworkLocation("eu/x"))

    def test_headroom(self):
        assert latency_headroom(10.0, 50.0) == 40.0
        assert latency_headroom(60.0, 50.0) == 0.0
        assert latency_headroom(math.inf, 50.0) == 0.0

    def test_headroom_invalid_tolerance(self):
        with pytest.raises(ValidationError):
            latency_headroom(1.0, 0.0)


class TestAttachLatencyResource:
    def _setup(self, hard):
        request = make_request(location="client-site", bid=3.0)
        near = make_offer(offer_id="near", location="near-edge", bid=1.0)
        far = make_offer(offer_id="far", location="far-dc", bid=1.0)
        locations = {
            "client-site": HELSINKI,
            "near-edge": GeoLocation(60.2, 24.9),  # ~same city
            "far-dc": SYDNEY,
        }
        return attach_latency_resource(
            request, [near, far], locations, tolerance_ms=30.0, hard=hard
        )

    def test_offers_annotated(self):
        _, offers = self._setup(hard=False)
        by_id = {o.offer_id: o for o in offers}
        assert by_id["near"].resources["latency"] > 25.0
        assert by_id["far"].resources["latency"] == 0.0

    def test_soft_latency_steers_match(self):
        request, offers = self._setup(hard=False)
        outcome = DecloudAuction(AuctionConfig(cluster_breadth=1)).run(
            [request], offers
        )
        # Single pair -> reduction may exclude; check the ranking instead.
        from repro.core.matching import block_maxima, rank_offers

        maxima = block_maxima([request], offers)
        ranked = rank_offers(request, offers, maxima)
        assert ranked[0][1].offer_id == "near"

    def test_hard_latency_excludes_far(self):
        request, offers = self._setup(hard=True)
        from repro.market.feasibility import is_feasible

        by_id = {o.offer_id: o for o in offers}
        assert is_feasible(request, by_id["near"])
        assert not is_feasible(request, by_id["far"])

    def test_request_demand_set(self):
        request, _ = self._setup(hard=True)
        assert request.resources["latency"] == pytest.approx(15.0)
        assert request.is_strict("latency")
