"""Unit tests for fork choice, strategy regret, and job bundles."""

import pytest

from repro.common.errors import InvalidBlockError, ValidationError
from repro.common.timewindow import TimeWindow
from repro.core.auction import DecloudAuction
from repro.ledger.block import GENESIS_PARENT, Block, BlockBody, BlockPreamble
from repro.ledger.forks import BlockTree
from repro.ledger import pow as pow_mod
from repro.cryptosim import schnorr
from repro.market.jobs import CompletionPolicy, Job, ServiceSpec, evaluate_jobs
from repro.sim.strategies import (
    anchor_to_history,
    overbid,
    run_strategy_game,
    shade,
    truthful,
)
from tests.conftest import make_offer, make_request

BITS = 6


def _mined_block(parent_hash, height, tag, bits=BITS):
    preamble = BlockPreamble(
        height=height,
        parent_hash=parent_hash,
        transactions=(),
        timestamp=float(hash(tag) % 1000),
    )
    nonce = pow_mod.solve(preamble.pow_payload(), bits)
    preamble = preamble.with_nonce(nonce)
    keypair = schnorr.KeyPair.generate(seed=tag.encode())
    body = BlockBody(
        reveals=(),
        allocation={"tag": tag},
        miner_id=f"miner-{tag}",
        miner_public=keypair.public,
    ).signed_by(keypair, preamble.hash())
    return Block(preamble=preamble, body=body)


class TestBlockTree:
    def test_linear_growth(self):
        tree = BlockTree(difficulty_bits=BITS)
        a = tree.add_block(_mined_block(GENESIS_PARENT, 0, "a"))
        b_block = _mined_block(a, 1, "b")
        tree.add_block(b_block)
        assert tree.height_of_head() == 1
        assert [blk.hash() for blk in tree.canonical_chain()][-1] == b_block.hash()

    def test_fork_resolution_by_length(self):
        tree = BlockTree(difficulty_bits=BITS)
        root = tree.add_block(_mined_block(GENESIS_PARENT, 0, "root"))
        short = tree.add_block(_mined_block(root, 1, "short"))
        # Competing fork that grows longer.
        fork1 = tree.add_block(_mined_block(root, 1, "fork1"))
        fork2 = tree.add_block(_mined_block(fork1, 2, "fork2"))
        assert tree.head() == fork2
        orphaned = {b.hash() for b in tree.orphaned_blocks()}
        assert short in orphaned
        assert fork2 not in orphaned

    def test_tie_breaks_by_arrival(self):
        tree = BlockTree(difficulty_bits=BITS)
        root = tree.add_block(_mined_block(GENESIS_PARENT, 0, "root"))
        first = tree.add_block(_mined_block(root, 1, "first"))
        tree.add_block(_mined_block(root, 1, "second"))
        assert tree.head() == first

    def test_unknown_parent_rejected(self):
        tree = BlockTree(difficulty_bits=BITS)
        with pytest.raises(InvalidBlockError):
            tree.add_block(_mined_block("ff" * 32, 1, "orphan"))

    def test_wrong_height_rejected(self):
        tree = BlockTree(difficulty_bits=BITS)
        root = tree.add_block(_mined_block(GENESIS_PARENT, 0, "root"))
        with pytest.raises(InvalidBlockError):
            tree.add_block(_mined_block(root, 5, "bad-height"))

    def test_idempotent_insert(self):
        tree = BlockTree(difficulty_bits=BITS)
        block = _mined_block(GENESIS_PARENT, 0, "a")
        tree.add_block(block)
        tree.add_block(block)
        assert len(tree) == 1

    def test_empty_tree(self):
        tree = BlockTree()
        assert tree.head() is None
        assert tree.canonical_chain() == []
        assert tree.height_of_head() == -1


class TestStrategies:
    def test_truthful_identity(self):
        assert truthful(3.0, []) == 3.0

    def test_shade_and_overbid(self):
        assert shade(0.5)(4.0, []) == 2.0
        assert overbid(2.0)(4.0, []) == 8.0

    def test_anchor_uses_history(self):
        strategy = anchor_to_history(1.0)
        assert strategy(10.0, [2.0, 4.0]) == pytest.approx(3.0)
        assert strategy(10.0, []) == 10.0
        # anchor never exceeds the true value
        assert strategy(2.0, [100.0]) == 2.0

    def test_game_runs_identical_markets(self):
        outcomes = run_strategy_game(
            {"truthful": truthful, "shade": shade(0.7)},
            n_markets=4,
            n_requests=8,
        )
        assert len(outcomes["truthful"].utilities) == 4
        # Truthful strategy's utilities equal the honest baseline.
        assert outcomes["truthful"].mean_regret_advantage == pytest.approx(
            0.0
        )

    def test_no_strategy_beats_truth_on_average(self):
        outcomes = run_strategy_game(
            {
                "shade": shade(0.6),
                "overbid": overbid(1.5),
                "anchor": anchor_to_history(),
            },
            n_markets=10,
            n_requests=10,
        )
        for outcome in outcomes.values():
            assert outcome.mean_regret_advantage <= 1e-6


class TestJobs:
    def _job(self, policy=CompletionPolicy.BEST_EFFORT, replicas=2):
        return Job(
            job_id="shop",
            client_id="acme",
            services=[
                ServiceSpec(
                    name="web",
                    resources={"cpu": 1, "ram": 2, "disk": 5},
                    replicas=replicas,
                ),
                ServiceSpec(
                    name="db",
                    resources={"cpu": 2, "ram": 8, "disk": 50},
                ),
            ],
            window=TimeWindow(0, 12),
            duration=6.0,
            budget=3.0,
            policy=policy,
        )

    def test_expansion_counts(self):
        requests = self._job().to_requests()
        assert len(requests) == 3
        assert {r.client_id for r in requests} == {"acme"}

    def test_budget_split_sums_to_budget(self):
        requests = self._job().to_requests()
        assert sum(r.bid for r in requests) == pytest.approx(3.0)

    def test_bigger_service_gets_bigger_budget(self):
        requests = {r.request_id: r for r in self._job().to_requests()}
        assert requests["shop/db/0"].bid > requests["shop/web/0"].bid

    def test_validation(self):
        with pytest.raises(ValidationError):
            Job(
                job_id="j",
                client_id="c",
                services=[],
                window=TimeWindow(0, 10),
                duration=2,
                budget=1.0,
            )
        with pytest.raises(ValidationError):
            ServiceSpec(name="x", resources={"cpu": 1}, replicas=0)

    def test_outcome_evaluation(self):
        job = self._job()
        offers = [
            make_offer(
                offer_id=f"o{i}",
                provider_id=f"p{i}",
                resources={"cpu": 8, "ram": 32, "disk": 300},
                bid=0.5,
            )
            for i in range(2)
        ]
        # Two clients so trade reduction keeps at least one trading.
        other = make_request(
            request_id="other", client_id="z", bid=0.8, duration=4
        )
        outcome = DecloudAuction().run(
            job.to_requests() + [other], offers
        )
        fulfillment = job.fulfillment(outcome)
        assert 0.0 <= fulfillment <= 1.0
        assert evaluate_jobs([job], outcome)["shop"] == fulfillment
        assert job.total_payment(outcome) <= job.budget + 1e-9

    def test_all_or_nothing_denials(self):
        from repro.core.outcome import AuctionOutcome, Match

        job = self._job(policy=CompletionPolicy.ALL_OR_NOTHING)
        requests = job.to_requests()
        offer = make_offer(offer_id="o", provider_id="p", bid=0.2)
        partial = AuctionOutcome(
            matches=[
                Match(
                    request=requests[0],
                    offer=offer,
                    payment=0.1,
                    unit_price=0.1,
                )
            ]
        )
        assert not job.is_complete(partial)
        assert job.denials_required(partial) == [requests[0].request_id]

    def test_best_effort_never_denies(self):
        from repro.core.outcome import AuctionOutcome

        job = self._job(policy=CompletionPolicy.BEST_EFFORT)
        assert job.denials_required(AuctionOutcome()) == []
