"""Unit tests for the time model."""

import pytest

from repro.common.errors import ValidationError
from repro.common.timewindow import TimeWindow


class TestConstruction:
    def test_valid_window(self):
        window = TimeWindow(1.0, 5.0)
        assert window.start == 1.0
        assert window.end == 5.0

    def test_zero_span_allowed(self):
        assert TimeWindow(3.0, 3.0).span == 0.0

    def test_negative_start_rejected(self):
        with pytest.raises(ValidationError):
            TimeWindow(-1.0, 5.0)

    def test_end_before_start_rejected(self):
        with pytest.raises(ValidationError):
            TimeWindow(5.0, 1.0)

    def test_frozen(self):
        window = TimeWindow(0, 1)
        with pytest.raises(AttributeError):
            window.start = 2.0  # type: ignore[misc]

    def test_ordering(self):
        assert TimeWindow(0, 1) < TimeWindow(1, 2)


class TestSpan:
    def test_span(self):
        assert TimeWindow(2.0, 7.5).span == 5.5


class TestContains:
    def test_contains_inner(self):
        assert TimeWindow(0, 10).contains(TimeWindow(2, 8))

    def test_contains_equal(self):
        assert TimeWindow(0, 10).contains(TimeWindow(0, 10))

    def test_not_contains_left_overhang(self):
        assert not TimeWindow(2, 10).contains(TimeWindow(1, 8))

    def test_not_contains_right_overhang(self):
        assert not TimeWindow(0, 8).contains(TimeWindow(2, 9))


class TestOverlapIntersection:
    def test_overlaps_partial(self):
        assert TimeWindow(0, 5).overlaps(TimeWindow(4, 9))

    def test_overlaps_at_point(self):
        assert TimeWindow(0, 5).overlaps(TimeWindow(5, 9))

    def test_disjoint(self):
        assert not TimeWindow(0, 4).overlaps(TimeWindow(5, 9))

    def test_intersection(self):
        assert TimeWindow(0, 5).intersection(TimeWindow(3, 9)) == TimeWindow(3, 5)

    def test_intersection_disjoint_is_none(self):
        assert TimeWindow(0, 2).intersection(TimeWindow(3, 4)) is None


class TestCanHost:
    def test_duration_fits(self):
        assert TimeWindow(0, 10).can_host(10.0)
        assert TimeWindow(0, 10).can_host(3.0)

    def test_duration_too_long(self):
        assert not TimeWindow(0, 10).can_host(10.5)

    def test_negative_duration(self):
        assert not TimeWindow(0, 10).can_host(-1.0)
