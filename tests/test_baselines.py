"""Unit tests for the greedy benchmark and the exact optimum."""

import pytest

from repro.baselines.greedy import GreedyBenchmark, benchmark_welfare
from repro.baselines.optimal import optimal_allocation, optimal_welfare
from repro.common.errors import AuctionError
from repro.core.auction import DecloudAuction
from repro.core.config import AuctionConfig
from tests.conftest import make_offer, make_request


def _small_market():
    offers = [
        make_offer(offer_id="cheap", resources={"cpu": 4, "ram": 16, "disk": 100}, bid=1.0),
        make_offer(offer_id="big", resources={"cpu": 16, "ram": 64, "disk": 400}, bid=3.0),
    ]
    requests = [
        make_request(
            request_id=f"r{i}",
            client_id=f"c{i}",
            resources={"cpu": 2 + i, "ram": 4 + 2 * i, "disk": 10},
            duration=4.0,
            bid=1.0 + 0.5 * i,
        )
        for i in range(5)
    ]
    return requests, offers


class TestGreedyBenchmark:
    def test_forces_benchmark_config(self):
        benchmark = GreedyBenchmark(AuctionConfig())  # truthful config in
        requests, offers = _small_market()
        outcome = benchmark.run(requests, offers)
        assert outcome.prices == []  # no uniform clearing price

    def test_welfare_helper(self):
        requests, offers = _small_market()
        assert benchmark_welfare(requests, offers) == pytest.approx(
            GreedyBenchmark().run(requests, offers).welfare
        )

    def test_no_reduced_trades(self):
        requests, offers = _small_market()
        outcome = GreedyBenchmark().run(requests, offers)
        assert outcome.reduced_requests == []


class TestOptimal:
    def test_single_obvious_match(self):
        requests = [make_request(bid=5.0, duration=4)]
        offers = [make_offer(bid=1.0)]
        welfare, matches = optimal_allocation(requests, offers)
        assert len(matches) == 1
        assert welfare > 0

    def test_chooses_higher_welfare_assignment(self):
        # One small machine; two requests that cannot both fit.
        offers = [
            make_offer(
                offer_id="tight",
                resources={"cpu": 4},
                window=None,
                bid=0.1,
            )
        ]
        big_value = make_request(
            request_id="valuable",
            resources={"cpu": 4},
            duration=10,
            bid=10.0,
        )
        small_value = make_request(
            request_id="cheap",
            resources={"cpu": 4},
            duration=10,
            bid=1.0,
        )
        welfare, matches = optimal_allocation(
            [small_value, big_value], offers
        )
        matched_ids = {r.request_id for r, _ in matches}
        assert "valuable" in matched_ids

    def test_upper_bounds_decloud_and_benchmark(self):
        requests, offers = _small_market()
        best = optimal_welfare(requests, offers)
        truthful = DecloudAuction().run(requests, offers).welfare
        greedy = GreedyBenchmark().run(requests, offers).welfare
        assert best + 1e-9 >= truthful
        assert best + 1e-9 >= greedy

    def test_respects_const9(self):
        # A request valued below the cost of its fraction never trades.
        requests = [make_request(bid=1e-9, duration=10)]
        offers = [make_offer(bid=100.0)]
        welfare, matches = optimal_allocation(requests, offers)
        assert matches == []
        assert welfare == 0.0

    def test_size_limit_enforced(self):
        requests = [
            make_request(request_id=f"r{i}", client_id=f"c{i}")
            for i in range(20)
        ]
        offers = [make_offer()]
        with pytest.raises(AuctionError):
            optimal_allocation(requests, offers, max_requests=10)

    def test_empty_market(self):
        assert optimal_welfare([], []) == 0.0
