"""Tests for the trace summary CLI (python -m repro.obs.report)."""

import json

import pytest

from repro.obs import Observability, Tracer
from repro.obs.export import write_prometheus
from repro.obs.report import (
    build_tree,
    main,
    render_failing_tree,
    render_tree,
    summarize,
)
from repro.obs.trace import load_jsonl


def sample_tracer():
    tracer = Tracer()
    with tracer.span("round", index=0):
        with tracer.span("mine", leader="m0"):
            pass
        with tracer.span("reveal"):
            tracer.event("reveal.excluded", txid="t1")
    return tracer


class TestBuildTree:
    def test_structure(self):
        records = load_jsonl(sample_tracer().to_jsonl())
        roots = build_tree(records)
        assert len(roots) == 1
        round_node = roots[0]
        assert round_node["name"] == "round"
        assert [c["name"] for c in round_node["children"]] == [
            "mine", "reveal",
        ]
        reveal = round_node["children"][1]
        assert reveal["events"] == [
            {"name": "reveal.excluded", "attrs": {"txid": "t1"}}
        ]
        assert round_node["seconds"] is not None

    def test_stripped_trace_has_no_seconds(self):
        records = load_jsonl(sample_tracer().to_jsonl(strip_wall=True))
        roots = build_tree(records)
        assert roots[0]["seconds"] is None

    def test_top_level_event_becomes_root(self):
        tracer = Tracer()
        tracer.event("lonely")
        roots = build_tree(load_jsonl(tracer.to_jsonl()))
        assert roots[0]["name"] == "lonely"
        assert roots[0]["status"] == "event"


class TestSummarize:
    def test_counts_spans_and_events(self):
        records = load_jsonl(sample_tracer().to_jsonl())
        text = summarize(records)
        assert "3 spans" in text
        assert "1 events" in text
        for name in ("round", "mine", "reveal", "reveal.excluded"):
            assert name in text

    def test_error_span_counted(self):
        tracer = Tracer()
        try:
            with tracer.span("boom"):
                raise RuntimeError
        except RuntimeError:
            pass
        text = summarize(load_jsonl(tracer.to_jsonl()))
        assert "boom" in text


class TestRenderTree:
    def test_indentation_and_events(self):
        text = render_tree(load_jsonl(sample_tracer().to_jsonl()))
        lines = text.splitlines()
        assert lines[0].startswith("- round")
        assert any(line.startswith("  - mine") for line in lines)
        assert any("* reveal.excluded" in line for line in lines)


class TestCli:
    def test_main_summary(self, tmp_path, capsys):
        path = tmp_path / "trace.jsonl"
        sample_tracer().write_jsonl(str(path))
        assert main([str(path)]) == 0
        out = capsys.readouterr().out
        assert "trace summary" in out
        assert "round" in out

    def test_main_tree_flag(self, tmp_path, capsys):
        path = tmp_path / "trace.jsonl"
        sample_tracer().write_jsonl(str(path))
        assert main([str(path), "--tree"]) == 0
        assert "- round" in capsys.readouterr().out

    def test_main_with_metrics_file(self, tmp_path, capsys):
        trace = tmp_path / "trace.jsonl"
        sample_tracer().write_jsonl(str(trace))
        obs = Observability("cli")
        obs.registry.inc("rounds")
        prom = tmp_path / "metrics.prom"
        write_prometheus(obs.registry, str(prom))
        assert main([str(trace), "--metrics", str(prom)]) == 0
        out = capsys.readouterr().out
        assert "metrics:" in out
        assert "rounds" in out

    def test_main_requires_some_input(self, capsys):
        with pytest.raises(SystemExit):
            main([])
        assert "required" in capsys.readouterr().err


class TestRenderFailingTree:
    def test_failing_path_marked_to_the_root(self):
        tracer = Tracer()
        with tracer.span("round", index=0):
            with tracer.span("reveal"):
                tracer.event("reveal.excluded", txid="t1", sender="mallory")
            with tracer.span("commit"):
                tracer.event("round.committed", height=0)
        text = render_failing_tree(load_jsonl(tracer.to_jsonl()))
        lines = text.splitlines()
        # the exclusion, its span, and the round ancestor are all marked
        assert any(l.startswith("!") and "round {" in l for l in lines)
        assert any(l.startswith("!") and "- reveal" in l for l in lines)
        assert any(l.startswith("!") and "reveal.excluded" in l for l in lines)
        # the healthy commit branch is not
        assert any(l.startswith(" ") and "- commit" in l for l in lines)

    def test_error_status_marks_without_failing_events(self):
        tracer = Tracer()
        try:
            with tracer.span("round"):
                raise RuntimeError("boom")
        except RuntimeError:
            pass
        text = render_failing_tree(load_jsonl(tracer.to_jsonl()))
        assert text.splitlines()[0].startswith("!")
        assert "[error]" in text


class TestSnapshotDiffCli:
    def test_main_snapshot_diff(self, tmp_path, capsys):
        obs = Observability("diff")
        obs.registry.inc("trades_total", 2)
        obs.registry.set("welfare", 1.0)
        before = tmp_path / "before.json"
        before.write_text(json.dumps(obs.registry.snapshot()))
        obs.registry.inc("trades_total", 3)
        obs.registry.set("welfare", 4.5)
        obs.registry.observe("phase_seconds", 0.25, phase="clear")
        after = tmp_path / "after.json"
        after.write_text(json.dumps(obs.registry.snapshot()))

        assert main(["--snapshot-diff", str(before), str(after)]) == 0
        out = capsys.readouterr().out
        assert "snapshot diff" in out
        assert "trades_total  +3" in out
        assert "welfare  -> 4.5" in out
        assert "phase_seconds{phase=clear}  +1 obs" in out

    def test_identical_snapshots_report_no_changes(self, tmp_path, capsys):
        obs = Observability("diff")
        obs.registry.inc("trades_total")
        path = tmp_path / "snap.json"
        path.write_text(json.dumps(obs.registry.snapshot()))
        assert main(["--snapshot-diff", str(path), str(path)]) == 0
        assert "(no changes)" in capsys.readouterr().out


class TestDiagnostics:
    """Broken input must produce a diagnostic and exit 2, never a
    traceback or a silently empty report (PR 10 regression)."""

    def test_empty_trace_file(self, tmp_path, capsys):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        assert main([str(path)]) == 2
        err = capsys.readouterr().err
        assert "error:" in err and "empty trace" in err

    def test_missing_trace_file(self, tmp_path, capsys):
        assert main([str(tmp_path / "absent.jsonl")]) == 2
        assert "cannot read" in capsys.readouterr().err

    def test_truncated_jsonl_names_the_line(self, tmp_path, capsys):
        path = tmp_path / "trace.jsonl"
        good = sample_tracer()
        good.write_jsonl(str(path))
        with open(path, "a") as fh:
            fh.write('{"type":"span","name":"chopped')  # mid-write crash
        assert main([str(path)]) == 2
        err = capsys.readouterr().err
        assert "truncated or corrupt JSONL" in err
        # the diagnostic points at the exact line
        lines = path.read_text().splitlines()
        assert f"{path}:{len(lines)}" in err

    def test_non_record_rows_rejected(self, tmp_path, capsys):
        path = tmp_path / "trace.jsonl"
        path.write_text('{"no_type_field": 1}\n')
        assert main([str(path)]) == 2
        assert "not a trace record" in capsys.readouterr().err


class TestFlameCli:
    def test_flame_renders_cause_table(self, tmp_path, capsys):
        from repro.obs.profile import PipelineProfiler

        profiler = PipelineProfiler()
        profiler.add(0, "mine", 1.0)
        profiler.add(0, "seal_wait", 0.25)
        profiler.count(0, "wal_append", 2)
        folded = tmp_path / "stalls.folded"
        profiler.write_folded(str(folded))
        assert main(["--flame", str(folded)]) == 0
        out = capsys.readouterr().out
        assert "flame summary" in out
        assert "mine" in out and "seal_wait" in out
        assert "events" in out  # wal_append is a count, not a duration

    def test_flame_missing_file_is_diagnosed(self, tmp_path, capsys):
        assert main(["--flame", str(tmp_path / "absent.folded")]) == 2
        assert "cannot read" in capsys.readouterr().err
