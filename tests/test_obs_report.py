"""Tests for the trace summary CLI (python -m repro.obs.report)."""

from repro.obs import Observability, Tracer
from repro.obs.export import write_prometheus
from repro.obs.report import build_tree, main, render_tree, summarize
from repro.obs.trace import load_jsonl


def sample_tracer():
    tracer = Tracer()
    with tracer.span("round", index=0):
        with tracer.span("mine", leader="m0"):
            pass
        with tracer.span("reveal"):
            tracer.event("reveal.excluded", txid="t1")
    return tracer


class TestBuildTree:
    def test_structure(self):
        records = load_jsonl(sample_tracer().to_jsonl())
        roots = build_tree(records)
        assert len(roots) == 1
        round_node = roots[0]
        assert round_node["name"] == "round"
        assert [c["name"] for c in round_node["children"]] == [
            "mine", "reveal",
        ]
        reveal = round_node["children"][1]
        assert reveal["events"] == [
            {"name": "reveal.excluded", "attrs": {"txid": "t1"}}
        ]
        assert round_node["seconds"] is not None

    def test_stripped_trace_has_no_seconds(self):
        records = load_jsonl(sample_tracer().to_jsonl(strip_wall=True))
        roots = build_tree(records)
        assert roots[0]["seconds"] is None

    def test_top_level_event_becomes_root(self):
        tracer = Tracer()
        tracer.event("lonely")
        roots = build_tree(load_jsonl(tracer.to_jsonl()))
        assert roots[0]["name"] == "lonely"
        assert roots[0]["status"] == "event"


class TestSummarize:
    def test_counts_spans_and_events(self):
        records = load_jsonl(sample_tracer().to_jsonl())
        text = summarize(records)
        assert "3 spans" in text
        assert "1 events" in text
        for name in ("round", "mine", "reveal", "reveal.excluded"):
            assert name in text

    def test_error_span_counted(self):
        tracer = Tracer()
        try:
            with tracer.span("boom"):
                raise RuntimeError
        except RuntimeError:
            pass
        text = summarize(load_jsonl(tracer.to_jsonl()))
        assert "boom" in text


class TestRenderTree:
    def test_indentation_and_events(self):
        text = render_tree(load_jsonl(sample_tracer().to_jsonl()))
        lines = text.splitlines()
        assert lines[0].startswith("- round")
        assert any(line.startswith("  - mine") for line in lines)
        assert any("* reveal.excluded" in line for line in lines)


class TestCli:
    def test_main_summary(self, tmp_path, capsys):
        path = tmp_path / "trace.jsonl"
        sample_tracer().write_jsonl(str(path))
        assert main([str(path)]) == 0
        out = capsys.readouterr().out
        assert "trace summary" in out
        assert "round" in out

    def test_main_tree_flag(self, tmp_path, capsys):
        path = tmp_path / "trace.jsonl"
        sample_tracer().write_jsonl(str(path))
        assert main([str(path), "--tree"]) == 0
        assert "- round" in capsys.readouterr().out

    def test_main_with_metrics_file(self, tmp_path, capsys):
        trace = tmp_path / "trace.jsonl"
        sample_tracer().write_jsonl(str(trace))
        obs = Observability("cli")
        obs.registry.inc("rounds")
        prom = tmp_path / "metrics.prom"
        write_prometheus(obs.registry, str(prom))
        assert main([str(trace), "--metrics", str(prom)]) == 0
        out = capsys.readouterr().out
        assert "metrics:" in out
        assert "rounds" in out
