"""Arrival processes for online market simulation.

The blockchain clears the market in rounds, but participants arrive
continuously; "the system will have an online appearance to users (with
some observed delay)" (paper §VI).  This module generates Poisson
arrivals of requests and offers over a time horizon, for consumption by
:class:`repro.sim.online.OnlineSimulator`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple

import numpy as np

from repro.common.errors import ValidationError
from repro.common.rng import make_generator, spawn_child
from repro.common.timewindow import TimeWindow
from repro.market.bids import Offer, Request
from repro.workloads.ec2_catalog import ProviderCatalog
from repro.workloads.google_trace import GoogleTraceWorkload, assign_valuations


def poisson_arrival_times(
    rate: float, horizon: float, rng: np.random.Generator
) -> np.ndarray:
    """Event times of a Poisson process with ``rate`` events per hour."""
    if rate <= 0:
        raise ValidationError("rate must be positive")
    if horizon <= 0:
        raise ValidationError("horizon must be positive")
    expected = rate * horizon
    count = int(rng.poisson(expected))
    return np.sort(rng.uniform(0.0, horizon, size=count))


@dataclass
class ArrivalProcess:
    """Streams timestamped requests and offers over a horizon.

    Requests want to start soon after arriving (a patience window);
    offers advertise availability from arrival for ``offer_span`` hours.
    """

    request_rate: float = 10.0  # per hour
    offer_rate: float = 5.0
    horizon: float = 48.0
    request_patience: float = 12.0  # how long a client will wait to start
    offer_span: float = 24.0
    seed: int = 0
    workload: GoogleTraceWorkload = field(default=None)  # type: ignore[assignment]
    catalog: ProviderCatalog = field(default=None)  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self.workload is None:
            self.workload = GoogleTraceWorkload(
                window_span=self.request_patience
            )
        if self.catalog is None:
            self.catalog = ProviderCatalog(window_span=self.offer_span)

    def generate(self) -> Tuple[List[Request], List[Offer]]:
        """All arrivals over the horizon, stamped with submit times."""
        root = make_generator(f"arrivals-{self.seed}")
        time_rng = spawn_child(root, "times")
        shape_rng = spawn_child(root, "shapes")
        value_rng = spawn_child(root, "values")

        request_times = poisson_arrival_times(
            self.request_rate, self.horizon, time_rng
        )
        offer_times = poisson_arrival_times(
            self.offer_rate, self.horizon, time_rng
        )

        raw_requests = self.workload.sample_requests(
            len(request_times), rng=shape_rng
        )
        requests: List[Request] = []
        for base, arrive in zip(raw_requests, request_times):
            window = TimeWindow(
                float(arrive), float(arrive) + self.request_patience
            )
            duration = min(base.duration, window.span)
            requests.append(
                Request(
                    request_id=base.request_id,
                    client_id=base.client_id,
                    submit_time=float(arrive),
                    resources=dict(base.resources),
                    significance=dict(base.significance),
                    window=window,
                    duration=duration,
                    bid=base.bid,
                    flexibility=base.flexibility,
                )
            )

        raw_offers = self.catalog.sample_offers(
            len(offer_times), rng=shape_rng
        )
        offers: List[Offer] = []
        for base, arrive in zip(raw_offers, offer_times):
            offers.append(
                Offer(
                    offer_id=base.offer_id,
                    provider_id=base.provider_id,
                    submit_time=float(arrive),
                    resources=dict(base.resources),
                    window=TimeWindow(
                        float(arrive), float(arrive) + self.offer_span
                    ),
                    bid=base.bid,
                    location=base.location,
                )
            )

        if offers:
            requests = assign_valuations(requests, offers, rng=value_rng)
        return requests, offers
