"""Evaluation metrics comparing DeCloud to its benchmark (paper §V)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro.core.outcome import AuctionOutcome


@dataclass(frozen=True)
class BlockMetrics:
    """Metrics for one block cleared by both mechanisms."""

    n_requests: int
    n_offers: int
    decloud_welfare: float
    benchmark_welfare: float
    decloud_trades: int
    benchmark_trades: int
    reduced_trades: int
    decloud_satisfaction: float
    benchmark_satisfaction: float
    total_payments: float
    total_revenues: float

    @property
    def welfare_ratio(self) -> float:
        """DeCloud / benchmark welfare — Fig. 5b's y-axis."""
        if self.benchmark_welfare <= 0:
            return 1.0 if self.decloud_welfare <= 0 else float("inf")
        return self.decloud_welfare / self.benchmark_welfare

    @property
    def reduced_trade_fraction(self) -> float:
        """Fraction of the benchmark's trades lost to reduction — Fig. 5c."""
        if self.benchmark_trades <= 0:
            return 0.0
        lost = max(0, self.benchmark_trades - self.decloud_trades)
        return lost / self.benchmark_trades

    @property
    def budget_imbalance(self) -> float:
        """Payments minus revenues — zero for a strongly BB mechanism."""
        return self.total_payments - self.total_revenues


def compare_outcomes(
    n_requests: int,
    n_offers: int,
    decloud: AuctionOutcome,
    benchmark: AuctionOutcome,
) -> BlockMetrics:
    """Build :class:`BlockMetrics` from the two mechanisms' outcomes."""
    return BlockMetrics(
        n_requests=n_requests,
        n_offers=n_offers,
        decloud_welfare=decloud.welfare,
        benchmark_welfare=benchmark.welfare,
        decloud_trades=decloud.num_trades,
        benchmark_trades=benchmark.num_trades,
        reduced_trades=decloud.num_reduced,
        decloud_satisfaction=decloud.satisfaction,
        benchmark_satisfaction=benchmark.satisfaction,
        total_payments=decloud.total_payments,
        total_revenues=sum(decloud.revenues().values()),
    )


@dataclass
class RunMetrics:
    """Aggregate over a sequence of blocks."""

    blocks: List[BlockMetrics]

    @property
    def total_decloud_welfare(self) -> float:
        return sum(b.decloud_welfare for b in self.blocks)

    @property
    def total_benchmark_welfare(self) -> float:
        return sum(b.benchmark_welfare for b in self.blocks)

    @property
    def pooled_welfare_ratio(self) -> float:
        total = self.total_benchmark_welfare
        if total <= 0:
            return 1.0
        return self.total_decloud_welfare / total

    @property
    def pooled_reduced_fraction(self) -> float:
        benchmark_trades = sum(b.benchmark_trades for b in self.blocks)
        if benchmark_trades <= 0:
            return 0.0
        lost = sum(
            max(0, b.benchmark_trades - b.decloud_trades) for b in self.blocks
        )
        return lost / benchmark_trades

    @property
    def mean_satisfaction(self) -> float:
        if not self.blocks:
            return 0.0
        return sum(b.decloud_satisfaction for b in self.blocks) / len(
            self.blocks
        )


def pooled_metrics(blocks: Sequence[BlockMetrics]) -> RunMetrics:
    return RunMetrics(blocks=list(blocks))


def block_metrics_from_registry(registry) -> BlockMetrics:
    """Read the last cleared block's :class:`BlockMetrics` off a registry.

    :class:`~repro.sim.engine.MarketSimulator` clears each mechanism
    under a ``mechanism=decloud`` / ``mechanism=benchmark`` label scope;
    the auction stores the round's exact outcome-derived values in
    ``auction_last_*`` gauges.  Reading the gauges back therefore
    reproduces :func:`compare_outcomes` bit-for-bit — the fig5
    experiment series are built this way when observability is on.
    """

    def dec(name: str, **labels) -> float:
        return registry.gauge_value(name, mechanism="decloud", **labels)

    def ben(name: str, **labels) -> float:
        return registry.gauge_value(name, mechanism="benchmark", **labels)

    return BlockMetrics(
        n_requests=int(dec("auction_last_bids", side="request")),
        n_offers=int(dec("auction_last_bids", side="offer")),
        decloud_welfare=dec("auction_last_welfare"),
        benchmark_welfare=ben("auction_last_welfare"),
        decloud_trades=int(dec("auction_last_trades")),
        benchmark_trades=int(ben("auction_last_trades")),
        reduced_trades=int(dec("auction_last_reduced")),
        decloud_satisfaction=dec("auction_last_satisfaction"),
        benchmark_satisfaction=ben("auction_last_satisfaction"),
        total_payments=dec("auction_last_payments"),
        total_revenues=dec("auction_last_revenues"),
    )
