"""Market simulation: paired block clearing, online rounds, arrivals."""

from repro.sim.arrivals import ArrivalProcess, poisson_arrival_times
from repro.sim.chaos import (
    ChaosPoint,
    ChaosSpec,
    run_chaos_point,
    run_chaos_sweep,
)
from repro.sim.engine import MarketSimulator, replay_fault_free
from repro.sim.metrics import (
    BlockMetrics,
    RunMetrics,
    compare_outcomes,
    pooled_metrics,
)
from repro.sim.online import OnlineResult, OnlineSimulator, RoundRecord
from repro.sim.sustained import (
    SustainedResult,
    SustainedSpec,
    run_sustained,
)
from repro.sim.strategies import (
    StrategyOutcome,
    anchor_to_history,
    overbid,
    run_strategy_game,
    shade,
    truthful,
)

__all__ = [
    "ChaosPoint",
    "ChaosSpec",
    "run_chaos_point",
    "run_chaos_sweep",
    "replay_fault_free",
    "MarketSimulator",
    "BlockMetrics",
    "RunMetrics",
    "compare_outcomes",
    "pooled_metrics",
    "ArrivalProcess",
    "poisson_arrival_times",
    "OnlineSimulator",
    "OnlineResult",
    "RoundRecord",
    "SustainedResult",
    "SustainedSpec",
    "run_sustained",
    "StrategyOutcome",
    "run_strategy_game",
    "truthful",
    "shade",
    "overbid",
    "anchor_to_history",
]
