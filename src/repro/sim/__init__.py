"""Market simulation: paired block clearing, online rounds, arrivals."""

from repro.sim.arrivals import ArrivalProcess, poisson_arrival_times
from repro.sim.engine import MarketSimulator
from repro.sim.metrics import (
    BlockMetrics,
    RunMetrics,
    compare_outcomes,
    pooled_metrics,
)
from repro.sim.online import OnlineResult, OnlineSimulator, RoundRecord
from repro.sim.strategies import (
    StrategyOutcome,
    anchor_to_history,
    overbid,
    run_strategy_game,
    shade,
    truthful,
)

__all__ = [
    "MarketSimulator",
    "BlockMetrics",
    "RunMetrics",
    "compare_outcomes",
    "pooled_metrics",
    "ArrivalProcess",
    "poisson_arrival_times",
    "OnlineSimulator",
    "OnlineResult",
    "RoundRecord",
    "StrategyOutcome",
    "run_strategy_game",
    "truthful",
    "shade",
    "overbid",
    "anchor_to_history",
]
