"""Chaos harness: sweep fault rates, measure graceful degradation.

For each fault level the harness runs the *same* seeded market through
the full ledger-backed protocol over an
:class:`~repro.faults.network.UnreliableNetwork` and reports:

* **auction success** — the fraction of rounds that produced a
  quorum-verified block at all;
* **welfare retention** — welfare achieved under faults relative to the
  fault-free run of the identical market;
* **mechanism integrity** — every completed block is replayed against
  :func:`~repro.sim.engine.replay_fault_free` on its surviving bid set;
  any divergence is a harness-level alarm, not a statistic.

Everything is derived from the spec seed, so a sweep is exactly
reproducible — two identical calls return identical curves.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple

from repro.common.errors import ReproError
from repro.common.rng import make_generator
from repro.common.timewindow import TimeWindow
from repro.core.config import AuctionConfig
from repro.faults.actors import (
    EquivocatingMiner,
    TamperingParticipant,
    WithholdingParticipant,
)
from repro.faults.network import UnreliableNetwork
from repro.faults.plan import FaultPlan
from repro.ledger.miner import Miner
from repro.market.bids import Offer, Request
from repro.obs import Observability, ObservabilityLike
from repro.obs.monitors import MonitorSuite, violation_total
from repro.obs.timeseries import TimeSeriesStore
from repro.protocol.allocator import DecloudAllocator, decode_round
from repro.protocol.exposure import ExposureProtocol, Participant
from repro.sim.engine import replay_fault_free

DEFAULT_DROP_RATES: Tuple[float, ...] = (0.0, 0.1, 0.2, 0.4)


@dataclass(frozen=True)
class ChaosSpec:
    """One chaos experiment: market shape, fleet, and non-drop faults."""

    num_clients: int = 6
    num_providers: int = 3
    num_miners: int = 3
    rounds: int = 2
    seed: int = 0
    difficulty_bits: int = 4
    duplicate_rate: float = 0.0
    min_delay: float = 0.0
    max_delay: float = 0.05
    reorder_rate: float = 0.0
    #: leading clients replaced by actors that never reveal keys
    withholding_clients: int = 0
    #: next block of clients replaced by actors revealing forged keys
    tampering_clients: int = 0
    #: make the first miner an equivocator (exercises leader fallback)
    equivocating_leader: bool = False
    config: Optional[AuctionConfig] = None


@dataclass
class ChaosPoint:
    """Degradation measurements at one fault level."""

    drop_rate: float
    rounds_attempted: int
    rounds_completed: int
    welfare: float
    baseline_welfare: float
    excluded_bids: int
    fallback_rounds: int
    messages_dropped: int
    messages_delivered: int
    integrity_failures: int
    #: runtime monitor alerts raised while clearing this point's rounds
    #: (always 0 unless the point ran with a monitored ``obs`` bundle)
    monitor_alerts: int = 0
    errors: List[str] = field(default_factory=list)

    @property
    def success_rate(self) -> float:
        if self.rounds_attempted == 0:
            return 1.0
        return self.rounds_completed / self.rounds_attempted

    @property
    def welfare_retention(self) -> float:
        if self.baseline_welfare <= 0.0:
            return 1.0
        return self.welfare / self.baseline_welfare


def _market_for_round(
    spec: ChaosSpec, round_index: int
) -> Tuple[List[Request], List[Offer]]:
    """Seeded bids for one round; identical specs yield identical markets."""
    rng = make_generator(f"chaos-market-{spec.seed}-{round_index}")
    requests = [
        Request(
            request_id=f"req-{round_index}-{i}",
            client_id=f"cli-{i}",
            submit_time=0.1 * i,
            resources={"cpu": 2, "ram": 4, "disk": 10},
            window=TimeWindow(0, 10),
            duration=4.0,
            bid=float(rng.uniform(1.2, 3.0)),
        )
        for i in range(spec.num_clients)
    ]
    offers = [
        Offer(
            offer_id=f"off-{round_index}-{j}",
            provider_id=f"prov-{j}",
            submit_time=0.1 * j,
            resources={"cpu": 8, "ram": 32, "disk": 500},
            window=TimeWindow(0, 24),
            bid=float(rng.uniform(0.2, 0.8)),
        )
        for j in range(spec.num_providers)
    ]
    return requests, offers


def _build_participants(
    spec: ChaosSpec, byzantine: bool
) -> Tuple[Dict[str, Participant], Dict[str, Participant]]:
    """Clients and providers keyed by id, Byzantine actors included."""
    seal_seed = f"chaos-{spec.seed}".encode("ascii")
    clients: Dict[str, Participant] = {}
    for i in range(spec.num_clients):
        cls: type = Participant
        if byzantine and i < spec.withholding_clients:
            cls = WithholdingParticipant
        elif byzantine and i < spec.withholding_clients + spec.tampering_clients:
            cls = TamperingParticipant
        clients[f"cli-{i}"] = cls(
            participant_id=f"cli-{i}",
            deterministic=True,
            seal_seed=seal_seed,
        )
    providers = {
        f"prov-{j}": Participant(
            participant_id=f"prov-{j}",
            deterministic=True,
            seal_seed=seal_seed,
        )
        for j in range(spec.num_providers)
    }
    return clients, providers


def _build_protocol(
    spec: ChaosSpec,
    plan: FaultPlan,
    byzantine: bool,
    obs: Optional[ObservabilityLike] = None,
) -> Tuple[ExposureProtocol, UnreliableNetwork]:
    miners: List[Miner] = []
    for m in range(spec.num_miners):
        cls = (
            EquivocatingMiner
            if byzantine and spec.equivocating_leader and m == 0
            else Miner
        )
        miners.append(
            cls(
                miner_id=f"miner-{m}",
                allocate=DecloudAllocator(spec.config),
                difficulty_bits=spec.difficulty_bits,
            )
        )
    network = UnreliableNetwork(plan=plan)
    protocol = ExposureProtocol(miners=miners, network=network, obs=obs)
    return protocol, network


def run_chaos_point(
    spec: ChaosSpec,
    drop_rate: float,
    byzantine: bool = True,
    obs: Optional[ObservabilityLike] = None,
    monitored: bool = False,
    history: Optional[TimeSeriesStore] = None,
) -> ChaosPoint:
    """Run ``spec.rounds`` protocol rounds at one message-drop level.

    ``monitored=True`` builds a fresh observability bundle with the
    default :class:`~repro.obs.monitors.MonitorSuite` attached (unless an
    explicit ``obs`` is given) and reports the alert count in
    :attr:`ChaosPoint.monitor_alerts`.  ``history`` appends the
    registry snapshot after each completed round — the time-series the
    drift detectors consume.
    """
    plan = FaultPlan(
        seed=f"chaos-net-{spec.seed}-{drop_rate}",
        drop_rate=drop_rate,
        duplicate_rate=spec.duplicate_rate,
        min_delay=spec.min_delay,
        max_delay=spec.max_delay,
        reorder_rate=spec.reorder_rate,
    )
    if obs is None and monitored:
        obs = Observability(
            run_id=f"chaos-{spec.seed}-{drop_rate}",
            monitors=MonitorSuite(),
        )
    protocol, network = _build_protocol(spec, plan, byzantine, obs=obs)
    clients, providers = _build_participants(spec, byzantine)
    participants = list(clients.values()) + list(providers.values())

    point = ChaosPoint(
        drop_rate=drop_rate,
        rounds_attempted=spec.rounds,
        rounds_completed=0,
        welfare=0.0,
        baseline_welfare=0.0,
        excluded_bids=0,
        fallback_rounds=0,
        messages_dropped=0,
        messages_delivered=0,
        integrity_failures=0,
    )
    for round_index in range(spec.rounds):
        requests, offers = _market_for_round(spec, round_index)
        for request in requests:
            protocol.submit(clients[request.client_id], request)
        for offer in offers:
            protocol.submit(providers[offer.provider_id], offer)
        try:
            result = protocol.run_round(participants)
        except ReproError as exc:
            point.errors.append(f"round {round_index}: {exc}")
            continue
        point.rounds_completed += 1
        point.welfare += result.outcome.welfare
        point.excluded_bids += len(result.excluded_txids)
        if result.failed_proposers:
            point.fallback_rounds += 1
        # Mechanism integrity: the block must equal a fault-free replay
        # on exactly the bids that survived the faults.
        body = result.block.require_complete()
        plaintexts = Miner._open_transactions(
            result.block.preamble, body.reveals
        )
        live_requests, live_offers = decode_round(plaintexts)
        expected = replay_fault_free(
            live_requests,
            live_offers,
            result.block.preamble.evidence(),
            spec.config,
        )
        if expected != body.allocation:
            point.integrity_failures += 1
        if history is not None and obs is not None and obs.enabled:
            history.append(
                obs.registry.snapshot(),
                round=round_index,
                drop_rate=drop_rate,
                seed=spec.seed,
            )
    point.messages_dropped = network.dropped
    point.messages_delivered = network.delivered
    if obs is not None and obs.enabled:
        point.monitor_alerts = int(violation_total(obs.registry))
    return point


def run_chaos_sweep(
    spec: ChaosSpec,
    drop_rates: Sequence[float] = DEFAULT_DROP_RATES,
    byzantine: bool = True,
    monitored: bool = False,
    history: Optional[TimeSeriesStore] = None,
) -> List[ChaosPoint]:
    """Sweep message-drop levels; each point also gets a fault-free baseline.

    The baseline run shares the market seed but switches off every fault
    (and every Byzantine actor), so ``welfare_retention`` isolates what
    the *faults* cost — not seed-to-seed market variation.

    ``monitored`` / ``history`` are forwarded to every fault-level point
    (a fresh monitored bundle per level; the shared ``history`` file
    accumulates each level's rounds); the baseline stays unmonitored so
    its behaviour matches earlier releases byte for byte.
    """
    baseline_spec = replace(
        spec,
        withholding_clients=0,
        tampering_clients=0,
        equivocating_leader=False,
        duplicate_rate=0.0,
        reorder_rate=0.0,
    )
    baseline = run_chaos_point(baseline_spec, 0.0, byzantine=False)
    points: List[ChaosPoint] = []
    for drop_rate in drop_rates:
        point = run_chaos_point(
            spec,
            drop_rate,
            byzantine=byzantine,
            monitored=monitored,
            history=history,
        )
        point.baseline_welfare = baseline.welfare
        points.append(point)
    return points
