"""Chaos harness: sweep fault rates, measure graceful degradation.

For each fault level the harness runs the *same* seeded market through
the full ledger-backed protocol over an
:class:`~repro.faults.network.UnreliableNetwork` and reports:

* **auction success** — the fraction of rounds that produced a
  quorum-verified block at all;
* **welfare retention** — welfare achieved under faults relative to the
  fault-free run of the identical market;
* **mechanism integrity** — every completed block is replayed against
  :func:`~repro.sim.engine.replay_fault_free` on its surviving bid set;
  any divergence is a harness-level alarm, not a statistic.

Everything is derived from the spec seed, so a sweep is exactly
reproducible — two identical calls return identical curves.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple

from repro.common.errors import ReproError
from repro.common.rng import make_generator
from repro.common.timewindow import TimeWindow
from repro.core.auction import DecloudAuction
from repro.core.config import AuctionConfig
from repro.core.outcome import AuctionOutcome, canonical_outcome
from repro.faults.crash import CrashPlan, CrashPoint, SimulatedCrashError
from repro.faults.actors import (
    EquivocatingMiner,
    TamperingParticipant,
    WithholdingParticipant,
)
from repro.faults.network import UnreliableNetwork
from repro.faults.plan import FaultPlan
from repro.ledger.miner import Miner
from repro.market.bids import Offer, Request
from repro.obs import Observability, ObservabilityLike
from repro.obs.monitors import MonitorSuite, violation_total
from repro.obs.timeseries import TimeSeriesStore
from repro.protocol.allocator import DecloudAllocator, decode_round
from repro.protocol.exposure import ExposureProtocol, Participant, RoundResult
from repro.protocol.settlement import SettlementProcessor, TokenLedger
from repro.runtime import RoundInput, Runtime
from repro.sim.engine import replay_fault_free
from repro.store import NodeStore

DEFAULT_DROP_RATES: Tuple[float, ...] = (0.0, 0.1, 0.2, 0.4)


@dataclass(frozen=True)
class ChaosSpec:
    """One chaos experiment: market shape, fleet, and non-drop faults."""

    num_clients: int = 6
    num_providers: int = 3
    num_miners: int = 3
    rounds: int = 2
    seed: int = 0
    difficulty_bits: int = 4
    duplicate_rate: float = 0.0
    min_delay: float = 0.0
    max_delay: float = 0.05
    reorder_rate: float = 0.0
    #: leading clients replaced by actors that never reveal keys
    withholding_clients: int = 0
    #: next block of clients replaced by actors revealing forged keys
    tampering_clients: int = 0
    #: make the first miner an equivocator (exercises leader fallback)
    equivocating_leader: bool = False
    config: Optional[AuctionConfig] = None


@dataclass
class ChaosPoint:
    """Degradation measurements at one fault level."""

    drop_rate: float
    rounds_attempted: int
    rounds_completed: int
    welfare: float
    baseline_welfare: float
    excluded_bids: int
    fallback_rounds: int
    messages_dropped: int
    messages_delivered: int
    integrity_failures: int
    #: runtime monitor alerts raised while clearing this point's rounds
    #: (always 0 unless the point ran with a monitored ``obs`` bundle)
    monitor_alerts: int = 0
    errors: List[str] = field(default_factory=list)

    @property
    def success_rate(self) -> float:
        if self.rounds_attempted == 0:
            return 1.0
        return self.rounds_completed / self.rounds_attempted

    @property
    def welfare_retention(self) -> float:
        if self.baseline_welfare <= 0.0:
            return 1.0
        return self.welfare / self.baseline_welfare


def _market_for_round(
    spec: ChaosSpec, round_index: int
) -> Tuple[List[Request], List[Offer]]:
    """Seeded bids for one round; identical specs yield identical markets."""
    rng = make_generator(f"chaos-market-{spec.seed}-{round_index}")
    requests = [
        Request(
            request_id=f"req-{round_index}-{i}",
            client_id=f"cli-{i}",
            submit_time=0.1 * i,
            resources={"cpu": 2, "ram": 4, "disk": 10},
            window=TimeWindow(0, 10),
            duration=4.0,
            bid=float(rng.uniform(1.2, 3.0)),
        )
        for i in range(spec.num_clients)
    ]
    offers = [
        Offer(
            offer_id=f"off-{round_index}-{j}",
            provider_id=f"prov-{j}",
            submit_time=0.1 * j,
            resources={"cpu": 8, "ram": 32, "disk": 500},
            window=TimeWindow(0, 24),
            bid=float(rng.uniform(0.2, 0.8)),
        )
        for j in range(spec.num_providers)
    ]
    return requests, offers


def _build_participants(
    spec: ChaosSpec,
    byzantine: bool,
    seal_seed: Optional[bytes] = None,
) -> Tuple[Dict[str, Participant], Dict[str, Participant]]:
    """Clients and providers keyed by id, Byzantine actors included.

    ``seal_seed`` overrides the default derivation — the durable-round
    supervisor builds *fresh* participants per round with a per-round
    seed, so an abort-and-replay after a crash re-seals byte-identical
    transactions (a restarted participant's seal counter restarts too).
    """
    if seal_seed is None:
        seal_seed = f"chaos-{spec.seed}".encode("ascii")
    clients: Dict[str, Participant] = {}
    for i in range(spec.num_clients):
        cls: type = Participant
        if byzantine and i < spec.withholding_clients:
            cls = WithholdingParticipant
        elif byzantine and i < spec.withholding_clients + spec.tampering_clients:
            cls = TamperingParticipant
        clients[f"cli-{i}"] = cls(
            participant_id=f"cli-{i}",
            deterministic=True,
            seal_seed=seal_seed,
        )
    providers = {
        f"prov-{j}": Participant(
            participant_id=f"prov-{j}",
            deterministic=True,
            seal_seed=seal_seed,
        )
        for j in range(spec.num_providers)
    }
    return clients, providers


def _chaos_miners(spec: ChaosSpec, byzantine: bool) -> List[Miner]:
    miners: List[Miner] = []
    for m in range(spec.num_miners):
        cls = (
            EquivocatingMiner
            if byzantine and spec.equivocating_leader and m == 0
            else Miner
        )
        miners.append(
            cls(
                miner_id=f"miner-{m}",
                allocate=DecloudAllocator(spec.config),
                difficulty_bits=spec.difficulty_bits,
            )
        )
    return miners


def _build_protocol(
    spec: ChaosSpec,
    plan: FaultPlan,
    byzantine: bool,
    obs: Optional[ObservabilityLike] = None,
) -> Tuple[ExposureProtocol, UnreliableNetwork]:
    network = UnreliableNetwork(plan=plan)
    protocol = ExposureProtocol(
        miners=_chaos_miners(spec, byzantine), network=network, obs=obs
    )
    return protocol, network


def _mechanism_integrity_ok(result: RoundResult, config) -> bool:
    """The chaos integrity rule: the committed block must equal a
    fault-free replay on exactly the bids that survived the faults."""
    body = result.block.require_complete()
    plaintexts = Miner._open_transactions(result.block.preamble, body.reveals)
    live_requests, live_offers = decode_round(plaintexts)
    expected = replay_fault_free(
        live_requests,
        live_offers,
        result.block.preamble.evidence(),
        config,
    )
    return expected == body.allocation


def _runtime_round_inputs(
    spec: ChaosSpec,
    clients: Dict[str, Participant],
    providers: Dict[str, Participant],
    round_index: int,
) -> RoundInput:
    """One round's seeded market as a runtime input (submission order
    identical to the lockstep driver's submit sequence)."""
    requests, offers = _market_for_round(spec, round_index)
    submissions = [(clients[r.client_id], r) for r in requests]
    submissions += [(providers[o.provider_id], o) for o in offers]
    return RoundInput(submissions=tuple(submissions))


def _run_chaos_point_runtime(
    spec: ChaosSpec,
    drop_rate: float,
    plan: FaultPlan,
    byzantine: bool,
    obs: Optional[ObservabilityLike],
    history: Optional[TimeSeriesStore],
) -> ChaosPoint:
    """The chaos point driven through the async pipelined runtime.

    Same seeded market, same Byzantine actors, same fault plan — but
    messages ride the :class:`~repro.runtime.DeterministicTransport`
    and all rounds flow through one pipelined :class:`Runtime` run.
    """
    miners = _chaos_miners(spec, byzantine)
    clients, providers = _build_participants(spec, byzantine)
    point = ChaosPoint(
        drop_rate=drop_rate,
        rounds_attempted=spec.rounds,
        rounds_completed=0,
        welfare=0.0,
        baseline_welfare=0.0,
        excluded_bids=0,
        fallback_rounds=0,
        messages_dropped=0,
        messages_delivered=0,
        integrity_failures=0,
    )

    def on_commit(round_index: int, _result: RoundResult) -> None:
        if history is not None and obs is not None and obs.enabled:
            history.append(
                obs.registry.snapshot(),
                round=round_index,
                drop_rate=drop_rate,
                seed=spec.seed,
            )

    runtime = Runtime(
        miners,
        plan=plan,
        schedule_seed=f"chaos-sched-{spec.seed}-{drop_rate}",
        obs=obs,
        on_commit=on_commit,
    )
    report = runtime.run(
        [
            _runtime_round_inputs(spec, clients, providers, round_index)
            for round_index in range(spec.rounds)
        ]
    )
    for rt_round in report.rounds:
        if rt_round.result is None:
            point.errors.append(
                f"round {rt_round.index}: {rt_round.error}"
            )
            continue
        result = rt_round.result
        point.rounds_completed += 1
        point.welfare += result.outcome.welfare
        point.excluded_bids += len(result.excluded_txids)
        if result.failed_proposers:
            point.fallback_rounds += 1
        if not _mechanism_integrity_ok(result, spec.config):
            point.integrity_failures += 1
    point.messages_dropped = report.messages_dropped
    point.messages_delivered = report.messages_delivered
    if obs is not None and obs.enabled:
        point.monitor_alerts = int(violation_total(obs.registry))
    return point


def run_chaos_point(
    spec: ChaosSpec,
    drop_rate: float,
    byzantine: bool = True,
    obs: Optional[ObservabilityLike] = None,
    monitored: bool = False,
    history: Optional[TimeSeriesStore] = None,
    engine: str = "lockstep",
) -> ChaosPoint:
    """Run ``spec.rounds`` protocol rounds at one message-drop level.

    ``monitored=True`` builds a fresh observability bundle with the
    default :class:`~repro.obs.monitors.MonitorSuite` attached (unless an
    explicit ``obs`` is given) and reports the alert count in
    :attr:`ChaosPoint.monitor_alerts`.  ``history`` appends the
    registry snapshot after each completed round — the time-series the
    drift detectors consume.

    ``engine`` selects the protocol driver: ``"lockstep"`` (the
    synchronous :class:`ExposureProtocol` over an
    :class:`UnreliableNetwork`) or ``"runtime"`` (the async pipelined
    :class:`~repro.runtime.Runtime` over a deterministic transport,
    same fault plan and market).
    """
    plan = FaultPlan(
        seed=f"chaos-net-{spec.seed}-{drop_rate}",
        drop_rate=drop_rate,
        duplicate_rate=spec.duplicate_rate,
        min_delay=spec.min_delay,
        max_delay=spec.max_delay,
        reorder_rate=spec.reorder_rate,
    )
    if obs is None and monitored:
        obs = Observability(
            run_id=f"chaos-{spec.seed}-{drop_rate}",
            monitors=MonitorSuite(),
        )
    if engine == "runtime":
        return _run_chaos_point_runtime(
            spec, drop_rate, plan, byzantine, obs, history
        )
    if engine != "lockstep":
        raise ReproError(f"unknown chaos engine {engine!r}")
    protocol, network = _build_protocol(spec, plan, byzantine, obs=obs)
    clients, providers = _build_participants(spec, byzantine)
    participants = list(clients.values()) + list(providers.values())

    point = ChaosPoint(
        drop_rate=drop_rate,
        rounds_attempted=spec.rounds,
        rounds_completed=0,
        welfare=0.0,
        baseline_welfare=0.0,
        excluded_bids=0,
        fallback_rounds=0,
        messages_dropped=0,
        messages_delivered=0,
        integrity_failures=0,
    )
    for round_index in range(spec.rounds):
        requests, offers = _market_for_round(spec, round_index)
        for request in requests:
            protocol.submit(clients[request.client_id], request)
        for offer in offers:
            protocol.submit(providers[offer.provider_id], offer)
        try:
            result = protocol.run_round(participants)
        except ReproError as exc:
            point.errors.append(f"round {round_index}: {exc}")
            continue
        point.rounds_completed += 1
        point.welfare += result.outcome.welfare
        point.excluded_bids += len(result.excluded_txids)
        if result.failed_proposers:
            point.fallback_rounds += 1
        if not _mechanism_integrity_ok(result, spec.config):
            point.integrity_failures += 1
        if history is not None and obs is not None and obs.enabled:
            history.append(
                obs.registry.snapshot(),
                round=round_index,
                drop_rate=drop_rate,
                seed=spec.seed,
            )
    point.messages_dropped = network.dropped
    point.messages_delivered = network.delivered
    if obs is not None and obs.enabled:
        point.monitor_alerts = int(violation_total(obs.registry))
    return point


def run_chaos_sweep(
    spec: ChaosSpec,
    drop_rates: Sequence[float] = DEFAULT_DROP_RATES,
    byzantine: bool = True,
    monitored: bool = False,
    history: Optional[TimeSeriesStore] = None,
    engine: str = "lockstep",
) -> List[ChaosPoint]:
    """Sweep message-drop levels; each point also gets a fault-free baseline.

    The baseline run shares the market seed but switches off every fault
    (and every Byzantine actor), so ``welfare_retention`` isolates what
    the *faults* cost — not seed-to-seed market variation.

    ``monitored`` / ``history`` are forwarded to every fault-level point
    (a fresh monitored bundle per level; the shared ``history`` file
    accumulates each level's rounds); the baseline stays unmonitored so
    its behaviour matches earlier releases byte for byte.
    """
    baseline_spec = replace(
        spec,
        withholding_clients=0,
        tampering_clients=0,
        equivocating_leader=False,
        duplicate_rate=0.0,
        reorder_rate=0.0,
    )
    baseline = run_chaos_point(
        baseline_spec, 0.0, byzantine=False, engine=engine
    )
    points: List[ChaosPoint] = []
    for drop_rate in drop_rates:
        point = run_chaos_point(
            spec,
            drop_rate,
            byzantine=byzantine,
            monitored=monitored,
            history=history,
            engine=engine,
        )
        point.baseline_welfare = baseline.welfare
        points.append(point)
    return points


# ======================================================================
# Durable nodes under crash injection: supervision + the crash matrix
# ======================================================================
#
# The runs below give every miner its own ``repro.store.NodeStore`` (the
# deterministic in-memory backends) and drive the same seeded degraded
# scenario as ``run_chaos_point`` — Byzantine actors included — over a
# *deterministic* network.  Node-0 additionally journals the shared
# settlement ledger and the round phase markers; a
# :class:`~repro.faults.crash.CrashPoint` armed on its WAL kills the
# whole simulated process at one chosen record boundary.  The
# supervision loop then restarts the node fleet from their stores:
# recover every store, sync lagging chains from the longest recovered
# one, resume any settlement the crash interrupted, and either credit
# the in-flight round (its ``chain.append`` record beat the crash) or
# abort-and-replay it through the PR-1 degradation machinery.
#
# ``run_crash_matrix`` proves the durability contract: for EVERY record
# boundary of the reference run, in every crash mode (clean / torn /
# corrupt tail), the recovered run's committed outcomes are bit-identical
# (``canonical_outcome``) to the uninterrupted run — same chain tip, same
# ledger digest, zero monitor violations.


@dataclass
class DurableRunResult:
    """Everything one supervised durable scenario produced."""

    #: per-round canonical outcome digests (None: the round aborted)
    outcomes: List[Optional[Dict]] = field(default_factory=list)
    tip_hash: str = ""
    #: exact digest of node-0's durable state at the end of the run
    state_digest: str = ""
    rounds_completed: int = 0
    crashes: int = 0
    recoveries: int = 0
    truncated_bytes: int = 0
    #: rounds re-driven from scratch after a crash (abort-and-replay)
    replayed_rounds: int = 0
    #: rounds credited from the recovered chain (decided before the crash)
    resumed_rounds: int = 0
    #: blocks whose settlement recovery had to finish
    resumed_settlements: int = 0
    monitor_alerts: int = 0
    #: node-0 WAL appends observed (sizes the crash matrix)
    append_count: int = 0
    errors: List[str] = field(default_factory=list)
    #: node-0's full materialized state (only with ``keep_state=True``)
    final_state: Optional[Dict] = None


def _durable_seal_seed(spec: ChaosSpec, round_index: int) -> bytes:
    return f"durable-{spec.seed}-round-{round_index}".encode("ascii")


def _durable_network(
    spec: ChaosSpec, drop_rate: float, round_index: int
) -> UnreliableNetwork:
    """A fresh per-round bus so a replayed round sees the identical
    fault stream the first attempt saw."""
    return UnreliableNetwork(
        plan=FaultPlan(
            seed=f"durable-net-{spec.seed}-{drop_rate}-{round_index}",
            drop_rate=drop_rate,
            duplicate_rate=spec.duplicate_rate,
            min_delay=spec.min_delay,
            max_delay=spec.max_delay,
            reorder_rate=spec.reorder_rate,
        )
    )


def _derive_block_outcome(block, config) -> AuctionOutcome:
    """Deterministically re-run the auction a committed block encodes.

    Recovery uses this when a round's block survived the crash but the
    in-memory :class:`AuctionOutcome` died with the process: decrypt the
    revealed bids, re-run the mechanism on the block's own evidence.
    Collective verification already proved the block's payload equals
    exactly this re-execution, so the derived outcome *is* the round's
    outcome.
    """
    body = block.require_complete()
    plaintexts = Miner._open_transactions(block.preamble, body.reveals)
    live_requests, live_offers = decode_round(plaintexts)
    auction = DecloudAuction(config or AuctionConfig())
    return auction.run(
        live_requests, live_offers, evidence=block.preamble.evidence()
    )


def _build_durable_miners(
    spec: ChaosSpec, byzantine: bool, stores: Sequence[NodeStore]
) -> List[Miner]:
    miners: List[Miner] = []
    for m in range(spec.num_miners):
        cls = (
            EquivocatingMiner
            if byzantine and spec.equivocating_leader and m == 0
            else Miner
        )
        miners.append(
            cls(
                miner_id=f"miner-{m}",
                allocate=DecloudAllocator(spec.config),
                difficulty_bits=spec.difficulty_bits,
                store=stores[m],
            )
        )
    return miners


def _resume_settlement(
    chain,
    settlement: SettlementProcessor,
    spec: ChaosSpec,
    result: DurableRunResult,
) -> None:
    """Finish settling any committed block the crash interrupted."""
    for block in chain:
        block_hash = block.hash()
        if block_hash in settlement._settled_blocks:
            continue
        outcome = _derive_block_outcome(block, spec.config)
        settlement.settle_block(
            outcome.matches, auto_fund=True, block_hash=block_hash
        )
        result.resumed_settlements += 1


def _restart_fleet(
    spec: ChaosSpec,
    byzantine: bool,
    stores: Sequence[NodeStore],
    obs: Optional[ObservabilityLike],
    result: DurableRunResult,
) -> Tuple[List[Miner], SettlementProcessor]:
    """The supervisor's restart path: recover, sync chains, resume
    settlement.

    Every store is recovered from (snapshot, valid log prefix) alone;
    lagging miners catch up to the longest recovered chain through the
    ordinary ``accept_block`` validation path (which re-journals into
    their own stores), so the fleet converges without trusting any
    surviving in-memory state.
    """
    recovered = [
        store.recover(difficulty_bits=spec.difficulty_bits)
        for store in stores
    ]
    result.recoveries += len(recovered)
    result.truncated_bytes += sum(r.truncated_bytes for r in recovered)
    miners: List[Miner] = []
    for m, rec in enumerate(recovered):
        cls = (
            EquivocatingMiner
            if byzantine and spec.equivocating_leader and m == 0
            else Miner
        )
        miners.append(
            cls(
                miner_id=f"miner-{m}",
                allocate=DecloudAllocator(spec.config),
                difficulty_bits=rec.chain.difficulty_bits,
                chain=rec.chain,
                mempool=rec.mempool,
                store=stores[m],
            )
        )
    best = max(recovered, key=lambda r: r.committed_height)
    for miner, rec in zip(miners, recovered):
        for height in range(rec.committed_height, best.committed_height):
            miner.accept_block(best.chain[height])
    settlement = recovered[0].make_settlement(store=stores[0], obs=obs)
    _resume_settlement(best.chain, settlement, spec, result)
    return miners, settlement


def _drive_durable_round(
    spec: ChaosSpec,
    drop_rate: float,
    round_index: int,
    byzantine: bool,
    miners: Sequence[Miner],
    store: NodeStore,
    obs: Optional[ObservabilityLike],
):
    """Submit one round's seeded market and run the protocol round."""
    network = _durable_network(spec, drop_rate, round_index)
    protocol = ExposureProtocol(
        miners=miners,
        network=network,
        obs=obs,
        store=store,
        start_round=round_index,
    )
    clients, providers = _build_participants(
        spec, byzantine, seal_seed=_durable_seal_seed(spec, round_index)
    )
    participants = list(clients.values()) + list(providers.values())
    requests, offers = _market_for_round(spec, round_index)
    for request in requests:
        protocol.submit(clients[request.client_id], request)
    for offer in offers:
        protocol.submit(providers[offer.provider_id], offer)
    return protocol.run_round(participants)


def _credit_recovered_rounds(
    spec: ChaosSpec,
    store: NodeStore,
    chain,
    outcomes: Dict[int, Optional[Dict]],
    next_round: int,
    result: DurableRunResult,
) -> int:
    """Credit every round the crash left durably decided; return the
    first round the continuation must re-drive.

    The pipelined runtime can die with several rounds in flight, so the
    walk consults each round's own newest phase marker
    (:attr:`NodeStore.round_phases`).  Commits are serialized in round
    order (mining needs the parent hash), so the k-th unrecorded chain
    block belongs to the first non-aborted uncredited round — which
    also credits a round whose ``chain.append`` beat the crash but
    whose terminal marker did not.
    """
    recorded = sum(1 for value in outcomes.values() if value is not None)
    round_index = next_round
    while round_index < spec.rounds:
        if outcomes.get(round_index) is not None:
            # committed and settled in-window before the crash (the
            # supervisor's on_commit already recorded it); its chain
            # block is counted by ``recorded``
            round_index += 1
            continue
        marker = store.round_phases.get(round_index)
        phase = marker.get("phase") if marker else None
        if phase == "aborted":
            outcomes[round_index] = None
            round_index += 1
            continue
        if len(chain) > recorded:
            block = chain[recorded]
            outcomes[round_index] = canonical_outcome(
                _derive_block_outcome(block, spec.config)
            )
            if phase != "committed":
                # close the round durably — its terminal marker died
                # with the process
                store.log(
                    "round.phase",
                    round=round_index,
                    phase="committed",
                    hash=block.hash(),
                )
            recorded += 1
            result.resumed_rounds += 1
            round_index += 1
            continue
        # Nothing durable decided this round: abort-and-replay from here
        # (any deeper in-flight rounds replay with it).
        result.replayed_rounds += 1
        break
    return round_index


def _run_durable_scenario_runtime(
    spec: ChaosSpec,
    drop_rate: float,
    byzantine: bool,
    crash_point: Optional[CrashPoint],
    monitored: bool,
    snapshot_every: int,
    keep_state: bool,
    obs: Optional[ObservabilityLike],
) -> DurableRunResult:
    """The durable scenario driven through the pipelined async runtime.

    One :class:`~repro.runtime.Runtime` drives every remaining round in
    a single pipelined window; a crash can therefore land with round *N*
    mid-reveal while round *N+1* is already sealing.  The supervision
    loop restarts the fleet from the stores, credits every round whose
    block proved durable (there can be several), and re-drives the rest
    with a continuation runtime (``start_round`` keeps leader rotation,
    phase markers, and content-addressed fault keys aligned with the
    reference run).  Fresh per-round participants use the same per-round
    seal seeds as the lockstep path, so a replayed round re-seals
    byte-identical transactions.
    """
    stores = [
        NodeStore.in_memory(crash_point=crash_point if m == 0 else None)
        for m in range(spec.num_miners)
    ]
    if obs is None and monitored:
        obs = Observability(
            run_id=f"durable-rt-{spec.seed}-{drop_rate}",
            monitors=MonitorSuite(),
        )
    ledger = TokenLedger()
    settlement = SettlementProcessor(ledger=ledger, obs=obs)
    stores[0].attach(ledger=ledger, settlement=settlement)
    miners = _build_durable_miners(spec, byzantine, stores)

    result = DurableRunResult()
    outcomes: Dict[int, Optional[Dict]] = {}
    next_round = 0
    while next_round < spec.rounds:
        inputs = []
        for round_index in range(next_round, spec.rounds):
            clients, providers = _build_participants(
                spec,
                byzantine,
                seal_seed=_durable_seal_seed(spec, round_index),
            )
            inputs.append(
                _runtime_round_inputs(spec, clients, providers, round_index)
            )

        def on_commit(
            local_index: int,
            round_result: RoundResult,
            _base: int = next_round,
            _settlement: SettlementProcessor = settlement,
        ) -> None:
            _settlement.settle_block(
                round_result.outcome.matches,
                auto_fund=True,
                block_hash=round_result.block.hash(),
            )
            outcomes[_base + local_index] = canonical_outcome(
                round_result.outcome
            )
            if snapshot_every and (
                (_base + local_index + 1) % snapshot_every == 0
            ):
                # dying inside snapshot/compaction loses no state — the
                # committed round is already durable, so recovery just
                # credits it and resumes the schedule
                for store in stores:
                    store.snapshot()

        runtime = Runtime(
            miners,
            plan=FaultPlan(
                seed=f"durable-rt-net-{spec.seed}-{drop_rate}",
                drop_rate=drop_rate,
                duplicate_rate=spec.duplicate_rate,
                min_delay=spec.min_delay,
                max_delay=spec.max_delay,
                reorder_rate=spec.reorder_rate,
            ),
            schedule_seed=f"durable-rt-sched-{spec.seed}-{drop_rate}",
            obs=obs,
            store=stores[0],
            start_round=next_round,
            on_commit=on_commit,
        )
        try:
            report = runtime.run(inputs)
        except SimulatedCrashError as exc:
            result.crashes += 1
            result.errors.append(f"window from round {next_round}: {exc}")
            miners, settlement = _restart_fleet(
                spec, byzantine, stores, obs, result
            )
            next_round = _credit_recovered_rounds(
                spec, stores[0], miners[0].chain, outcomes,
                next_round, result,
            )
            continue
        for rt_round in report.rounds:
            if rt_round.result is None:
                global_index = next_round + rt_round.index
                result.errors.append(
                    f"round {global_index}: {rt_round.error}"
                )
                outcomes[global_index] = None
        break  # every remaining round reached a terminal state

    result.outcomes = [outcomes.get(r) for r in range(spec.rounds)]
    result.rounds_completed = sum(
        1 for value in result.outcomes if value is not None
    )
    result.tip_hash = miners[0].chain.tip_hash
    result.state_digest = stores[0].state_digest()
    result.append_count = stores[0].wal.append_count
    if keep_state:
        result.final_state = stores[0].state_dict()
    if obs is not None and obs.enabled:
        result.monitor_alerts = int(violation_total(obs.registry))
    for store in stores:
        store.close()
    return result


def run_durable_scenario(
    spec: ChaosSpec,
    drop_rate: float = 0.0,
    byzantine: bool = True,
    crash_point: Optional[CrashPoint] = None,
    monitored: bool = True,
    snapshot_every: int = 0,
    keep_state: bool = False,
    obs: Optional[ObservabilityLike] = None,
    engine: str = "lockstep",
) -> DurableRunResult:
    """Run ``spec.rounds`` durable protocol rounds under supervision.

    Every miner journals into its own in-memory :class:`NodeStore`;
    node-0 also journals the settlement ledger and round phases, and
    carries ``crash_point`` (if given) on its WAL.  When the simulated
    process dies mid-append, the supervision loop restarts the fleet
    from the stores and continues the schedule — crediting the
    interrupted round if its block proved durable, replaying it
    otherwise.  ``snapshot_every`` > 0 snapshots + compacts every store
    after that many committed rounds, putting the snapshot/compaction
    path inside the crash blast radius too.

    The differential contract (see :func:`run_crash_matrix`): for any
    crash point, the result's ``outcomes``, ``tip_hash`` and
    ``state_digest`` equal the uninterrupted run's.

    ``engine="runtime"`` drives the same scenario through the async
    pipelined runtime instead — one runtime run per supervision window,
    rounds overlapping, with the crash potentially landing while several
    rounds are in flight (see :func:`_run_durable_scenario_runtime`).
    """
    if engine == "runtime":
        return _run_durable_scenario_runtime(
            spec, drop_rate, byzantine, crash_point, monitored,
            snapshot_every, keep_state, obs,
        )
    if engine != "lockstep":
        raise ReproError(f"unknown durable engine {engine!r}")
    stores = [
        NodeStore.in_memory(crash_point=crash_point if m == 0 else None)
        for m in range(spec.num_miners)
    ]
    if obs is None and monitored:
        # callers may pass their own bundle instead (e.g. one carrying a
        # flight recorder, so a recovery mismatch leaves evidence behind)
        obs = Observability(
            run_id=f"durable-{spec.seed}-{drop_rate}",
            monitors=MonitorSuite(),
        )
    ledger = TokenLedger()
    settlement = SettlementProcessor(ledger=ledger, obs=obs)
    stores[0].attach(ledger=ledger, settlement=settlement)
    miners = _build_durable_miners(spec, byzantine, stores)

    result = DurableRunResult()
    round_index = 0
    committed_before = 0
    while round_index < spec.rounds:
        try:
            round_result = _drive_durable_round(
                spec, drop_rate, round_index, byzantine,
                miners, stores[0], obs,
            )
            settlement.settle_block(
                round_result.outcome.matches,
                auto_fund=True,
                block_hash=round_result.block.hash(),
            )
            result.outcomes.append(canonical_outcome(round_result.outcome))
            result.rounds_completed += 1
        except SimulatedCrashError as exc:
            result.crashes += 1
            result.errors.append(f"round {round_index}: {exc}")
            miners, settlement = _restart_fleet(
                spec, byzantine, stores, obs, result
            )
            if len(miners[0].chain) > committed_before:
                # The round was decided before the crash: its block is
                # durable (and settlement was just resumed).  Credit it
                # from the chain instead of re-running the protocol, and
                # close it durably — the terminal phase marker may have
                # died with the process.
                block = miners[0].chain[committed_before]
                result.outcomes.append(
                    canonical_outcome(
                        _derive_block_outcome(block, spec.config)
                    )
                )
                stores[0].log(
                    "round.phase",
                    round=round_index,
                    phase="committed",
                    hash=block.hash(),
                )
                result.rounds_completed += 1
                result.resumed_rounds += 1
            else:
                # Nothing durable decided the round: abort-and-replay.
                result.replayed_rounds += 1
                continue
        except ReproError as exc:
            result.errors.append(f"round {round_index}: {exc}")
            result.outcomes.append(None)
        committed_before = len(miners[0].chain)
        round_index += 1
        if snapshot_every and round_index % snapshot_every == 0:
            try:
                for store in stores:
                    store.snapshot()
            except SimulatedCrashError as exc:
                # Dying inside snapshot/compaction loses no state: the
                # rounds are already durable, so recovery just resumes
                # the schedule.
                result.crashes += 1
                result.errors.append(f"snapshot after round {round_index}: {exc}")
                miners, settlement = _restart_fleet(
                    spec, byzantine, stores, obs, result
                )
                committed_before = len(miners[0].chain)

    result.tip_hash = miners[0].chain.tip_hash
    result.state_digest = stores[0].state_digest()
    result.append_count = stores[0].wal.append_count
    if keep_state:
        result.final_state = stores[0].state_dict()
    if obs is not None and obs.enabled:
        result.monitor_alerts = int(violation_total(obs.registry))
    for store in stores:
        store.close()
    return result


@dataclass
class CrashMatrixPoint:
    """One cell of the crash matrix: a boundary × mode, compared."""

    at_append: int
    mode: str
    fired: bool
    matches_reference: bool
    detail: str = ""
    crashes: int = 0
    replayed_rounds: int = 0
    resumed_rounds: int = 0
    resumed_settlements: int = 0
    truncated_bytes: int = 0


@dataclass
class CrashMatrixResult:
    """The full differential sweep over every crash point."""

    reference: DurableRunResult
    points: List[CrashMatrixPoint] = field(default_factory=list)

    @property
    def mismatches(self) -> List[CrashMatrixPoint]:
        return [p for p in self.points if not p.matches_reference]

    @property
    def all_match(self) -> bool:
        return not self.mismatches


def _compare_to_reference(
    reference: DurableRunResult, run: DurableRunResult
) -> str:
    """Empty string when ``run`` matches the uninterrupted reference."""
    if run.outcomes != reference.outcomes:
        return "committed outcomes diverge from the uninterrupted run"
    if run.tip_hash != reference.tip_hash:
        return "chain tip hash diverges"
    if run.state_digest != reference.state_digest:
        return "durable state digest diverges"
    if run.monitor_alerts:
        return f"{run.monitor_alerts} monitor alert(s) after recovery"
    return ""


def run_crash_matrix(
    spec: ChaosSpec,
    drop_rate: float = 0.0,
    byzantine: bool = True,
    modes: Sequence[str] = ("clean", "torn", "corrupt"),
    snapshot_every: int = 0,
    stride: int = 1,
    monitored: bool = True,
    engine: str = "lockstep",
) -> CrashMatrixResult:
    """Differential crash sweep: every WAL boundary × every crash mode.

    First runs the scenario uninterrupted (durability on) to fix the
    reference outcomes and the boundary count, then re-runs it once per
    (boundary, mode) pair with a crash point armed.  ``stride`` > 1
    subsamples boundaries (the CI smoke job uses this); the full matrix
    is ``stride=1``.  The guarantee under test: every cell recovers to
    bit-identical committed outcomes, chain tip, and ledger state, with
    zero monitor violations.

    With ``engine="runtime"`` the same guarantee is proven for the
    async pipelined runtime — crash boundaries then include instants
    where two rounds are in flight at once.
    """
    reference = run_durable_scenario(
        spec,
        drop_rate=drop_rate,
        byzantine=byzantine,
        monitored=monitored,
        snapshot_every=snapshot_every,
        engine=engine,
    )
    matrix = CrashMatrixResult(reference=reference)
    plan = CrashPlan(append_count=reference.append_count, modes=tuple(modes))
    for point in plan.points():
        if point.at_append % max(stride, 1) != 0:
            continue
        run = run_durable_scenario(
            spec,
            drop_rate=drop_rate,
            byzantine=byzantine,
            crash_point=point,
            monitored=monitored,
            snapshot_every=snapshot_every,
            engine=engine,
        )
        detail = _compare_to_reference(reference, run)
        if point.fired and run.crashes == 0:
            detail = detail or "crash point fired but no crash recorded"
        matrix.points.append(
            CrashMatrixPoint(
                at_append=point.at_append,
                mode=point.mode,
                fired=point.fired,
                matches_reference=not detail,
                detail=detail,
                crashes=run.crashes,
                replayed_rounds=run.replayed_rounds,
                resumed_rounds=run.resumed_rounds,
                resumed_settlements=run.resumed_settlements,
                truncated_bytes=run.truncated_bytes,
            )
        )
    return matrix
