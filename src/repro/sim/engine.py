"""Market simulator: clears blocks with DeCloud and its benchmark.

The simulator is the evaluation driver: it takes generated markets (or a
stream of them), runs the truthful mechanism and the non-truthful greedy
reference on identical inputs, and collects :class:`BlockMetrics`.  Block
evidence is derived deterministically from the seed so the verifiable
randomization is reproducible without a full ledger in the loop (the
ledger-backed path is exercised by :mod:`repro.protocol` and its tests).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Sequence, Tuple

from repro.baselines.greedy import GreedyBenchmark
from repro.common.timing import PhaseTimer
from repro.core.auction import DecloudAuction
from repro.core.config import AuctionConfig
from repro.core.outcome import AuctionOutcome
from repro.market.bids import Offer, Request
from repro.obs import ObservabilityLike, resolve as resolve_obs
from repro.obs.timeseries import TimeSeriesStore
from repro.sim.metrics import (
    BlockMetrics,
    RunMetrics,
    block_metrics_from_registry,
    compare_outcomes,
)


def _evidence_for(seed: int, index: int) -> bytes:
    return hashlib.sha256(f"block-{seed}-{index}".encode()).digest()


def replay_fault_free(
    requests: Sequence[Request],
    offers: Sequence[Offer],
    evidence: bytes,
    config: Optional[AuctionConfig] = None,
) -> dict:
    """The allocation payload a fault-free run produces on exactly these bids.

    Chaos experiments and property tests use this as the ground truth: a
    round that completed under injected faults must carry the *same*
    payload a lossless network would have produced on the surviving bid
    subset with the same block evidence — faults may shrink the market,
    never corrupt the mechanism.
    """
    auction = DecloudAuction(config or AuctionConfig())
    return auction.run(requests, offers, evidence=evidence).to_payload()


@dataclass
class MarketSimulator:
    """Runs paired DeCloud/benchmark clearings over blocks of bids.

    ``timer`` (optional) accumulates the auction's per-phase wall time
    (match / cluster / normalize / assemble / clear) across every block
    the simulator clears — benchmarks read it to report where rounds
    spend their time.

    ``obs`` (optional :class:`~repro.obs.Observability`) records both
    mechanisms' rounds under ``mechanism=decloud`` / ``=benchmark``
    label scopes.  When attached, :meth:`run_block` builds its
    :class:`BlockMetrics` *from the registry* (see
    :func:`~repro.sim.metrics.block_metrics_from_registry`) — the
    values are bit-identical to the direct outcome comparison, which
    the metrics-accuracy suite asserts.  A monitor suite attached to
    the bundle is evaluated on every DeCloud outcome (the benchmark
    deliberately breaks the §IV invariants and is skipped).

    ``history`` (optional
    :class:`~repro.obs.timeseries.TimeSeriesStore`) appends the
    registry snapshot after every block, building the cross-run JSONL
    history the drift detectors read.  Requires ``obs``.
    """

    config: AuctionConfig = field(default_factory=AuctionConfig)
    seed: int = 0
    timer: Optional[PhaseTimer] = None
    obs: Optional[ObservabilityLike] = None
    history: Optional["TimeSeriesStore"] = None
    _block_index: int = 0

    def __post_init__(self) -> None:
        self.obs = resolve_obs(self.obs)
        self._auction = DecloudAuction(self.config)
        self._benchmark = GreedyBenchmark(self.config)

    def run_block(
        self,
        requests: Sequence[Request],
        offers: Sequence[Offer],
        evidence: Optional[bytes] = None,
    ) -> Tuple[BlockMetrics, AuctionOutcome, AuctionOutcome]:
        """Clear one block with both mechanisms on identical inputs."""
        if evidence is None:
            evidence = _evidence_for(self.seed, self._block_index)
        self._block_index += 1
        obs = self.obs
        if obs.enabled:
            decloud = self._auction.run(
                requests,
                offers,
                evidence=evidence,
                timer=self.timer,
                obs=obs.scoped(mechanism="decloud"),
            )
            benchmark = self._benchmark.run(
                requests, offers, obs=obs.scoped(mechanism="benchmark")
            )
            metrics = block_metrics_from_registry(obs.registry)
            if self.history is not None:
                self.history.append(
                    obs.registry.snapshot(),
                    block=self._block_index - 1,
                    seed=self.seed,
                )
        else:
            decloud = self._auction.run(
                requests, offers, evidence=evidence, timer=self.timer
            )
            benchmark = self._benchmark.run(requests, offers)
            metrics = compare_outcomes(
                len(requests), len(offers), decloud, benchmark
            )
        return metrics, decloud, benchmark

    def run_stream(
        self,
        markets: Iterable[Tuple[Sequence[Request], Sequence[Offer]]],
    ) -> RunMetrics:
        """Clear a sequence of blocks and aggregate."""
        blocks: List[BlockMetrics] = []
        for requests, offers in markets:
            metrics, _, _ = self.run_block(requests, offers)
            blocks.append(metrics)
        return RunMetrics(blocks=blocks)
