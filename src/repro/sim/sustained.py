"""Sustained-traffic driver: continuous arrivals through protocol rounds.

The chaos and durability harnesses submit each round's market as a
burst.  Edge clouds do not work like that: bids trickle in continuously
while the previous block is still mining (paper §VI's "online
appearance").  This module generates seeded exponential inter-arrival
offsets for every round's bids and drives the same market through
either engine:

* ``engine="runtime"`` — the async pipelined reactor, where round
  *N*+1's arrivals overlap round *N*'s mine/verify/commit span.  With
  ``pipeline=False`` the identical reactor runs rounds back-to-back,
  which is the lockstep schedule on the virtual clock — the fair
  baseline for the rounds/sec comparison in
  ``benchmarks/test_bench_runtime.py``.
* ``engine="lockstep"`` — the synchronous
  :class:`~repro.protocol.exposure.ExposureProtocol`, for wall-clock
  cost comparisons (it has no virtual clock, so ``virtual_time`` is
  ``None``).

Both engines commit bit-identical blocks for the same spec — the
differential suite in ``tests/differential/test_runtime_equivalence.py``
proves that in general; :func:`run_sustained` just packages the
sustained-arrival special case behind one call.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple, Union

from repro.common.errors import ReproError
from repro.common.rng import make_generator
from repro.common.timewindow import TimeWindow
from repro.core.config import AuctionConfig
from repro.ledger.miner import Miner
from repro.market.bids import Offer, Request
from repro.protocol.allocator import DecloudAllocator
from repro.protocol.exposure import (
    BroadcastNetwork,
    ExposureProtocol,
    Participant,
)
from repro.runtime import RoundInput, Runtime


@dataclass(frozen=True)
class SustainedSpec:
    """A sustained-traffic experiment: seeded markets + arrival cadence."""

    num_clients: int = 4
    num_providers: int = 2
    num_miners: int = 3
    rounds: int = 4
    seed: int = 0
    difficulty_bits: int = 4
    #: mean virtual seconds between consecutive bid arrivals within a
    #: round (exponential inter-arrival times, seeded per round)
    mean_interarrival: float = 0.2
    config: Optional[AuctionConfig] = None


@dataclass
class SustainedResult:
    """What one sustained run committed, and how fast (virtually)."""

    engine: str
    pipeline: bool
    rounds_attempted: int
    rounds_committed: int
    welfare: float
    #: reactor-clock duration; ``None`` for the lockstep engine
    virtual_time: Optional[float]
    overlap_rounds: int
    block_hashes: Tuple[str, ...]
    errors: List[str]

    @property
    def rounds_per_virtual_second(self) -> float:
        if not self.virtual_time:
            return 0.0
        return self.rounds_committed / self.virtual_time


def _market_for_round(
    spec: SustainedSpec, round_index: int
) -> Tuple[List[Request], List[Offer]]:
    rng = make_generator(f"sustained-market-{spec.seed}-{round_index}")
    requests = [
        Request(
            request_id=f"req-{round_index}-{i}",
            client_id=f"cli-{i}",
            submit_time=0.1 * i,
            resources={"cpu": 2, "ram": 4},
            window=TimeWindow(0, 10),
            duration=4.0,
            bid=float(rng.uniform(1.2, 3.0)),
        )
        for i in range(spec.num_clients)
    ]
    offers = [
        Offer(
            offer_id=f"off-{round_index}-{j}",
            provider_id=f"prov-{j}",
            submit_time=0.1 * j,
            resources={"cpu": 8, "ram": 32},
            window=TimeWindow(0, 24),
            bid=float(rng.uniform(0.2, 0.8)),
        )
        for j in range(spec.num_providers)
    ]
    return requests, offers


def _participants(spec: SustainedSpec) -> Dict[str, Participant]:
    seal_seed = f"sustained-{spec.seed}".encode("ascii")
    ids = [f"cli-{i}" for i in range(spec.num_clients)] + [
        f"prov-{j}" for j in range(spec.num_providers)
    ]
    return {
        pid: Participant(
            participant_id=pid, deterministic=True, seal_seed=seal_seed
        )
        for pid in ids
    }


def arrival_offsets(spec: SustainedSpec, round_index: int) -> Tuple[float, ...]:
    """Cumulative exponential inter-arrival offsets for one round's bids."""
    rng = make_generator(f"sustained-arrivals-{spec.seed}-{round_index}")
    count = spec.num_clients + spec.num_providers
    clock = 0.0
    offsets = []
    for _ in range(count):
        clock += float(rng.exponential(spec.mean_interarrival))
        offsets.append(clock)
    return tuple(offsets)


def build_round_inputs(
    spec: SustainedSpec, participants: Dict[str, Participant]
) -> List[RoundInput]:
    """Every round's submissions with their seeded arrival offsets."""
    inputs: List[RoundInput] = []
    for round_index in range(spec.rounds):
        requests, offers = _market_for_round(spec, round_index)
        bids: List[Tuple[Participant, Union[Request, Offer]]] = [
            (participants[r.client_id], r) for r in requests
        ] + [(participants[o.provider_id], o) for o in offers]
        inputs.append(
            RoundInput(
                submissions=tuple(bids),
                offsets=arrival_offsets(spec, round_index),
            )
        )
    return inputs


def _build_miners(spec: SustainedSpec) -> List[Miner]:
    return [
        Miner(
            miner_id=f"m{i}",
            allocate=DecloudAllocator(spec.config),
            difficulty_bits=spec.difficulty_bits,
        )
        for i in range(spec.num_miners)
    ]


def _run_lockstep(spec: SustainedSpec) -> SustainedResult:
    miners = _build_miners(spec)
    protocol = ExposureProtocol(miners=miners, network=BroadcastNetwork())
    participants = _participants(spec)
    result = SustainedResult(
        engine="lockstep",
        pipeline=False,
        rounds_attempted=spec.rounds,
        rounds_committed=0,
        welfare=0.0,
        virtual_time=None,
        overlap_rounds=0,
        block_hashes=(),
        errors=[],
    )
    hashes: List[str] = []
    for round_index in range(spec.rounds):
        requests, offers = _market_for_round(spec, round_index)
        for request in requests:
            protocol.submit(participants[request.client_id], request)
        for offer in offers:
            protocol.submit(participants[offer.provider_id], offer)
        try:
            round_result = protocol.run_round(list(participants.values()))
        except ReproError as exc:
            result.errors.append(f"round {round_index}: {exc}")
            continue
        result.rounds_committed += 1
        result.welfare += round_result.outcome.welfare
        hashes.append(round_result.block.hash())
    result.block_hashes = tuple(hashes)
    return result


def run_sustained(
    spec: SustainedSpec,
    engine: str = "runtime",
    pipeline: bool = True,
    schedule_seed: Optional[Union[int, str]] = None,
    obs: Optional[object] = None,
    profiler: Optional[object] = None,
    telemetry_interval: Optional[float] = None,
) -> SustainedResult:
    """Drive ``spec.rounds`` rounds of continuous arrivals to commit.

    ``obs``/``profiler``/``telemetry_interval`` pass straight through to
    the reactor (``engine="runtime"`` only): attach an ``Observability``
    bundle and a :class:`~repro.obs.profile.PipelineProfiler` to get
    per-round stall attribution and the folded-stack flame export for
    the very run whose throughput is being reported.
    """
    if engine == "lockstep":
        return _run_lockstep(spec)
    if engine != "runtime":
        raise ReproError(f"unknown sustained engine {engine!r}")
    runtime = Runtime(
        _build_miners(spec),
        schedule_seed=(
            f"sustained-sched-{spec.seed}"
            if schedule_seed is None
            else schedule_seed
        ),
        pipeline=pipeline,
        obs=obs,
        profiler=profiler,
        telemetry_interval=telemetry_interval,
    )
    report = runtime.run(build_round_inputs(spec, _participants(spec)))
    return SustainedResult(
        engine="runtime",
        pipeline=pipeline,
        rounds_attempted=spec.rounds,
        rounds_committed=len(report.committed),
        welfare=sum(r.outcome.welfare for r in report.committed),
        virtual_time=report.virtual_time,
        overlap_rounds=report.overlap_rounds,
        block_hashes=tuple(
            r.result.block.hash()
            for r in report.rounds
            if r.result is not None
        ),
        errors=[
            f"round {r.index}: {r.error}" for r in report.rounds if r.error
        ],
    )
