"""Online (multi-block) market simulation.

Allocations happen in block rounds (paper §VI): bids submitted since the
previous block enter the next one; unallocated participants resubmit
automatically until their windows expire.  The simulator tracks per-round
metrics and client-perceived allocation delay — the "observed delay"
behind the system's online appearance.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.common.errors import ValidationError
from repro.common.timing import PhaseTimer
from repro.core.auction import DecloudAuction
from repro.core.config import AuctionConfig
from repro.core.outcome import AuctionOutcome
from repro.market.bids import Offer, Request
from repro.obs import ObservabilityLike, resolve as resolve_obs
from repro.obs.timeseries import TimeSeriesStore


@dataclass
class RoundRecord:
    """What happened in one block round."""

    index: int
    time: float
    n_requests: int
    n_offers: int
    outcome: AuctionOutcome

    @property
    def trades(self) -> int:
        return self.outcome.num_trades

    @property
    def welfare(self) -> float:
        return self.outcome.welfare


@dataclass
class OnlineResult:
    """Aggregated results of an online run."""

    rounds: List[RoundRecord] = field(default_factory=list)
    #: request id -> blocks waited before allocation
    allocation_delay: Dict[str, int] = field(default_factory=dict)
    expired_requests: List[str] = field(default_factory=list)

    @property
    def total_welfare(self) -> float:
        return sum(r.welfare for r in self.rounds)

    @property
    def total_trades(self) -> int:
        return sum(r.trades for r in self.rounds)

    @property
    def mean_delay_blocks(self) -> float:
        if not self.allocation_delay:
            return 0.0
        return sum(self.allocation_delay.values()) / len(self.allocation_delay)

    @property
    def served_fraction(self) -> float:
        served = len(self.allocation_delay)
        total = served + len(self.expired_requests)
        return served / total if total else 0.0


class OnlineSimulator:
    """Clears a timestamped bid stream in fixed-interval block rounds."""

    def __init__(
        self,
        config: Optional[AuctionConfig] = None,
        block_interval: float = 1.0,
        seed: int = 0,
        timer: Optional[PhaseTimer] = None,
        obs: Optional[ObservabilityLike] = None,
        history: Optional[TimeSeriesStore] = None,
    ) -> None:
        if block_interval <= 0:
            raise ValidationError("block_interval must be positive")
        self.config = config or AuctionConfig()
        self.block_interval = block_interval
        self.seed = seed
        #: accumulates auction phase timings across every round
        self.timer = timer
        #: optional observability: per-epoch queue depth, arrival/expiry
        #: counters, and trade-ratio gauges (plus the auction's own
        #: round instrumentation and any attached monitor suite)
        self.obs = resolve_obs(obs)
        #: optional per-round registry history for the drift detectors
        #: (latency p95, revenue per block); requires ``obs``
        self.history = history
        self._auction = DecloudAuction(self.config)

    def _evidence(self, round_index: int) -> bytes:
        return hashlib.sha256(
            f"online-{self.seed}-{round_index}".encode()
        ).digest()

    def run(
        self,
        requests: Sequence[Request],
        offers: Sequence[Offer],
        horizon: float,
    ) -> OnlineResult:
        """Simulate rounds at ``block_interval`` up to ``horizon``.

        A pending request stays in the pool (resubmission, §III-B) until
        matched or until its execution window can no longer host its
        duration; offers persist until their windows end.
        """
        result = OnlineResult()
        pending_requests: List[Request] = []
        pending_offers: List[Offer] = []
        arrivals_r = sorted(requests, key=lambda r: r.submit_time)
        arrivals_o = sorted(offers, key=lambda o: o.submit_time)
        first_seen: Dict[str, int] = {}

        obs = self.obs
        round_index = 0
        now = self.block_interval
        while now <= horizon + 1e-9:
            # Admit new arrivals.
            arrived_r = 0
            arrived_o = 0
            while arrivals_r and arrivals_r[0].submit_time <= now:
                request = arrivals_r.pop(0)
                first_seen[request.request_id] = round_index
                pending_requests.append(request)
                arrived_r += 1
            while arrivals_o and arrivals_o[0].submit_time <= now:
                pending_offers.append(arrivals_o.pop(0))
                arrived_o += 1

            # Expire what can no longer run.
            still_alive: List[Request] = []
            for request in pending_requests:
                if request.window.end - now >= request.duration:
                    still_alive.append(request)
                else:
                    result.expired_requests.append(request.request_id)
            expired = len(pending_requests) - len(still_alive)
            pending_requests = still_alive
            n_offers_before = len(pending_offers)
            pending_offers = [
                offer for offer in pending_offers if offer.window.end > now
            ]
            expired_offers = n_offers_before - len(pending_offers)

            if obs.enabled:
                obs.registry.inc("online_rounds_total")
                obs.registry.inc(
                    "online_arrivals_total", arrived_r, side="request"
                )
                obs.registry.inc(
                    "online_arrivals_total", arrived_o, side="offer"
                )
                obs.registry.inc(
                    "online_expired_total", expired, side="request"
                )
                obs.registry.inc(
                    "online_expired_total", expired_offers, side="offer"
                )
                obs.registry.set(
                    "online_queue_depth", len(pending_requests),
                    side="request",
                )
                obs.registry.set(
                    "online_queue_depth", len(pending_offers), side="offer"
                )

            outcome = self._auction.run(
                pending_requests,
                pending_offers,
                evidence=self._evidence(round_index),
                timer=self.timer,
                obs=obs,
            )
            result.rounds.append(
                RoundRecord(
                    index=round_index,
                    time=now,
                    n_requests=len(pending_requests),
                    n_offers=len(pending_offers),
                    outcome=outcome,
                )
            )

            matched_requests = {
                m.request.request_id for m in outcome.matches
            }
            for request_id in matched_requests:
                result.allocation_delay[request_id] = (
                    round_index - first_seen[request_id]
                )
            matched_offers = {m.offer.offer_id for m in outcome.matches}
            # Matched participants leave the pool; unmatched resubmit.
            pending_requests = [
                r
                for r in pending_requests
                if r.request_id not in matched_requests
            ]
            pending_offers = [
                o for o in pending_offers if o.offer_id not in matched_offers
            ]

            if obs.enabled:
                obs.registry.inc("online_trades_total", outcome.num_trades)
                queued = outcome.num_trades + len(pending_requests)
                obs.registry.set(
                    "online_last_trade_ratio",
                    outcome.num_trades / queued if queued else 0.0,
                )
                obs.tracer.event(
                    "online.round",
                    index=round_index,
                    trades=outcome.num_trades,
                    queued_requests=len(pending_requests),
                    queued_offers=len(pending_offers),
                    expired=expired,
                )
                if self.history is not None:
                    self.history.append(
                        obs.registry.snapshot(),
                        round=round_index,
                        time=now,
                        seed=self.seed,
                    )

            round_index += 1
            now += self.block_interval
        return result
