"""Strategic bidders and regret measurement.

The point of a DSIC mechanism is that participants need *no* bidding
strategy: truthful reporting is optimal no matter what everyone else
does.  This module puts that to an agent-level test: simple strategy
families (shading, overbidding, historical-price anchoring) play repeated
markets against a truthful population, and the regret harness measures
how much utility each strategy earns relative to bidding truthfully in
identical markets.

A correct DSIC implementation shows non-positive mean regret advantage
for every non-truthful strategy — which is what the strategy-regret
experiment asserts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from repro.core.auction import DecloudAuction
from repro.core.config import AuctionConfig
from repro.core.outcome import (
    AuctionOutcome,
    utility_of_client,
    utility_of_provider,
)
from repro.workloads.generators import MarketScenario

#: A bidding strategy maps (true value, price history) -> reported bid.
Strategy = Callable[[float, Sequence[float]], float]


def truthful(true_value: float, history: Sequence[float]) -> float:
    return true_value


def shade(factor: float) -> Strategy:
    """Classic bid shading: report ``factor`` x value (factor < 1)."""

    def strategy(true_value: float, history: Sequence[float]) -> float:
        return true_value * factor

    strategy.__name__ = f"shade_{factor}"
    return strategy


def overbid(factor: float) -> Strategy:
    """Aggressive overbidding to win more often (factor > 1)."""

    def strategy(true_value: float, history: Sequence[float]) -> float:
        return true_value * factor

    strategy.__name__ = f"overbid_{factor}"
    return strategy


def anchor_to_history(margin: float = 1.05) -> Strategy:
    """Bid just above the recent mean clearing price (if profitable).

    The paper notes participants can "infer their valuations from
    historical prices" (§VI); this strategy tries to exploit that and
    should still not beat truthfulness.
    """

    def strategy(true_value: float, history: Sequence[float]) -> float:
        if not history:
            return true_value
        anchor = margin * sum(history) / len(history)
        return min(true_value, anchor) if anchor > 0 else true_value

    strategy.__name__ = f"anchor_{margin}"
    return strategy


@dataclass
class StrategyOutcome:
    """Utilities a strategy earned across repeated markets."""

    name: str
    utilities: List[float] = field(default_factory=list)
    truthful_utilities: List[float] = field(default_factory=list)

    @property
    def mean_utility(self) -> float:
        return (
            sum(self.utilities) / len(self.utilities) if self.utilities else 0.0
        )

    @property
    def mean_regret_advantage(self) -> float:
        """Mean(strategy utility - truthful utility); <= 0 under DSIC."""
        pairs = zip(self.utilities, self.truthful_utilities)
        diffs = [s - t for s, t in pairs]
        return sum(diffs) / len(diffs) if diffs else 0.0


def run_strategy_game(
    strategies: Dict[str, Strategy],
    n_markets: int = 20,
    n_requests: int = 12,
    agent_index: int = 0,
    config: Optional[AuctionConfig] = None,
    n_evidences: int = 5,
) -> Dict[str, StrategyOutcome]:
    """Play each strategy as one client against a truthful population.

    Every strategy faces the *identical* market sequence (same seeds),
    so utility differences are purely strategic.  Because the mechanism
    randomizes over the block evidence, utilities are averaged over
    ``n_evidences`` evidence draws per market — DSIC for a randomized
    mechanism is a statement about the expectation over its coins, and a
    bidder cannot choose the evidence (it is the preamble hash).  The
    price history fed to adaptive strategies accumulates over markets.
    """
    config = config or AuctionConfig(cluster_breadth=4)
    auction = DecloudAuction(config)
    results = {
        name: StrategyOutcome(name=name) for name in strategies
    }
    evidences = [f"G{i}".encode() for i in range(n_evidences)]

    def mean_utility(requests, offers, request_id, true_value):
        total = 0.0
        last_outcome: Optional[AuctionOutcome] = None
        for evidence in evidences:
            last_outcome = auction.run(requests, offers, evidence=evidence)
            total += utility_of_client(last_outcome, request_id, true_value)
        return total / len(evidences), last_outcome

    for seed in range(n_markets):
        requests, offers = MarketScenario(
            n_requests=n_requests, offers_per_request=0.5, seed=seed
        ).generate()
        agent = requests[agent_index % len(requests)]
        true_value = agent.bid

        truthful_utility, truthful_outcome = mean_utility(
            requests, offers, agent.request_id, true_value
        )
        history = [
            m.unit_price for m in truthful_outcome.matches
        ]  # public once the block is on chain

        for name, strategy in strategies.items():
            reported = max(0.0, strategy(true_value, history))
            deviated = [
                r if r.request_id != agent.request_id else r.replace_bid(reported)
                for r in requests
            ]
            utility, _ = mean_utility(
                deviated, offers, agent.request_id, true_value
            )
            results[name].utilities.append(utility)
            results[name].truthful_utilities.append(truthful_utility)
    return results


def run_provider_strategy_game(
    strategies: Dict[str, Strategy],
    n_markets: int = 20,
    n_requests: int = 12,
    agent_index: int = 0,
    config: Optional[AuctionConfig] = None,
    n_evidences: int = 5,
) -> Dict[str, StrategyOutcome]:
    """The seller-side mirror of :func:`run_strategy_game`.

    One provider plays each cost-reporting strategy (a strategy maps the
    *true cost* and price history to a reported cost) against a truthful
    market; utility = revenue minus the true cost of the allocated
    fraction, averaged over the mechanism's evidence coins.
    """
    config = config or AuctionConfig(cluster_breadth=4)
    auction = DecloudAuction(config)
    results = {name: StrategyOutcome(name=name) for name in strategies}
    evidences = [f"P{i}".encode() for i in range(n_evidences)]

    def mean_utility(requests, offer_list, provider_id, true_costs):
        total = 0.0
        last_outcome: Optional[AuctionOutcome] = None
        for evidence in evidences:
            last_outcome = auction.run(
                requests, offer_list, evidence=evidence
            )
            total += utility_of_provider(
                last_outcome, provider_id, true_costs
            )
        return total / len(evidences), last_outcome

    for seed in range(n_markets):
        requests, offers = MarketScenario(
            n_requests=n_requests, offers_per_request=0.5, seed=seed
        ).generate()
        agent = offers[agent_index % len(offers)]
        true_cost = agent.bid
        true_costs = {agent.offer_id: true_cost}

        truthful_utility, truthful_outcome = mean_utility(
            requests, offers, agent.provider_id, true_costs
        )
        history = [m.unit_price for m in truthful_outcome.matches]

        for name, strategy in strategies.items():
            reported = max(0.0, strategy(true_cost, history))
            deviated = [
                o if o.offer_id != agent.offer_id else o.replace_bid(reported)
                for o in offers
            ]
            utility, _ = mean_utility(
                requests, deviated, agent.provider_id, true_costs
            )
            results[name].utilities.append(utility)
            results[name].truthful_utilities.append(truthful_utility)
    return results
