"""Fig. 5d — client satisfaction vs similarity: flexible vs inflexible.

Satisfaction is the fraction of requests allocated.  The paper finds 80%
flexibility "results in stably higher satisfaction" than exact matching,
with the similarity axis ``1 - KLD(requests, offers)``.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence, Tuple

import numpy as np

from repro.experiments.common import FigureResult
from repro.experiments.sweeps import (
    DEFAULT_SIMILARITIES,
    SimilarityPoint,
    run_similarity_sweep,
)

FLEXIBILITIES: Tuple[float, ...] = (1.0, 0.8)


def run(
    similarities: Sequence[float] = DEFAULT_SIMILARITIES,
    seeds: Iterable[int] = range(5),
    points: List[SimilarityPoint] | None = None,
) -> FigureResult:
    """Regenerate the Fig. 5d series; pass ``points`` to reuse a sweep."""
    if points is None:
        points = run_similarity_sweep(
            similarities=similarities, flexibilities=FLEXIBILITIES, seeds=seeds
        )

    result = FigureResult(
        figure="5d",
        title="Fig 5d: satisfaction vs similarity (flexible vs inflexible)",
        columns=["similarity", "flexibility", "seed", "satisfaction"],
    )
    for point in sorted(
        points, key=lambda p: (p.similarity, p.flexibility, p.seed)
    ):
        result.rows.append(
            {
                "similarity": point.similarity,
                "flexibility": point.flexibility,
                "seed": point.seed,
                "satisfaction": point.metrics.decloud_satisfaction,
            }
        )

    means: Dict[Tuple[float, float], List[float]] = {}
    for point in points:
        means.setdefault((point.similarity, point.flexibility), []).append(
            point.metrics.decloud_satisfaction
        )
    wins = 0
    comparisons = 0
    for similarity in sorted({p.similarity for p in points}):
        strict = np.mean(means.get((similarity, 1.0), [0.0]))
        flexible = np.mean(means.get((similarity, 0.8), [0.0]))
        comparisons += 1
        if flexible >= strict:
            wins += 1
        result.notes.append(
            f"similarity {similarity:.1f}: satisfaction strict "
            f"{strict:.3f} vs 80% flexible {flexible:.3f}"
        )
    result.notes.append(
        f"80% flexibility at least matches strict satisfaction in "
        f"{wins}/{comparisons} similarity levels "
        "(paper: stably higher satisfaction)"
    )
    return result


if __name__ == "__main__":  # pragma: no cover
    res = run()
    print(res.to_table())
    for note in res.notes:
        print("NOTE:", note)
