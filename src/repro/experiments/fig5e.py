"""Fig. 5e — satisfaction vs similarity across flexibility levels.

The second flexibility panel sweeps several flexibility settings; more
flexibility means weakly higher satisfaction at every similarity level,
with the gap widening as supply and demand diverge.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence, Tuple

import numpy as np

from repro.experiments.common import FigureResult
from repro.experiments.sweeps import (
    DEFAULT_SIMILARITIES,
    SimilarityPoint,
    run_similarity_sweep,
)

FLEXIBILITIES: Tuple[float, ...] = (1.0, 0.9, 0.8, 0.6)


def run(
    similarities: Sequence[float] = DEFAULT_SIMILARITIES,
    seeds: Iterable[int] = range(5),
    points: List[SimilarityPoint] | None = None,
) -> FigureResult:
    """Regenerate the Fig. 5e series; pass ``points`` to reuse a sweep."""
    if points is None:
        points = run_similarity_sweep(
            similarities=similarities, flexibilities=FLEXIBILITIES, seeds=seeds
        )

    result = FigureResult(
        figure="5e",
        title="Fig 5e: satisfaction vs similarity across flexibility levels",
        columns=["similarity", "flexibility", "mean_satisfaction", "n_seeds"],
    )
    means: Dict[Tuple[float, float], List[float]] = {}
    for point in points:
        means.setdefault((point.similarity, point.flexibility), []).append(
            point.metrics.decloud_satisfaction
        )
    for (similarity, flexibility), values in sorted(means.items()):
        result.rows.append(
            {
                "similarity": similarity,
                "flexibility": flexibility,
                "mean_satisfaction": float(np.mean(values)),
                "n_seeds": len(values),
            }
        )

    for similarity in sorted({p.similarity for p in points}):
        series = {
            flexibility: float(np.mean(means[(similarity, flexibility)]))
            for flexibility in sorted({p.flexibility for p in points})
            if (similarity, flexibility) in means
        }
        result.notes.append(
            f"similarity {similarity:.1f}: "
            + ", ".join(
                f"flex {flexibility}: {value:.3f}"
                for flexibility, value in sorted(series.items())
            )
        )
    return result


if __name__ == "__main__":  # pragma: no cover
    res = run()
    print(res.to_table())
    for note in res.notes:
        print("NOTE:", note)
