"""Decomposing the DSIC welfare cost into its mechanism channels.

DeCloud gives up welfare relative to the non-truthful benchmark through
three separable design elements:

1. **uniform-price consistency** — the in-cluster fill only admits
   trades one common price can support;
2. **trade reduction** — the price-determining participant (and its
   other orders in the auction) never trades;
3. **randomized exclusion** — price-eligible surpluses are resolved by
   verifiable lottery rather than by value order.

Stacking the switches one at a time and measuring welfare at each step
attributes the total gap to its channels — the reproduction-level
explanation of Fig. 5b that the paper leaves implicit.
"""

from __future__ import annotations

from typing import Iterable, List

import numpy as np

from repro.core.auction import DecloudAuction
from repro.core.config import AuctionConfig
from repro.experiments.common import FigureResult
from repro.experiments.sweeps import EVAL_BREADTH
from repro.workloads.generators import MarketScenario

#: Cumulative variants: each adds one mechanism element.
VARIANTS = (
    ("benchmark (greedy)", AuctionConfig.benchmark(cluster_breadth=EVAL_BREADTH)),
    (
        "+ uniform price",
        AuctionConfig(
            cluster_breadth=EVAL_BREADTH,
            enable_trade_reduction=False,
            enable_randomization=False,
            enforce_price_consistency=True,
        ),
    ),
    (
        "+ trade reduction",
        AuctionConfig(
            cluster_breadth=EVAL_BREADTH,
            enable_trade_reduction=True,
            enable_randomization=False,
        ),
    ),
    (
        "+ randomization (full DeCloud)",
        AuctionConfig(cluster_breadth=EVAL_BREADTH),
    ),
)


def run(
    n_requests: int = 150,
    offers_per_request: float = 0.25,
    seeds: Iterable[int] = range(5),
) -> FigureResult:
    """Measure welfare at each mechanism stage (tight-supply default).

    Supply is kept tight (0.25 offers/request) because the channels only
    bite under scarcity — see the sensitivity experiment.
    """
    seeds = list(seeds)
    result = FigureResult(
        figure="decomposition",
        title="Welfare-loss decomposition across mechanism stages",
        columns=[
            "stage",
            "mean_welfare",
            "share_of_benchmark",
            "incremental_loss_pct",
        ],
    )

    welfare_by_stage: List[List[float]] = [[] for _ in VARIANTS]
    for seed in seeds:
        requests, offers = MarketScenario(
            n_requests=n_requests,
            offers_per_request=offers_per_request,
            seed=seed,
        ).generate()
        for index, (_, config) in enumerate(VARIANTS):
            outcome = DecloudAuction(config).run(
                requests, offers, evidence=b"decomp"
            )
            welfare_by_stage[index].append(outcome.welfare)

    means = [float(np.mean(values)) for values in welfare_by_stage]
    benchmark_mean = means[0] if means[0] > 0 else 1e-9
    previous_share = 1.0
    for (name, _), mean in zip(VARIANTS, means):
        share = mean / benchmark_mean
        result.rows.append(
            {
                "stage": name,
                "mean_welfare": mean,
                "share_of_benchmark": share,
                "incremental_loss_pct": 100.0 * (previous_share - share),
            }
        )
        previous_share = share

    total_loss = 100.0 * (1.0 - means[-1] / benchmark_mean)
    result.notes.append(
        f"total DSIC cost {total_loss:.1f}% of benchmark welfare; "
        "the per-stage rows attribute it to uniform pricing, trade "
        "reduction, and randomization respectively"
    )
    return result


if __name__ == "__main__":  # pragma: no cover
    res = run()
    print(res.to_table())
    for note in res.notes:
        print("NOTE:", note)
