"""Optimality gap: DeCloud and its benchmark against the true optimum.

The abstract claims "near-optimal performance from an economic point of
view".  The paper's own evaluation measures DeCloud only against its
greedy benchmark; with the MILP solver we can measure both against the
*actual* welfare maximum (Eq. 16) and decompose the distance:

* the gap between the greedy benchmark and the optimum is the price of
  myopic matching — and it is governed by the cluster breadth (narrow
  best-offer sets over-restrict the assignment);
* the gap between DeCloud and the benchmark is the DSIC cost measured
  everywhere else in this repository.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro.baselines.greedy import GreedyBenchmark
from repro.baselines.ilp import optimal_welfare_ilp
from repro.core.auction import DecloudAuction
from repro.core.config import AuctionConfig
from repro.experiments.common import FigureResult
from repro.workloads.generators import MarketScenario


def run(
    sizes: Sequence[int] = (50, 100, 150),
    breadths: Sequence[int] = (8, 16, 32),
    seeds: Iterable[int] = range(3),
    time_limit: float = 10.0,
) -> FigureResult:
    """Measure welfare shares of the MILP optimum per (size, breadth)."""
    result = FigureResult(
        figure="optimality",
        title="Welfare as a share of the true (MILP) optimum",
        columns=[
            "n_requests",
            "breadth",
            "greedy_share",
            "decloud_share",
            "n_seeds",
        ],
    )
    seeds = list(seeds)
    best_share = 0.0
    for n_requests in sizes:
        optima: dict = {}
        for seed in seeds:
            requests, offers = MarketScenario(
                n_requests=n_requests, seed=seed
            ).generate()
            optima[seed] = (
                requests,
                offers,
                optimal_welfare_ilp(
                    requests, offers, time_limit=time_limit
                ),
            )
        for breadth in breadths:
            greedy_shares = []
            decloud_shares = []
            for seed in seeds:
                requests, offers, optimum = optima[seed]
                if optimum <= 0:
                    continue
                config = AuctionConfig(cluster_breadth=breadth)
                greedy = GreedyBenchmark(config).run(requests, offers)
                decloud = DecloudAuction(config).run(
                    requests, offers, evidence=b"gap"
                )
                greedy_shares.append(greedy.welfare / optimum)
                decloud_shares.append(decloud.welfare / optimum)
            if not greedy_shares:
                continue
            decloud_mean = float(np.mean(decloud_shares))
            best_share = max(best_share, decloud_mean)
            result.rows.append(
                {
                    "n_requests": n_requests,
                    "breadth": breadth,
                    "greedy_share": float(np.mean(greedy_shares)),
                    "decloud_share": decloud_mean,
                    "n_seeds": len(greedy_shares),
                }
            )

    result.notes.append(
        f"best DeCloud share of the true optimum: {best_share:.3f} "
        "(abstract: 'near-optimal performance from an economic point of "
        "view' — holds at wide cluster breadth; narrow best-offer sets "
        "over-restrict matching and are the dominant loss, not the DSIC "
        "machinery)"
    )
    return result


if __name__ == "__main__":  # pragma: no cover
    res = run()
    print(res.to_table())
    for note in res.notes:
        print("NOTE:", note)
