"""Fig. 5f — welfare vs similarity: the effect of flexible matching.

The third flexibility panel: flexible matching raises total welfare at
every similarity level, and the advantage is largest when supply and
demand distributions diverge (low similarity).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence, Tuple

import numpy as np

from repro.experiments.common import FigureResult
from repro.experiments.sweeps import (
    DEFAULT_SIMILARITIES,
    SimilarityPoint,
    run_similarity_sweep,
)

FLEXIBILITIES: Tuple[float, ...] = (1.0, 0.8)


def run(
    similarities: Sequence[float] = DEFAULT_SIMILARITIES,
    seeds: Iterable[int] = range(5),
    points: List[SimilarityPoint] | None = None,
) -> FigureResult:
    """Regenerate the Fig. 5f series; pass ``points`` to reuse a sweep."""
    if points is None:
        points = run_similarity_sweep(
            similarities=similarities, flexibilities=FLEXIBILITIES, seeds=seeds
        )

    result = FigureResult(
        figure="5f",
        title="Fig 5f: welfare vs similarity (flexible vs inflexible)",
        columns=["similarity", "flexibility", "seed", "welfare"],
    )
    for point in sorted(
        points, key=lambda p: (p.similarity, p.flexibility, p.seed)
    ):
        result.rows.append(
            {
                "similarity": point.similarity,
                "flexibility": point.flexibility,
                "seed": point.seed,
                "welfare": point.metrics.decloud_welfare,
            }
        )

    means: Dict[Tuple[float, float], List[float]] = {}
    for point in points:
        means.setdefault((point.similarity, point.flexibility), []).append(
            point.metrics.decloud_welfare
        )
    wins = 0
    comparisons = 0
    for similarity in sorted({p.similarity for p in points}):
        strict = np.mean(means.get((similarity, 1.0), [0.0]))
        flexible = np.mean(means.get((similarity, 0.8), [0.0]))
        comparisons += 1
        if flexible >= strict:
            wins += 1
        result.notes.append(
            f"similarity {similarity:.1f}: welfare strict {strict:.1f} vs "
            f"80% flexible {flexible:.1f}"
        )
    result.notes.append(
        f"flexible matching raises welfare in {wins}/{comparisons} "
        "similarity levels (paper: positive effect of flexibility on welfare)"
    )
    return result


if __name__ == "__main__":  # pragma: no cover
    res = run()
    print(res.to_table())
    for note in res.notes:
        print("NOTE:", note)
