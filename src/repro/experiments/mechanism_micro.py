"""Single-good mechanism micro-benchmark: McAfee vs SBBA vs optimum.

DeCloud's pricing descends from McAfee (1992) and SBBA (Segal-Halevi
2016); this harness validates the substrate implementations on random
single-good markets: welfare relative to the efficient (break-even)
allocation, budget surplus (McAfee leaves money with the auctioneer under
trade reduction; SBBA never does), and reduced-trade counts.
"""

from __future__ import annotations

import random
from typing import Dict, Iterable, List

import numpy as np

from repro.common.rng import make_generator
from repro.experiments.common import FigureResult
from repro.mechanisms import (
    UnitBid,
    breakeven_index,
    run_mcafee,
    run_sbba,
    sort_sides,
)


def efficient_welfare(buyers: List[UnitBid], sellers: List[UnitBid]) -> float:
    """Max single-good welfare: trade every profitable sorted pair."""
    sorted_buyers, sorted_sellers = sort_sides(buyers, sellers)
    z = breakeven_index(sorted_buyers, sorted_sellers)
    return sum(
        sorted_buyers[i].amount - sorted_sellers[i].amount for i in range(z)
    )


def mechanism_welfare(trades, buyers, sellers) -> float:
    values = {b.agent_id: b.amount for b in buyers}
    costs = {s.agent_id: s.amount for s in sellers}
    return sum(values[t.buyer_id] - costs[t.seller_id] for t in trades)


def run(
    market_sizes: Iterable[int] = (4, 8, 16, 32, 64),
    seeds: Iterable[int] = range(20),
) -> FigureResult:
    """Compare the two classic mechanisms across random markets."""
    result = FigureResult(
        figure="mechanisms",
        title="Single-good micro-benchmark: McAfee vs SBBA",
        columns=[
            "n_per_side",
            "mechanism",
            "mean_welfare_ratio",
            "mean_budget_surplus",
            "mean_reduced",
        ],
    )
    for n in market_sizes:
        stats: Dict[str, Dict[str, List[float]]] = {
            "mcafee": {"ratio": [], "surplus": [], "reduced": []},
            "sbba": {"ratio": [], "surplus": [], "reduced": []},
        }
        for seed in seeds:
            rng = make_generator(f"micro-{n}-{seed}")
            buyers = [
                UnitBid(agent_id=f"b{i}", amount=float(rng.uniform(0, 10)))
                for i in range(n)
            ]
            sellers = [
                UnitBid(agent_id=f"s{i}", amount=float(rng.uniform(0, 10)))
                for i in range(n)
            ]
            best = efficient_welfare(buyers, sellers)
            if best <= 0:
                continue
            for name, runner in (
                ("mcafee", lambda: run_mcafee(buyers, sellers)),
                (
                    "sbba",
                    lambda: run_sbba(
                        buyers, sellers, rng=random.Random(seed)
                    ),
                ),
            ):
                outcome = runner()
                welfare = mechanism_welfare(outcome.trades, buyers, sellers)
                stats[name]["ratio"].append(welfare / best)
                stats[name]["surplus"].append(outcome.budget_surplus)
                stats[name]["reduced"].append(
                    len(outcome.reduced_buyers) + len(outcome.reduced_sellers)
                )
        for name in ("mcafee", "sbba"):
            if not stats[name]["ratio"]:
                continue
            result.rows.append(
                {
                    "n_per_side": n,
                    "mechanism": name,
                    "mean_welfare_ratio": float(np.mean(stats[name]["ratio"])),
                    "mean_budget_surplus": float(
                        np.mean(stats[name]["surplus"])
                    ),
                    "mean_reduced": float(np.mean(stats[name]["reduced"])),
                }
            )

    sbba_surplus = [
        row["mean_budget_surplus"]
        for row in result.rows
        if row["mechanism"] == "sbba"
    ]
    result.notes.append(
        f"SBBA budget surplus is exactly 0 in all sizes: "
        f"{all(abs(s) < 1e-9 for s in sbba_surplus)} (strong budget balance)"
    )
    result.notes.append(
        "welfare ratio rises toward 1 with market size for both mechanisms "
        "(one excluded trade matters less in bigger markets)"
    )
    return result


if __name__ == "__main__":  # pragma: no cover
    res = run()
    print(res.to_table())
    for note in res.notes:
        print("NOTE:", note)
