"""Price dynamics over online rounds.

The paper argues participants can "infer their valuations from
historical prices" (§VI) — meaningful only if clearing prices track
market conditions.  This harness runs the online simulator with a
demand surge mid-horizon and reports the per-round mean clearing price
alongside the demand/supply ratio: prices should rise with the surge
and relax after it.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.experiments.common import FigureResult
from repro.experiments.sweeps import eval_config
from repro.sim.arrivals import ArrivalProcess
from repro.sim.online import OnlineSimulator


def run(
    horizon: float = 24.0,
    block_interval: float = 2.0,
    base_request_rate: float = 6.0,
    surge_multiplier: float = 4.0,
    offer_rate: float = 4.0,
    seed: int = 0,
) -> FigureResult:
    """Simulate a demand surge in the middle third of the horizon."""
    third = horizon / 3.0
    base = ArrivalProcess(
        request_rate=base_request_rate,
        offer_rate=offer_rate,
        horizon=horizon,
        seed=seed,
    )
    surge = ArrivalProcess(
        request_rate=base_request_rate * (surge_multiplier - 1.0),
        offer_rate=0.0001,  # the surge brings demand, not supply
        horizon=third,
        seed=seed + 1,
    )
    requests, offers = base.generate()
    surge_requests, _ = surge.generate()
    # Shift the surge into the middle third and re-key ids.
    from repro.common.timewindow import TimeWindow
    from repro.market.bids import Request

    shifted: List[Request] = []
    for i, request in enumerate(surge_requests):
        start = request.submit_time + third
        window = TimeWindow(start, start + request.window.span)
        shifted.append(
            Request(
                request_id=f"surge-{i:05d}",
                client_id=f"surge-cli-{i:05d}",
                submit_time=start,
                resources=dict(request.resources),
                significance=dict(request.significance),
                window=window,
                # Shifting the window loses a few ulps of span; clamp.
                duration=min(request.duration, window.span),
                bid=request.bid,
                flexibility=request.flexibility,
            )
        )
    all_requests = list(requests) + shifted

    simulator = OnlineSimulator(
        config=eval_config(), block_interval=block_interval, seed=seed
    )
    result_online = simulator.run(all_requests, offers, horizon=horizon)

    result = FigureResult(
        figure="prices",
        title="Clearing-price dynamics under a demand surge",
        columns=[
            "time",
            "pending_requests",
            "pending_offers",
            "demand_supply_ratio",
            "mean_price",
            "trades",
        ],
    )
    for record in result_online.rounds:
        prices = record.outcome.prices or [
            m.unit_price for m in record.outcome.matches
        ]
        ratio = record.n_requests / max(record.n_offers, 1)
        result.rows.append(
            {
                "time": record.time,
                "pending_requests": record.n_requests,
                "pending_offers": record.n_offers,
                "demand_supply_ratio": ratio,
                "mean_price": float(np.mean(prices)) if prices else 0.0,
                "trades": record.trades,
            }
        )

    thirds = [
        [r for r in result.rows if lo <= r["time"] <= hi]
        for lo, hi in (
            (0, third),
            (third + block_interval, 2 * third),
            (2 * third + block_interval, horizon),
        )
    ]
    means = [
        float(np.mean([r["mean_price"] for r in rows if r["mean_price"] > 0]))
        if any(r["mean_price"] > 0 for r in rows)
        else 0.0
        for rows in thirds
    ]
    result.notes.append(
        f"mean clearing price by horizon third: before surge "
        f"{means[0]:.4f}, during {means[1]:.4f}, after {means[2]:.4f} "
        "(prices rise with the surge and stay elevated while the demand "
        "backlog drains — exactly the signal price-history inference "
        "needs)"
    )
    return result


if __name__ == "__main__":  # pragma: no cover
    res = run()
    print(res.to_table())
    for note in res.notes:
        print("NOTE:", note)
