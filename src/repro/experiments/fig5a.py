"""Fig. 5a — welfare of DeCloud vs the non-truthful benchmark.

The paper plots per-block welfare for both mechanisms against the number
of requests, with Loess trend curves; DeCloud tracks the benchmark from
below, and both grow with market size.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence

import numpy as np

from repro.analysis.loess import loess
from repro.experiments.common import FigureResult
from repro.experiments.sweeps import DEFAULT_SIZES, SizePoint, run_size_sweep


def run(
    sizes: Sequence[int] = DEFAULT_SIZES,
    seeds: Iterable[int] = range(5),
    points: List[SizePoint] | None = None,
) -> FigureResult:
    """Regenerate the Fig. 5a series; pass ``points`` to reuse a sweep."""
    if points is None:
        points = run_size_sweep(sizes=sizes, seeds=seeds)
    sizes = sorted({p.n_requests for p in points})

    x = [p.n_requests for p in points]
    decloud = [p.metrics.decloud_welfare for p in points]
    benchmark = [p.metrics.benchmark_welfare for p in points]
    _, decloud_trend = loess(x, decloud, frac=0.6)
    _, benchmark_trend = loess(x, benchmark, frac=0.6)

    order = np.argsort(x, kind="stable")
    result = FigureResult(
        figure="5a",
        title="Fig 5a: welfare vs number of requests",
        columns=[
            "n_requests",
            "seed",
            "decloud_welfare",
            "benchmark_welfare",
            "decloud_loess",
            "benchmark_loess",
        ],
    )
    # loess() sorts by x; map trend values back to the sorted order.
    for rank, idx in enumerate(order):
        point = points[idx]
        result.rows.append(
            {
                "n_requests": point.n_requests,
                "seed": point.seed,
                "decloud_welfare": point.metrics.decloud_welfare,
                "benchmark_welfare": point.metrics.benchmark_welfare,
                "decloud_loess": float(decloud_trend[rank]),
                "benchmark_loess": float(benchmark_trend[rank]),
            }
        )

    below = sum(
        1
        for p in points
        if p.metrics.decloud_welfare <= p.metrics.benchmark_welfare + 1e-9
    )
    result.notes.append(
        f"DeCloud welfare <= benchmark in {below}/{len(points)} blocks "
        "(the DSIC tradeoff, paper: DeCloud tracks the benchmark from below)"
    )
    small = [
        p.metrics.decloud_welfare
        for p in points
        if p.n_requests == min(sizes)
    ]
    large = [
        p.metrics.decloud_welfare
        for p in points
        if p.n_requests == max(sizes)
    ]
    result.notes.append(
        f"welfare grows with market size: mean {np.mean(small):.1f} at "
        f"n={min(sizes)} -> {np.mean(large):.1f} at n={max(sizes)}"
    )
    return result


if __name__ == "__main__":  # pragma: no cover
    res = run()
    print(res.to_table())
    for note in res.notes:
        print("NOTE:", note)
