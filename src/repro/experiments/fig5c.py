"""Fig. 5c — percentage of reduced trades vs market size.

Trade reduction (plus randomized exclusion) sacrifices a few trades for
truthfulness; the paper reports the excluded fraction staying below 5%
and dropping to 0.5% in large systems thanks to mini-auction grouping.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence

import numpy as np

from repro.experiments.common import FigureResult
from repro.experiments.sweeps import DEFAULT_SIZES, SizePoint, run_size_sweep


def run(
    sizes: Sequence[int] = DEFAULT_SIZES,
    seeds: Iterable[int] = range(5),
    points: List[SizePoint] | None = None,
) -> FigureResult:
    """Regenerate the Fig. 5c series; pass ``points`` to reuse a sweep."""
    if points is None:
        points = run_size_sweep(sizes=sizes, seeds=seeds)

    result = FigureResult(
        figure="5c",
        title="Fig 5c: % reduced trades vs requests",
        columns=[
            "n_requests",
            "seed",
            "benchmark_trades",
            "decloud_trades",
            "reduced_pct",
        ],
    )
    for point in sorted(points, key=lambda p: (p.n_requests, p.seed)):
        result.rows.append(
            {
                "n_requests": point.n_requests,
                "seed": point.seed,
                "benchmark_trades": point.metrics.benchmark_trades,
                "decloud_trades": point.metrics.decloud_trades,
                "reduced_pct": 100.0 * point.metrics.reduced_trade_fraction,
            }
        )

    by_size: Dict[int, List[float]] = {}
    for point in points:
        by_size.setdefault(point.n_requests, []).append(
            point.metrics.reduced_trade_fraction
        )
    means = {n: 100.0 * float(np.mean(v)) for n, v in by_size.items()}
    result.notes.append(
        "mean reduced trades by size: "
        + ", ".join(f"n={n}: {means[n]:.2f}%" for n in sorted(means))
    )
    result.notes.append(
        f"trend: {means[min(means)]:.2f}% at n={min(means)} vs "
        f"{means[max(means)]:.2f}% at n={max(means)} "
        "(paper: below 5%, dropping to 0.5% in large systems)"
    )
    return result


if __name__ == "__main__":  # pragma: no cover
    res = run()
    print(res.to_table())
    for note in res.notes:
        print("NOTE:", note)
