"""Supply-tightness sensitivity: where the DSIC cost actually bites.

EXPERIMENTS.md notes our Fig. 5b welfare ratios are milder than the
paper's 0.70-0.85 band and attributes it to abundant time-shared
capacity in the Google-trace-shaped workload.  This harness provides the
evidence: sweeping supply tightness (offers per request) and task
duration scale, the welfare ratio degrades from ~0.99 toward and below
the paper's band exactly as supply starts to bind — the mechanism's
loss channels (client-side exclusion, randomized winner selection,
uniform-price infeasibility) all require scarcity to matter.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro.experiments.common import FigureResult
from repro.experiments.sweeps import eval_config
from repro.sim.engine import MarketSimulator
from repro.workloads.generators import MarketScenario
from repro.workloads.google_trace import GoogleTraceWorkload


def run(
    n_requests: int = 200,
    supply_levels: Sequence[float] = (1.0, 0.5, 0.25, 0.1),
    duration_scales: Sequence[float] = (0.7, 1.8),
    seeds: Iterable[int] = range(3),
) -> FigureResult:
    """Sweep (offers/request, duration scale) and report the ratio."""
    result = FigureResult(
        figure="sensitivity",
        title="Supply-tightness sensitivity of the welfare ratio",
        columns=[
            "offers_per_request",
            "duration_log_mean",
            "mean_welfare_ratio",
            "worst_welfare_ratio",
            "mean_reduced_pct",
            "mean_satisfaction",
        ],
    )
    seeds = list(seeds)
    for duration_log_mean in duration_scales:
        for offers_per_request in supply_levels:
            ratios, reduced, sats = [], [], []
            for seed in seeds:
                workload = GoogleTraceWorkload(
                    duration_log_mean=duration_log_mean
                )
                scenario = MarketScenario(
                    n_requests=n_requests,
                    offers_per_request=offers_per_request,
                    seed=seed,
                    workload=workload,
                )
                requests, offers = scenario.generate()
                simulator = MarketSimulator(config=eval_config(), seed=seed)
                metrics, _, _ = simulator.run_block(requests, offers)
                ratios.append(min(metrics.welfare_ratio, 1.5))
                reduced.append(metrics.reduced_trade_fraction)
                sats.append(metrics.decloud_satisfaction)
            result.rows.append(
                {
                    "offers_per_request": offers_per_request,
                    "duration_log_mean": duration_log_mean,
                    "mean_welfare_ratio": float(np.mean(ratios)),
                    "worst_welfare_ratio": float(np.min(ratios)),
                    "mean_reduced_pct": 100.0 * float(np.mean(reduced)),
                    "mean_satisfaction": float(np.mean(sats)),
                }
            )

    loose = [
        r["mean_welfare_ratio"]
        for r in result.rows
        if r["offers_per_request"] == max(supply_levels)
    ]
    tight = [
        r["mean_welfare_ratio"]
        for r in result.rows
        if r["offers_per_request"] == min(supply_levels)
    ]
    result.notes.append(
        f"welfare ratio: {np.mean(loose):.3f} with abundant supply -> "
        f"{np.mean(tight):.3f} when supply binds — the paper's 0.70-0.85 "
        "band corresponds to a scarcer market than the headline sweep"
    )
    return result


if __name__ == "__main__":  # pragma: no cover
    res = run()
    print(res.to_table())
    for note in res.notes:
        print("NOTE:", note)
