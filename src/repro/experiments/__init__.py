"""Experiment harnesses regenerating every figure of the paper's §V."""

from repro.experiments.common import FigureResult, format_table
from repro.experiments.sweeps import (
    DEFAULT_SIMILARITIES,
    DEFAULT_SIZES,
    EVAL_BREADTH,
    SimilarityPoint,
    SizePoint,
    eval_config,
    run_similarity_sweep,
    run_size_sweep,
)

__all__ = [
    "FigureResult",
    "format_table",
    "DEFAULT_SIMILARITIES",
    "DEFAULT_SIZES",
    "EVAL_BREADTH",
    "SimilarityPoint",
    "SizePoint",
    "eval_config",
    "run_similarity_sweep",
    "run_size_sweep",
]
