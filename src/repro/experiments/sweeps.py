"""The two parameter sweeps behind Fig. 5.

* :func:`run_size_sweep` — the market-size sweep shared by Fig. 5a/5b/5c:
  Google-trace-style requests on EC2 M5 offers, inflexible matching,
  valuations = best-match cost x U[0.5, 2].
* :func:`run_similarity_sweep` — the supply/demand-divergence sweep shared
  by Fig. 5d/5e/5f: KLD-controlled class distributions at several
  flexibility levels.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence, Tuple

from repro.core.config import AuctionConfig
from repro.obs import Observability, ObservabilityLike
from repro.obs.timeseries import TimeSeriesStore
from repro.sim.engine import MarketSimulator
from repro.sim.metrics import BlockMetrics
from repro.workloads.divergence import DivergenceScenario, tilt_for_similarity
from repro.workloads.generators import MarketScenario

#: Cluster breadth used throughout the evaluation: wide enough that
#: clusters spread demand over the supply pool (the paper's clustering is
#: degenerate when only four machine shapes exist and breadth is tiny).
EVAL_BREADTH = 16

DEFAULT_SIZES: Tuple[int, ...] = (25, 50, 100, 200, 400, 800)
FAST_SIZES: Tuple[int, ...] = (25, 50, 100)
DEFAULT_SIMILARITIES: Tuple[float, ...] = (0.1, 0.3, 0.5, 0.7, 0.9)
FAST_SIMILARITIES: Tuple[float, ...] = (0.3, 0.9)


def eval_config(**overrides) -> AuctionConfig:
    params = {"cluster_breadth": EVAL_BREADTH}
    params.update(overrides)
    return AuctionConfig(**params)


@dataclass(frozen=True)
class SizePoint:
    """One (market size, seed) observation."""

    n_requests: int
    n_offers: int
    seed: int
    metrics: BlockMetrics


def run_size_sweep(
    sizes: Sequence[int] = DEFAULT_SIZES,
    seeds: Iterable[int] = range(5),
    offers_per_request: float = 0.5,
    config: AuctionConfig | None = None,
    obs: Optional[ObservabilityLike] = None,
    history: Optional[TimeSeriesStore] = None,
) -> List[SizePoint]:
    """Clear one block per (size, seed) with DeCloud and the benchmark.

    Each point's :class:`BlockMetrics` is read back from the metrics
    registry (``auction_last_*`` gauges): every point clears under an
    :class:`~repro.obs.Observability`, a fresh one per point unless a
    shared ``obs`` is passed in.  Registry-derived series are
    bit-identical to the direct outcome comparison.  An optional
    ``history`` store accumulates one registry snapshot per point — the
    cross-run series :mod:`repro.obs.timeseries` drift-checks (e.g.
    clear-phase latency p95 across sweep points).
    """
    config = config or eval_config()
    seeds = list(seeds)
    points: List[SizePoint] = []
    for n_requests in sizes:
        for seed in seeds:
            scenario = MarketScenario(
                n_requests=n_requests,
                offers_per_request=offers_per_request,
                seed=seed,
            )
            requests, offers = scenario.generate()
            point_obs = obs if obs is not None else Observability(
                run_id=f"size-{n_requests}-{seed}"
            )
            simulator = MarketSimulator(
                config=config, seed=seed, obs=point_obs,
                history=history,
            )
            metrics, _, _ = simulator.run_block(requests, offers)
            points.append(
                SizePoint(
                    n_requests=n_requests,
                    n_offers=scenario.n_offers,
                    seed=seed,
                    metrics=metrics,
                )
            )
    return points


@dataclass(frozen=True)
class SimilarityPoint:
    """One (similarity, flexibility, seed) observation."""

    similarity: float
    flexibility: float
    seed: int
    metrics: BlockMetrics


def run_similarity_sweep(
    similarities: Sequence[float] = DEFAULT_SIMILARITIES,
    flexibilities: Sequence[float] = (1.0, 0.8),
    seeds: Iterable[int] = range(5),
    n_requests: int = 150,
    n_offers: int = 75,
    config: AuctionConfig | None = None,
    obs: Optional[ObservabilityLike] = None,
) -> List[SimilarityPoint]:
    """Clear one block per (similarity, flexibility, seed).

    Scenarios differing only in flexibility sample identical markets
    (paired comparison), mirroring the paper's flexible-vs-inflexible
    panels.  As in :func:`run_size_sweep`, per-point metrics come off
    the registry's ``auction_last_*`` gauges.
    """
    config = config or eval_config()
    seeds = list(seeds)
    points: List[SimilarityPoint] = []
    for target in similarities:
        tilt = tilt_for_similarity(target)
        for flexibility in flexibilities:
            for seed in seeds:
                scenario = DivergenceScenario(
                    tilt=tilt,
                    n_requests=n_requests,
                    n_offers=n_offers,
                    flexibility=flexibility,
                    seed=seed,
                )
                requests, offers = scenario.generate()
                point_obs = obs if obs is not None else Observability(
                    run_id=f"sim-{target}-{flexibility}-{seed}"
                )
                simulator = MarketSimulator(
                    config=config, seed=seed, obs=point_obs
                )
                metrics, _, _ = simulator.run_block(requests, offers)
                points.append(
                    SimilarityPoint(
                        similarity=target,
                        flexibility=flexibility,
                        seed=seed,
                        metrics=metrics,
                    )
                )
    return points
