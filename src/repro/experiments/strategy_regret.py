"""Strategy-regret experiment: does any bidding strategy beat truth?

Agent-level validation of the DSIC claim: strategy families (shading,
overbidding, price anchoring) each play one client across a sequence of
identical markets against a truthful population; the harness reports the
mean utility advantage over truthful bidding.  Under a correct DSIC
mechanism no strategy shows a positive mean advantage.
"""

from __future__ import annotations

from typing import Dict

from repro.experiments.common import FigureResult
from repro.sim.strategies import (
    Strategy,
    anchor_to_history,
    overbid,
    run_provider_strategy_game,
    run_strategy_game,
    shade,
    truthful,
)

DEFAULT_STRATEGIES: Dict[str, Strategy] = {
    "truthful": truthful,
    "shade 0.5": shade(0.5),
    "shade 0.8": shade(0.8),
    "overbid 1.3": overbid(1.3),
    "overbid 2.0": overbid(2.0),
    "anchor history": anchor_to_history(1.05),
}

PROVIDER_STRATEGIES: Dict[str, Strategy] = {
    "truthful": truthful,
    "undercut 0.7": shade(0.7),
    "undercut 0.9": shade(0.9),
    "inflate 1.3": overbid(1.3),
    "inflate 2.0": overbid(2.0),
}


def run(
    n_markets: int = 20,
    n_requests: int = 12,
) -> FigureResult:
    """Play every strategy over the same market sequence, both sides."""
    result = FigureResult(
        figure="regret",
        title="Strategy regret: mean utility advantage over truthful",
        columns=[
            "side",
            "strategy",
            "mean_utility",
            "mean_advantage",
            "n_markets",
        ],
    )

    client_outcomes = run_strategy_game(
        DEFAULT_STRATEGIES, n_markets=n_markets, n_requests=n_requests
    )
    for name, outcome in client_outcomes.items():
        result.rows.append(
            {
                "side": "client",
                "strategy": name,
                "mean_utility": outcome.mean_utility,
                "mean_advantage": outcome.mean_regret_advantage,
                "n_markets": len(outcome.utilities),
            }
        )

    # Provider side: aggregate over several seller positions, because a
    # single fixed offer may simply never trade in these markets.
    provider_rows: Dict[str, list] = {
        name: [] for name in PROVIDER_STRATEGIES
    }
    provider_utilities: Dict[str, list] = {
        name: [] for name in PROVIDER_STRATEGIES
    }
    positions = range(3)
    for agent_index in positions:
        outcomes = run_provider_strategy_game(
            PROVIDER_STRATEGIES,
            n_markets=max(4, n_markets // len(positions)),
            n_requests=n_requests,
            agent_index=agent_index,
        )
        for name, outcome in outcomes.items():
            provider_rows[name].extend(
                s - t
                for s, t in zip(
                    outcome.utilities, outcome.truthful_utilities
                )
            )
            provider_utilities[name].extend(outcome.utilities)
    for name in PROVIDER_STRATEGIES:
        diffs = provider_rows[name]
        utilities = provider_utilities[name]
        result.rows.append(
            {
                "side": "provider",
                "strategy": name,
                "mean_utility": sum(utilities) / len(utilities),
                "mean_advantage": sum(diffs) / len(diffs),
                "n_markets": len(utilities),
            }
        )

    result.rows.sort(
        key=lambda row: (row["side"], -row["mean_utility"])
    )
    for side in ("client", "provider"):
        advantages = [
            row["mean_advantage"]
            for row in result.rows
            if row["side"] == side and row["strategy"] != "truthful"
        ]
        result.notes.append(
            f"{side} side: best non-truthful mean advantage "
            f"{max(advantages):+.5f} (DSIC: should not be positive)"
        )
    return result


if __name__ == "__main__":  # pragma: no cover
    res = run()
    print(res.to_table())
    for note in res.notes:
        print("NOTE:", note)
