"""Matching-heuristic ablation: gravity field (Eq. 18) vs dot product.

§IV-B claims dot-product similarity "does not work well when clients can
specify weights for their requests".  Two regimes are measured:

* **Correlated supply (EC2-style)** — machine dimensions scale together
  (an m5.4xlarge is bigger than an m5.large in *every* dimension), the
  offer geometry is effectively one-dimensional, and both heuristics
  rank identically.  A null result worth knowing.
* **Heterogeneous supply** — offers trade off dimensions against each
  other (GPU boxes, storage-heavy boxes, low-latency cells).  Here the
  heuristics disagree on a measurable share of requests; fit quality is
  comparable.  The reproduction's measured conclusion (see the notes) is
  that the paper's preference for the gravity field is qualitative.
"""

from __future__ import annotations

from typing import Iterable, List, Tuple

import numpy as np

from repro.baselines.dot_product import (
    best_match_fit_error,
    dot_product_quality,
    rank_offers_dot,
)
from repro.common.rng import make_generator
from repro.common.timewindow import TimeWindow
from repro.core.matching import block_maxima, quality_of_match, rank_offers
from repro.experiments.common import FigureResult
from repro.market.bids import Offer, Request
from repro.workloads.generators import MarketScenario
from repro.workloads.google_trace import GoogleTraceWorkload

DIMENSIONS = ("cpu", "ram", "accel")


def _heterogeneous_market(
    n_requests: int, n_offers: int, seed: int
) -> Tuple[List[Request], List[Offer]]:
    """Uncorrelated multi-dimensional supply with weighted demand."""
    rng = make_generator(f"hetero-{seed}")
    requests = [
        Request(
            request_id=f"r{i}",
            client_id=f"c{i}",
            submit_time=i * 0.01,
            resources={d: float(rng.uniform(0.1, 10.0)) for d in DIMENSIONS},
            significance={
                d: float(rng.uniform(0.2, 1.0)) for d in DIMENSIONS
            },
            window=TimeWindow(0, 10),
            duration=2.0,
            bid=1.0,
            flexibility=0.5,
        )
        for i in range(n_requests)
    ]
    offers = [
        Offer(
            offer_id=f"o{j}",
            provider_id=f"p{j}",
            submit_time=j * 0.01,
            resources={d: float(rng.uniform(0.1, 10.0)) for d in DIMENSIONS},
            window=TimeWindow(0, 10),
            bid=1.0,
        )
        for j in range(n_offers)
    ]
    return requests, offers


def _disagreement_rate(
    requests: List[Request], offers: List[Offer]
) -> float:
    """Fraction of requests whose top-ranked offer differs."""
    maxima = block_maxima(requests, offers)
    disagreements = 0
    counted = 0
    for request in requests:
        gravity = max(
            offers, key=lambda o: quality_of_match(request, o, maxima)
        )
        dot = max(
            offers, key=lambda o: dot_product_quality(request, o, maxima)
        )
        counted += 1
        if gravity.offer_id != dot.offer_id:
            disagreements += 1
    return disagreements / counted if counted else 0.0


def run(
    n_requests: int = 100,
    seeds: Iterable[int] = range(5),
) -> FigureResult:
    """Compare the two rankers in both supply regimes."""
    result = FigureResult(
        figure="matching",
        title="Matching ablation: gravity (Eq. 18) vs dot product",
        columns=[
            "regime",
            "seed",
            "disagreement_rate",
            "gravity_fit_error",
            "dot_product_fit_error",
        ],
    )
    seeds = list(seeds)

    ec2_rates, hetero_rates = [], []
    hetero_gravity, hetero_dot = [], []
    for seed in seeds:
        workload = GoogleTraceWorkload(flexibility=0.8, soft_significance=0.5)
        requests, offers = MarketScenario(
            n_requests=n_requests,
            offers_per_request=0.5,
            seed=seed,
            workload=workload,
            flexibility=0.8,
        ).generate()
        rate = _disagreement_rate(requests, offers)
        ec2_rates.append(rate)
        result.rows.append(
            {
                "regime": "ec2-correlated",
                "seed": seed,
                "disagreement_rate": rate,
                "gravity_fit_error": best_match_fit_error(
                    requests, offers, rank_offers
                ),
                "dot_product_fit_error": best_match_fit_error(
                    requests, offers, rank_offers_dot
                ),
            }
        )

        requests, offers = _heterogeneous_market(
            n_requests, n_requests // 2, seed
        )
        rate = _disagreement_rate(requests, offers)
        gravity_error = best_match_fit_error(requests, offers, rank_offers)
        dot_error = best_match_fit_error(requests, offers, rank_offers_dot)
        hetero_rates.append(rate)
        hetero_gravity.append(gravity_error)
        hetero_dot.append(dot_error)
        result.rows.append(
            {
                "regime": "heterogeneous",
                "seed": seed,
                "disagreement_rate": rate,
                "gravity_fit_error": gravity_error,
                "dot_product_fit_error": dot_error,
            }
        )

    result.notes.append(
        f"EC2-correlated supply: heuristics agree on "
        f"{1 - float(np.mean(ec2_rates)):.1%} of requests (machine "
        "dimensions scale together, so ranking is effectively 1-D)"
    )
    result.notes.append(
        f"heterogeneous supply: disagreement on "
        f"{float(np.mean(hetero_rates)):.1%} of requests; mean oversize "
        f"gravity {float(np.mean(hetero_gravity)):.3f} vs dot product "
        f"{float(np.mean(hetero_dot)):.3f}"
    )
    result.notes.append(
        "measured finding: once resources are normalized and significance "
        "weights applied to both heuristics, their rankings mostly agree; "
        "the paper's preference for the gravity field over the dot "
        "product is qualitative — in this reproduction the heuristic "
        "choice matters far less than the clustering built on top of it"
    )
    return result


if __name__ == "__main__":  # pragma: no cover
    res = run()
    print(res.to_table())
    for note in res.notes:
        print("NOTE:", note)
