"""Ablations over DeCloud's design choices (DESIGN.md experiment index).

Three knobs the paper motivates but does not ablate explicitly:

* **mini-auctions** (Alg. 3): grouping price-compatible clusters is
  claimed to minimize trade-reduction losses — compare reduced-trade
  fraction and welfare ratio with grouping on vs off;
* **randomized exclusion** (§IV-D): required for truthfulness on
  imbalanced markets — quantify its welfare cost;
* **cluster breadth** (Alg. 2 "best offers" set size): how wide the
  quality-of-match net is cast.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence

import numpy as np

from repro.core.config import AuctionConfig
from repro.experiments.common import FigureResult
from repro.experiments.sweeps import EVAL_BREADTH, run_size_sweep

DEFAULT_SIZES = (50, 100, 200)


def _variant_metrics(
    name: str,
    config: AuctionConfig,
    sizes: Sequence[int],
    seeds: Iterable[int],
) -> Dict[str, float]:
    points = run_size_sweep(sizes=sizes, seeds=seeds, config=config)
    ratios = [p.metrics.welfare_ratio for p in points]
    reduced = [p.metrics.reduced_trade_fraction for p in points]
    satisfaction = [p.metrics.decloud_satisfaction for p in points]
    return {
        "variant": name,
        "mean_welfare_ratio": float(np.mean(ratios)),
        "worst_welfare_ratio": float(np.min(ratios)),
        "mean_reduced_pct": 100.0 * float(np.mean(reduced)),
        "mean_satisfaction": float(np.mean(satisfaction)),
    }


def run(
    sizes: Sequence[int] = DEFAULT_SIZES,
    seeds: Iterable[int] = range(3),
) -> FigureResult:
    """Run every ablation variant over the size sweep."""
    seeds = list(seeds)
    variants: List[Dict[str, float]] = [
        _variant_metrics(
            "full mechanism",
            AuctionConfig(cluster_breadth=EVAL_BREADTH),
            sizes,
            seeds,
        ),
        _variant_metrics(
            "no mini-auctions",
            AuctionConfig(
                cluster_breadth=EVAL_BREADTH, enable_mini_auctions=False
            ),
            sizes,
            seeds,
        ),
        _variant_metrics(
            "no randomization",
            AuctionConfig(
                cluster_breadth=EVAL_BREADTH, enable_randomization=False
            ),
            sizes,
            seeds,
        ),
    ]
    for breadth in (3, 8, 32):
        variants.append(
            _variant_metrics(
                f"breadth={breadth}",
                AuctionConfig(cluster_breadth=breadth),
                sizes,
                seeds,
            )
        )

    result = FigureResult(
        figure="ablations",
        title="Ablations: mini-auctions, randomization, cluster breadth",
        columns=[
            "variant",
            "mean_welfare_ratio",
            "worst_welfare_ratio",
            "mean_reduced_pct",
            "mean_satisfaction",
        ],
        rows=variants,
    )
    full = variants[0]
    no_mini = variants[1]
    result.notes.append(
        "mini-auction grouping changes reduced trades from "
        f"{no_mini['mean_reduced_pct']:.2f}% (off) to "
        f"{full['mean_reduced_pct']:.2f}% (on)"
    )
    return result


if __name__ == "__main__":  # pragma: no cover
    res = run()
    print(res.to_table())
    for note in res.notes:
        print("NOTE:", note)
