"""Shared experiment plumbing: result containers and table rendering."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Sequence


@dataclass
class FigureResult:
    """Output of one experiment harness (one paper figure).

    ``rows`` are dicts keyed by ``columns``; ``notes`` records the
    qualitative checks EXPERIMENTS.md reports (e.g. "DeCloud below
    benchmark everywhere").
    """

    figure: str
    title: str
    columns: List[str]
    rows: List[Dict[str, Any]] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)

    def column(self, name: str) -> List[Any]:
        return [row[name] for row in self.rows]

    def to_table(self) -> str:
        return format_table(self.columns, self.rows, title=self.title)


def _format_cell(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:.4f}"
    return str(value)


def format_table(
    columns: Sequence[str],
    rows: Sequence[Dict[str, Any]],
    title: str = "",
) -> str:
    """Plain-text table matching the repo's bench output style."""
    header = [str(c) for c in columns]
    body = [[_format_cell(row.get(c, "")) for c in columns] for row in rows]
    widths = [
        max(len(header[i]), *(len(r[i]) for r in body)) if body else len(header[i])
        for i in range(len(header))
    ]
    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(header, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in body:
        lines.append("  ".join(cell.ljust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)
