"""Fig. 5b — welfare ratio (DeCloud / benchmark) vs market size.

The paper reports 75% of the benchmark's welfare in the worst case,
rising toward 85%+ in larger markets; the ratio trend must rise with the
number of requests and stay below 1.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence

import numpy as np

from repro.analysis.loess import loess
from repro.experiments.common import FigureResult
from repro.experiments.sweeps import DEFAULT_SIZES, SizePoint, run_size_sweep


def run(
    sizes: Sequence[int] = DEFAULT_SIZES,
    seeds: Iterable[int] = range(5),
    points: List[SizePoint] | None = None,
) -> FigureResult:
    """Regenerate the Fig. 5b series; pass ``points`` to reuse a sweep."""
    if points is None:
        points = run_size_sweep(sizes=sizes, seeds=seeds)

    x = [p.n_requests for p in points]
    ratio = [min(p.metrics.welfare_ratio, 1.5) for p in points]
    _, trend = loess(x, ratio, frac=0.6)
    order = np.argsort(x, kind="stable")

    result = FigureResult(
        figure="5b",
        title="Fig 5b: welfare ratio (DeCloud / benchmark) vs requests",
        columns=["n_requests", "seed", "welfare_ratio", "loess"],
    )
    for rank, idx in enumerate(order):
        point = points[idx]
        result.rows.append(
            {
                "n_requests": point.n_requests,
                "seed": point.seed,
                "welfare_ratio": point.metrics.welfare_ratio,
                "loess": float(trend[rank]),
            }
        )

    by_size: Dict[int, List[float]] = {}
    for point in points:
        by_size.setdefault(point.n_requests, []).append(
            point.metrics.welfare_ratio
        )
    means = {n: float(np.mean(v)) for n, v in by_size.items()}
    smallest, largest = min(means), max(means)
    result.notes.append(
        "mean welfare ratio by size: "
        + ", ".join(f"n={n}: {means[n]:.3f}" for n in sorted(means))
    )
    result.notes.append(
        f"ratio trend: {means[smallest]:.3f} at n={smallest} vs "
        f"{means[largest]:.3f} at n={largest} "
        "(paper: 0.70-0.75 worst case rising to 0.85+)"
    )
    return result


if __name__ == "__main__":  # pragma: no cover
    res = run()
    print(res.to_table())
    for note in res.notes:
        print("NOTE:", note)
