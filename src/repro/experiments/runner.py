"""Command-line entry point regenerating the paper's figures.

Usage::

    decloud-experiments all            # every figure, full sweeps
    decloud-experiments fig5b --fast   # one figure, reduced sweep
    python -m repro.experiments.runner fig5d

``--fast`` shrinks sizes/seeds for smoke runs; the benchmark suite under
``benchmarks/`` wraps the same harnesses with pytest-benchmark.
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Dict, List

from repro.experiments import (
    ablations,
    fig5a,
    fig5b,
    fig5c,
    fig5d,
    fig5e,
    fig5f,
    loss_decomposition,
    matching_ablation,
    mechanism_micro,
    optimality_gap,
    price_dynamics,
    sensitivity,
    strategy_regret,
)
from repro.experiments.common import FigureResult
from repro.experiments.sweeps import (
    FAST_SIMILARITIES,
    FAST_SIZES,
    run_similarity_sweep,
    run_size_sweep,
)


def _run_size_family(fast: bool) -> List[FigureResult]:
    """Fig 5a/5b/5c share one sweep — run it once."""
    if fast:
        points = run_size_sweep(sizes=FAST_SIZES, seeds=range(2))
    else:
        points = run_size_sweep()
    return [
        fig5a.run(points=points),
        fig5b.run(points=points),
        fig5c.run(points=points),
    ]


def _run_similarity_family(fast: bool) -> List[FigureResult]:
    """Fig 5d/5f share a sweep; 5e needs the wider flexibility grid."""
    if fast:
        pair = run_similarity_sweep(
            similarities=FAST_SIMILARITIES, seeds=range(2)
        )
        grid = run_similarity_sweep(
            similarities=FAST_SIMILARITIES,
            flexibilities=fig5e.FLEXIBILITIES,
            seeds=range(2),
        )
    else:
        pair = run_similarity_sweep()
        grid = run_similarity_sweep(flexibilities=fig5e.FLEXIBILITIES)
    return [
        fig5d.run(points=pair),
        fig5e.run(points=grid),
        fig5f.run(points=pair),
    ]


def _single(name: str, fast: bool) -> List[FigureResult]:
    simple: Dict[str, Callable[[], FigureResult]] = {
        "ablations": lambda: ablations.run(
            sizes=(50, 100) if fast else ablations.DEFAULT_SIZES,
            seeds=range(2) if fast else range(3),
        ),
        "mechanisms": lambda: mechanism_micro.run(
            market_sizes=(4, 16) if fast else (4, 8, 16, 32, 64),
            seeds=range(5) if fast else range(20),
        ),
        "matching": lambda: matching_ablation.run(
            n_requests=40 if fast else 100,
            seeds=range(2) if fast else range(5),
        ),
        "regret": lambda: strategy_regret.run(
            n_markets=6 if fast else 20,
            n_requests=8 if fast else 12,
        ),
        "sensitivity": lambda: sensitivity.run(
            n_requests=80 if fast else 200,
            seeds=range(2) if fast else range(3),
        ),
        "prices": lambda: price_dynamics.run(
            horizon=12.0 if fast else 24.0,
        ),
        "decomposition": lambda: loss_decomposition.run(
            n_requests=60 if fast else 150,
            seeds=range(2) if fast else range(5),
        ),
        "optimality": lambda: optimality_gap.run(
            sizes=(40, 80) if fast else (50, 100, 150),
            breadths=(8, 32) if fast else (8, 16, 32),
            seeds=range(2) if fast else range(3),
        ),
    }
    if name in simple:
        return [simple[name]()]
    if name in ("fig5a", "fig5b", "fig5c"):
        results = _run_size_family(fast)
        index = {"fig5a": 0, "fig5b": 1, "fig5c": 2}
        return [results[index[name]]]
    if name in ("fig5d", "fig5e", "fig5f"):
        results = _run_similarity_family(fast)
        index = {"fig5d": 0, "fig5e": 1, "fig5f": 2}
        return [results[index[name]]]
    raise SystemExit(f"unknown experiment {name!r}")


EXPERIMENTS = (
    "fig5a",
    "fig5b",
    "fig5c",
    "fig5d",
    "fig5e",
    "fig5f",
    "ablations",
    "mechanisms",
    "matching",
    "regret",
    "sensitivity",
    "prices",
    "decomposition",
    "optimality",
)


def main(argv: List[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="decloud-experiments",
        description="Regenerate the DeCloud paper's evaluation figures.",
    )
    parser.add_argument(
        "experiment",
        choices=EXPERIMENTS + ("all",),
        help="which figure to regenerate",
    )
    parser.add_argument(
        "--fast",
        action="store_true",
        help="reduced sweep for smoke runs",
    )
    parser.add_argument(
        "--csv",
        metavar="DIR",
        help="also write each result as CSV into DIR",
    )
    args = parser.parse_args(argv)

    if args.experiment == "all":
        results = _run_size_family(args.fast)
        results += _run_similarity_family(args.fast)
        results += _single("ablations", args.fast)
        results += _single("mechanisms", args.fast)
        results += _single("matching", args.fast)
        results += _single("regret", args.fast)
        results += _single("sensitivity", args.fast)
        results += _single("prices", args.fast)
        results += _single("decomposition", args.fast)
        results += _single("optimality", args.fast)
    else:
        results = _single(args.experiment, args.fast)

    for result in results:
        print(result.to_table())
        for note in result.notes:
            print("NOTE:", note)
        print()
    if args.csv:
        from repro.experiments.export import write_all

        for path in write_all(results, args.csv):
            print("wrote", path)
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
