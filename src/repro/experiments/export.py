"""CSV export for experiment results.

Every harness returns a :class:`~repro.experiments.common.FigureResult`;
this module writes those to CSV so users can plot with whatever they
like (the repository deliberately has no plotting dependency).
"""

from __future__ import annotations

import csv
import os
from typing import Iterable

from repro.experiments.common import FigureResult


def write_csv(result: FigureResult, directory: str) -> str:
    """Write one result to ``<directory>/<figure>.csv``; returns the path."""
    os.makedirs(directory, exist_ok=True)
    path = os.path.join(directory, f"{result.figure}.csv")
    with open(path, "w", newline="", encoding="utf-8") as handle:
        writer = csv.DictWriter(handle, fieldnames=result.columns)
        writer.writeheader()
        for row in result.rows:
            writer.writerow({c: row.get(c, "") for c in result.columns})
    return path


def write_all(results: Iterable[FigureResult], directory: str) -> list[str]:
    """Write every result; returns the written paths."""
    return [write_csv(result, directory) for result in results]
