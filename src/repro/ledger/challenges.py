"""TrueBit-style challenge game for allocation verification (paper §VI).

Collective re-execution by every miner (§III) does not scale and suffers
the *verifier's dilemma*: rational miners skip verification when it is
costly.  The paper points to TrueBit's remedy — dedicated *challengers*
who selectively verify and profit from catching cheaters — and names it
as the system's intended evolution.  This module implements that game on
top of the token ledger:

1. the leader posts a **deposit** along with its block;
2. during a challenge window, any challenger may post a matching deposit
   and claim the allocation is wrong;
3. a referee (any honest miner) **re-executes** the allocation; the loser
   of the game forfeits its deposit to the winner;
4. an unchallenged block finalizes and the leader's deposit returns.

Economic soundness: a cheating leader loses its deposit with certainty as
soon as one honest challenger exists, and a frivolous challenger loses
its own — so verification effort concentrates exactly where it pays.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.common.errors import InvalidBlockError, ProtocolError
from repro.ledger.block import Block
from repro.ledger.miner import Miner
from repro.protocol.settlement import TokenLedger


class GameState(enum.Enum):
    OPEN = "open"
    CHALLENGED = "challenged"
    FINALIZED = "finalized"
    REJECTED = "rejected"


@dataclass
class ChallengeRecord:
    challenger_id: str
    deposit: float


@dataclass
class ProposedBlock:
    block: Block
    leader_id: str
    deposit: float
    state: GameState = GameState.OPEN
    challenge: Optional[ChallengeRecord] = None


@dataclass
class ChallengeGame:
    """The deposit/challenge/adjudicate state machine."""

    ledger: TokenLedger
    deposit: float = 10.0
    proposals: Dict[str, ProposedBlock] = field(default_factory=dict)

    # ------------------------------------------------------------------
    # Leader side
    # ------------------------------------------------------------------
    def propose(self, leader_id: str, block: Block) -> str:
        """Post a block with the leader's deposit; returns the block hash."""
        block_hash = block.hash()
        if block_hash in self.proposals:
            raise ProtocolError(f"block {block_hash[:12]}... already proposed")
        # Escrow-by-burn: subtract now, return on finalize/win.
        if self.ledger.balance(leader_id) < self.deposit:
            raise ProtocolError(
                f"leader {leader_id} cannot cover the deposit"
            )
        self.ledger.transfer(leader_id, "challenge-pool", self.deposit)
        self.proposals[block_hash] = ProposedBlock(
            block=block, leader_id=leader_id, deposit=self.deposit
        )
        return block_hash

    def _proposal(self, block_hash: str) -> ProposedBlock:
        proposal = self.proposals.get(block_hash)
        if proposal is None:
            raise ProtocolError(f"unknown proposal {block_hash[:12]}...")
        return proposal

    # ------------------------------------------------------------------
    # Challenger side
    # ------------------------------------------------------------------
    def raise_challenge(self, challenger_id: str, block_hash: str) -> None:
        """Stake a deposit claiming the block's allocation is wrong."""
        proposal = self._proposal(block_hash)
        if proposal.state is not GameState.OPEN:
            raise ProtocolError(
                f"proposal is {proposal.state.value}, cannot challenge"
            )
        if self.ledger.balance(challenger_id) < self.deposit:
            raise ProtocolError(
                f"challenger {challenger_id} cannot cover the deposit"
            )
        self.ledger.transfer(challenger_id, "challenge-pool", self.deposit)
        proposal.state = GameState.CHALLENGED
        proposal.challenge = ChallengeRecord(
            challenger_id=challenger_id, deposit=self.deposit
        )

    # ------------------------------------------------------------------
    # Adjudication
    # ------------------------------------------------------------------
    def adjudicate(self, block_hash: str, referee: Miner) -> bool:
        """Referee re-executes; returns True when the challenge succeeds.

        A successful challenge rejects the block and pays both deposits
        to the challenger; a failed one pays them to the leader.
        """
        proposal = self._proposal(block_hash)
        if proposal.state is not GameState.CHALLENGED:
            raise ProtocolError("no challenge pending on this proposal")
        challenge = proposal.challenge
        assert challenge is not None
        pot = proposal.deposit + challenge.deposit

        try:
            referee.verify_block(proposal.block)
        except InvalidBlockError:
            proposal.state = GameState.REJECTED
            self.ledger.transfer(
                "challenge-pool", challenge.challenger_id, pot
            )
            return True
        proposal.state = GameState.FINALIZED
        self.ledger.transfer("challenge-pool", proposal.leader_id, pot)
        return False

    def finalize_unchallenged(self, block_hash: str) -> None:
        """Challenge window elapsed: return the leader's deposit."""
        proposal = self._proposal(block_hash)
        if proposal.state is not GameState.OPEN:
            raise ProtocolError(
                f"proposal is {proposal.state.value}, cannot finalize"
            )
        proposal.state = GameState.FINALIZED
        self.ledger.transfer(
            "challenge-pool", proposal.leader_id, proposal.deposit
        )

    def state_of(self, block_hash: str) -> GameState:
        return self._proposal(block_hash).state
