"""Hash-puzzle proof-of-work.

A nonce is valid for a payload when ``SHA-256(payload || nonce)`` has at
least ``difficulty_bits`` leading zero bits.  The reference simulation uses
a small difficulty (the economics experiments do not depend on mining
cost), but the check is the real Bitcoin-style predicate.

``solve`` is the hot loop of every mined round, so it avoids rebuilding
``payload + nonce.to_bytes(8, "big")`` per attempt: the payload is hashed
once into a base SHA-256 state that is ``copy()``-ed per nonce, the nonce
lives in a reused 8-byte buffer refreshed via ``struct.pack_into``, and the
leading-zero predicate becomes a single integer comparison against
``2**(256 - difficulty_bits)``.  The solutions are identical to the naive
scan — ``check`` remains the readable validation predicate.
"""

from __future__ import annotations

import hashlib
import struct

from repro.common.errors import LedgerError

DEFAULT_DIFFICULTY_BITS = 12
MAX_NONCE = 2**64

_NONCE_STRUCT = struct.Struct(">Q")


def _digest(payload: bytes, nonce: int) -> bytes:
    return hashlib.sha256(payload + nonce.to_bytes(8, "big")).digest()


def leading_zero_bits(digest: bytes) -> int:
    """Number of leading zero bits in ``digest``."""
    bits = 0
    for byte in digest:
        if byte == 0:
            bits += 8
            continue
        # Count leading zeros within this byte, then stop.
        bits += 8 - byte.bit_length()
        break
    return bits


def check(payload: bytes, nonce: int, difficulty_bits: int) -> bool:
    """True when ``nonce`` solves the puzzle for ``payload``."""
    if not 0 <= nonce < MAX_NONCE:
        return False
    return leading_zero_bits(_digest(payload, nonce)) >= difficulty_bits


def solve(
    payload: bytes,
    difficulty_bits: int = DEFAULT_DIFFICULTY_BITS,
    start_nonce: int = 0,
) -> int:
    """Find the smallest valid nonce at or above ``start_nonce``.

    Deterministic: given the same payload and start nonce, every miner
    finds the same solution, which keeps the simulation reproducible.
    """
    if difficulty_bits < 0 or difficulty_bits > 256:
        raise LedgerError(f"difficulty_bits out of range: {difficulty_bits}")
    if not 0 <= start_nonce < MAX_NONCE:
        raise LedgerError(f"start_nonce out of range: {start_nonce}")
    # leading_zero_bits(d) >= k  <=>  int(d) < 2**(256 - k): both say the
    # top k bits of the 256-bit digest are zero.
    threshold = 1 << (256 - difficulty_bits)
    # One reused buffer holds payload || nonce; the nonce bytes are
    # incremented in place instead of re-concatenating per attempt.
    buf = bytearray(payload)
    buf += _NONCE_STRUCT.pack(start_nonce)
    last = len(buf) - 1
    stop = len(payload)
    sha256 = hashlib.sha256
    from_bytes = int.from_bytes
    nonce = start_nonce
    while nonce < MAX_NONCE:
        if from_bytes(sha256(buf).digest(), "big") < threshold:
            return nonce
        nonce += 1
        i = last
        while i >= stop:
            byte = buf[i]
            if byte == 255:
                buf[i] = 0
                i -= 1
            else:
                buf[i] = byte + 1
                break
    raise LedgerError("exhausted nonce space without solving the puzzle")
