"""Hash-puzzle proof-of-work.

A nonce is valid for a payload when ``SHA-256(payload || nonce)`` has at
least ``difficulty_bits`` leading zero bits.  The reference simulation uses
a small difficulty (the economics experiments do not depend on mining
cost), but the check is the real Bitcoin-style predicate.
"""

from __future__ import annotations

import hashlib

from repro.common.errors import LedgerError

DEFAULT_DIFFICULTY_BITS = 12
MAX_NONCE = 2**64


def _digest(payload: bytes, nonce: int) -> bytes:
    return hashlib.sha256(payload + nonce.to_bytes(8, "big")).digest()


def leading_zero_bits(digest: bytes) -> int:
    """Number of leading zero bits in ``digest``."""
    bits = 0
    for byte in digest:
        if byte == 0:
            bits += 8
            continue
        # Count leading zeros within this byte, then stop.
        bits += 8 - byte.bit_length()
        break
    return bits


def check(payload: bytes, nonce: int, difficulty_bits: int) -> bool:
    """True when ``nonce`` solves the puzzle for ``payload``."""
    if not 0 <= nonce < MAX_NONCE:
        return False
    return leading_zero_bits(_digest(payload, nonce)) >= difficulty_bits


def solve(
    payload: bytes,
    difficulty_bits: int = DEFAULT_DIFFICULTY_BITS,
    start_nonce: int = 0,
) -> int:
    """Find the smallest valid nonce at or above ``start_nonce``.

    Deterministic: given the same payload and start nonce, every miner
    finds the same solution, which keeps the simulation reproducible.
    """
    if difficulty_bits < 0 or difficulty_bits > 256:
        raise LedgerError(f"difficulty_bits out of range: {difficulty_bits}")
    nonce = start_nonce
    while nonce < MAX_NONCE:
        if check(payload, nonce, difficulty_bits):
            return nonce
        nonce += 1
    raise LedgerError("exhausted nonce space without solving the puzzle")
