"""Lossy gossip network: delayed and dropped message delivery.

:class:`~repro.ledger.network.BroadcastNetwork` delivers synchronously —
fine for the protocol's logic, silent about its robustness.  This module
adds a discrete-event network with per-link delay and loss so tests can
answer: *what happens when gossip is unreliable?*  The protocol's answer,
by construction (§III): a participant whose sealed bid or key reveal is
lost simply drops out of the round and resubmits later; a miner that
misses messages catches up from complete blocks.

Deliveries are deterministic given the seed, so failure scenarios are
reproducible.
"""

from __future__ import annotations

import heapq
import itertools
import random
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.common.errors import ValidationError

Handler = Callable[[str, Any], None]


@dataclass(order=True)
class _Delivery:
    time: float
    sequence: int
    node_id: str = field(compare=False)
    topic: str = field(compare=False)
    payload: Any = field(compare=False)
    sender: str = field(compare=False)


@dataclass
class GossipNetwork:
    """Broadcast with per-message random delay and loss.

    Nodes register handlers per topic; :meth:`broadcast` schedules one
    delivery per node per message, each independently delayed and
    possibly dropped.  :meth:`run_until` advances the clock, delivering
    in timestamp order.
    """

    drop_rate: float = 0.0
    min_delay: float = 0.01
    max_delay: float = 0.1
    seed: int = 0
    duplicate_rate: float = 0.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.drop_rate < 1.0:
            raise ValidationError("drop_rate must be in [0, 1)")
        if not 0.0 <= self.duplicate_rate < 1.0:
            raise ValidationError("duplicate_rate must be in [0, 1)")
        if self.min_delay < 0 or self.max_delay < self.min_delay:
            raise ValidationError("need 0 <= min_delay <= max_delay")
        self._rng = random.Random(self.seed)
        self._subscribers: Dict[Tuple[str, str], List[Handler]] = {}
        self._queue: List[_Delivery] = []
        self._sequence = itertools.count()
        self._nodes: List[str] = []
        self._crashed: set = set()
        self.now = 0.0
        self.delivered: int = 0
        self.dropped: int = 0

    # ------------------------------------------------------------------
    # Topology
    # ------------------------------------------------------------------
    def register_node(self, node_id: str) -> None:
        if node_id not in self._nodes:
            self._nodes.append(node_id)

    def subscribe(self, node_id: str, topic: str, handler: Handler) -> None:
        self.register_node(node_id)
        self._subscribers.setdefault((node_id, topic), []).append(handler)

    def crash(self, node_id: str) -> None:
        """Take a node offline: nothing is delivered to it until recovery."""
        self._crashed.add(node_id)

    def recover(self, node_id: str) -> None:
        self._crashed.discard(node_id)

    # ------------------------------------------------------------------
    # Traffic
    # ------------------------------------------------------------------
    def broadcast(self, topic: str, payload: Any, sender: str = "") -> None:
        """Schedule delivery of ``payload`` to every registered node."""
        for node_id in self._nodes:
            copies = 1
            if (
                self.duplicate_rate
                and self._rng.random() < self.duplicate_rate
            ):
                copies = 2
            for _ in range(copies):
                if self._rng.random() < self.drop_rate:
                    self.dropped += 1
                    continue
                delay = self._rng.uniform(self.min_delay, self.max_delay)
                heapq.heappush(
                    self._queue,
                    _Delivery(
                        time=self.now + delay,
                        sequence=next(self._sequence),
                        node_id=node_id,
                        topic=topic,
                        payload=payload,
                        sender=sender,
                    ),
                )

    def run_until(self, deadline: Optional[float] = None) -> int:
        """Deliver queued messages up to ``deadline`` (all, if None).

        Returns the number of messages delivered.
        """
        count = 0
        while self._queue:
            if deadline is not None and self._queue[0].time > deadline:
                break
            delivery = heapq.heappop(self._queue)
            self.now = max(self.now, delivery.time)
            if delivery.node_id in self._crashed:
                self.dropped += 1
                continue
            # Snapshot the handler list: a handler subscribing during
            # delivery must not receive (or redirect) this message.
            for handler in list(
                self._subscribers.get(
                    (delivery.node_id, delivery.topic), ()
                )
            ):
                handler(delivery.sender, delivery.payload)
            self.delivered += 1
            count += 1
        if deadline is not None:
            self.now = max(self.now, deadline)
        return count

    @property
    def pending(self) -> int:
        return len(self._queue)
