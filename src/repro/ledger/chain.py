"""The blockchain: an append-only validated sequence of blocks."""

from __future__ import annotations

from typing import Iterator, List, Optional

from repro.common.errors import InvalidBlockError
from repro.ledger.block import GENESIS_PARENT, Block
from repro.ledger.pow import DEFAULT_DIFFICULTY_BITS


class Blockchain:
    """Ordered blocks with linkage + proof-of-work validation on append.

    Allocation *content* validation (decryptability, correct auction
    re-execution) is the miners' job in ``repro.protocol.exposure``; the
    chain enforces only the structural invariants every node agrees on.
    """

    def __init__(self, difficulty_bits: int = DEFAULT_DIFFICULTY_BITS) -> None:
        self.difficulty_bits = difficulty_bits
        self._blocks: List[Block] = []
        #: optional write-ahead journal (``repro.store.NodeStore`` duck
        #: type): every append is logged *before* it takes effect, so a
        #: crashed node recovers exactly the blocks it durably committed
        self.journal = None

    def __len__(self) -> int:
        return len(self._blocks)

    def __iter__(self) -> Iterator[Block]:
        return iter(self._blocks)

    def __getitem__(self, index: int) -> Block:
        return self._blocks[index]

    @property
    def tip(self) -> Optional[Block]:
        """The latest block, or ``None`` for an empty chain."""
        return self._blocks[-1] if self._blocks else None

    @property
    def tip_hash(self) -> str:
        tip = self.tip
        return tip.hash() if tip is not None else GENESIS_PARENT

    @property
    def next_height(self) -> int:
        return len(self._blocks)

    def validate_candidate(self, block: Block) -> None:
        """Raise :class:`InvalidBlockError` unless ``block`` extends the tip."""
        preamble = block.preamble
        if preamble.height != self.next_height:
            raise InvalidBlockError(
                f"expected height {self.next_height}, got {preamble.height}"
            )
        if preamble.parent_hash != self.tip_hash:
            raise InvalidBlockError(
                f"parent hash {preamble.parent_hash[:12]}... does not match "
                f"tip {self.tip_hash[:12]}..."
            )
        if not preamble.check_pow(self.difficulty_bits):
            raise InvalidBlockError("proof-of-work check failed")
        for tx in preamble.transactions:
            if not tx.verify_signature():
                raise InvalidBlockError(
                    f"transaction from {tx.sender_id} in block "
                    f"{preamble.height} has an invalid signature"
                )
        body = block.require_complete()
        if not body.verify_signature(preamble.hash()):
            raise InvalidBlockError("miner signature on block body is invalid")

    def append(self, block: Block) -> None:
        """Validate and append ``block`` (journaled first when attached)."""
        self.validate_candidate(block)
        if self.journal is not None:
            self.journal.log("chain.append", block=block)
        self._blocks.append(block)

    def find_block(self, block_hash: str) -> Optional[Block]:
        """Look up a block by its full hash."""
        for block in self._blocks:
            if block.hash() == block_hash:
                return block
        return None

    def verify_linkage(self) -> bool:
        """Re-validate the whole chain's hash linkage and PoW."""
        parent = GENESIS_PARENT
        for expected_height, block in enumerate(self._blocks):
            preamble = block.preamble
            if preamble.height != expected_height:
                return False
            if preamble.parent_hash != parent:
                return False
            if not preamble.check_pow(self.difficulty_bits):
                return False
            parent = block.hash()
        return True
