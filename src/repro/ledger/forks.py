"""Fork handling: a block tree with longest-chain choice.

The linear :class:`~repro.ledger.chain.Blockchain` models the happy path;
real PoW networks occasionally produce competing blocks at the same
height.  :class:`BlockTree` accepts any valid block extending any known
block, tracks all tips, and exposes the longest-chain (greatest
accumulated height, ties broken by earliest arrival) canonical view that
miners build on — including reorganizations when a longer fork overtakes
the current head.

DeCloud inherits whatever consensus the underlying chain provides (§II-A
"blockchains achieve decentralized consensus"); this module exists so the
reproduction's substrate behaves like one, and so tests can exercise the
market's behaviour across reorgs (allocations of orphaned blocks are
void; their participants simply resubmit — §III-B).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.common.errors import InvalidBlockError
from repro.ledger.block import GENESIS_PARENT, Block
from repro.ledger.pow import DEFAULT_DIFFICULTY_BITS


@dataclass
class _Node:
    block: Block
    parent_hash: str
    height: int
    arrival: int  # insertion counter for tie-breaking


@dataclass
class BlockTree:
    """All known valid blocks, indexed by hash, with fork choice."""

    difficulty_bits: int = DEFAULT_DIFFICULTY_BITS
    _nodes: Dict[str, _Node] = field(default_factory=dict)
    _arrival_counter: int = 0

    def __len__(self) -> int:
        return len(self._nodes)

    def __contains__(self, block_hash: str) -> bool:
        return block_hash in self._nodes

    # ------------------------------------------------------------------
    # Insertion
    # ------------------------------------------------------------------
    def add_block(self, block: Block) -> str:
        """Validate and insert ``block``; returns its hash.

        The parent must be genesis or already known; height must be the
        parent's height + 1; PoW, transaction signatures, and the miner
        signature are checked exactly as on the linear chain.
        """
        preamble = block.preamble
        parent_hash = preamble.parent_hash
        if parent_hash == GENESIS_PARENT:
            expected_height = 0
        else:
            parent = self._nodes.get(parent_hash)
            if parent is None:
                raise InvalidBlockError(
                    f"unknown parent {parent_hash[:12]}..."
                )
            expected_height = parent.height + 1
        if preamble.height != expected_height:
            raise InvalidBlockError(
                f"expected height {expected_height}, got {preamble.height}"
            )
        if not preamble.check_pow(self.difficulty_bits):
            raise InvalidBlockError("proof-of-work check failed")
        for tx in preamble.transactions:
            if not tx.verify_signature():
                raise InvalidBlockError(
                    f"transaction from {tx.sender_id} in block "
                    f"{preamble.height} has an invalid signature"
                )
        body = block.require_complete()
        if not body.verify_signature(preamble.hash()):
            raise InvalidBlockError("miner signature on block body invalid")

        block_hash = block.hash()
        if block_hash in self._nodes:
            return block_hash  # idempotent
        self._nodes[block_hash] = _Node(
            block=block,
            parent_hash=parent_hash,
            height=preamble.height,
            arrival=self._arrival_counter,
        )
        self._arrival_counter += 1
        return block_hash

    # ------------------------------------------------------------------
    # Fork choice
    # ------------------------------------------------------------------
    def tips(self) -> List[str]:
        """Hashes of blocks no other block builds on."""
        parents = {node.parent_hash for node in self._nodes.values()}
        return [h for h in self._nodes if h not in parents]

    def head(self) -> Optional[str]:
        """Longest-chain head (max height; earliest arrival on ties)."""
        tips = self.tips()
        if not tips:
            return None
        return min(
            tips,
            key=lambda h: (-self._nodes[h].height, self._nodes[h].arrival),
        )

    def canonical_chain(self) -> List[Block]:
        """Blocks from genesis to the current head."""
        head = self.head()
        out: List[Block] = []
        cursor = head
        while cursor is not None and cursor in self._nodes:
            node = self._nodes[cursor]
            out.append(node.block)
            cursor = (
                node.parent_hash
                if node.parent_hash != GENESIS_PARENT
                else None
            )
        out.reverse()
        return out

    def orphaned_blocks(self) -> List[Block]:
        """Valid blocks not on the canonical chain (their allocations
        are void; participants resubmit)."""
        canonical = {b.hash() for b in self.canonical_chain()}
        return [
            node.block
            for block_hash, node in self._nodes.items()
            if block_hash not in canonical
        ]

    def height_of_head(self) -> int:
        head = self.head()
        return self._nodes[head].height if head else -1
