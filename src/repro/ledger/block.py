"""Blocks: preamble (shared after PoW) and body (shared after reveal).

The two-phase bid exposure protocol splits each block:

* **Preamble** — parent hash, height, the *encrypted* transactions, and a
  proof-of-work over all of that.  Broadcasting the preamble fixes the set
  of participants for the round without revealing any bid.
* **Body** — the disclosed temporary keys and the allocation suggestion
  computed by the winning miner, signed by that miner.

The preamble hash doubles as the block *evidence* that seeds the
verifiable pseudorandomization of trade reduction (paper §IV-F).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Tuple

from repro.common.errors import InvalidBlockError
from repro.cryptosim import hashing, schnorr
from repro.ledger import pow as pow_mod
from repro.ledger.transaction import SealedBidTransaction

GENESIS_PARENT = "0" * 64


@dataclass(frozen=True)
class KeyReveal:
    """A participant's disclosed temporary key with its commitment blind.

    Keyed by ``txid`` — a participant posting several sealed bids in one
    round discloses one temporary key per transaction.
    """

    sender_id: str
    txid: str
    temp_key: bytes
    blind: bytes


@dataclass(frozen=True)
class BlockPreamble:
    """First part of a block: fixes the round's sealed bids under PoW."""

    height: int
    parent_hash: str
    transactions: Tuple[SealedBidTransaction, ...]
    timestamp: float
    pow_nonce: int = 0

    def pow_payload(self) -> bytes:
        """Bytes the proof-of-work commits to (everything but the nonce)."""
        return hashing.hash_concat(
            self.height.to_bytes(8, "big"),
            self.parent_hash.encode("ascii"),
            repr(self.timestamp).encode("ascii"),
            *[tx.signing_payload() for tx in self.transactions],
        )

    def hash(self) -> str:
        """Preamble hash (includes the PoW nonce)."""
        return hashing.sha256_hex(
            self.pow_payload() + self.pow_nonce.to_bytes(8, "big")
        )

    def evidence(self) -> bytes:
        """Block evidence bytes seeding verifiable randomization."""
        return bytes.fromhex(self.hash())

    def check_pow(self, difficulty_bits: int) -> bool:
        return pow_mod.check(self.pow_payload(), self.pow_nonce, difficulty_bits)

    def with_nonce(self, nonce: int) -> "BlockPreamble":
        return BlockPreamble(
            height=self.height,
            parent_hash=self.parent_hash,
            transactions=self.transactions,
            timestamp=self.timestamp,
            pow_nonce=nonce,
        )


@dataclass(frozen=True)
class BlockBody:
    """Second part of a block: reveals and the allocation suggestion.

    ``allocation`` is an opaque JSON-serializable payload produced by the
    auction layer (see ``repro.core.outcome.AuctionOutcome.to_payload``);
    the ledger only hashes and stores it.
    """

    reveals: Tuple[KeyReveal, ...]
    allocation: Dict[str, Any]
    miner_id: str
    miner_public: int
    signature: Tuple[int, int] = (0, 0)

    def signing_payload(self, preamble_hash: str) -> bytes:
        return hashing.hash_concat(
            preamble_hash.encode("ascii"),
            *[
                hashing.hash_concat(
                    reveal.sender_id.encode("utf-8"),
                    reveal.txid.encode("ascii"),
                    reveal.temp_key,
                    reveal.blind,
                )
                for reveal in self.reveals
            ],
            hashing.canonical_json(self.allocation),
            self.miner_id.encode("utf-8"),
        )

    def signed_by(
        self, keypair: schnorr.KeyPair, preamble_hash: str
    ) -> "BlockBody":
        signature = schnorr.sign(
            keypair.secret, self.signing_payload(preamble_hash)
        )
        return BlockBody(
            reveals=self.reveals,
            allocation=self.allocation,
            miner_id=self.miner_id,
            miner_public=self.miner_public,
            signature=signature,
        )

    def verify_signature(self, preamble_hash: str) -> bool:
        return schnorr.verify(
            self.miner_public,
            self.signing_payload(preamble_hash),
            self.signature,
        )


@dataclass(frozen=True)
class Block:
    """A complete block: preamble plus body."""

    preamble: BlockPreamble
    body: Optional[BlockBody] = field(default=None)

    @property
    def height(self) -> int:
        return self.preamble.height

    def hash(self) -> str:
        """Full block hash: preamble hash chained with the body digest."""
        if self.body is None:
            return self.preamble.hash()
        return hashing.sha256_hex(
            hashing.hash_concat(
                self.preamble.hash().encode("ascii"),
                self.body.signing_payload(self.preamble.hash()),
            )
        )

    def require_complete(self) -> BlockBody:
        if self.body is None:
            raise InvalidBlockError(f"block {self.height} has no body")
        return self.body
