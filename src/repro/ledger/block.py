"""Blocks: preamble (shared after PoW) and body (shared after reveal).

The two-phase bid exposure protocol splits each block:

* **Preamble** — parent hash, height, the *encrypted* transactions, and a
  proof-of-work over all of that.  Broadcasting the preamble fixes the set
  of participants for the round without revealing any bid.
* **Body** — the disclosed temporary keys and the allocation suggestion
  computed by the winning miner, signed by that miner.

The preamble hash doubles as the block *evidence* that seeds the
verifiable pseudorandomization of trade reduction (paper §IV-F).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Tuple

from repro.common.errors import InvalidBlockError
from repro.cryptosim import hashing, schnorr
from repro.ledger import pow as pow_mod
from repro.ledger.transaction import SealedBidTransaction

GENESIS_PARENT = "0" * 64


@dataclass(frozen=True)
class KeyReveal:
    """A participant's disclosed temporary key with its commitment blind.

    Keyed by ``txid`` — a participant posting several sealed bids in one
    round discloses one temporary key per transaction.
    """

    sender_id: str
    txid: str
    temp_key: bytes
    blind: bytes


@dataclass(frozen=True)
class BlockPreamble:
    """First part of a block: fixes the round's sealed bids under PoW."""

    height: int
    parent_hash: str
    transactions: Tuple[SealedBidTransaction, ...]
    timestamp: float
    pow_nonce: int = 0

    def pow_payload(self) -> bytes:
        """Bytes the proof-of-work commits to (everything but the nonce).

        Cached per instance (all fields are immutable); ``with_nonce``
        carries the cache over because the payload excludes the nonce.
        """
        cached = self.__dict__.get("_pow_payload_cache")
        if cached is None:
            cached = hashing.hash_concat(
                self.height.to_bytes(8, "big"),
                self.parent_hash.encode("ascii"),
                repr(self.timestamp).encode("ascii"),
                *[tx.signing_payload() for tx in self.transactions],
            )
            object.__setattr__(self, "_pow_payload_cache", cached)
        return cached

    @property
    def canonical_bytes(self) -> bytes:
        """Cached canonical byte encoding (payload plus nonce bytes)."""
        return self.pow_payload() + self.pow_nonce.to_bytes(8, "big")

    def hash(self) -> str:
        """Preamble hash (includes the PoW nonce)."""
        cached = self.__dict__.get("_hash_cache")
        if cached is None:
            cached = hashing.sha256_hex(self.canonical_bytes)
            object.__setattr__(self, "_hash_cache", cached)
        return cached

    def evidence(self) -> bytes:
        """Block evidence bytes seeding verifiable randomization."""
        return bytes.fromhex(self.hash())

    def check_pow(self, difficulty_bits: int) -> bool:
        return pow_mod.check(self.pow_payload(), self.pow_nonce, difficulty_bits)

    def with_nonce(self, nonce: int) -> "BlockPreamble":
        preamble = BlockPreamble(
            height=self.height,
            parent_hash=self.parent_hash,
            transactions=self.transactions,
            timestamp=self.timestamp,
            pow_nonce=nonce,
        )
        # The PoW payload does not cover the nonce, so the fresh instance
        # may reuse an already-computed payload; its hash cache stays
        # empty and is recomputed with the new nonce on demand.
        cached = self.__dict__.get("_pow_payload_cache")
        if cached is not None:
            object.__setattr__(preamble, "_pow_payload_cache", cached)
        return preamble


@dataclass(frozen=True)
class BlockBody:
    """Second part of a block: reveals and the allocation suggestion.

    ``allocation`` is an opaque JSON-serializable payload produced by the
    auction layer (see ``repro.core.outcome.AuctionOutcome.to_payload``);
    the ledger only hashes and stores it.
    """

    reveals: Tuple[KeyReveal, ...]
    allocation: Dict[str, Any]
    miner_id: str
    miner_public: int
    signature: Tuple[int, int] = (0, 0)

    def allocation_bytes(self) -> bytes:
        """Cached canonical JSON encoding of the allocation payload.

        ``allocation`` is a plain dict for JSON round-tripping, but the
        body is a frozen value object: the payload is fixed when the body
        is built, and "mutation" means building a new body (via
        ``dataclasses.replace`` or ``signed_by``), which re-canonicalizes.
        Serializing the allocation dominates body hashing for real
        rounds, and each body used to re-serialize it on every hash,
        signature check, and chain export.
        """
        cached = self.__dict__.get("_allocation_cache")
        if cached is None:
            cached = hashing.canonical_json(self.allocation)
            object.__setattr__(self, "_allocation_cache", cached)
        return cached

    def signing_payload(self, preamble_hash: str) -> bytes:
        cached = self.__dict__.get("_signing_cache")
        if cached is not None and cached[0] == preamble_hash:
            return cached[1]
        payload = hashing.hash_concat(
            preamble_hash.encode("ascii"),
            *[
                hashing.hash_concat(
                    reveal.sender_id.encode("utf-8"),
                    reveal.txid.encode("ascii"),
                    reveal.temp_key,
                    reveal.blind,
                )
                for reveal in self.reveals
            ],
            self.allocation_bytes(),
            self.miner_id.encode("utf-8"),
        )
        object.__setattr__(self, "_signing_cache", (preamble_hash, payload))
        return payload

    def signed_by(
        self, keypair: schnorr.KeyPair, preamble_hash: str
    ) -> "BlockBody":
        signature = schnorr.sign(
            keypair.secret, self.signing_payload(preamble_hash)
        )
        body = BlockBody(
            reveals=self.reveals,
            allocation=self.allocation,
            miner_id=self.miner_id,
            miner_public=self.miner_public,
            signature=signature,
        )
        # Same reveals and allocation: the canonical allocation bytes and
        # the signed payload stay valid for the fresh instance.
        object.__setattr__(body, "_allocation_cache", self.allocation_bytes())
        object.__setattr__(
            body, "_signing_cache", (preamble_hash, self.signing_payload(preamble_hash))
        )
        return body

    def verify_signature(self, preamble_hash: str) -> bool:
        return schnorr.verify(
            self.miner_public,
            self.signing_payload(preamble_hash),
            self.signature,
        )


@dataclass(frozen=True)
class Block:
    """A complete block: preamble plus body."""

    preamble: BlockPreamble
    body: Optional[BlockBody] = field(default=None)

    @property
    def height(self) -> int:
        return self.preamble.height

    def hash(self) -> str:
        """Full block hash: preamble hash chained with the body digest."""
        if self.body is None:
            return self.preamble.hash()
        cached = self.__dict__.get("_hash_cache")
        if cached is None:
            preamble_hash = self.preamble.hash()
            cached = hashing.sha256_hex(
                hashing.hash_concat(
                    preamble_hash.encode("ascii"),
                    self.body.signing_payload(preamble_hash),
                )
            )
            object.__setattr__(self, "_hash_cache", cached)
        return cached

    def require_complete(self) -> BlockBody:
        if self.body is None:
            raise InvalidBlockError(f"block {self.height} has no body")
        return self.body
