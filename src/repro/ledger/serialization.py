"""Chain import/export: a JSON audit format for the ledger.

Anyone can audit a DeCloud deployment from its chain: every block
carries the sealed bids, the disclosed keys, and the allocation — enough
to re-derive and re-verify everything.  This module serializes a
:class:`~repro.ledger.chain.Blockchain` to a portable JSON document and
back, preserving hashes bit-for-bit (round-trip is asserted on import).

Hashing here leans on the canonical-bytes caches of the ledger value
objects: ``block.hash()`` reuses the preamble payload, the transactions'
signed payloads, and the body's canonical allocation JSON, each computed
at most once per instance (see ``repro.ledger.block`` /
``repro.ledger.transaction``).  Exporting or verifying a chain therefore
serializes every allocation once instead of once per hash/signature/
audit pass.  The outer ``json.dumps(..., sort_keys=True, indent=1)``
below is the *wire format* and is unchanged.
"""

from __future__ import annotations

import json
from typing import Any, Dict

from repro.common.errors import LedgerError
from repro.cryptosim.commitments import Commitment
from repro.cryptosim.symmetric import SealedBox
from repro.ledger.block import Block, BlockBody, BlockPreamble, KeyReveal
from repro.ledger.chain import Blockchain
from repro.ledger.transaction import SealedBidTransaction

FORMAT_VERSION = 1


def tx_to_dict(tx: SealedBidTransaction) -> Dict[str, Any]:
    return {
        "sender_id": tx.sender_id,
        "sender_public": hex(tx.sender_public),
        "box": tx.box.to_bytes().hex(),
        "key_commitment": tx.key_commitment.digest.hex(),
        "signature": [hex(tx.signature[0]), hex(tx.signature[1])],
    }


def tx_from_dict(data: Dict[str, Any]) -> SealedBidTransaction:
    return SealedBidTransaction(
        sender_id=data["sender_id"],
        sender_public=int(data["sender_public"], 16),
        box=SealedBox.from_bytes(bytes.fromhex(data["box"])),
        key_commitment=Commitment(
            digest=bytes.fromhex(data["key_commitment"])
        ),
        signature=(
            int(data["signature"][0], 16),
            int(data["signature"][1], 16),
        ),
    )


def block_to_dict(block: Block) -> Dict[str, Any]:
    preamble = block.preamble
    body = block.body
    out: Dict[str, Any] = {
        "preamble": {
            "height": preamble.height,
            "parent_hash": preamble.parent_hash,
            "timestamp": preamble.timestamp,
            "pow_nonce": preamble.pow_nonce,
            "transactions": [tx_to_dict(tx) for tx in preamble.transactions],
        },
    }
    if body is not None:
        out["body"] = {
            "reveals": [
                {
                    "sender_id": reveal.sender_id,
                    "txid": reveal.txid,
                    "temp_key": reveal.temp_key.hex(),
                    "blind": reveal.blind.hex(),
                }
                for reveal in body.reveals
            ],
            "allocation": body.allocation,
            "miner_id": body.miner_id,
            "miner_public": hex(body.miner_public),
            "signature": [hex(body.signature[0]), hex(body.signature[1])],
        }
    return out


def block_from_dict(data: Dict[str, Any]) -> Block:
    pre = data["preamble"]
    preamble = BlockPreamble(
        height=pre["height"],
        parent_hash=pre["parent_hash"],
        transactions=tuple(tx_from_dict(t) for t in pre["transactions"]),
        timestamp=pre["timestamp"],
        pow_nonce=pre["pow_nonce"],
    )
    body = None
    if "body" in data:
        raw = data["body"]
        body = BlockBody(
            reveals=tuple(
                KeyReveal(
                    sender_id=r["sender_id"],
                    txid=r["txid"],
                    temp_key=bytes.fromhex(r["temp_key"]),
                    blind=bytes.fromhex(r["blind"]),
                )
                for r in raw["reveals"]
            ),
            allocation=raw["allocation"],
            miner_id=raw["miner_id"],
            miner_public=int(raw["miner_public"], 16),
            signature=(
                int(raw["signature"][0], 16),
                int(raw["signature"][1], 16),
            ),
        )
    return Block(preamble=preamble, body=body)


def chain_to_json(chain: Blockchain) -> str:
    """Serialize the chain (with block hashes for external auditing)."""
    document = {
        "format_version": FORMAT_VERSION,
        "difficulty_bits": chain.difficulty_bits,
        "blocks": [
            {"hash": block.hash(), **block_to_dict(block)} for block in chain
        ],
    }
    return json.dumps(document, sort_keys=True, indent=1)


def chain_from_json(document: str, verify: bool = True) -> Blockchain:
    """Rebuild a chain from :func:`chain_to_json` output.

    With ``verify`` (default) every block is revalidated on append —
    linkage, PoW, signatures — and recorded hashes must match exactly.
    """
    try:
        data = json.loads(document)
    except json.JSONDecodeError as exc:
        raise LedgerError(f"not valid chain JSON: {exc}") from exc
    if data.get("format_version") != FORMAT_VERSION:
        raise LedgerError(
            f"unsupported format version {data.get('format_version')!r}"
        )
    chain = Blockchain(difficulty_bits=data["difficulty_bits"])
    for entry in data["blocks"]:
        block = block_from_dict(entry)
        if verify:
            recomputed = block.hash()
            if recomputed != entry["hash"]:
                raise LedgerError(
                    f"hash mismatch at height {block.height}: recorded "
                    f"{entry['hash'][:12]}..., recomputed "
                    f"{recomputed[:12]}..."
                )
            chain.append(block)
        else:
            chain._blocks.append(block)  # noqa: SLF001 - explicit fast path
    return chain
