"""Mempool of pending sealed-bid transactions.

Transactions wait here between submission and inclusion in a block
preamble.  Deduplication is by txid; draining preserves arrival order so
that submission-time tie-breaking (paper §IV-D: earlier submission wins
ranking ties) is well defined.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import List

from repro.common.errors import SignatureError
from repro.ledger.transaction import SealedBidTransaction


class Mempool:
    """FIFO pool of verified pending transactions."""

    def __init__(self, max_size: int = 100_000) -> None:
        self.max_size = max_size
        self._pending: "OrderedDict[str, SealedBidTransaction]" = OrderedDict()
        #: optional write-ahead journal (``repro.store.NodeStore`` duck
        #: type): admissions are logged before insertion so a crashed
        #: node's pending bids survive a restart
        self.journal = None

    def __len__(self) -> int:
        return len(self._pending)

    def __contains__(self, txid: str) -> bool:
        return txid in self._pending

    def submit(self, tx: SealedBidTransaction) -> str:
        """Verify and enqueue ``tx``; returns its txid.

        Re-submission of an identical transaction is idempotent.
        """
        tx.require_valid()
        txid = tx.txid()
        if txid not in self._pending:
            if len(self._pending) >= self.max_size:
                raise SignatureError("mempool full")  # pragma: no cover
            if self.journal is not None:
                self.journal.log("mempool.admit", tx=tx)
            self._pending[txid] = tx
        return txid

    def peek(self, limit: int) -> List[SealedBidTransaction]:
        """The next up-to-``limit`` transactions without removing them."""
        out: List[SealedBidTransaction] = []
        for tx in self._pending.values():
            if len(out) >= limit:
                break
            out.append(tx)
        return out

    def remove(self, txids: List[str]) -> None:
        """Drop the given transactions (after block inclusion)."""
        for txid in txids:
            self._pending.pop(txid, None)

    def drain(self, limit: int) -> List[SealedBidTransaction]:
        """Remove and return the next up-to-``limit`` transactions."""
        batch = self.peek(limit)
        self.remove([tx.txid() for tx in batch])
        return batch
