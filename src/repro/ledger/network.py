"""In-memory broadcast network connecting participants and miners.

The overlay is modeled as a synchronous gossip bus: ``broadcast`` delivers
the message to every subscribed node immediately (and records it, so tests
can assert on traffic).  This captures what the protocol relies on —
everyone sees preambles, reveals, and bodies — without simulating
latency or partitions; those belong to the consensus layer the paper
explicitly builds on rather than contributes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List

Handler = Callable[[str, Any], None]


@dataclass
class Message:
    """A broadcast message: topic, payload, and originating node."""

    topic: str
    payload: Any
    sender: str


@dataclass
class BroadcastNetwork:
    """Synchronous publish/subscribe bus with a full traffic log."""

    _subscribers: Dict[str, List[Handler]] = field(default_factory=dict)
    log: List[Message] = field(default_factory=list)

    def subscribe(self, topic: str, handler: Handler) -> None:
        """Register ``handler`` for messages on ``topic``."""
        self._subscribers.setdefault(topic, []).append(handler)

    def broadcast(self, topic: str, payload: Any, sender: str = "") -> None:
        """Deliver ``payload`` to every subscriber of ``topic``.

        The handler list is snapshotted first: a handler that subscribes
        (or unsubscribes) during delivery must not change who receives
        *this* message, only future ones.
        """
        self.log.append(Message(topic=topic, payload=payload, sender=sender))
        for handler in list(self._subscribers.get(topic, ())):
            handler(sender, payload)

    def messages(self, topic: str) -> List[Message]:
        """All logged messages on ``topic`` in delivery order."""
        return [msg for msg in self.log if msg.topic == topic]
