"""Miner node: assembles preambles, solves PoW, proposes and verifies blocks.

The miner is generic over the auction: an ``allocate`` callable maps
decrypted bid plaintexts plus the block evidence to a JSON-serializable
allocation payload.  Verification by peer miners is *re-execution*: the
allocation function must be deterministic given (plaintexts, evidence), so
any peer recomputes it and compares payloads byte-for-byte — this is the
smart-contract-style collective verification of paper §II-A/§III-B.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.common.errors import (
    DecryptionError,
    InvalidBlockError,
    ProtocolError,
)
from repro.cryptosim import commitments, schnorr, symmetric
from repro.cryptosim.symmetric import SealedBox
from repro.ledger import pow as pow_mod
from repro.ledger.block import Block, BlockBody, BlockPreamble, KeyReveal
from repro.ledger.chain import Blockchain
from repro.ledger.mempool import Mempool
from repro.ledger.transaction import SealedBidTransaction

#: plaintexts by sender -> evidence -> allocation payload
AllocateFn = Callable[[Dict[str, List[bytes]], bytes], Dict]


@dataclass
class Miner:
    """A mining node with its own chain view and mempool."""

    miner_id: str
    allocate: AllocateFn
    difficulty_bits: int = pow_mod.DEFAULT_DIFFICULTY_BITS
    max_block_txs: int = 10_000
    keypair: schnorr.KeyPair = field(default=None)  # type: ignore[assignment]
    chain: Blockchain = field(default=None)  # type: ignore[assignment]
    mempool: Mempool = field(default_factory=Mempool)
    clock: Callable[[], float] = time.monotonic
    #: preambles seen this node, by preamble hash (idempotent ingestion)
    preamble_inbox: Dict[str, BlockPreamble] = field(default_factory=dict)
    #: screened key reveals per preamble hash, keyed by txid
    reveal_inbox: Dict[str, Dict[str, KeyReveal]] = field(default_factory=dict)
    #: reveals rejected at admission: (reveal, reason) — Byzantine evidence
    rejected_reveals: List[Tuple[KeyReveal, str]] = field(default_factory=list)
    #: reveals for preambles this node has not seen yet (reordered gossip)
    _unscreened: Dict[str, Dict[str, KeyReveal]] = field(default_factory=dict)
    #: optional durable store (``repro.store.NodeStore``): chain appends
    #: and mempool admissions journal through it, making this node
    #: crash-recoverable via ``store.recover()``
    store: Optional[object] = None

    def __post_init__(self) -> None:
        if self.keypair is None:
            self.keypair = schnorr.KeyPair.generate(
                seed=self.miner_id.encode("utf-8")
            )
        if self.chain is None:
            self.chain = Blockchain(difficulty_bits=self.difficulty_bits)
        if self.store is not None:
            self.store.attach(chain=self.chain, mempool=self.mempool)

    # ------------------------------------------------------------------
    # Bidding phase
    # ------------------------------------------------------------------
    def accept_transaction(self, tx: SealedBidTransaction) -> str:
        """Admit a sealed bid into the mempool (signature-checked)."""
        return self.mempool.submit(tx)

    def build_preamble(self) -> BlockPreamble:
        """Assemble the next preamble from pending transactions and mine it."""
        txs = tuple(self.mempool.peek(self.max_block_txs))
        preamble = BlockPreamble(
            height=self.chain.next_height,
            parent_hash=self.chain.tip_hash,
            transactions=txs,
            timestamp=float(self.chain.next_height),
        )
        nonce = pow_mod.solve(preamble.pow_payload(), self.difficulty_bits)
        return preamble.with_nonce(nonce)

    # ------------------------------------------------------------------
    # Gossip ingestion: preamble announcements and key reveals
    # ------------------------------------------------------------------
    def accept_preamble(self, preamble: BlockPreamble) -> bool:
        """Record an announced preamble; returns False on a duplicate.

        Ingestion is idempotent, so duplicated or re-requested gossip is
        harmless.  Reveals that arrived *before* their preamble (reordered
        delivery) are screened now that the commitments are known.
        """
        phash = preamble.hash()
        if phash in self.preamble_inbox:
            return False
        self.preamble_inbox[phash] = preamble
        self.reveal_inbox.setdefault(phash, {})
        for reveal in self._unscreened.pop(phash, {}).values():
            self.accept_reveal(phash, reveal)
        return True

    def accept_reveal(self, preamble_hash: str, reveal: KeyReveal) -> bool:
        """Screen and admit one key reveal for ``preamble_hash``.

        A reveal is admitted only if it opens the commitment carried by a
        transaction in the announced preamble *and* decrypts the sealed
        box — anything else is recorded as Byzantine evidence and treated
        as if the key had been withheld (the bid drops out; the round
        survives).  Returns True when the reveal is newly admitted.
        """
        preamble = self.preamble_inbox.get(preamble_hash)
        if preamble is None:
            # Reveal raced ahead of its preamble: stash for later screening.
            self._unscreened.setdefault(preamble_hash, {}).setdefault(
                reveal.txid, reveal
            )
            return False
        inbox = self.reveal_inbox.setdefault(preamble_hash, {})
        if reveal.txid in inbox:
            return False
        tx = next(
            (t for t in preamble.transactions if t.txid() == reveal.txid),
            None,
        )
        if tx is None:
            self.rejected_reveals.append((reveal, "unknown txid"))
            return False
        opening = commitments.Opening(
            value=reveal.temp_key, blind=reveal.blind
        )
        if not commitments.verify_opening(tx.key_commitment, opening):
            self.rejected_reveals.append((reveal, "commitment mismatch"))
            return False
        try:
            symmetric.decrypt(reveal.temp_key, tx.box)
        except DecryptionError:
            self.rejected_reveals.append((reveal, "undecryptable box"))
            return False
        inbox[reveal.txid] = reveal
        return True

    def collected_reveals(self, preamble: BlockPreamble) -> Tuple[KeyReveal, ...]:
        """Admitted reveals for ``preamble``, in preamble transaction order."""
        inbox = self.reveal_inbox.get(preamble.hash(), {})
        return tuple(
            inbox[tx.txid()]
            for tx in preamble.transactions
            if tx.txid() in inbox
        )

    # ------------------------------------------------------------------
    # Allocation phase
    # ------------------------------------------------------------------
    @staticmethod
    def _open_transactions(
        preamble: BlockPreamble, reveals: Tuple[KeyReveal, ...]
    ) -> Dict[str, List[bytes]]:
        """Decrypt every revealed transaction; returns plaintexts by sender.

        Raises :class:`ProtocolError` when a revealed key does not match
        its commitment or fails to decrypt the sealed box — either means a
        misbehaving participant (or miner) and the block must be rejected.
        """
        reveal_map: Dict[str, KeyReveal] = {r.txid: r for r in reveals}
        plaintexts: Dict[str, List[bytes]] = {}
        for tx in preamble.transactions:
            reveal = reveal_map.get(tx.txid())
            if reveal is None:
                # Participant withheld its key: bid stays sealed and simply
                # drops out of the round (it can resubmit later).
                continue
            opening = commitments.Opening(
                value=reveal.temp_key, blind=reveal.blind
            )
            if not commitments.verify_opening(tx.key_commitment, opening):
                raise ProtocolError(
                    f"reveal from {tx.sender_id} does not match commitment"
                )
            plaintext = symmetric.decrypt(reveal.temp_key, tx.box)
            plaintexts.setdefault(tx.sender_id, []).append(plaintext)
        return plaintexts

    def build_body(
        self, preamble: BlockPreamble, reveals: Tuple[KeyReveal, ...]
    ) -> BlockBody:
        """Decrypt bids, run the allocation, and sign the body."""
        plaintexts = self._open_transactions(preamble, reveals)
        allocation = self.allocate(plaintexts, preamble.evidence())
        body = BlockBody(
            reveals=tuple(reveals),
            allocation=allocation,
            miner_id=self.miner_id,
            miner_public=self.keypair.public,
        )
        return body.signed_by(self.keypair, preamble.hash())

    # ------------------------------------------------------------------
    # Verification by peers
    # ------------------------------------------------------------------
    def verify_block(self, block: Block) -> None:
        """Full peer-side validation, including allocation re-execution.

        Raises on any failure; on success the block may be appended.
        """
        self.chain.validate_candidate(block)
        body = block.require_complete()
        plaintexts = self._open_transactions(block.preamble, body.reveals)
        expected = self.allocate(plaintexts, block.preamble.evidence())
        if expected != body.allocation:
            raise InvalidBlockError(
                "allocation re-execution mismatch: miner "
                f"{body.miner_id} proposed a different result"
            )

    def commit_block(self, block: Block) -> None:
        """Append an already-verified block and evict its transactions.

        Callers that just ran :meth:`verify_block` (the protocol's
        quorum path) use this to avoid re-executing the allocation a
        second time per node.
        """
        self.chain.append(block)
        self.mempool.remove(
            [tx.txid() for tx in block.preamble.transactions]
        )

    def accept_block(self, block: Block) -> None:
        """Verify, append, and evict included transactions from the pool."""
        self.verify_block(block)
        self.commit_block(block)


def make_sealed_bid(
    sender_id: str,
    keypair: schnorr.KeyPair,
    plaintext: bytes,
    temp_key: Optional[bytes] = None,
    nonce: Optional[bytes] = None,
    blind: Optional[bytes] = None,
) -> Tuple[SealedBidTransaction, KeyReveal]:
    """Participant-side helper: seal ``plaintext`` and prepare the reveal."""
    if temp_key is None:
        temp_key = symmetric.generate_key()
    box: SealedBox = symmetric.encrypt(temp_key, plaintext, nonce=nonce)
    commitment, opening = commitments.commit(temp_key, blind=blind)
    tx = SealedBidTransaction.create(
        sender_id=sender_id,
        keypair=keypair,
        box=box,
        key_commitment=commitment,
    )
    reveal = KeyReveal(
        sender_id=sender_id,
        txid=tx.txid(),
        temp_key=temp_key,
        blind=opening.blind,
    )
    return tx, reveal
