"""Signed sealed-bid transactions.

A participant wraps its (already encrypted) bid into a
:class:`SealedBidTransaction`: the ciphertext, a commitment to the
temporary key, and a Schnorr signature binding both to the sender.  The
ledger treats the ciphertext as opaque bytes — the protocol layer defines
what is inside.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.common.errors import SignatureError
from repro.cryptosim import hashing, schnorr
from repro.cryptosim.commitments import Commitment
from repro.cryptosim.symmetric import SealedBox


@dataclass(frozen=True)
class SealedBidTransaction:
    """An encrypted bid plus the metadata needed to verify and open it."""

    sender_id: str
    sender_public: int
    box: SealedBox
    key_commitment: Commitment
    signature: Tuple[int, int]

    def signing_payload(self) -> bytes:
        """The bytes the sender signed.

        Cached per instance: every field is immutable, so the canonical
        bytes can only change by building a new transaction (e.g. via
        ``dataclasses.replace``), which starts with a fresh cache.  The
        ledger hashes transactions many times per round (txid lookups,
        preamble payloads, chain serialization) — without the cache each
        hash re-serializes the sealed box.
        """
        cached = self.__dict__.get("_payload_cache")
        if cached is None:
            cached = hashing.hash_concat(
                self.sender_id.encode("utf-8"),
                self.box.to_bytes(),
                self.key_commitment.digest,
            )
            object.__setattr__(self, "_payload_cache", cached)
        return cached

    @property
    def canonical_bytes(self) -> bytes:
        """Cached canonical byte encoding (the signed payload)."""
        return self.signing_payload()

    def verify_signature(self) -> bool:
        """Check the Schnorr signature over the sealed payload."""
        return schnorr.verify(
            self.sender_public, self.signing_payload(), self.signature
        )

    def require_valid(self) -> None:
        if not self.verify_signature():
            raise SignatureError(
                f"transaction from {self.sender_id} has an invalid signature"
            )

    def txid(self) -> str:
        """Deterministic transaction identifier (hash of the payload)."""
        cached = self.__dict__.get("_txid_cache")
        if cached is None:
            cached = hashing.sha256_hex(self.signing_payload())
            object.__setattr__(self, "_txid_cache", cached)
        return cached

    @classmethod
    def create(
        cls,
        sender_id: str,
        keypair: schnorr.KeyPair,
        box: SealedBox,
        key_commitment: Commitment,
    ) -> "SealedBidTransaction":
        """Build and sign a transaction in one step."""
        unsigned = cls(
            sender_id=sender_id,
            sender_public=keypair.public,
            box=box,
            key_commitment=key_commitment,
            signature=(0, 0),
        )
        signature = schnorr.sign(keypair.secret, unsigned.signing_payload())
        return cls(
            sender_id=sender_id,
            sender_public=keypair.public,
            box=box,
            key_commitment=key_commitment,
            signature=signature,
        )
