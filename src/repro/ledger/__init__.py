"""Distributed-ledger substrate: blocks, PoW, chain, mempool, miners.

This package is auction-agnostic: bid ciphertexts are opaque bytes and the
allocation function is injected into :class:`~repro.ledger.miner.Miner`.
The DeCloud-specific wiring lives in :mod:`repro.protocol`.
"""

from repro.ledger.block import (
    GENESIS_PARENT,
    Block,
    BlockBody,
    BlockPreamble,
    KeyReveal,
)
from repro.ledger.challenges import ChallengeGame, GameState
from repro.ledger.forks import BlockTree
from repro.ledger.gossip import GossipNetwork
from repro.ledger.serialization import chain_from_json, chain_to_json
from repro.ledger.chain import Blockchain
from repro.ledger.mempool import Mempool
from repro.ledger.miner import Miner, make_sealed_bid
from repro.ledger.network import BroadcastNetwork, Message
from repro.ledger.pow import check, leading_zero_bits, solve
from repro.ledger.transaction import SealedBidTransaction

__all__ = [
    "GENESIS_PARENT",
    "Block",
    "BlockBody",
    "BlockPreamble",
    "KeyReveal",
    "ChallengeGame",
    "GameState",
    "BlockTree",
    "GossipNetwork",
    "chain_to_json",
    "chain_from_json",
    "Blockchain",
    "Mempool",
    "Miner",
    "make_sealed_bid",
    "BroadcastNetwork",
    "Message",
    "check",
    "leading_zero_bits",
    "solve",
    "SealedBidTransaction",
]
