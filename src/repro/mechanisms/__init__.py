"""Classic single-good double-auction mechanisms DeCloud builds on."""

from repro.mechanisms.mcafee import run_mcafee
from repro.mechanisms.sbba import run_sbba
from repro.mechanisms.types import (
    DoubleAuctionResult,
    UnitBid,
    UnitTrade,
    breakeven_index,
    sort_sides,
)

__all__ = [
    "run_mcafee",
    "run_sbba",
    "DoubleAuctionResult",
    "UnitBid",
    "UnitTrade",
    "breakeven_index",
    "sort_sides",
]
