"""McAfee's dominant-strategy double auction (McAfee 1992).

The foundation DeCloud extends (paper §IV-C, Fig. 3).  Buyers are sorted
by valuation descending, sellers by cost ascending; ``z`` is the last
profitable pair.  With ``p = (v_{z+1} + c_{z+1}) / 2``:

* if ``p`` falls inside ``[c_z, v_z]`` all ``z`` pairs trade at ``p``
  (budget balanced, no reduction — Fig. 3a);
* otherwise the ``z``-th pair is *excluded* and the remaining ``z - 1``
  pairs trade with buyers paying ``v_z`` and sellers receiving ``c_z``
  (Fig. 3b) — dominant-strategy truthful, but the auctioneer keeps
  ``(z-1)(v_z - c_z)``, so only weakly budget balanced.
"""

from __future__ import annotations

from typing import List

from repro.mechanisms.types import (
    DoubleAuctionResult,
    UnitBid,
    UnitTrade,
    breakeven_index,
    sort_sides,
)


def run_mcafee(
    buyers: List[UnitBid], sellers: List[UnitBid]
) -> DoubleAuctionResult:
    """Clear a single-good market with McAfee's mechanism."""
    result = DoubleAuctionResult()
    sorted_buyers, sorted_sellers = sort_sides(buyers, sellers)
    z = breakeven_index(sorted_buyers, sorted_sellers)
    if z == 0:
        return result

    has_next_pair = z < len(sorted_buyers) and z < len(sorted_sellers)
    if has_next_pair:
        candidate = 0.5 * (
            sorted_buyers[z].amount + sorted_sellers[z].amount
        )
        v_z = sorted_buyers[z - 1].amount
        c_z = sorted_sellers[z - 1].amount
        if c_z <= candidate <= v_z:
            result.price = candidate
            for buyer, seller in zip(sorted_buyers[:z], sorted_sellers[:z]):
                result.trades.append(
                    UnitTrade(
                        buyer_id=buyer.agent_id,
                        seller_id=seller.agent_id,
                        buyer_pays=candidate,
                        seller_gets=candidate,
                    )
                )
            return result

    # Trade reduction: pair z drops out; buyers pay v_z, sellers get c_z.
    v_z = sorted_buyers[z - 1].amount
    c_z = sorted_sellers[z - 1].amount
    result.reduced_buyers.append(sorted_buyers[z - 1].agent_id)
    result.reduced_sellers.append(sorted_sellers[z - 1].agent_id)
    result.price = v_z  # buyer-side price; sellers receive c_z
    for buyer, seller in zip(sorted_buyers[: z - 1], sorted_sellers[: z - 1]):
        result.trades.append(
            UnitTrade(
                buyer_id=buyer.agent_id,
                seller_id=seller.agent_id,
                buyer_pays=v_z,
                seller_gets=c_z,
            )
        )
    return result
