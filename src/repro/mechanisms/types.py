"""Shared types for the classic single-good double-auction mechanisms."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.common.errors import ValidationError


@dataclass(frozen=True)
class UnitBid:
    """A single-unit bid: a buyer's valuation or a seller's cost."""

    agent_id: str
    amount: float

    def __post_init__(self) -> None:
        if self.amount < 0:
            raise ValidationError(
                f"bid of {self.agent_id} must be non-negative"
            )


@dataclass
class UnitTrade:
    """One cleared unit trade with the per-side prices."""

    buyer_id: str
    seller_id: str
    buyer_pays: float
    seller_gets: float


@dataclass
class DoubleAuctionResult:
    """Outcome of a single-good double auction."""

    trades: List[UnitTrade] = field(default_factory=list)
    #: trading price(s); a single common price for McAfee/SBBA main cases
    price: Optional[float] = None
    #: buyers/sellers excluded by trade reduction
    reduced_buyers: List[str] = field(default_factory=list)
    reduced_sellers: List[str] = field(default_factory=list)

    @property
    def num_trades(self) -> int:
        return len(self.trades)

    @property
    def budget_surplus(self) -> float:
        """Auctioneer surplus: payments collected minus revenue paid."""
        return sum(t.buyer_pays - t.seller_gets for t in self.trades)


def sort_sides(
    buyers: List[UnitBid], sellers: List[UnitBid]
) -> Tuple[List[UnitBid], List[UnitBid]]:
    """Buyers by valuation descending, sellers by cost ascending.

    Ties break on agent id so results are deterministic.
    """
    sorted_buyers = sorted(buyers, key=lambda b: (-b.amount, b.agent_id))
    sorted_sellers = sorted(sellers, key=lambda s: (s.amount, s.agent_id))
    return sorted_buyers, sorted_sellers


def breakeven_index(
    buyers: List[UnitBid], sellers: List[UnitBid]
) -> int:
    """The paper's ``z``: index of the last profitable buyer/seller pair.

    Returns the count of pairs with ``v_i >= c_i`` (0 when none trade).
    Inputs must already be sorted by :func:`sort_sides`.
    """
    z = 0
    for buyer, seller in zip(buyers, sellers):
        if buyer.amount >= seller.amount:
            z += 1
        else:
            break
    return z
