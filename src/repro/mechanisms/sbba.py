"""SBBA — the strongly-budget-balanced double auction (Segal-Halevi 2016).

DeCloud borrows SBBA's price rule because its miners are rewarded by token
emission, not by auction surplus (paper §IV-C): every cleared unit trades
at one price ``p = min(v_z, c_{z+1})``, buyers pay exactly what sellers
receive, and the price-determining participant is excluded:

* ``p = c_{z+1}`` (the first losing seller's cost, Fig. 4 right):
  exclude that seller — they were not trading anyway, so *no* welfare is
  lost; all ``z`` pairs trade at ``p``.
* ``p = v_z`` (no seller ``z+1`` cheap enough, Fig. 4 left): buyer ``z``
  is excluded.  A seller among the first ``z`` now has no partner; a
  uniformly random profitable seller subset of size ``z - 1`` trades
  (we exclude one seller verifiably at random), preserving truthfulness.
"""

from __future__ import annotations

import random
from typing import List, Optional

from repro.mechanisms.types import (
    DoubleAuctionResult,
    UnitBid,
    UnitTrade,
    breakeven_index,
    sort_sides,
)


def run_sbba(
    buyers: List[UnitBid],
    sellers: List[UnitBid],
    rng: Optional[random.Random] = None,
) -> DoubleAuctionResult:
    """Clear a single-good market with the SBBA mechanism."""
    result = DoubleAuctionResult()
    sorted_buyers, sorted_sellers = sort_sides(buyers, sellers)
    z = breakeven_index(sorted_buyers, sorted_sellers)
    if z == 0:
        return result

    v_z = sorted_buyers[z - 1].amount
    c_z_plus_1 = (
        sorted_sellers[z].amount if z < len(sorted_sellers) else float("inf")
    )

    if c_z_plus_1 <= v_z:
        # Seller z+1 determines the price and is excluded (no welfare loss).
        price = c_z_plus_1
        result.price = price
        result.reduced_sellers.append(sorted_sellers[z].agent_id)
        for buyer, seller in zip(sorted_buyers[:z], sorted_sellers[:z]):
            result.trades.append(
                UnitTrade(
                    buyer_id=buyer.agent_id,
                    seller_id=seller.agent_id,
                    buyer_pays=price,
                    seller_gets=price,
                )
            )
        return result

    # Buyer z determines the price and is excluded; one of the z sellers
    # is left without a partner — drop one uniformly at random so no
    # seller can influence the lottery by shading.
    price = v_z
    result.price = price
    result.reduced_buyers.append(sorted_buyers[z - 1].agent_id)
    trading_sellers = list(sorted_sellers[:z])
    if len(trading_sellers) > z - 1:
        chooser = rng if rng is not None else random.Random(0)
        dropped = chooser.randrange(len(trading_sellers))
        result.reduced_sellers.append(trading_sellers[dropped].agent_id)
        del trading_sellers[dropped]
    for buyer, seller in zip(sorted_buyers[: z - 1], trading_sellers):
        result.trades.append(
            UnitTrade(
                buyer_id=buyer.agent_id,
                seller_id=seller.agent_id,
                buyer_pays=price,
                seller_gets=price,
            )
        )
    return result
