"""Exact welfare maximization as a MILP (the paper's Eq. 4-14 at scale).

The branch-and-bound solver in :mod:`repro.baselines.optimal` is exact
but exponential; this module states the same block welfare program as a
mixed-integer linear program and hands it to ``scipy.optimize.milp``
(HiGHS), which solves markets of hundreds of requests in well under a
second:

    max  Σ_{r,o} w_{r,o} · x_{r,o}            (Eq. 4, w = v_r − φ·c_o)
    s.t. Σ_o x_{r,o} ≤ 1            ∀r        (Const. 5)
         Σ_r s_{r,o,k} · x_{r,o} ≤ ρ_{o,k}  ∀o,k   (Const. 7)
         x ∈ {0,1}                            (Const. 14)

with feasibility (8, 10, 11) and value-covers-cost (9) folded into the
candidate-pair generation, exactly as the paper's program states them.
This gives the evaluation a true optimum to measure "near-optimal"
against (the abstract's headline claim).
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

import numpy as np
from scipy.optimize import Bounds, LinearConstraint, milp

from repro.common.errors import AuctionError
from repro.core.welfare import pair_welfare, resource_fraction
from repro.market.bids import Offer, Request
from repro.market.feasibility import is_feasible


def _candidate_pairs(
    requests: Sequence[Request], offers: Sequence[Offer]
) -> List[Tuple[int, int, float]]:
    """(request index, offer index, welfare) for admissible pairs."""
    pairs: List[Tuple[int, int, float]] = []
    for i, request in enumerate(requests):
        for j, offer in enumerate(offers):
            if not is_feasible(request, offer):
                continue
            if request.bid < resource_fraction(request, offer) * offer.bid:
                continue  # Const. (9)
            welfare = pair_welfare(request, offer)
            if welfare > 0:
                pairs.append((i, j, welfare))
    return pairs


def optimal_allocation_ilp(
    requests: Sequence[Request],
    offers: Sequence[Offer],
    time_limit: float = 30.0,
    mip_rel_gap: float = 0.005,
) -> Tuple[float, List[Tuple[Request, Offer]]]:
    """Solve the block welfare program; returns (welfare, matches).

    HiGHS proves optimality to within ``mip_rel_gap`` (0.5% default).
    If the time limit hits first but an incumbent exists, the incumbent
    is returned (a lower bound on the optimum — still a valid yardstick,
    since comparisons against it only *understate* the optimality gap of
    the heuristics).  Raises :class:`AuctionError` only when no feasible
    solution was found at all.
    """
    pairs = _candidate_pairs(requests, offers)
    if not pairs:
        return 0.0, []

    n_vars = len(pairs)
    objective = -np.array([w for _, _, w in pairs])  # milp minimizes

    rows: List[np.ndarray] = []
    uppers: List[float] = []

    # Const. (5): each request at most once.
    by_request: Dict[int, List[int]] = {}
    for var, (i, _, _) in enumerate(pairs):
        by_request.setdefault(i, []).append(var)
    for var_indices in by_request.values():
        row = np.zeros(n_vars)
        row[var_indices] = 1.0
        rows.append(row)
        uppers.append(1.0)

    # Const. (7): per offer and resource type, time-weighted load fits.
    by_offer: Dict[int, List[int]] = {}
    for var, (_, j, _) in enumerate(pairs):
        by_offer.setdefault(j, []).append(var)
    for j, var_indices in by_offer.items():
        offer = offers[j]
        for key, capacity in offer.resources.items():
            row = np.zeros(n_vars)
            relevant = False
            for var in var_indices:
                request = requests[pairs[var][0]]
                if key not in request.resources:
                    continue
                share = (request.duration / offer.span) * min(
                    request.resources[key], offer.resources[key]
                )
                if share > 0:
                    row[var] = share
                    relevant = True
            if relevant:
                rows.append(row)
                uppers.append(capacity)

    constraints = LinearConstraint(
        np.vstack(rows), lb=-np.inf, ub=np.array(uppers)
    )
    result = milp(
        c=objective,
        constraints=constraints,
        integrality=np.ones(n_vars),
        bounds=Bounds(0, 1),
        options={
            "time_limit": time_limit,
            "mip_rel_gap": mip_rel_gap,
            "disp": False,
        },
    )
    if result.x is None:
        raise AuctionError(f"MILP solver failed: {result.message}")

    matches: List[Tuple[Request, Offer]] = []
    welfare = 0.0
    for var, value in enumerate(result.x):
        if value > 0.5:
            i, j, w = pairs[var]
            matches.append((requests[i], offers[j]))
            welfare += w
    return welfare, matches


def optimal_welfare_ilp(
    requests: Sequence[Request],
    offers: Sequence[Offer],
    time_limit: float = 30.0,
    mip_rel_gap: float = 0.005,
) -> float:
    """Maximum block welfare via MILP (see solver caveats above)."""
    welfare, _ = optimal_allocation_ilp(
        requests, offers, time_limit=time_limit, mip_rel_gap=mip_rel_gap
    )
    return welfare
