"""Dot-product matching baseline (the heuristic the paper rejects).

§IV-B: "Normally, a similarity measure like the dot product could be
used to determine the allocation, but it does not work well when clients
can specify weights for their requests."  To make that claim testable we
implement the dot-product ranking as a drop-in alternative to Eq. 18 and
an ablation harness compares the two on weighted workloads.

The dot product rewards *big* offers regardless of fit — a 64 GB machine
dominates the score of a 4 GB request even when a snug 8 GB machine is
available — and significance weights scale scores uniformly instead of
expressing trade-offs, which is exactly the failure mode the paper calls
out.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.core.matching import block_maxima
from repro.market.bids import Offer, Request
from repro.market.feasibility import is_feasible
from repro.market.resources import common_types


def dot_product_quality(
    request: Request, offer: Offer, maxima: Dict[str, float]
) -> float:
    """Weighted dot product of normalized resource vectors."""
    score = 0.0
    for key in common_types(request.resources, offer.resources):
        top = maxima.get(key, 0.0)
        if top <= 0:
            continue
        rho_o = offer.resources[key] / top
        rho_r = request.resources[key] / top
        score += request.sigma(key) * rho_o * rho_r
    return score


def rank_offers_dot(
    request: Request,
    offers: Sequence[Offer],
    maxima: Dict[str, float],
) -> List[Tuple[float, Offer]]:
    """Feasible offers ranked by dot-product similarity, best first."""
    scored = [
        (dot_product_quality(request, offer, maxima), offer)
        for offer in offers
        if is_feasible(request, offer)
    ]
    scored.sort(key=lambda item: (-item[0], item[1].submit_time, item[1].offer_id))
    return scored


def best_match_fit_error(
    requests: Sequence[Request],
    offers: Sequence[Offer],
    ranker,
) -> float:
    """Mean oversize factor of each request's best-ranked offer.

    Fit error 0 means the chosen machine exactly matches the request; a
    large value means the ranker keeps sending small tasks to huge
    machines.  Used by the matching ablation to quantify the paper's
    "does not work well" claim.
    """
    maxima = block_maxima(requests, offers)
    errors: List[float] = []
    for request in requests:
        ranked = ranker(request, list(offers), maxima)
        if not ranked:
            continue
        _, best = ranked[0]
        ratios = [
            best.resources[key] / request.resources[key]
            for key in common_types(request.resources, best.resources)
            if request.resources[key] > 0 and best.resources.get(key, 0) > 0
        ]
        if ratios:
            oversize = sum(ratios) / len(ratios) - 1.0
            errors.append(max(0.0, oversize))
    return sum(errors) / len(errors) if errors else 0.0
