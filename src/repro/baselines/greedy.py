"""The paper's non-truthful greedy benchmark (§V).

"Our benchmark is a double auction using a similar algorithm, but without
trade reduction and pseudorandomization, thus producing the best possible
welfare under greedy allocation while being non-truthful."

Implemented by running :class:`~repro.core.auction.DecloudAuction` with
``AuctionConfig.benchmark()`` — identical clustering, matching heuristic,
and greedy fit; no exclusions.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.core.auction import DecloudAuction
from repro.core.config import AuctionConfig
from repro.core.outcome import AuctionOutcome
from repro.market.bids import Offer, Request
from repro.obs import ObservabilityLike


class GreedyBenchmark:
    """Non-truthful welfare-reference auction."""

    def __init__(self, config: Optional[AuctionConfig] = None) -> None:
        if config is None:
            config = AuctionConfig.benchmark()
        else:
            # Inherit structural knobs; force the benchmark switches.
            config = AuctionConfig.benchmark(
                cluster_breadth=config.cluster_breadth,
                critical_resources=config.critical_resources,
                enable_mini_auctions=config.enable_mini_auctions,
                price_epsilon=config.price_epsilon,
            )
        self._auction = DecloudAuction(config)

    def run(
        self,
        requests: Sequence[Request],
        offers: Sequence[Offer],
        obs: Optional[ObservabilityLike] = None,
    ) -> AuctionOutcome:
        return self._auction.run(requests, offers, obs=obs)


def benchmark_welfare(
    requests: Sequence[Request], offers: Sequence[Offer]
) -> float:
    """Convenience: the benchmark's welfare for one block."""
    return GreedyBenchmark().run(requests, offers).welfare
