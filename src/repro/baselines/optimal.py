"""Exact welfare maximization (Eq. 4–14) for small markets.

The paper uses welfare-optimal allocation only as the yardstick its DSIC
mechanism is measured against (Eq. 16–17 — "Since maximization of (17)
will not render a DSIC mechanism, we use it for the evaluation").  This
module solves the block welfare program exactly by depth-first search with
branch-and-bound over request→offer assignments, honoring:

* Const. (5): each request matched at most once;
* Const. (7): time-weighted capacity per offer/resource;
* Const. (8)/(10)/(11): market feasibility;
* Const. (9): value covers the allocated fraction's cost.

Exponential in the worst case — intended for markets of up to roughly a
dozen requests, where it validates both DeCloud and the greedy benchmark
in tests.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.common.errors import AuctionError
from repro.core.cluster_allocation import OfferCapacity
from repro.core.welfare import pair_welfare, resource_fraction
from repro.market.bids import Offer, Request
from repro.market.feasibility import is_feasible

DEFAULT_MAX_REQUESTS = 14


def _candidate_pairs(
    requests: Sequence[Request], offers: Sequence[Offer]
) -> Dict[str, List[Tuple[float, Offer]]]:
    """Welfare-positive feasible (offer, welfare) lists per request."""
    table: Dict[str, List[Tuple[float, Offer]]] = {}
    for request in requests:
        entries: List[Tuple[float, Offer]] = []
        for offer in offers:
            if not is_feasible(request, offer):
                continue
            if request.bid < resource_fraction(request, offer) * offer.bid:
                continue  # Const. (9)
            welfare = pair_welfare(request, offer)
            if welfare > 0:
                entries.append((welfare, offer))
        entries.sort(key=lambda item: -item[0])
        table[request.request_id] = entries
    return table


def optimal_allocation(
    requests: Sequence[Request],
    offers: Sequence[Offer],
    max_requests: int = DEFAULT_MAX_REQUESTS,
) -> Tuple[float, List[Tuple[Request, Offer]]]:
    """Exact maximum-welfare allocation for one block.

    Returns ``(welfare, matches)``.  Raises :class:`AuctionError` when the
    instance exceeds ``max_requests`` — use the greedy benchmark as the
    reference for large markets, exactly as the paper does.
    """
    if len(requests) > max_requests:
        raise AuctionError(
            f"exact solver limited to {max_requests} requests, "
            f"got {len(requests)}"
        )
    candidates = _candidate_pairs(requests, offers)
    # Order requests by their best standalone welfare so bounding kicks in
    # early.
    ordered = sorted(
        requests,
        key=lambda r: -(
            candidates[r.request_id][0][0] if candidates[r.request_id] else 0.0
        ),
    )
    # Upper bound helper: suffix sums of best standalone welfare.
    best_alone = [
        candidates[r.request_id][0][0] if candidates[r.request_id] else 0.0
        for r in ordered
    ]
    suffix = [0.0] * (len(ordered) + 1)
    for i in range(len(ordered) - 1, -1, -1):
        suffix[i] = suffix[i + 1] + best_alone[i]

    best_value = 0.0
    best_matches: List[Tuple[Request, Offer]] = []

    def search(
        index: int,
        value: float,
        capacity: OfferCapacity,
        matches: List[Tuple[Request, Offer]],
    ) -> None:
        nonlocal best_value, best_matches
        if value + suffix[index] <= best_value + 1e-15:
            return  # bound: even taking every best pair cannot win
        if index == len(ordered):
            if value > best_value:
                best_value = value
                best_matches = list(matches)
            return
        request = ordered[index]
        for welfare, offer in candidates[request.request_id]:
            if not capacity.can_host(request, offer):
                continue
            capacity.consume(request, offer)
            matches.append((request, offer))
            search(index + 1, value + welfare, capacity, matches)
            matches.pop()
            # OfferCapacity has no undo; rebuild is costly, so consume on
            # a snapshot instead.
            capacity.restore(offer, request)
        # Option: leave the request unallocated.
        search(index + 1, value, capacity, matches)

    search(0, 0.0, OfferCapacity(list(offers)), [])
    return best_value, best_matches


def optimal_welfare(
    requests: Sequence[Request],
    offers: Sequence[Offer],
    max_requests: int = DEFAULT_MAX_REQUESTS,
) -> float:
    """Exact maximum block welfare (Eq. 16 objective value)."""
    value, _ = optimal_allocation(requests, offers, max_requests=max_requests)
    return value
