"""Reference implementations: greedy non-truthful benchmark, exact
optimum, and the dot-product matcher the paper rejects."""

from repro.baselines.dot_product import (
    best_match_fit_error,
    dot_product_quality,
    rank_offers_dot,
)
from repro.baselines.greedy import GreedyBenchmark, benchmark_welfare
from repro.baselines.ilp import optimal_allocation_ilp, optimal_welfare_ilp
from repro.baselines.optimal import optimal_allocation, optimal_welfare

__all__ = [
    "GreedyBenchmark",
    "benchmark_welfare",
    "optimal_allocation",
    "optimal_welfare",
    "optimal_allocation_ilp",
    "optimal_welfare_ilp",
    "dot_product_quality",
    "rank_offers_dot",
    "best_match_fit_error",
]
