"""Zero-dependency phase timing for the round pipeline.

A :class:`PhaseTimer` accumulates wall-clock seconds per named phase
(``match``, ``cluster``, ``normalize``, ``clear``, ``seal``, ``mine``,
``verify``, ...).  The auction, simulation, and exposure-protocol layers
accept an optional timer and wrap their phases in ``timer.phase(name)``;
benchmarks read the totals to report where a round spends its time.

The default is :data:`NULL_TIMER`, a shared no-op whose context manager
does nothing, so instrumented code pays (almost) nothing when nobody is
measuring.  Only the standard library is used — no NumPy, no pytest.
"""

from __future__ import annotations

import json
import time
from typing import Dict, Iterator, Optional, Tuple


class _Span:
    """Context manager that adds its elapsed time to one phase."""

    __slots__ = ("_timer", "_name", "_start")

    def __init__(self, timer: "PhaseTimer", name: str) -> None:
        self._timer = timer
        self._name = name
        self._start = 0.0

    def __enter__(self) -> "_Span":
        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type: object, *exc_info: object) -> None:
        # A phase that dies mid-flight still flushes its partial elapsed
        # time — but tagged, so failed rounds are distinguishable from
        # clean ones in every report/snapshot instead of silently
        # blending in.
        self._timer.add(
            self._name,
            time.perf_counter() - self._start,
            aborted=exc_type is not None,
        )


class _NullSpan:
    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info: object) -> None:
        return None


_NULL_SPAN = _NullSpan()


class PhaseTimer:
    """Accumulates seconds and entry counts per named phase.

    Phases may nest and repeat; every ``phase(name)`` span adds to the
    running total for ``name``.  Totals survive across rounds so a
    multi-round benchmark reports the aggregate split.
    """

    __slots__ = ("totals", "counts", "aborted")

    def __init__(self) -> None:
        self.totals: Dict[str, float] = {}
        self.counts: Dict[str, int] = {}
        #: phases whose span exited via an exception (or were explicitly
        #: marked), by name — partial timings of failed rounds are kept,
        #: not dropped, and carry this marker
        self.aborted: Dict[str, int] = {}

    def phase(self, name: str) -> _Span:
        """Context manager timing one entry of phase ``name``."""
        return _Span(self, name)

    def add(self, name: str, seconds: float, aborted: bool = False) -> None:
        """Record ``seconds`` against phase ``name`` directly."""
        self.totals[name] = self.totals.get(name, 0.0) + seconds
        self.counts[name] = self.counts.get(name, 0) + 1
        if aborted:
            self.aborted[name] = self.aborted.get(name, 0) + 1

    def mark_aborted(self, name: str) -> None:
        """Flag ``name`` as aborted without adding time (round-level
        marker: the driver calls this when a round dies between phases)."""
        self.aborted[name] = self.aborted.get(name, 0) + 1

    def merge(self, other: "PhaseTimer") -> None:
        """Fold another timer's totals into this one."""
        for name, seconds in other.totals.items():
            self.totals[name] = self.totals.get(name, 0.0) + seconds
            self.counts[name] = self.counts.get(name, 0) + other.counts[name]
        for name, count in other.aborted.items():
            self.aborted[name] = self.aborted.get(name, 0) + count

    def reset(self) -> None:
        self.totals.clear()
        self.counts.clear()
        self.aborted.clear()

    @property
    def total_seconds(self) -> float:
        return sum(self.totals.values())

    def items(self) -> Iterator[Tuple[str, float]]:
        """Phases sorted by descending total time."""
        return iter(sorted(self.totals.items(), key=lambda kv: -kv[1]))

    def to_dict(self) -> Dict[str, Dict[str, float]]:
        """JSON-serializable snapshot (used by the CI phase artifact).

        Phases that only ever aborted (no time recorded) still appear,
        with zero seconds, so a failed round leaves visible evidence.
        """
        out: Dict[str, Dict[str, float]] = {}
        for name in set(self.totals) | set(self.aborted):
            entry: Dict[str, float] = {
                "seconds": self.totals.get(name, 0.0),
                "count": self.counts.get(name, 0),
            }
            if name in self.aborted:
                entry["aborted"] = self.aborted[name]
            out[name] = entry
        return out

    def to_json(self, label: Optional[str] = None) -> str:
        document = {"phases": self.to_dict()}
        if label is not None:
            document["label"] = label
        return json.dumps(document, sort_keys=True, indent=1)

    def report(self, title: str = "phase timing") -> str:
        """Human-readable aligned table of the per-phase split."""
        total = self.total_seconds
        lines = [f"{title} (total {total:.4f}s)"]
        if not self.totals:
            lines.append("  (no phases recorded)")
            return "\n".join(lines)
        width = max(len(name) for name in self.totals)
        for name, seconds in self.items():
            share = 100.0 * seconds / total if total > 0 else 0.0
            marker = (
                f"  (aborted x{self.aborted[name]})"
                if name in self.aborted
                else ""
            )
            lines.append(
                f"  {name:<{width}}  {seconds:9.4f}s  {share:5.1f}%"
                f"  x{self.counts[name]}{marker}"
            )
        for name, count in sorted(self.aborted.items()):
            if name not in self.totals:
                lines.append(f"  {name:<{width}}  (aborted x{count}, no time)")
        return "\n".join(lines)


class NullTimer:
    """No-op stand-in so callers never branch on ``timer is None``."""

    __slots__ = ()

    def phase(self, name: str) -> _NullSpan:
        return _NULL_SPAN

    def add(self, name: str, seconds: float, aborted: bool = False) -> None:
        return None

    def mark_aborted(self, name: str) -> None:
        return None

    def merge(self, other: PhaseTimer) -> None:
        return None


NULL_TIMER = NullTimer()


def resolve(timer: Optional[PhaseTimer]) -> "PhaseTimer | NullTimer":
    """Map ``None`` to the shared null timer."""
    return NULL_TIMER if timer is None else timer
