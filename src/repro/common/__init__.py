"""Shared primitives: errors, ids, time model, seeded randomness."""

from repro.common.errors import (
    AuctionError,
    ByzantineFaultError,
    ContractError,
    CryptoError,
    DecryptionError,
    EquivocationError,
    InfeasibleMatchError,
    InsecureKeyWarning,
    InvalidBlockError,
    LedgerError,
    ProtocolError,
    QuorumError,
    ReproError,
    RevealTimeoutError,
    SignatureError,
    TimeoutError,
    ValidationError,
)
from repro.common.ids import DEFAULT_FACTORY, IdFactory, next_id
from repro.common.rng import block_evidence_rng, make_generator, spawn_child
from repro.common.timewindow import TimeWindow
from repro.common.timing import NULL_TIMER, NullTimer, PhaseTimer

__all__ = [
    "AuctionError",
    "ByzantineFaultError",
    "ContractError",
    "CryptoError",
    "DecryptionError",
    "EquivocationError",
    "InfeasibleMatchError",
    "InsecureKeyWarning",
    "InvalidBlockError",
    "LedgerError",
    "ProtocolError",
    "QuorumError",
    "ReproError",
    "RevealTimeoutError",
    "SignatureError",
    "TimeoutError",
    "ValidationError",
    "IdFactory",
    "DEFAULT_FACTORY",
    "next_id",
    "TimeWindow",
    "PhaseTimer",
    "NullTimer",
    "NULL_TIMER",
    "make_generator",
    "block_evidence_rng",
    "spawn_child",
]
