"""Time model shared by requests, offers, and the ledger.

Time is a dimensionless non-negative float; experiments interpret one unit
as one hour (matching EC2 hourly pricing).  A :class:`TimeWindow` is a
closed interval ``[start, end]`` used for offer availability and request
execution windows (the paper's ``t^-`` / ``t^+``).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.errors import ValidationError


@dataclass(frozen=True, order=True)
class TimeWindow:
    """Closed time interval ``[start, end]`` with ``end >= start``."""

    start: float
    end: float

    def __post_init__(self) -> None:
        if self.start < 0:
            raise ValidationError(f"window start must be >= 0, got {self.start}")
        if self.end < self.start:
            raise ValidationError(
                f"window end {self.end} precedes start {self.start}"
            )

    @property
    def span(self) -> float:
        """Length of the interval (the paper's ``t^+ - t^-``)."""
        return self.end - self.start

    def contains(self, other: "TimeWindow") -> bool:
        """True when ``other`` fits entirely inside this window.

        This is the temporal feasibility check of constraints (10)-(11):
        an offer window must contain the request window.
        """
        return self.start <= other.start and self.end >= other.end

    def overlaps(self, other: "TimeWindow") -> bool:
        """True when the two intervals share at least a point."""
        return self.start <= other.end and other.start <= self.end

    def intersection(self, other: "TimeWindow") -> "TimeWindow | None":
        """The overlapping sub-interval, or ``None`` when disjoint."""
        if not self.overlaps(other):
            return None
        return TimeWindow(max(self.start, other.start), min(self.end, other.end))

    def can_host(self, duration: float) -> bool:
        """True when a task of ``duration`` fits inside the window."""
        return 0 <= duration <= self.span
