"""Seeded randomness helpers.

Two distinct needs exist in the reproduction:

* **Workload generation** wants independent, explicitly-seeded
  ``numpy.random.Generator`` streams so parameter sweeps are reproducible.
* **Verifiable pseudorandomization** (paper §IV-F): the random exclusion
  applied during trade reduction must be *recomputable by every miner*, so
  it is seeded from the evidence (hash) of the block being built.
"""

from __future__ import annotations

import hashlib
import random
from typing import Optional, Union

import numpy as np

SeedLike = Union[int, str, bytes, None]


def _to_int_seed(seed: SeedLike) -> Optional[int]:
    """Normalize any seed-like value to an integer seed (or ``None``)."""
    if seed is None or isinstance(seed, int):
        return seed
    if isinstance(seed, str):
        seed = seed.encode("utf-8")
    digest = hashlib.sha256(seed).digest()
    return int.from_bytes(digest[:8], "big")


def make_generator(seed: SeedLike = None) -> np.random.Generator:
    """A numpy ``Generator`` seeded from an int, string, or bytes value."""
    return np.random.default_rng(_to_int_seed(seed))


def block_evidence_rng(evidence: bytes) -> random.Random:
    """The verifiable PRNG used for random exclusion in trade reduction.

    Every miner holds the same block evidence (the preamble hash), so every
    miner derives the identical exclusion decisions — randomization is
    "random" to participants but deterministic and checkable network-wide.
    """
    if not isinstance(evidence, (bytes, bytearray)):
        raise TypeError("block evidence must be bytes")
    seed = int.from_bytes(hashlib.sha256(bytes(evidence)).digest()[:8], "big")
    return random.Random(seed)


def spawn_child(rng: np.random.Generator, label: str) -> np.random.Generator:
    """Derive an independent child stream tagged by ``label``.

    Used by the workload generators so that, e.g., request shapes and
    valuations come from independent streams regardless of draw order.
    """
    salt = int.from_bytes(hashlib.sha256(label.encode()).digest()[:4], "big")
    return np.random.default_rng(rng.integers(0, 2**63 - 1) ^ salt)
