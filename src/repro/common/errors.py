"""Exception hierarchy for the DeCloud reproduction.

Every subsystem raises exceptions derived from :class:`ReproError` so that
callers can catch library failures without accidentally swallowing
programming errors (``TypeError``, ``KeyError``, ...).
"""

from __future__ import annotations

import builtins


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class ValidationError(ReproError):
    """A request, offer, or configuration value failed validation."""


class CryptoError(ReproError):
    """A cryptographic operation failed (bad key, tampered ciphertext...)."""


class SignatureError(CryptoError):
    """A signature failed to verify."""


class DecryptionError(CryptoError):
    """Authenticated decryption failed (wrong key or tampered data)."""


class LedgerError(ReproError):
    """Blockchain-level failure (invalid block, broken chain linkage...)."""


class InvalidBlockError(LedgerError):
    """A block failed validation (bad proof-of-work, bad parent hash...)."""


class ProtocolError(ReproError):
    """Two-phase bid exposure protocol violation."""


class TimeoutError(ReproError, builtins.TimeoutError):  # noqa: A001
    """A protocol phase missed its deadline.

    Deliberately shadows the builtin inside this namespace (and subclasses
    it, so ``except TimeoutError`` catches both spellings): liveness
    failures are deadline failures whichever way the caller thinks of them.
    """


class RevealTimeoutError(TimeoutError):
    """No key reveal arrived for any sealed bid within the deadline.

    Raised only when *every* included bid stayed sealed after the retry
    budget was spent — partial withholding degrades gracefully instead
    (the unrevealed bids are excluded and the round clears on the rest).
    """


class QuorumError(TimeoutError):
    """Too few live miners remain to reach a verification majority."""


class ByzantineFaultError(ProtocolError):
    """Detected misbehavior that honest nodes could not route around."""


class EquivocationError(ByzantineFaultError):
    """One miner signed two different bodies for the same preamble."""


class InsecureKeyWarning(UserWarning):
    """A participant fell back to a forgeable id-derived keypair."""


class StoreError(ReproError):
    """Durable-store failure (write-ahead log, snapshot, or backend)."""


class CorruptRecordError(StoreError):
    """A WAL frame failed framing or CRC32 validation.

    Carries the byte ``offset`` of the bad frame and a short ``reason``
    (``"torn header"``, ``"torn payload"``, ``"bad magic"``, ``"crc
    mismatch"``, ``"bad envelope"``).  Recovery treats the first corrupt
    frame as the start of a torn tail and truncates from ``offset``; the
    error is only *raised* when a caller asks for ``strict`` scanning.
    """

    def __init__(self, message: str, offset: int = 0, reason: str = ""):
        super().__init__(message)
        self.offset = offset
        self.reason = reason


class RecoveryError(StoreError):
    """Replaying the log + snapshot could not produce a consistent state.

    Unlike :class:`CorruptRecordError` (damage confined to the log tail,
    handled by truncation), this means the *valid* record sequence is
    itself inconsistent — e.g. a block that no longer validates against
    the recovered chain, or an escrow transition for an escrow the log
    never opened.
    """


class ContractError(ReproError):
    """Smart-contract method invoked in an invalid state or with bad args."""


class AuctionError(ReproError):
    """The auction mechanism was driven with inconsistent inputs."""


class MonitorViolationError(ReproError):
    """A runtime mechanism monitor found a violated invariant (strict mode).

    Carries the :class:`repro.obs.monitors.Violation` records that
    triggered it in ``violations``.
    """

    def __init__(self, message: str, violations=()):
        super().__init__(message)
        self.violations = tuple(violations)


class InfeasibleMatchError(AuctionError):
    """An allocation pairing violates feasibility constraints."""


class CertificateError(AuctionError):
    """A candidate-pruning safety certificate failed verification.

    Raised by :func:`repro.core.candidates.check_certificate` when a
    certificate does not cover every offer, records a wrong pruning
    threshold, or claims a bound that fails to dominate a pruned pair's
    exact score — i.e. the pruning could have changed a best-offer set.
    """
