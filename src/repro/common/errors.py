"""Exception hierarchy for the DeCloud reproduction.

Every subsystem raises exceptions derived from :class:`ReproError` so that
callers can catch library failures without accidentally swallowing
programming errors (``TypeError``, ``KeyError``, ...).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class ValidationError(ReproError):
    """A request, offer, or configuration value failed validation."""


class CryptoError(ReproError):
    """A cryptographic operation failed (bad key, tampered ciphertext...)."""


class SignatureError(CryptoError):
    """A signature failed to verify."""


class DecryptionError(CryptoError):
    """Authenticated decryption failed (wrong key or tampered data)."""


class LedgerError(ReproError):
    """Blockchain-level failure (invalid block, broken chain linkage...)."""


class InvalidBlockError(LedgerError):
    """A block failed validation (bad proof-of-work, bad parent hash...)."""


class ProtocolError(ReproError):
    """Two-phase bid exposure protocol violation."""


class ContractError(ReproError):
    """Smart-contract method invoked in an invalid state or with bad args."""


class AuctionError(ReproError):
    """The auction mechanism was driven with inconsistent inputs."""


class InfeasibleMatchError(AuctionError):
    """An allocation pairing violates feasibility constraints."""
