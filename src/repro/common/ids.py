"""Deterministic, human-readable identifiers for market entities.

Experiments must be reproducible bit-for-bit, so identifiers are generated
from monotonic per-prefix counters instead of ``uuid4``.  A fresh
:class:`IdFactory` is created per simulation run; two runs with the same
inputs produce the same identifier streams.
"""

from __future__ import annotations

import itertools
import threading
from typing import Dict, Iterator


class IdFactory:
    """Generates identifiers like ``req-000042`` deterministically.

    The factory is thread-safe so that miner threads in the ledger
    simulation may share it, although the reference simulator is
    single-threaded.
    """

    def __init__(self) -> None:
        self._counters: Dict[str, Iterator[int]] = {}
        self._lock = threading.Lock()

    def next(self, prefix: str) -> str:
        """Return the next identifier for ``prefix``.

        >>> factory = IdFactory()
        >>> factory.next("req")
        'req-000000'
        >>> factory.next("req")
        'req-000001'
        >>> factory.next("off")
        'off-000000'
        """
        with self._lock:
            counter = self._counters.get(prefix)
            if counter is None:
                counter = itertools.count()
                self._counters[prefix] = counter
            return f"{prefix}-{next(counter):06d}"

    def reset(self) -> None:
        """Forget all counters; subsequent ids restart from zero."""
        with self._lock:
            self._counters.clear()


#: Module-level factory for callers that do not manage their own.
DEFAULT_FACTORY = IdFactory()


def next_id(prefix: str) -> str:
    """Draw an identifier from the module-level :data:`DEFAULT_FACTORY`."""
    return DEFAULT_FACTORY.next(prefix)
