"""Feasibility of (request, offer) pairings.

Encodes the hard constraints of the welfare program (§IV-A):

* Const. (8): the offer holds enough of every strictly-required resource;
  resources with significance < 1 only need ``flexibility`` of the
  requested amount (the evaluation's flexible-matching knob).
* Const. (10)–(11): the offer's availability window contains the request
  window.
* There must be at least one common resource type, otherwise the quality
  of match (Eq. 18) is undefined for the pair.
"""

from __future__ import annotations

from typing import Iterable, List, Optional

from repro.market.bids import Offer, Request
from repro.market.resources import common_types


def required_amount(request: Request, resource_type: str) -> float:
    """Amount of ``resource_type`` the offer must actually provide.

    Strict resources need the full declared amount; flexible ones are
    discounted by the request's ``flexibility``.
    """
    amount = request.resources.get(resource_type, 0.0)
    if request.is_strict(resource_type):
        return amount
    return amount * request.flexibility


def temporally_feasible(request: Request, offer: Offer) -> bool:
    """Constraints (10)-(11): offer window contains the request window."""
    return offer.window.contains(request.window)


def resource_feasible(
    request: Request, offer: Offer, reason: Optional[List[str]] = None
) -> bool:
    """Constraint (8) with flexibility discounting."""
    shared = common_types(request.resources, offer.resources)
    if not shared:
        if reason is not None:
            reason.append("no common resource types")
        return False
    for key, amount in request.resources.items():
        if amount <= 0:
            continue
        available = offer.resources.get(key, 0.0)
        needed = required_amount(request, key)
        if request.is_strict(key) and key not in offer.resources:
            if reason is not None:
                reason.append(f"offer lacks strict resource {key!r}")
            return False
        if key in offer.resources and available < needed:
            if reason is not None:
                reason.append(
                    f"insufficient {key!r}: need {needed}, offer has {available}"
                )
            return False
    return True


def is_feasible(request: Request, offer: Offer) -> bool:
    """Full hard-constraint check for matching ``request`` onto ``offer``."""
    return temporally_feasible(request, offer) and resource_feasible(
        request, offer
    )


def feasible_offers(request: Request, offers: Iterable[Offer]) -> List[Offer]:
    """Filter ``offers`` down to those that can host ``request``."""
    return [offer for offer in offers if is_feasible(request, offer)]


def explain_infeasibility(request: Request, offer: Offer) -> List[str]:
    """Human-readable reasons a pairing fails (empty list when feasible)."""
    reasons: List[str] = []
    if not temporally_feasible(request, offer):
        reasons.append(
            f"offer window [{offer.window.start}, {offer.window.end}] does "
            f"not contain request window "
            f"[{request.window.start}, {request.window.end}]"
        )
    resource_feasible(request, offer, reason=reasons)
    return reasons
