"""Multi-container jobs on top of single-container requests.

The paper's unit of trade is one container per request; a client running
a microservice application (the intro's motivating workload) submits one
request per service.  :class:`Job` packages that pattern: it expands a
service specification into per-container requests (sharing the client's
window, splitting the job's budget by resource weight) and evaluates a
block outcome against the job's *completion policy*:

* ``ALL_OR_NOTHING`` — the job is served only if every container is
  placed (the client should `deny` partial matches via the contract);
* ``BEST_EFFORT`` — any subset helps (stateless replicas).

This is a client-side convenience layer: the mechanism itself still sees
plain single-minded requests, exactly as the paper models them.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Mapping, Optional, Sequence

from repro.common.errors import ValidationError
from repro.common.timewindow import TimeWindow
from repro.market.bids import Request
from repro.market.resources import l2_norm

if TYPE_CHECKING:  # avoid a market <-> core import cycle at runtime
    from repro.core.outcome import AuctionOutcome


class CompletionPolicy(enum.Enum):
    ALL_OR_NOTHING = "all_or_nothing"
    BEST_EFFORT = "best_effort"


@dataclass(frozen=True)
class ServiceSpec:
    """One microservice: a container shape and a replica count."""

    name: str
    resources: Mapping[str, float]
    replicas: int = 1
    duration: Optional[float] = None  # defaults to the job duration

    def __post_init__(self) -> None:
        if self.replicas < 1:
            raise ValidationError(
                f"service {self.name!r} needs at least one replica"
            )


@dataclass
class Job:
    """A client's multi-container application."""

    job_id: str
    client_id: str
    services: Sequence[ServiceSpec]
    window: TimeWindow
    duration: float
    budget: float
    submit_time: float = 0.0
    flexibility: float = 1.0
    policy: CompletionPolicy = CompletionPolicy.BEST_EFFORT
    significance: Mapping[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.services:
            raise ValidationError("a job needs at least one service")
        if self.budget <= 0:
            raise ValidationError("job budget must be positive")

    def _weights(self) -> List[float]:
        """Budget split across containers by resource magnitude."""
        weights: List[float] = []
        for service in self.services:
            magnitude = l2_norm(service.resources)
            for _ in range(service.replicas):
                weights.append(max(magnitude, 1e-9))
        total = sum(weights)
        return [w / total for w in weights]

    def to_requests(self) -> List[Request]:
        """Expand into per-container requests (mechanism-facing view)."""
        requests: List[Request] = []
        weights = self._weights()
        index = 0
        for service in self.services:
            duration = min(
                service.duration or self.duration, self.window.span
            )
            for replica in range(service.replicas):
                requests.append(
                    Request(
                        request_id=(
                            f"{self.job_id}/{service.name}/{replica}"
                        ),
                        client_id=self.client_id,
                        submit_time=self.submit_time + 1e-6 * index,
                        resources=dict(service.resources),
                        significance=dict(self.significance),
                        window=self.window,
                        duration=duration,
                        bid=self.budget * weights[index],
                        flexibility=self.flexibility,
                    )
                )
                index += 1
        return requests

    # ------------------------------------------------------------------
    # Outcome evaluation
    # ------------------------------------------------------------------
    def container_ids(self) -> List[str]:
        return [r.request_id for r in self.to_requests()]

    def placed_containers(self, outcome: "AuctionOutcome") -> List[str]:
        matched = {m.request.request_id for m in outcome.matches}
        return [cid for cid in self.container_ids() if cid in matched]

    def is_complete(self, outcome: "AuctionOutcome") -> bool:
        placed = set(self.placed_containers(outcome))
        if self.policy is CompletionPolicy.ALL_OR_NOTHING:
            return placed == set(self.container_ids())
        return bool(placed)

    def total_payment(self, outcome: "AuctionOutcome") -> float:
        own = set(self.container_ids())
        return sum(
            m.payment
            for m in outcome.matches
            if m.request.request_id in own
        )

    def fulfillment(self, outcome: "AuctionOutcome") -> float:
        """Fraction of containers placed."""
        ids = self.container_ids()
        return len(self.placed_containers(outcome)) / len(ids)

    def denials_required(self, outcome: "AuctionOutcome") -> List[str]:
        """Container matches the client should `deny` under its policy.

        ALL_OR_NOTHING jobs deny every partial placement; BEST_EFFORT
        jobs deny nothing.
        """
        if self.policy is CompletionPolicy.BEST_EFFORT:
            return []
        placed = self.placed_containers(outcome)
        if set(placed) == set(self.container_ids()):
            return []
        return placed


def evaluate_jobs(
    jobs: Sequence[Job], outcome: "AuctionOutcome"
) -> Dict[str, float]:
    """Per-job fulfillment fractions for a cleared block."""
    return {job.job_id: job.fulfillment(outcome) for job in jobs}
