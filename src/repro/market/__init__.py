"""The DeCloud bidding language: resources, requests, offers, feasibility."""

from repro.market.bids import Offer, Request, decode_bid_payload
from repro.market.jobs import (
    CompletionPolicy,
    Job,
    ServiceSpec,
    evaluate_jobs,
)
from repro.market.location import (
    GeoLocation,
    NetworkLocation,
    attach_latency_resource,
    latency_headroom,
    pairwise_latency_ms,
)
from repro.market.feasibility import (
    explain_infeasibility,
    feasible_offers,
    is_feasible,
    required_amount,
    resource_feasible,
    temporally_feasible,
)
from repro.market.resources import (
    CRITICAL_RESOURCES,
    ResourceVector,
    common_types,
    elementwise_max,
    l2_norm,
    normalized,
    validate_vector,
)

__all__ = [
    "Offer",
    "Request",
    "decode_bid_payload",
    "CompletionPolicy",
    "Job",
    "ServiceSpec",
    "evaluate_jobs",
    "GeoLocation",
    "NetworkLocation",
    "attach_latency_resource",
    "latency_headroom",
    "pairwise_latency_ms",
    "is_feasible",
    "feasible_offers",
    "temporally_feasible",
    "resource_feasible",
    "required_amount",
    "explain_infeasibility",
    "CRITICAL_RESOURCES",
    "ResourceVector",
    "common_types",
    "elementwise_max",
    "l2_norm",
    "normalized",
    "validate_vector",
]
