"""Locations and latency as first-class bidding-language inputs.

The bidding language tags every request and offer with a location
``l_r`` / ``l_o`` (Eq. 1-2): "either geo-location or a network address".
This module provides both kinds:

* :class:`GeoLocation` — latitude/longitude with great-circle distance
  and a simple speed-of-light-in-fiber latency model;
* :class:`NetworkLocation` — hierarchical network zones
  (``"eu/helsinki/cell-12"``) with hop-count latency.

The paper folds location into matching by treating latency "also as a
specific resource" (§II-C): :func:`attach_latency_resource` converts the
pairwise latency between a request and each offer into a *latency
headroom* resource (more is better), so Eq. 18 handles proximity with the
same gravity heuristic as CPU or RAM.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Union

from repro.common.errors import ValidationError
from repro.market.bids import Offer, Request

EARTH_RADIUS_KM = 6371.0
#: Effective propagation speed in fiber, km per millisecond (~2c/3).
FIBER_KM_PER_MS = 200.0
#: Fixed per-hop forwarding cost for network-zone latency, ms.
HOP_LATENCY_MS = 2.0

LATENCY_RESOURCE = "latency"


@dataclass(frozen=True)
class GeoLocation:
    """A point on the globe."""

    latitude: float
    longitude: float

    def __post_init__(self) -> None:
        if not -90.0 <= self.latitude <= 90.0:
            raise ValidationError(f"latitude out of range: {self.latitude}")
        if not -180.0 <= self.longitude <= 180.0:
            raise ValidationError(f"longitude out of range: {self.longitude}")

    def distance_km(self, other: "GeoLocation") -> float:
        """Great-circle (haversine) distance."""
        lat1, lon1 = math.radians(self.latitude), math.radians(self.longitude)
        lat2, lon2 = math.radians(other.latitude), math.radians(other.longitude)
        d_lat = lat2 - lat1
        d_lon = lon2 - lon1
        a = (
            math.sin(d_lat / 2) ** 2
            + math.cos(lat1) * math.cos(lat2) * math.sin(d_lon / 2) ** 2
        )
        return 2 * EARTH_RADIUS_KM * math.asin(math.sqrt(a))

    def latency_ms(self, other: "GeoLocation") -> float:
        """One-way propagation latency estimate over fiber."""
        return self.distance_km(other) / FIBER_KM_PER_MS


@dataclass(frozen=True)
class NetworkLocation:
    """A hierarchical network zone like ``"eu/helsinki/cell-12"``."""

    zone: str

    def __post_init__(self) -> None:
        if not self.zone or self.zone.startswith("/") or self.zone.endswith("/"):
            raise ValidationError(f"malformed zone {self.zone!r}")
        if "" in self.zone.split("/"):
            # An empty interior segment ("eu//cell-1") would count as a
            # real tree level in hop counting, so two zones sharing only
            # the empty segment looked one hop closer than they are.
            raise ValidationError(f"empty segment in zone {self.zone!r}")

    def _parts(self) -> Sequence[str]:
        return self.zone.split("/")

    def hops_to(self, other: "NetworkLocation") -> int:
        """Tree distance between zones: up to the common prefix, then down."""
        mine, theirs = self._parts(), other._parts()
        common = 0
        for a, b in zip(mine, theirs):
            if a != b:
                break
            common += 1
        return (len(mine) - common) + (len(theirs) - common)

    def latency_ms(self, other: "NetworkLocation") -> float:
        return HOP_LATENCY_MS * self.hops_to(other)


Location = Union[GeoLocation, NetworkLocation]


def pairwise_latency_ms(a: Optional[Location], b: Optional[Location]) -> float:
    """Latency between two locations; unknown locations are assumed far.

    Mixing a geo location with a network zone is a modelling error.
    """
    if a is None or b is None:
        return math.inf
    if isinstance(a, GeoLocation) != isinstance(b, GeoLocation):
        raise ValidationError("cannot mix geo and network locations")
    return a.latency_ms(b)  # type: ignore[union-attr]


def latency_headroom(latency_ms: float, tolerance_ms: float) -> float:
    """Convert latency to a more-is-better resource amount."""
    if tolerance_ms <= 0:
        raise ValidationError("tolerance_ms must be positive")
    if not math.isfinite(latency_ms):
        return 0.0
    return max(0.0, tolerance_ms - latency_ms)


def grid_columns(cell_deg: float) -> int:
    """Number of longitude columns of a ``cell_deg`` grid (>= 1)."""
    if cell_deg <= 0 or cell_deg > 360.0:
        raise ValidationError(f"cell_deg out of range: {cell_deg}")
    return max(1, int(math.ceil(360.0 / cell_deg)))


def grid_cell(location: GeoLocation, cell_deg: float) -> tuple[int, int]:
    """(row, col) grid cell of a geo location.

    Longitude wraps: the column index is taken modulo the number of
    columns, so +180° and -180° land in the *same* cell and cells at
    +179.9° / -179.9° are neighbours across the antimeridian instead of
    sitting at opposite ends of the grid.  Latitude clamps at the poles
    (+90° shares the top row rather than opening a row of its own).
    """
    n_cols = grid_columns(cell_deg)
    n_rows = max(1, int(math.ceil(180.0 / cell_deg)))
    col = int(math.floor((location.longitude + 180.0) / cell_deg)) % n_cols
    row = min(
        n_rows - 1, int(math.floor((location.latitude + 90.0) / cell_deg))
    )
    return row, col


def grid_ring_distance(
    a: tuple[int, int], b: tuple[int, int], n_cols: int
) -> int:
    """Chebyshev ring distance between grid cells, wrapped east-west.

    The column delta is taken the short way around the globe, so a
    request and an offer straddling the ±180° seam are ring-1 neighbours.
    """
    d_row = abs(a[0] - b[0])
    d_col = abs(a[1] - b[1])
    d_col = min(d_col, n_cols - d_col)
    return max(d_row, d_col)


def zone_prefix(zone: str, depth: int) -> str:
    """The first ``depth`` segments of a zone (the zone itself if
    shorter — single-segment zones bucket by their whole name)."""
    if depth < 1:
        raise ValidationError("depth must be >= 1")
    return "/".join(zone.split("/")[:depth])


def attach_latency_resource(
    request: Request,
    offers: Sequence[Offer],
    locations: Dict[str, Location],
    tolerance_ms: float,
    significance: float = 0.9,
    hard: bool = False,
) -> tuple[Request, list[Offer]]:
    """Fold pairwise latency into the bidding language (§II-C).

    ``locations`` maps participant location *tags* (the ``location``
    field of requests/offers) to :class:`Location` objects.  Returns a
    copy of the request demanding ``latency`` headroom of at least
    ``tolerance_ms`` (0 => any latency acceptable at significance < 1)
    and offer copies carrying their individual headroom toward this
    request.  With ``hard=True`` the latency demand is strict: offers
    beyond the tolerance are infeasible (Const. 8); otherwise latency
    only steers the quality of match.
    """
    request_location = locations.get(request.location or "")
    new_offers = []
    for offer in offers:
        offer_location = locations.get(offer.location or "")
        latency = pairwise_latency_ms(request_location, offer_location)
        headroom = latency_headroom(latency, tolerance_ms)
        resources = dict(offer.resources)
        resources[LATENCY_RESOURCE] = headroom
        new_offers.append(
            Offer(
                offer_id=offer.offer_id,
                provider_id=offer.provider_id,
                submit_time=offer.submit_time,
                resources=resources,
                window=offer.window,
                bid=offer.bid,
                location=offer.location,
            )
        )

    resources = dict(request.resources)
    significances = dict(request.significance)
    # Demand: strictly positive headroom.  A hard constraint demands a
    # meaningful fraction of the tolerance; a soft one just steers q.
    resources[LATENCY_RESOURCE] = tolerance_ms * (0.5 if hard else 0.1)
    significances[LATENCY_RESOURCE] = 1.0 if hard else significance
    new_request = Request(
        request_id=request.request_id,
        client_id=request.client_id,
        submit_time=request.submit_time,
        resources=resources,
        significance=significances,
        window=request.window,
        duration=request.duration,
        bid=request.bid,
        location=request.location,
        flexibility=request.flexibility,
    )
    return new_request, new_offers
