"""Requests and offers — the DeCloud bidding language (paper Eq. 1–2).

A :class:`Request` is a client's sealed order for running one container:

    r := <t_r, [rho_(r,k)], [sigma_(r,k)], t_r^-, t_r^+, d_r, b_r, l_r>

and an :class:`Offer` is a provider's order for one device:

    o := <t_o, [rho_(o,k)], t_o^-, t_o^+, b_o, l_o>

Both are immutable value objects with JSON round-tripping so they can
travel as sealed-bid plaintexts through the ledger.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field
from types import MappingProxyType
from typing import Any, Dict, Mapping, Optional

from repro.common.errors import ValidationError
from repro.common.timewindow import TimeWindow
from repro.market.resources import validate_vector


def _frozen_mapping(mapping: Mapping[str, float]) -> Mapping[str, float]:
    return MappingProxyType(dict(mapping))


def _validate_bid(bid: float, what: str) -> None:
    if not math.isfinite(bid) or bid < 0:
        raise ValidationError(f"{what} bid must be a non-negative finite number")


@dataclass(frozen=True)
class Request:
    """A client's order for executing a single container.

    Attributes mirror Eq. (1); additionally ``flexibility`` captures the
    evaluation's flexible-matching knob: a resource with significance
    sigma < 1 is satisfied by any offer providing at least
    ``flexibility * rho_(r,k)`` of it, while sigma = 1 resources are hard
    constraints (Const. 8).
    """

    request_id: str
    client_id: str
    submit_time: float
    resources: Mapping[str, float]
    window: TimeWindow
    duration: float
    bid: float
    significance: Mapping[str, float] = field(default_factory=dict)
    location: Optional[str] = None
    flexibility: float = 1.0

    def __post_init__(self) -> None:
        validate_vector(self.resources, f"request {self.request_id}")
        _validate_bid(self.bid, f"request {self.request_id}")
        if not self.window.can_host(self.duration):
            raise ValidationError(
                f"request {self.request_id}: duration {self.duration} does "
                f"not fit window [{self.window.start}, {self.window.end}]"
            )
        if self.duration <= 0:
            raise ValidationError(
                f"request {self.request_id}: duration must be positive"
            )
        if not 0.0 < self.flexibility <= 1.0:
            raise ValidationError(
                f"request {self.request_id}: flexibility must be in (0, 1]"
            )
        significance = dict(self.significance)
        for key in self.resources:
            significance.setdefault(key, 1.0)
        for key, sigma in significance.items():
            if key not in self.resources:
                raise ValidationError(
                    f"request {self.request_id}: significance for undeclared "
                    f"resource {key!r}"
                )
            if not 0.0 < sigma <= 1.0:
                raise ValidationError(
                    f"request {self.request_id}: significance must be in "
                    f"(0, 1], got {sigma} for {key!r}"
                )
        object.__setattr__(self, "resources", _frozen_mapping(self.resources))
        object.__setattr__(self, "significance", _frozen_mapping(significance))

    def __reduce__(self):
        # The frozen mappings are MappingProxyType, which pickle rejects;
        # round-trip through the payload instead (process-pool clearing
        # ships bids across worker boundaries).
        return (Request.from_payload, (self.to_payload(),))

    def sigma(self, resource_type: str) -> float:
        """Significance of ``resource_type`` (defaults to 1.0 = strict)."""
        return self.significance.get(resource_type, 1.0)

    def is_strict(self, resource_type: str) -> bool:
        """True when the resource is a hard requirement (sigma == 1)."""
        return self.sigma(resource_type) >= 1.0

    def to_payload(self) -> Dict[str, Any]:
        """JSON-serializable representation (ledger plaintext)."""
        return {
            "kind": "request",
            "request_id": self.request_id,
            "client_id": self.client_id,
            "submit_time": self.submit_time,
            "resources": dict(self.resources),
            "significance": dict(self.significance),
            "window": [self.window.start, self.window.end],
            "duration": self.duration,
            "bid": self.bid,
            "location": self.location,
            "flexibility": self.flexibility,
        }

    @classmethod
    def from_payload(cls, payload: Mapping[str, Any]) -> "Request":
        if payload.get("kind") != "request":
            raise ValidationError(f"not a request payload: {payload.get('kind')!r}")
        return cls(
            request_id=payload["request_id"],
            client_id=payload["client_id"],
            submit_time=float(payload["submit_time"]),
            resources=dict(payload["resources"]),
            significance=dict(payload.get("significance", {})),
            window=TimeWindow(*payload["window"]),
            duration=float(payload["duration"]),
            bid=float(payload["bid"]),
            location=payload.get("location"),
            flexibility=float(payload.get("flexibility", 1.0)),
        )

    def to_json(self) -> bytes:
        return json.dumps(self.to_payload(), sort_keys=True).encode("utf-8")

    def replace_bid(self, bid: float) -> "Request":
        """Copy with a different reported valuation (for deviation tests)."""
        return Request(
            request_id=self.request_id,
            client_id=self.client_id,
            submit_time=self.submit_time,
            resources=dict(self.resources),
            significance=dict(self.significance),
            window=self.window,
            duration=self.duration,
            bid=bid,
            location=self.location,
            flexibility=self.flexibility,
        )

    def strict_view(self) -> "Request":
        """Copy with every resource strictly required (sigma=1, flex=1).

        Used when a quantity must not depend on how flexible the client
        is — e.g., the valuation model prices the *requested* bundle.
        """
        return Request(
            request_id=self.request_id,
            client_id=self.client_id,
            submit_time=self.submit_time,
            resources=dict(self.resources),
            significance={k: 1.0 for k in self.resources},
            window=self.window,
            duration=self.duration,
            bid=self.bid,
            location=self.location,
            flexibility=1.0,
        )


@dataclass(frozen=True)
class Offer:
    """A provider's order for one computational device (Eq. 2)."""

    offer_id: str
    provider_id: str
    submit_time: float
    resources: Mapping[str, float]
    window: TimeWindow
    bid: float
    location: Optional[str] = None

    def __post_init__(self) -> None:
        validate_vector(self.resources, f"offer {self.offer_id}")
        _validate_bid(self.bid, f"offer {self.offer_id}")
        if self.window.span <= 0:
            raise ValidationError(
                f"offer {self.offer_id}: availability window must have "
                "positive span"
            )
        object.__setattr__(self, "resources", _frozen_mapping(self.resources))

    def __reduce__(self):
        # See Request.__reduce__: MappingProxyType is not picklable.
        return (Offer.from_payload, (self.to_payload(),))

    @property
    def span(self) -> float:
        """Availability span ``t_o^+ - t_o^-``."""
        return self.window.span

    def to_payload(self) -> Dict[str, Any]:
        return {
            "kind": "offer",
            "offer_id": self.offer_id,
            "provider_id": self.provider_id,
            "submit_time": self.submit_time,
            "resources": dict(self.resources),
            "window": [self.window.start, self.window.end],
            "bid": self.bid,
            "location": self.location,
        }

    @classmethod
    def from_payload(cls, payload: Mapping[str, Any]) -> "Offer":
        if payload.get("kind") != "offer":
            raise ValidationError(f"not an offer payload: {payload.get('kind')!r}")
        return cls(
            offer_id=payload["offer_id"],
            provider_id=payload["provider_id"],
            submit_time=float(payload["submit_time"]),
            resources=dict(payload["resources"]),
            window=TimeWindow(*payload["window"]),
            bid=float(payload["bid"]),
            location=payload.get("location"),
        )

    def to_json(self) -> bytes:
        return json.dumps(self.to_payload(), sort_keys=True).encode("utf-8")

    def replace_bid(self, bid: float) -> "Offer":
        """Copy with a different reported cost (for deviation tests)."""
        return Offer(
            offer_id=self.offer_id,
            provider_id=self.provider_id,
            submit_time=self.submit_time,
            resources=dict(self.resources),
            window=self.window,
            bid=bid,
            location=self.location,
        )


def decode_bid_payload(raw: bytes) -> "Request | Offer":
    """Decode a ledger plaintext into a :class:`Request` or :class:`Offer`."""
    try:
        payload = json.loads(raw.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ValidationError(f"undecodable bid payload: {exc}") from exc
    kind = payload.get("kind")
    if kind == "request":
        return Request.from_payload(payload)
    if kind == "offer":
        return Offer.from_payload(payload)
    raise ValidationError(f"unknown bid kind {kind!r}")
