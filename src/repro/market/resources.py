"""Resource vectors for the bidding language.

A resource vector maps a resource *type* (free-form string: ``"cpu"``,
``"ram"``, ``"disk"``, ``"latency"``, ``"sgx"``, ...) to a non-negative
amount.  The bidding language deliberately avoids a fixed machine taxonomy
(paper §II-C): any property relevant to edge computing may appear as a
resource type.
"""

from __future__ import annotations

import math
from typing import AbstractSet, Dict, Iterable, Mapping

from repro.common.errors import ValidationError

#: Resource types the paper designates as *critical* (§IV-C): a request
#: consuming 100% of one of these on a machine blocks co-location, so its
#: price share is driven by its maximal critical-resource usage.
CRITICAL_RESOURCES = frozenset({"cpu", "ram", "disk"})

ResourceVector = Mapping[str, float]


def validate_vector(vector: ResourceVector, what: str) -> None:
    """Reject empty vectors, empty type names, and negative amounts."""
    if not vector:
        raise ValidationError(f"{what} must declare at least one resource")
    for key, amount in vector.items():
        if not isinstance(key, str) or not key:
            raise ValidationError(f"{what} has an invalid resource type {key!r}")
        if not math.isfinite(amount) or amount < 0:
            raise ValidationError(
                f"{what} has invalid amount {amount!r} for resource {key!r}"
            )


def common_types(a: ResourceVector, b: ResourceVector) -> AbstractSet[str]:
    """``K_(r,o)`` — resource types shared by the two vectors."""
    return a.keys() & b.keys()


def l2_norm(vector: ResourceVector, keys: Iterable[str] | None = None) -> float:
    """Euclidean magnitude of ``vector`` restricted to ``keys``.

    Missing keys contribute zero, matching the paper's treatment of a
    resource absent from an offer/request as amount 0.  Keys are walked
    in sorted order so the (non-associative) float sum cannot vary with
    set/dict iteration order across interpreter runs.
    """
    if keys is None:
        keys = vector.keys()
    return math.sqrt(sum(vector.get(k, 0.0) ** 2 for k in sorted(keys)))


def elementwise_max(vectors: Iterable[ResourceVector]) -> Dict[str, float]:
    """Per-type maximum across ``vectors`` (the "virtual maximum" builder)."""
    maxima: Dict[str, float] = {}
    for vector in vectors:
        for key, amount in vector.items():
            if amount > maxima.get(key, 0.0):
                maxima[key] = amount
    return maxima


def normalized(vector: ResourceVector, maxima: ResourceVector) -> Dict[str, float]:
    """Scale each component into [0, 1] by the per-type maximum.

    Types with a zero (or missing) maximum normalize to 0 — they carry no
    discriminating information in the current block.
    """
    out: Dict[str, float] = {}
    for key, amount in vector.items():
        top = maxima.get(key, 0.0)
        out[key] = amount / top if top > 0 else 0.0
    return out
