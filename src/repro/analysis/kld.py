"""Kullback-Leibler divergence and the paper's similarity measure.

The flexibility experiments (Fig. 5d-5f) place market scenarios on a
*similarity* axis computed as ``1 - KLD(R, O)``: the divergence between
the request-side and offer-side distributions over machine configurations.
We compute KLD in base ``len(support)`` so that the divergence of a point
mass against the uniform distribution is exactly 1, putting similarity on
a natural [0, 1] scale.
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

from repro.common.errors import ValidationError


def kl_divergence(
    q: Sequence[float], p: Sequence[float], base: float | None = None
) -> float:
    """``KLD(q || p)`` for discrete distributions on a shared support.

    ``base`` defaults to the support size (see module docstring).  Raises
    when ``q`` puts mass where ``p`` has none (divergence is infinite).
    """
    q_arr = np.asarray(q, dtype=float)
    p_arr = np.asarray(p, dtype=float)
    if q_arr.shape != p_arr.shape or q_arr.ndim != 1:
        raise ValidationError("q and p must be 1-D with the same support")
    if np.any(q_arr < 0) or np.any(p_arr < 0):
        raise ValidationError("probabilities must be non-negative")
    q_sum, p_sum = q_arr.sum(), p_arr.sum()
    if q_sum <= 0 or p_sum <= 0:
        raise ValidationError("distributions must have positive mass")
    q_arr = q_arr / q_sum
    p_arr = p_arr / p_sum
    if base is None:
        base = float(len(q_arr))
    if base <= 1:
        raise ValidationError("base must exceed 1")

    divergence = 0.0
    for q_i, p_i in zip(q_arr, p_arr):
        if q_i == 0:
            continue
        if p_i == 0:
            return math.inf
        divergence += q_i * math.log(q_i / p_i, base)
    return divergence


def similarity(q: Sequence[float], p: Sequence[float]) -> float:
    """The paper's similarity axis: ``1 - KLD(q || p)``, clipped to >= 0."""
    return max(0.0, 1.0 - kl_divergence(q, p))


def empirical_distribution(
    samples: Sequence[int], support_size: int
) -> np.ndarray:
    """Histogram ``samples`` (class indices) into a probability vector."""
    if support_size < 1:
        raise ValidationError("support_size must be >= 1")
    counts = np.zeros(support_size, dtype=float)
    for sample in samples:
        if not 0 <= sample < support_size:
            raise ValidationError(
                f"sample {sample} outside support [0, {support_size})"
            )
        counts[sample] += 1.0
    if counts.sum() == 0:
        raise ValidationError("no samples given")
    return counts / counts.sum()
