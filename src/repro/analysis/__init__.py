"""Analysis utilities: Loess smoothing, KL divergence, statistics."""

from repro.analysis.kld import empirical_distribution, kl_divergence, similarity
from repro.analysis.loess import loess, tricube
from repro.analysis.markets import (
    ClearingReport,
    clearing_report,
    crossing_point,
    demand_curve,
    supply_curve,
)
from repro.analysis.stats import Summary, ratio_of_sums, summarize

__all__ = [
    "kl_divergence",
    "similarity",
    "empirical_distribution",
    "loess",
    "tricube",
    "ClearingReport",
    "clearing_report",
    "crossing_point",
    "demand_curve",
    "supply_curve",
    "Summary",
    "summarize",
    "ratio_of_sums",
]
