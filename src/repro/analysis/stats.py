"""Summary statistics for experiment outputs."""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np
from scipy import stats as scipy_stats

from repro.common.errors import ValidationError


@dataclass(frozen=True)
class Summary:
    """Mean with a confidence interval and spread."""

    mean: float
    std: float
    ci_low: float
    ci_high: float
    count: int

    def __str__(self) -> str:
        return (
            f"{self.mean:.4f} +/- {(self.ci_high - self.ci_low) / 2:.4f} "
            f"(n={self.count})"
        )


def summarize(values: Sequence[float], confidence: float = 0.95) -> Summary:
    """Mean and t-interval of ``values``."""
    arr = np.asarray(values, dtype=float)
    if arr.size == 0:
        raise ValidationError("cannot summarize an empty sequence")
    mean = float(arr.mean())
    if arr.size == 1:
        return Summary(mean=mean, std=0.0, ci_low=mean, ci_high=mean, count=1)
    std = float(arr.std(ddof=1))
    sem = std / math.sqrt(arr.size)
    t_crit = float(scipy_stats.t.ppf(0.5 + confidence / 2, df=arr.size - 1))
    return Summary(
        mean=mean,
        std=std,
        ci_low=mean - t_crit * sem,
        ci_high=mean + t_crit * sem,
        count=int(arr.size),
    )


def ratio_of_sums(numerators: Sequence[float], denominators: Sequence[float]) -> float:
    """Pooled ratio, robust to near-zero individual denominators."""
    denom = float(np.sum(denominators))
    if denom == 0:
        return 0.0
    return float(np.sum(numerators)) / denom
