"""Loess (locally weighted linear regression) smoothing.

The paper plots Loess trend curves over the welfare scatter (Fig. 5a-5b).
This is the classic tricube-weighted local *linear* fit: for each
evaluation point, the nearest ``frac`` of the data is regressed with
weights ``(1 - (d / d_max)^3)^3`` and the fit is evaluated at the point.
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np

from repro.common.errors import ValidationError


def tricube(distances: np.ndarray) -> np.ndarray:
    """Tricube kernel on distances normalized to [0, 1]."""
    clipped = np.clip(distances, 0.0, 1.0)
    return (1.0 - clipped**3) ** 3


def loess(
    x: Sequence[float],
    y: Sequence[float],
    frac: float = 0.5,
    eval_x: Sequence[float] | None = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Smooth ``y`` over ``x``; returns ``(eval_x, fitted)``.

    ``frac`` is the span: the fraction of points in each local window.
    Degenerate windows (zero x-spread) fall back to the weighted mean.
    """
    x_arr = np.asarray(x, dtype=float)
    y_arr = np.asarray(y, dtype=float)
    if x_arr.ndim != 1 or x_arr.shape != y_arr.shape:
        raise ValidationError("x and y must be 1-D and the same length")
    if len(x_arr) < 2:
        raise ValidationError("loess needs at least two points")
    if not 0.0 < frac <= 1.0:
        raise ValidationError("frac must be in (0, 1]")

    order = np.argsort(x_arr)
    x_sorted = x_arr[order]
    y_sorted = y_arr[order]
    n = len(x_sorted)
    window = max(2, int(np.ceil(frac * n)))

    targets = (
        np.asarray(eval_x, dtype=float) if eval_x is not None else x_sorted
    )
    fitted = np.empty(len(targets))
    for i, x0 in enumerate(targets):
        distances = np.abs(x_sorted - x0)
        idx = np.argsort(distances)[:window]
        local_x = x_sorted[idx]
        local_y = y_sorted[idx]
        d_max = distances[idx].max()
        if d_max <= 0:
            fitted[i] = local_y.mean()
            continue
        weights = tricube(distances[idx] / d_max)
        w_sum = weights.sum()
        if w_sum <= 0:
            fitted[i] = local_y.mean()
            continue
        x_mean = np.average(local_x, weights=weights)
        y_mean = np.average(local_y, weights=weights)
        var = np.average((local_x - x_mean) ** 2, weights=weights)
        if var <= 1e-12:
            fitted[i] = y_mean
            continue
        cov = np.average(
            (local_x - x_mean) * (local_y - y_mean), weights=weights
        )
        slope = cov / var
        fitted[i] = y_mean + slope * (x0 - x_mean)
    return targets, fitted
