"""Market diagnostics: supply/demand curves and clearing statistics.

Utilities the experiments and examples use to *explain* auction results:
aggregate normalized supply and demand curves, the theoretical crossing
point, price dispersion across mini-auctions, and a per-block clearing
report.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from repro.core.outcome import AuctionOutcome
from repro.core.welfare import resource_fraction
from repro.market.bids import Offer, Request


def demand_curve(requests: Sequence[Request]) -> List[Tuple[float, float]]:
    """(unit value, cumulative demanded duration) sorted by value desc.

    Unit value here is the simple bid-per-duration-hour; it is a
    diagnostic, not the mechanism's cluster-normalized v_hat.
    """
    points = sorted(
        ((r.bid / r.duration, r.duration) for r in requests if r.duration > 0),
        key=lambda p: -p[0],
    )
    out: List[Tuple[float, float]] = []
    cumulative = 0.0
    for value, duration in points:
        cumulative += duration
        out.append((value, cumulative))
    return out


def supply_curve(offers: Sequence[Offer]) -> List[Tuple[float, float]]:
    """(unit cost, cumulative offered machine-hours) sorted by cost asc."""
    points = sorted(
        ((o.bid / o.span, o.span) for o in offers if o.span > 0),
        key=lambda p: p[0],
    )
    out: List[Tuple[float, float]] = []
    cumulative = 0.0
    for cost, span in points:
        cumulative += span
        out.append((cost, cumulative))
    return out


def crossing_point(
    demand: Sequence[Tuple[float, float]],
    supply: Sequence[Tuple[float, float]],
) -> Tuple[float, float] | None:
    """Where marginal demand value drops below marginal supply cost.

    Returns (approximate price, cumulative quantity) or ``None`` when the
    curves never cross (no profitable trade exists).
    """
    if not demand or not supply:
        return None
    supply_index = 0
    for value, quantity in demand:
        while (
            supply_index < len(supply)
            and supply[supply_index][1] < quantity
        ):
            supply_index += 1
        marginal_cost = (
            supply[min(supply_index, len(supply) - 1)][0]
            if supply
            else float("inf")
        )
        if value < marginal_cost:
            return (0.5 * (value + marginal_cost), quantity)
    # Demand exhausted while still profitable: cross at last demand point.
    last_value, last_quantity = demand[-1]
    return (last_value, last_quantity)


@dataclass(frozen=True)
class ClearingReport:
    """Summary of one cleared block."""

    trades: int
    welfare: float
    total_payments: float
    mean_price: float
    price_dispersion: float
    mean_utilization: float
    satisfaction: float

    def __str__(self) -> str:
        return (
            f"trades={self.trades} welfare={self.welfare:.3f} "
            f"payments={self.total_payments:.3f} "
            f"price={self.mean_price:.4f}+/-{self.price_dispersion:.4f} "
            f"utilization={self.mean_utilization:.2%} "
            f"satisfaction={self.satisfaction:.2%}"
        )


def clearing_report(outcome: AuctionOutcome) -> ClearingReport:
    """Diagnostics for a cleared block."""
    prices = outcome.prices or [m.unit_price for m in outcome.matches]
    price_arr = np.asarray(prices, dtype=float) if prices else np.array([0.0])
    # Utilization: fraction of each matched offer actually consumed.
    utilizations = []
    by_offer = {}
    for match in outcome.matches:
        by_offer.setdefault(match.offer.offer_id, []).append(match)
    for matches in by_offer.values():
        offer = matches[0].offer
        used = sum(resource_fraction(m.request, offer) for m in matches)
        utilizations.append(min(1.0, used))
    return ClearingReport(
        trades=outcome.num_trades,
        welfare=outcome.welfare,
        total_payments=outcome.total_payments,
        mean_price=float(price_arr.mean()),
        price_dispersion=float(price_arr.std()),
        mean_utilization=(
            float(np.mean(utilizations)) if utilizations else 0.0
        ),
        satisfaction=outcome.satisfaction,
    )
