"""Configuration for the DeCloud double auction."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import FrozenSet, Optional

from repro.common.errors import ValidationError
from repro.market.resources import CRITICAL_RESOURCES


@dataclass(frozen=True)
class AuctionConfig:
    """Tunable knobs of the mechanism.

    Attributes:
        cluster_breadth: how many top-ranked offers form a request's
            "best offers" set ``best_r`` in Alg. 2.  The paper leaves the
            breadth implicit; 3 reproduces the clustered behaviour without
            collapsing every request into one global cluster.
        critical_resources: the base critical set ``K_CR`` of §IV-C
            (grown per cluster by the resource types all requests share).
        enable_trade_reduction: turn off to obtain the paper's
            non-truthful greedy benchmark.
        enable_randomization: evidence-seeded random exclusion applied on
            supply/demand imbalance (§IV-D); also off for the benchmark.
        enable_mini_auctions: group price-compatible clusters into
            mini-auctions (Alg. 3).  Off = each cluster is its own
            auction, the ablation DESIGN.md calls out.
        enforce_price_consistency: keep the in-cluster greedy fill
            uniform-price-supportable — every used offer's normalized
            cost stays at or below the lowest winner's normalized value
            (the invariant the paper's IR proof assumes, §IV-E).  The
            non-truthful benchmark turns this off: it prices each pair
            separately and need not support a common price.
        price_epsilon: tolerance for floating-point price comparisons.
        engine: ``"reference"`` runs the scalar pure-Python pipeline (the
            oracle); ``"vectorized"`` computes the quality-of-match
            matrix and best-offer sets with the NumPy kernel of
            :mod:`repro.core.matching_vectorized`.  The two engines are
            bit-identical by contract — ``tests/differential/`` is the
            enforcement.
        candidates: optional candidate generator (an object with a
            ``generate(requests, offers, maxima, breadth, scorer=...)``
            method, see :mod:`repro.core.candidates`) placed in front of
            the matcher.  ``None`` (default) runs the exact all-pairs
            path.  Generators certify their pruning, so any generator
            yields outcomes bit-identical to ``None`` on either engine —
            ``tests/differential/test_candidate_equivalence.py`` is the
            enforcement.  Excluded from config equality/hashing
            (generators carry transient state such as ``last_stats``).
        miniauction_workers: 0 (default) clears mini-auctions
            sequentially from one evidence-seeded RNG stream, the
            historical behaviour.  >= 1 switches to an independent
            per-auction RNG stream (derived from the evidence and the
            auction's position), which makes non-conflicting auctions
            order-independent; > 1 additionally clears independent
            auctions in a process pool of that many workers.  Results
            for any N >= 1 are bit-identical to N = 1.
    """

    cluster_breadth: int = 3
    enforce_price_consistency: bool = True
    critical_resources: FrozenSet[str] = field(
        default_factory=lambda: CRITICAL_RESOURCES
    )
    enable_trade_reduction: bool = True
    enable_randomization: bool = True
    enable_mini_auctions: bool = True
    price_epsilon: float = 1e-9
    engine: str = "reference"
    miniauction_workers: int = 0
    candidates: Optional[object] = field(default=None, compare=False)

    def __post_init__(self) -> None:
        if self.cluster_breadth < 1:
            raise ValidationError("cluster_breadth must be >= 1")
        if self.price_epsilon < 0:
            raise ValidationError("price_epsilon must be >= 0")
        if self.engine not in ("reference", "vectorized"):
            raise ValidationError(
                f"engine must be 'reference' or 'vectorized', got {self.engine!r}"
            )
        if self.miniauction_workers < 0:
            raise ValidationError("miniauction_workers must be >= 0")
        if self.candidates is not None and not callable(
            getattr(self.candidates, "generate", None)
        ):
            raise ValidationError(
                "candidates must expose a generate(...) method "
                f"(got {type(self.candidates).__name__})"
            )

    @classmethod
    def benchmark(cls, **overrides) -> "AuctionConfig":
        """The paper's non-truthful greedy benchmark configuration."""
        params = {
            "enable_trade_reduction": False,
            "enable_randomization": False,
            "enforce_price_consistency": False,
        }
        params.update(overrides)
        return cls(**params)
